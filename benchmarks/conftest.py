"""Shared benchmark fixtures.

Every ``bench_*`` module regenerates one table/figure of the paper (see
DESIGN.md section 2). Results are printed and also written under
``results/`` so the EXPERIMENTS.md comparison can be refreshed:

    pytest benchmarks/ --benchmark-only -s

Scale is controlled by ``REPRO_SCALE`` (bench | paper | smoke).
"""

import os
from pathlib import Path
from typing import Any, Mapping, Optional

import pytest

from repro.obs.manifest import atomic_write_text, write_manifest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

ENGINES = ("message", "soa", "both")


def pytest_addoption(parser):
    parser.addoption(
        "--engine",
        default="both",
        choices=ENGINES,
        help="restrict engine-sweep benches to one DES engine",
    )


@pytest.fixture(scope="session")
def engine_filter(request) -> str:
    """Which engines the throughput sweeps should run: message|soa|both."""
    return request.config.getoption("--engine")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    # Non-default scales write to a subdirectory so the bench-scale
    # tables cited by EXPERIMENTS.md are not clobbered.
    scale_name = os.environ.get("REPRO_SCALE", "bench").lower()
    target = RESULTS_DIR if scale_name == "bench" else RESULTS_DIR / scale_name
    target.mkdir(parents=True, exist_ok=True)
    return target


@pytest.fixture(scope="session")
def scale():
    from repro.experiments.scenarios import active_scale

    return active_scale()


def publish(
    results_dir: Path,
    name: str,
    text: str,
    manifest: Optional[Mapping[str, Any]] = None,
) -> None:
    """Print a result table and persist it for EXPERIMENTS.md.

    Writes are atomic (temp file + rename), so an interrupted bench run
    never leaves a truncated table. With ``manifest`` given (build it via
    :func:`repro.obs.manifest.build_manifest`), a ``<name>.manifest.json``
    provenance sidecar is written next to the table.
    """
    print()
    print(text)
    artifact = results_dir / f"{name}.txt"
    atomic_write_text(artifact, text + "\n")
    if manifest is not None:
        write_manifest(artifact, manifest)
