"""Shared benchmark fixtures.

Every ``bench_*`` module regenerates one table/figure of the paper (see
DESIGN.md section 2). Results are printed and also written under
``results/`` so the EXPERIMENTS.md comparison can be refreshed:

    pytest benchmarks/ --benchmark-only -s

Scale is controlled by ``REPRO_SCALE`` (bench | paper | smoke).
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    # Non-default scales write to a subdirectory so the bench-scale
    # tables cited by EXPERIMENTS.md are not clobbered.
    scale_name = os.environ.get("REPRO_SCALE", "bench").lower()
    target = RESULTS_DIR if scale_name == "bench" else RESULTS_DIR / scale_name
    target.mkdir(parents=True, exist_ok=True)
    return target


@pytest.fixture(scope="session")
def scale():
    from repro.experiments.scenarios import active_scale

    return active_scale()


def publish(results_dir: Path, name: str, text: str) -> None:
    """Print a result table and persist it for EXPERIMENTS.md."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
