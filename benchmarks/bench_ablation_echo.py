"""Ablation: the duplicate-echo effect on the General Indicator.

Definition 2.1 subtracts a suspect's inflow from its outflow. On cyclic
overlays, an attacker's own distinct queries loop back through alternate
paths and count as inflow, masking the issued volume. At scale the
echoes are attenuated by TTL expiry and congestion drops, which is why
the paper's detection works; this bench quantifies the indicator bias on
a ladder of increasingly cyclic topologies.
"""

import pytest

from benchmarks.conftest import publish
from repro.attack.agent import AgentConfig, DDoSAgent
from repro.attack.cheating import CheatStrategy
from repro.core.config import DDPoliceConfig
from repro.core.police import deploy_ddpolice
from repro.experiments.reporting import render_table
from repro.overlay.ids import PeerId
from tests.conftest import make_network

TOPOLOGIES = {
    # no alternate paths back to the attacker
    "tree": {0: {1, 2, 3}, 1: {4, 5}, 2: {6, 7}, 3: {8, 9}},
    # one cycle among the attacker's neighbors
    "one-cycle": {0: {1, 2, 3}, 1: {4, 5}, 2: {6, 7}, 3: {8, 9}, 4: {6}},
    # dense: every attack query loops back along multiple paths
    "dense": {0: {1, 2, 3}, 1: {4}, 2: {4, 5}, 3: {5}, 4: {5}},
}


def measure(topology, seed=1):
    sim, net = make_network(topology, seed=seed)
    engines = deploy_ddpolice(
        net,
        DDPoliceConfig(exchange_period_s=30.0),
        bad_peers={PeerId(0)},
        bad_strategy=CheatStrategy.HONEST,
    )
    agent = DDoSAgent(
        sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=3000.0, per_neighbor=True)
    )
    agent.start()
    sim.run(until=200.0)
    log = engines[PeerId(1)].judgments
    g_values = [j.g_value for j in log.judgments if j.suspect == PeerId(0)]
    detected = PeerId(0) in log.disconnected_suspects()
    return (max(g_values) if g_values else float("nan")), detected


@pytest.fixture(scope="module")
def echo_rows():
    rows = []
    for name, topo in TOPOLOGIES.items():
        g_max, detected = measure(topo)
        rows.append([name, round(g_max, 1), "yes" if detected else "no"])
    return rows


def test_echo_table(results_dir, echo_rows):
    text = render_table(
        ["topology", "max g(attacker)", "detected"],
        echo_rows,
        title="Ablation: query-echo bias of the General Indicator",
    )
    publish(results_dir, "ablation_echo", text)


def test_tree_detects_dense_does_not(echo_rows):
    by_name = {r[0]: r for r in echo_rows}
    assert by_name["tree"][2] == "yes"
    assert by_name["dense"][2] == "no"
    # indicator strictly degrades with cyclicity
    assert by_name["tree"][1] > by_name["one-cycle"][1] > by_name["dense"][1]


def test_bench_echo_point(benchmark):
    result = benchmark.pedantic(
        lambda: measure(TOPOLOGIES["tree"]), rounds=1, iterations=1
    )
    assert result[1] is True
