"""Figures 13 & 14: misjudgment errors and damage recovery time vs CT.

Paper anchors: as CT grows, false negatives (good peers wrongly cut)
fall and false positives (bad peers missed) rise; false judgment is
best around CT 5-7; recovery takes longer at larger CT.
"""

import math

import pytest

from benchmarks.conftest import publish
from repro.experiments import figures
from repro.experiments.reporting import render_table


@pytest.fixture(scope="module")
def ct_rows(scale):
    return figures.cut_threshold_sweep(scale, seed=13, trials=3)


def test_fig13_errors(results_dir, ct_rows):
    rows = figures.fig13_errors(ct_rows)
    text = render_table(
        ["cut threshold", "false judgment", "false positive", "false negative"],
        rows,
        title="Figure 13: errors vs cut threshold (paper terminology: "
        "FN = good peers wrongly cut, FP = bad peers missed)",
    )
    publish(results_dir, "fig13_errors", text)
    # directional claims: FN trend downward, FP trend (weakly) upward;
    # the FP signal comes from the few slow-link agents per run, so allow
    # one count of noise even with trials aggregated
    first, last = ct_rows[0], ct_rows[-1]
    assert last.false_negative < first.false_negative
    assert last.false_positive >= first.false_positive - 1


def test_fig14_recovery(results_dir, ct_rows):
    rows = figures.fig14_recovery(ct_rows)
    text = render_table(
        ["cut threshold", "damage recovery time (min)"],
        [[ct, ("n/a" if math.isnan(v) else round(v, 1))] for ct, v in rows],
        title="Figure 14: damage recovery time vs cut threshold",
    )
    publish(results_dir, "fig14_recovery", text)
    measured = [v for _, v in rows if not math.isnan(v)]
    assert measured, "at least some thresholds should recover"
    assert all(v >= 0 for v in measured)


def test_stabilized_damage_column(results_dir, ct_rows):
    text = render_table(
        ["cut threshold", "stabilized damage (%)"],
        [[r.cut_threshold, round(r.stabilized_damage_pct, 1)] for r in ct_rows],
        title="Figure 12 companion: stabilized damage by cut threshold",
    )
    publish(results_dir, "fig12_stabilized_damage", text)
    assert all(r.stabilized_damage_pct < 60 for r in ct_rows)


def test_bench_one_ct_point(benchmark, scale):
    def run():
        return figures.cut_threshold_sweep(
            scale,
            cut_thresholds=(5.0,),
            minutes=scale.attack_start_min + 8,
            seed=13,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(rows) == 1
