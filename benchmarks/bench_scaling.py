"""Section 3.6 scale claim + engine throughput.

"in a real-world P2P system that usually has about 2 million peers
online at any time, less than one thousand DDoS compromised peers could
stress the system greatly" -- i.e. the damage depends on the agent
*density*, not the absolute count. This bench shows damage at a fixed
0.5% density is roughly scale-invariant across network sizes, which is
what licenses the extrapolation, and measures engine throughput growth.
"""

from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import publish
from repro.experiments.reporting import render_table
from repro.fluid.model import FluidConfig, FluidSimulation
from repro.metrics.damage import damage_rate


def damage_at_scale(n: int, density: float = 0.005, seed: int = 29) -> float:
    agents = max(1, round(density * n))
    base = FluidConfig(n=n, seed=seed, attack_start_min=4)
    clean = FluidSimulation(base)
    clean.run(12)
    attacked = FluidSimulation(replace(base, num_agents=agents))
    attacked.run(12)
    s0 = np.mean([r.success_rate for r in clean.rows[-6:]])
    s1 = np.mean([r.success_rate for r in attacked.rows[-6:]])
    return damage_rate(float(s0), float(min(s1, s0)))


@pytest.fixture(scope="module")
def scaling_rows():
    return [[n, round(damage_at_scale(n), 1)] for n in (500, 1000, 2000, 4000)]


def test_scaling_table(results_dir, scaling_rows):
    text = render_table(
        ["peers", "damage at 0.5% agents (%)"],
        scaling_rows,
        title="Section 3.6: damage vs network size at fixed agent density",
    )
    publish(results_dir, "scaling", text)


def test_damage_density_roughly_scale_invariant(scaling_rows):
    damages = [d for _, d in scaling_rows]
    assert all(d > 10 for d in damages), damages
    # no systematic vanishing with scale: the largest network still takes
    # at least half the damage of the smallest
    assert damages[-1] > 0.4 * damages[0]


def test_bench_minute_cost_by_scale(benchmark):
    """Throughput anchor: one simulated minute at n=4000."""
    sim = FluidSimulation(FluidConfig(n=4000, num_agents=20, seed=29))
    sim.run(2)
    benchmark(sim.step)
