"""Section 3.6 scale claim + engine throughput.

"in a real-world P2P system that usually has about 2 million peers
online at any time, less than one thousand DDoS compromised peers could
stress the system greatly" -- i.e. the damage depends on the agent
*density*, not the absolute count. This bench shows damage at a fixed
0.5% density is roughly scale-invariant across network sizes, which is
what licenses the extrapolation, and measures engine throughput growth.

It also sweeps engine x population for the two message-level backends:
the per-event DES (``message``) and the batched struct-of-arrays engine
(``soa``, registered as backend ``des-soa``). Rows report events/sec and
peak RSS. The N=20,000 message run doubles as the CI smoke gate; the
N=500,000 soa row runs the fig9 attack scenario (BA m=1 topology, the
smallest paper agent density, 2,000 qpm per agent) for a full simulated
attacked minute in one process. Select one engine with ``--engine``.
"""

import multiprocessing
import os
import resource
import time
from dataclasses import replace
from typing import Optional

import numpy as np
import pytest

from benchmarks.conftest import publish
from repro.core.config import DDPoliceConfig
from repro.evidence import EvidenceConfig
from repro.experiments.reporting import render_table
from repro.obs.manifest import build_manifest
from repro.experiments.runner import DESConfig, run_des_experiment
from repro.fluid.model import FluidConfig, FluidSimulation
from repro.metrics.damage import damage_rate
from repro.overlay.network import NetworkConfig
from repro.overlay.soa_network import run_soa_experiment
from repro.overlay.topology import TopologyConfig
from repro.workload.generator import WorkloadConfig


def damage_at_scale(n: int, density: float = 0.005, seed: int = 29) -> float:
    agents = max(1, round(density * n))
    base = FluidConfig(n=n, seed=seed, attack_start_min=4)
    clean = FluidSimulation(base)
    clean.run(12)
    attacked = FluidSimulation(replace(base, num_agents=agents))
    attacked.run(12)
    s0 = np.mean([r.success_rate for r in clean.rows[-6:]])
    s1 = np.mean([r.success_rate for r in attacked.rows[-6:]])
    return damage_rate(float(s0), float(min(s1, s0)))


def des_throughput(n: int, duration_s: float, ttl: int, seed: int = 29) -> dict:
    """One workload-only DES run; wall-clock throughput + peak RSS.

    TTL is reduced below the protocol default of 7 to keep flood sizes
    tractable at paper scale -- the measured quantity is engine + metrics
    overhead per delivered event, which TTL does not change.
    """
    cfg = DESConfig(
        n=n,
        duration_s=duration_s,
        seed=seed,
        topology=TopologyConfig(n=n, seed=seed),
        network=NetworkConfig(default_ttl=ttl),
        workload=WorkloadConfig(queries_per_minute=0.3, seed=seed),
    )
    start = time.perf_counter()
    run = run_des_experiment(cfg)
    wall_s = time.perf_counter() - start
    # ru_maxrss is KB on Linux; good enough cross-run resolution without
    # a third-party dependency
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "engine": "message",
        "n": n,
        "agents": 0,
        "ttl": ttl,
        "sim_s": duration_s,
        "events": run.sim.events_fired,
        "wall_s": wall_s,
        "events_per_s": run.sim.events_fired / wall_s,
        "peak_rss_mb": peak_rss_mb,
        "live_records": len(run.network.query_records),
        "issued": run.network.accounting.totals("all").issued,
        "live_windows": run.network.accounting.live_window_count,
    }


def soa_throughput(
    n: int,
    duration_s: float,
    ttl: int,
    seed: int = 29,
    *,
    num_agents: int = 0,
    attack_start_s: float = 0.0,
    attack_rate_qpm: float = 2_000.0,
    ba_m: Optional[int] = None,
    evidence_backend: Optional[str] = None,
) -> dict:
    """One batched-SoA run; events = deliveries + sparse heap events.

    The SoA engine fires one heap event per wave, so ``sim.events_fired``
    is not comparable to the message DES; delivered messages are the
    common unit (the message DES fires one event per delivery).

    With ``evidence_backend`` given ("exact" | "sketch") the run deploys
    DD-POLICE on that evidence store (docs/SKETCH.md) and reports its
    end-of-run evidence bytes alongside throughput.
    """
    topo = (
        TopologyConfig(n=n, seed=seed)
        if ba_m is None
        else TopologyConfig(n=n, seed=seed, ba_m=ba_m)
    )
    police_kw = {}
    if evidence_backend is not None:
        police_kw = dict(
            defense="ddpolice",
            police=DDPoliceConfig(evidence=EvidenceConfig(backend=evidence_backend)),
        )
    cfg = DESConfig(
        n=n,
        duration_s=duration_s,
        seed=seed,
        topology=topo,
        network=NetworkConfig(default_ttl=ttl, hop_latency_jitter_s=0.0),
        workload=WorkloadConfig(queries_per_minute=0.3, seed=seed),
        num_agents=num_agents,
        attack_start_s=attack_start_s,
        attack_rate_qpm=attack_rate_qpm,
        **police_kw,
    )
    run = run_soa_experiment(cfg)
    events = run.stats.messages_delivered + run.heap_events
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "engine": "soa",
        "n": n,
        "agents": num_agents,
        "ttl": ttl,
        "sim_s": duration_s,
        "events": events,
        "wall_s": run.wall_s,
        "events_per_s": events / run.wall_s,
        "peak_rss_mb": peak_rss_mb,
        "evidence": evidence_backend or "",
        "evidence_bytes": run.evidence_bytes,
        "waves": run.waves_processed,
        "attack_issued": run.accounting.totals("attack").issued,
        "attacked_sim_s": (
            max(0.0, duration_s - attack_start_s) if num_agents else 0.0
        ),
        "live_windows": run.accounting.live_window_count,
    }


#: engine sweep per scale: (n, sim_s, ttl, extra soa kwargs). The bench
#: rows are the committed results/scaling.txt numbers; smoke keeps CI
#: fast. Each row runs in its own spawn child (see ``_isolated``) so
#: its peak-RSS figure is per-row truth.
_FIG9_500K = dict(num_agents=250, attack_start_s=60.0, ba_m=1)
ENGINE_SWEEP = {
    "bench": {
        # 2,000 peers for two+ minute-rolls (shows record retirement
        # kicking in), the paper's 20,000-peer size as the smoke run,
        # then a short ttl=3 anchor for the like-for-like soa speedup
        "message": [
            (2_000, 120.0, 3, {}),
            (20_000, 60.0, 2, {}),
            (20_000, 20.0, 3, {}),
        ],
        # same 2k/20k configs, then scale the message DES cannot reach:
        # 100k workload flood and the 500k fig9 attack (smallest paper
        # density 0.05% -> 250 agents at 2,000 qpm, one attacked minute)
        "soa": [
            (2_000, 120.0, 3, {}),
            (20_000, 60.0, 3, {}),
            (100_000, 60.0, 3, {}),
            (500_000, 125.0, 3, _FIG9_500K),
        ],
    },
    "smoke": {
        "message": [(1_000, 30.0, 3, {})],
        "soa": [
            (1_000, 30.0, 3, {}),
            (20_000, 30.0, 2, {}),
        ],
    },
}
ENGINE_SWEEP["paper"] = ENGINE_SWEEP["bench"]

#: evidence-store comparison (docs/SKETCH.md): the same attacked
#: DD-POLICE run on the exact per-edge windows and on the count-min
#: sketch, spawn-isolated like every other row. Bench runs the paper's
#: n=20,000 (the >= 10x memory claim in bench_sketch_frontier); smoke
#: keeps the lane fast with n=1,000.
_FIG9_20K = dict(num_agents=10, attack_start_s=60.0, ba_m=1)
EVIDENCE_SWEEP = {
    "bench": [
        (20_000, 300.0, 3, dict(_FIG9_20K, evidence_backend="exact")),
        (20_000, 300.0, 3, dict(_FIG9_20K, evidence_backend="sketch")),
    ],
    "smoke": [
        (1_000, 120.0, 3, dict(_FIG9_20K, num_agents=5, evidence_backend="exact")),
        (1_000, 120.0, 3, dict(_FIG9_20K, num_agents=5, evidence_backend="sketch")),
    ],
}
EVIDENCE_SWEEP["paper"] = EVIDENCE_SWEEP["bench"]


def _sweep_plan():
    return ENGINE_SWEEP[os.environ.get("REPRO_SCALE", "bench").lower()]


def _isolated(fn, *args, **kwargs):
    """Run one throughput row in a fresh spawn child.

    ``ru_maxrss`` is a process-lifetime high-water mark, so rows run
    in-process would each report the max of every *earlier* row too;
    a child process makes the peak-RSS column per-row truth.
    """
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        return pool.apply(fn, args, kwargs)


@pytest.fixture(scope="module")
def scaling_rows():
    return [[n, round(damage_at_scale(n), 1)] for n in (500, 1000, 2000, 4000)]


@pytest.fixture(scope="module")
def des_rows(engine_filter):
    if engine_filter == "soa":
        return []
    return [
        _isolated(des_throughput, n, duration_s=sim_s, ttl=ttl)
        for n, sim_s, ttl, _ in _sweep_plan()["message"]
    ]


@pytest.fixture(scope="module")
def soa_rows(engine_filter):
    if engine_filter == "message":
        return []
    return [
        _isolated(soa_throughput, n, duration_s=sim_s, ttl=ttl, **extra)
        for n, sim_s, ttl, extra in _sweep_plan()["soa"]
    ]


@pytest.fixture(scope="module")
def evidence_rows(engine_filter):
    if engine_filter == "message":
        return []
    plan = EVIDENCE_SWEEP[os.environ.get("REPRO_SCALE", "bench").lower()]
    return [
        _isolated(soa_throughput, n, duration_s=sim_s, ttl=ttl, **extra)
        for n, sim_s, ttl, extra in plan
    ]


def _engine_table(rows) -> str:
    return render_table(
        [
            "engine",
            "peers",
            "agents",
            "ttl",
            "sim s",
            "events",
            "events/s",
            "peak RSS MB",
        ],
        [
            [
                r["engine"],
                r["n"],
                r["agents"],
                r["ttl"],
                int(r["sim_s"]),
                r["events"],
                f"{r['events_per_s']:,.0f}",
                round(r["peak_rss_mb"]),
            ]
            for r in rows
        ],
        title=(
            "Engine throughput: per-event message DES vs batched SoA "
            "(workload flood; the 500k soa row is the fig9 attack)"
        ),
    )


def _evidence_table(rows) -> str:
    exact = next(r for r in rows if r["evidence"] == "exact")
    return render_table(
        [
            "evidence",
            "peers",
            "agents",
            "sim s",
            "events/s",
            "peak RSS MB",
            "evidence KiB",
            "vs exact",
        ],
        [
            [
                r["evidence"],
                r["n"],
                r["agents"],
                int(r["sim_s"]),
                f"{r['events_per_s']:,.0f}",
                round(r["peak_rss_mb"]),
                f"{r['evidence_bytes'] / 1024.0:.1f}",
                f"{exact['evidence_bytes'] / r['evidence_bytes']:.1f}x",
            ]
            for r in rows
        ],
        title=(
            "Evidence store: exact per-edge windows vs count-min sketch "
            "(attacked DD-POLICE run, soa engine; docs/SKETCH.md)"
        ),
    )


def test_scaling_table(results_dir, scaling_rows, des_rows, soa_rows, evidence_rows):
    engine_rows = des_rows + soa_rows + evidence_rows
    text = render_table(
        ["peers", "damage at 0.5% agents (%)"],
        scaling_rows,
        title="Section 3.6: damage vs network size at fixed agent density",
    )
    manifest = build_manifest(
        kind="bench-scaling",
        config={
            "density": 0.005,
            "fluid_sizes": [500, 1000, 2000, 4000],
            "fluid_minutes": 12,
            "engine_runs": [
                {
                    "engine": r["engine"],
                    "n": r["n"],
                    "agents": r["agents"],
                    "ttl": r["ttl"],
                    "sim_s": r["sim_s"],
                    "evidence": r.get("evidence", ""),
                }
                for r in engine_rows
            ],
        },
        seed=29,
        tasks=len(scaling_rows) + len(engine_rows),
        duration_s=sum(r["wall_s"] for r in engine_rows),
        counters={
            f"{r['engine']}.events_n{r['n']}_ttl{r['ttl']}"
            + (f"_{r['evidence']}" if r.get("evidence") else ""): r["events"]
            for r in engine_rows
        },
    )
    body = text + "\n" + _engine_table(des_rows + soa_rows)
    if evidence_rows:
        body += "\n" + _evidence_table(evidence_rows)
    publish(results_dir, "scaling", body, manifest=manifest)


def test_des_paper_scale_smoke(des_rows):
    """CI gate: the paper's 20,000-peer network runs in the DES."""
    if not des_rows:
        pytest.skip("message engine deselected via --engine")
    big = next((r for r in des_rows if r["n"] == 20_000 and r["ttl"] == 2), None)
    if big is None:
        pytest.skip("paper-scale message row not in this scale's sweep")
    small = des_rows[0]
    assert big["events"] > 100_000  # the run actually simulated traffic
    assert big["events_per_s"] > 1_000  # loose floor; CI machines vary
    # bounded-memory claim: never more than grace+1 unfinalized windows
    assert big["live_windows"] <= 2
    assert small["live_windows"] <= 2
    # the 2-minute run saw retirement: settled window-1 records are gone,
    # so the live table holds well under the full issued count
    assert small["live_records"] < 0.75 * small["issued"]


def test_soa_speedup_vs_message_des(des_rows, soa_rows):
    """Acceptance gate: >= 10x events/s over the message DES at n=20,000.

    Compared like for like -- same population, topology seed, workload,
    and TTL; only the engine differs.
    """
    msg = next((r for r in des_rows if r["n"] == 20_000 and r["ttl"] == 3), None)
    soa = next((r for r in soa_rows if r["n"] == 20_000 and r["ttl"] == 3), None)
    if msg is None or soa is None:
        pytest.skip("20k ttl=3 anchor rows not in this sweep (scale/--engine)")
    speedup = soa["events_per_s"] / msg["events_per_s"]
    assert speedup >= 10.0, (
        f"soa {soa['events_per_s']:,.0f} ev/s vs "
        f"message {msg['events_per_s']:,.0f} ev/s = {speedup:.1f}x"
    )


def test_soa_smoke(soa_rows):
    """The batched engine runs a 20,000-peer flood in any CI lane."""
    if not soa_rows:
        pytest.skip("soa engine deselected via --engine")
    big = max(soa_rows, key=lambda r: r["n"])
    assert big["n"] >= 20_000
    assert big["events"] > 50_000
    assert big["live_windows"] <= 2
    assert big["waves"] > 0


def test_soa_fig9_attack_at_half_million(soa_rows):
    """Acceptance gate: >= 1 simulated attacked minute at n >= 500,000."""
    big = next((r for r in soa_rows if r["n"] >= 500_000), None)
    if big is None:
        pytest.skip("500k fig9 row not in this sweep (scale/--engine)")
    assert big["agents"] >= 250  # the smallest paper density at 500k
    assert big["attacked_sim_s"] >= 60.0
    assert big["attack_issued"] > 0  # the agents actually flooded
    assert big["events"] > 10_000_000


def test_sketch_evidence_memory_reduction(evidence_rows):
    """The count-min store beats exact per-edge windows >= 10x at n=20,000.

    Exact evidence grows with the edge count (two int64 minute cells per
    directed edge); the sketch is a fixed 2 x depth x width int32 budget.
    The full claim (all attackers still convicted) is gated in
    bench_sketch_frontier; this row tracks the memory/throughput side in
    the scaling table. Smoke runs n=1,000, where the fixed sketch budget
    has nothing to amortize -- skip the ratio there.
    """
    if not evidence_rows:
        pytest.skip("soa engine deselected via --engine")
    exact = next(r for r in evidence_rows if r["evidence"] == "exact")
    sketch = next(r for r in evidence_rows if r["evidence"] == "sketch")
    assert exact["evidence_bytes"] > 0 and sketch["evidence_bytes"] > 0
    if exact["n"] < 20_000:
        pytest.skip("memory-reduction ratio is a bench/paper-scale claim")
    assert exact["evidence_bytes"] >= 10 * sketch["evidence_bytes"], (
        exact["evidence_bytes"],
        sketch["evidence_bytes"],
    )


def test_damage_density_roughly_scale_invariant(scaling_rows):
    damages = [d for _, d in scaling_rows]
    assert all(d > 10 for d in damages), damages
    # no systematic vanishing with scale: the largest network still takes
    # at least half the damage of the smallest
    assert damages[-1] > 0.4 * damages[0]


def test_bench_minute_cost_by_scale(benchmark):
    """Throughput anchor: one simulated minute at n=4000."""
    sim = FluidSimulation(FluidConfig(n=4000, num_agents=20, seed=29))
    sim.run(2)
    benchmark(sim.step)
