"""Section 3.6 scale claim + engine throughput.

"in a real-world P2P system that usually has about 2 million peers
online at any time, less than one thousand DDoS compromised peers could
stress the system greatly" -- i.e. the damage depends on the agent
*density*, not the absolute count. This bench shows damage at a fixed
0.5% density is roughly scale-invariant across network sizes, which is
what licenses the extrapolation, and measures engine throughput growth.

It also measures the message-level (DES) path at paper scale: with the
incremental metrics pipeline (no per-minute record scan, settled records
retired after the grace window) a 20,000-peer network -- the paper's
simulation size -- runs in-process with bounded memory. The DES rows
report events/sec and peak RSS; the N=20,000 run doubles as the CI
smoke gate.
"""

import resource
import time
from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import publish
from repro.experiments.reporting import render_table
from repro.obs.manifest import build_manifest
from repro.experiments.runner import DESConfig, run_des_experiment
from repro.fluid.model import FluidConfig, FluidSimulation
from repro.metrics.damage import damage_rate
from repro.overlay.network import NetworkConfig
from repro.overlay.topology import TopologyConfig
from repro.workload.generator import WorkloadConfig


def damage_at_scale(n: int, density: float = 0.005, seed: int = 29) -> float:
    agents = max(1, round(density * n))
    base = FluidConfig(n=n, seed=seed, attack_start_min=4)
    clean = FluidSimulation(base)
    clean.run(12)
    attacked = FluidSimulation(replace(base, num_agents=agents))
    attacked.run(12)
    s0 = np.mean([r.success_rate for r in clean.rows[-6:]])
    s1 = np.mean([r.success_rate for r in attacked.rows[-6:]])
    return damage_rate(float(s0), float(min(s1, s0)))


def des_throughput(n: int, duration_s: float, ttl: int, seed: int = 29) -> dict:
    """One workload-only DES run; wall-clock throughput + peak RSS.

    TTL is reduced below the protocol default of 7 to keep flood sizes
    tractable at paper scale -- the measured quantity is engine + metrics
    overhead per delivered event, which TTL does not change.
    """
    cfg = DESConfig(
        n=n,
        duration_s=duration_s,
        seed=seed,
        topology=TopologyConfig(n=n, seed=seed),
        network=NetworkConfig(default_ttl=ttl),
        workload=WorkloadConfig(queries_per_minute=0.3, seed=seed),
    )
    start = time.perf_counter()
    run = run_des_experiment(cfg)
    wall_s = time.perf_counter() - start
    # ru_maxrss is KB on Linux; good enough cross-run resolution without
    # a third-party dependency
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "n": n,
        "ttl": ttl,
        "sim_s": duration_s,
        "events": run.sim.events_fired,
        "wall_s": wall_s,
        "events_per_s": run.sim.events_fired / wall_s,
        "peak_rss_mb": peak_rss_mb,
        "live_records": len(run.network.query_records),
        "issued": run.network.accounting.totals("all").issued,
        "live_windows": run.network.accounting.live_window_count,
    }


@pytest.fixture(scope="module")
def scaling_rows():
    return [[n, round(damage_at_scale(n), 1)] for n in (500, 1000, 2000, 4000)]


@pytest.fixture(scope="module")
def des_rows():
    # 2,000 peers for two+ minute-rolls (shows record retirement kicking
    # in), then the paper's 20,000-peer size as the smoke run
    return [
        des_throughput(2_000, duration_s=120.0, ttl=3),
        des_throughput(20_000, duration_s=60.0, ttl=2),
    ]


def _des_table(des_rows) -> str:
    return render_table(
        ["peers", "ttl", "sim s", "events", "events/s", "peak RSS MB", "live records"],
        [
            [
                r["n"],
                r["ttl"],
                int(r["sim_s"]),
                r["events"],
                f"{r['events_per_s']:,.0f}",
                round(r["peak_rss_mb"]),
                r["live_records"],
            ]
            for r in des_rows
        ],
        title="DES throughput (workload-only, incremental metrics path)",
    )


def test_scaling_table(results_dir, scaling_rows, des_rows):
    text = render_table(
        ["peers", "damage at 0.5% agents (%)"],
        scaling_rows,
        title="Section 3.6: damage vs network size at fixed agent density",
    )
    manifest = build_manifest(
        kind="bench-scaling",
        config={
            "density": 0.005,
            "fluid_sizes": [500, 1000, 2000, 4000],
            "fluid_minutes": 12,
            "des_runs": [
                {"n": r["n"], "ttl": r["ttl"], "sim_s": r["sim_s"]}
                for r in des_rows
            ],
        },
        seed=29,
        tasks=len(scaling_rows) + len(des_rows),
        duration_s=sum(r["wall_s"] for r in des_rows),
        counters={
            f"des.events_n{r['n']}": r["events"] for r in des_rows
        },
    )
    publish(
        results_dir,
        "scaling",
        text + "\n" + _des_table(des_rows),
        manifest=manifest,
    )


def test_des_paper_scale_smoke(des_rows):
    """CI gate: the paper's 20,000-peer network runs in the DES."""
    small, big = des_rows
    assert big["n"] == 20_000
    assert big["events"] > 100_000  # the run actually simulated traffic
    assert big["events_per_s"] > 1_000  # loose floor; CI machines vary
    # bounded-memory claim: never more than grace+1 unfinalized windows
    assert big["live_windows"] <= 2
    assert small["live_windows"] <= 2
    # the 2-minute run saw retirement: settled window-1 records are gone,
    # so the live table holds well under the full issued count
    assert small["live_records"] < 0.75 * small["issued"]


def test_damage_density_roughly_scale_invariant(scaling_rows):
    damages = [d for _, d in scaling_rows]
    assert all(d > 10 for d in damages), damages
    # no systematic vanishing with scale: the largest network still takes
    # at least half the damage of the smallest
    assert damages[-1] > 0.4 * damages[0]


def test_bench_minute_cost_by_scale(benchmark):
    """Throughput anchor: one simulated minute at n=4000."""
    sim = FluidSimulation(FluidConfig(n=4000, num_agents=20, seed=29))
    sim.run(2)
    benchmark(sim.step)
