"""Section 3.7.1: neighbor-list exchange frequency study.

Paper conclusions: periodic with s <= 2 minutes performs about as well as
faster schedules; s >= 4-5 minutes degrades judgment accuracy; the
event-driven policy costs more overhead in highly dynamic networks. The
paper (and this default) settles on periodic s = 2 min.
"""

import pytest

from benchmarks.conftest import publish
from repro.experiments import figures
from repro.experiments.reporting import render_table


@pytest.fixture(scope="module")
def study(scale):
    return figures.exchange_frequency_study(scale, seed=17)


def test_exchange_frequency_table(results_dir, study):
    text = render_table(
        ["policy", "false judgment", "control overhead (k msgs/min)",
         "stabilized damage (%)"],
        [
            [r.policy, r.false_judgment, round(r.control_overhead_kqpm, 2),
             round(r.stabilized_damage_pct, 1)]
            for r in study
        ],
        title="Section 3.7.1: neighbor-list exchange policy comparison",
    )
    publish(results_dir, "exchange_frequency", text)
    by_policy = {r.policy: r for r in study}
    # long periods hurt judgment accuracy vs the 2-minute default
    assert (
        by_policy["periodic-10min"].false_judgment
        >= by_policy["periodic-2min"].false_judgment * 0.8
    )


def test_event_driven_overhead(study):
    by_policy = {r.policy: r for r in study}
    # in a highly dynamic network the event-driven policy re-publishes on
    # every churn event; overhead must be nonzero
    assert by_policy["event-driven"].control_overhead_kqpm > 0


def test_bench_exchange_point(benchmark, scale):
    def run():
        return figures.exchange_frequency_study(
            scale, periods_min=(2,), minutes=scale.attack_start_min + 6, seed=17
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(rows) == 2
