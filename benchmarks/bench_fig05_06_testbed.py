"""Figures 5 & 6: the A->B->C testbed capacity sweep.

Paper anchors: drops begin ~15,000 queries/min (Fig 5 knee); 47% of
queries dropped at the agent maximum of ~29,000/min (Fig 6 endpoint).
"""

import pytest

from benchmarks.conftest import publish
from repro.experiments.figures import fig5_processed_vs_sent, fig6_drop_rate_vs_density
from repro.experiments.reporting import render_table
from repro.testbed.pipeline import run_rate_sweep


def test_fig5_processed_vs_sent(results_dir):
    pts = fig5_processed_vs_sent()
    text = render_table(
        ["sent (q/min)", "processed (q/min)"],
        [[int(x), int(y)] for x, y in pts],
        title="Figure 5: queries sent vs processed at peer B",
    )
    publish(results_dir, "fig05_processed", text)
    knee = next(x for x, y in pts if y < x)
    assert 15_000 < knee <= 17_000


def test_fig6_drop_rate(results_dir):
    pts = fig6_drop_rate_vs_density()
    text = render_table(
        ["received (q/min)", "drop rate (%)"],
        [[int(x), round(y, 1)] for x, y in pts],
        title="Figure 6: query drop rate vs query density at peer B",
    )
    publish(results_dir, "fig06_droprate", text)
    assert pts[-1][1] == pytest.approx(47.0, abs=1.5)


def test_bench_rate_sweep(benchmark):
    points = benchmark(run_rate_sweep)
    assert len(points) == 29
