"""Figures 9-11: traffic cost, response time, success rate vs #agents.

The shared sweep runs, for each agent density the paper uses
(10..200 agents per 20,000 peers), three variants: no attack, attack
without DD-POLICE, attack with DD-POLICE (CT=5, 2-minute exchange).

Paper anchors (shape, not absolute numbers):
* Fig 9 -- 10-20 agents roughly double the traffic; ~100 agents push it
  an order of magnitude up; DD-POLICE stays near the no-attack cost with
  a small control overhead.
* Fig 10 -- ~100 agents raise mean response time ~2.4x.
* Fig 11 -- up to ~90% of queries fail under attack; DD-POLICE restores
  success close to the no-attack line.
"""

import pytest

from benchmarks.conftest import publish
from repro.experiments import figures
from repro.experiments.reporting import render_table


@pytest.fixture(scope="module")
def sweep(scale):
    return figures.agent_sweep(scale, seed=7)


def test_fig9_traffic_cost(results_dir, sweep):
    rows = figures.fig9_traffic_cost(sweep)
    text = render_table(
        ["agents (paper-equiv)", "under DDoS", "DDoS + DD-POLICE", "no DDoS"],
        [[a, round(x, 1), round(y, 1), round(z, 1)] for a, x, y, z in rows],
        title="Figure 9: average traffic cost (10^3 messages/min)",
    )
    publish(results_dir, "fig09_traffic", text)
    # attack inflates traffic; DD-POLICE pulls it back toward baseline
    for _, attack, defended, baseline in rows:
        assert attack > 1.5 * baseline
        assert defended < attack
    # smallest density already roughly doubles traffic
    assert rows[0][1] > 2 * rows[0][3]


def test_fig10_response_time(results_dir, sweep):
    rows = figures.fig10_response_time(sweep)
    text = render_table(
        ["agents (paper-equiv)", "under DDoS", "DDoS + DD-POLICE", "no DDoS"],
        [[a, round(x, 3), round(y, 3), round(z, 3)] for a, x, y, z in rows],
        title="Figure 10: average response time (s)",
    )
    publish(results_dir, "fig10_response", text)
    # response degrades with the heaviest attack, DD-POLICE recovers
    heaviest = rows[-1]
    assert heaviest[1] > 1.3 * heaviest[3]
    assert heaviest[2] < heaviest[1]


def test_fig11_success_rate(results_dir, sweep):
    rows = figures.fig11_success_rate(sweep)
    text = render_table(
        ["agents (paper-equiv)", "under DDoS", "DDoS + DD-POLICE", "no DDoS"],
        [[a, round(x, 1), round(y, 1), round(z, 1)] for a, x, y, z in rows],
        title="Figure 11: average success rate (%)",
    )
    publish(results_dir, "fig11_success", text)
    for _, attack, defended, baseline in rows:
        assert attack < baseline
        assert defended > attack
    # heaviest attack wipes out most of the success rate
    assert rows[-1][1] < 0.6 * rows[-1][3]
    # DD-POLICE holds success within 20% of the clean baseline
    assert rows[-1][2] > 0.7 * rows[-1][3]


def test_bench_one_attack_minute(benchmark, scale):
    """Per-minute simulation cost at the configured scale."""
    from repro.fluid.model import FluidConfig, FluidSimulation

    sim = FluidSimulation(
        FluidConfig(n=scale.n_peers, num_agents=scale.agent_counts()[2], seed=7)
    )
    sim.run(2)  # warm
    benchmark(sim.step)
