"""Parallel executor + fluid hot-path performance evidence.

Two measurements back the executor work:

1. **Sweep wall-clock, serial vs workers.** A 16-task (4 agent counts x
   4 trials) fluid sweep dispatched through :func:`repro.exec.pmap` at 1,
   2 and 4 workers. The three runs must return *exactly* equal
   ``SweepPoint`` lists -- determinism lives in the per-task seeds, so
   the schedule cannot leak into the numbers. Speedup is only asserted
   when the machine actually has >= 4 CPUs: on fewer cores process
   parallelism cannot beat serial (spawn + pickling overhead with zero
   extra compute), and the table records the honest numbers either way.

2. **Fluid hot-path, before vs after.** One paper-scale minute loop
   (n = 20,000, 100 agents) timed under :func:`legacy_hot_path` (the
   pre-optimization per-minute rebuild/mask-scan path) and under the
   cached edge-array + CSR-slice + vectorized-metrics path, asserting
   the rows stay bit-identical and throughput improves >= 1.4x.
"""

import os
import time
from dataclasses import replace

from benchmarks.conftest import publish
from repro.experiments.reporting import render_table
from repro.experiments.sweeps import steady_success, steady_traffic_k, sweep
from repro.fluid.model import FluidConfig, FluidSimulation, legacy_hot_path
from repro.obs.manifest import build_manifest

SWEEP_BASE = FluidConfig(n=400, seed=5, churn_warmup_min=4, attack_start_min=2)
SWEEP_GRID = {"num_agents": [0, 2, 4, 8]}
SWEEP_TRIALS = 4  # 4 combos x 4 trials = 16 tasks
SWEEP_MINUTES = 10
SWEEP_METRICS = {"succ": steady_success(6), "traffic": steady_traffic_k(6)}

HOT_PATH_CFG = FluidConfig(
    n=20_000, seed=5, num_agents=100, attack_start_min=2, churn_warmup_min=3
)
HOT_PATH_MINUTES = 8


def _timed_sweep(workers):
    start = time.perf_counter()
    points = sweep(
        SWEEP_BASE,
        SWEEP_GRID,
        minutes=SWEEP_MINUTES,
        metrics=SWEEP_METRICS,
        trials=SWEEP_TRIALS,
        seed0=3,
        workers=workers,
    )
    return points, time.perf_counter() - start


def _timed_run(cfg, minutes):
    sim = FluidSimulation(cfg)
    start = time.perf_counter()
    sim.run(minutes)
    return sim, time.perf_counter() - start


def test_parallel_sweep_and_hot_path(benchmark, results_dir):
    cores = os.cpu_count() or 1
    tasks = len(SWEEP_GRID["num_agents"]) * SWEEP_TRIALS

    serial, wall_1 = benchmark.pedantic(
        lambda: _timed_sweep(1), rounds=1, iterations=1
    )
    two, wall_2 = _timed_sweep(2)
    four, wall_4 = _timed_sweep(4)
    # the executor's core contract: the schedule never leaks into results
    assert serial == two == four

    fast_sim, fast_s = _timed_run(HOT_PATH_CFG, HOT_PATH_MINUTES)
    with legacy_hot_path():
        legacy_sim, legacy_s = _timed_run(HOT_PATH_CFG, HOT_PATH_MINUTES)
    assert fast_sim.rows == legacy_sim.rows
    hot_speedup = legacy_s / fast_s
    assert hot_speedup >= 1.4, f"hot-path speedup only {hot_speedup:.2f}x"

    sweep_table = render_table(
        ["workers", "wall (s)", "speedup", "results"],
        [
            [1, round(wall_1, 2), "1.00x", "reference"],
            [2, round(wall_2, 2), f"{wall_1 / wall_2:.2f}x", "identical"],
            [4, round(wall_4, 2), f"{wall_1 / wall_4:.2f}x", "identical"],
        ],
        title=(
            f"parallel sweep: {tasks} tasks "
            f"(n={SWEEP_BASE.n}, {SWEEP_MINUTES} min) on {cores} CPU core(s)"
        ),
    )
    hot_table = render_table(
        ["hot path", "wall (s)", "min/s", "speedup"],
        [
            ["legacy", round(legacy_s, 2),
             round(HOT_PATH_MINUTES / legacy_s, 2), "1.00x"],
            ["cached+vectorized", round(fast_s, 2),
             round(HOT_PATH_MINUTES / fast_s, 2), f"{hot_speedup:.2f}x"],
        ],
        title=(
            f"fluid minute loop: n={HOT_PATH_CFG.n:,}, "
            f"{HOT_PATH_CFG.num_agents} agents, {HOT_PATH_MINUTES} minutes"
        ),
    )
    note = (
        f"host: {cores} CPU core(s). Worker speedup requires real cores; "
        "on a single-core host the spawn/pickling overhead makes the "
        "parallel path slower, while results stay bit-identical (asserted "
        "above). Rows of the legacy and optimized fluid paths are "
        "bit-identical (asserted above)."
    )
    manifest = build_manifest(
        kind="bench-parallel",
        config={
            "sweep_base": SWEEP_BASE,
            "grid": SWEEP_GRID,
            "trials": SWEEP_TRIALS,
            "minutes": SWEEP_MINUTES,
            "hot_path_cfg": HOT_PATH_CFG,
            "hot_path_minutes": HOT_PATH_MINUTES,
        },
        seed=3,
        seed_derivation=["trial", "<t>"],
        workers=4,
        tasks=tasks,
        duration_s=wall_1 + wall_2 + wall_4 + fast_s + legacy_s,
        extra={"cores": cores, "hot_speedup": round(hot_speedup, 3)},
    )
    publish(
        results_dir,
        "parallel",
        sweep_table + "\n\n" + hot_table + "\n\n" + note,
        manifest=manifest,
    )

    if cores >= 4:
        assert wall_4 < wall_1 / 2.5, (
            f"4-worker speedup only {wall_1 / wall_4:.2f}x on {cores} cores"
        )


def test_chunked_dispatch_handles_uneven_grids(benchmark, results_dir):
    """Odd task counts (not divisible by workers*chunks) reassemble
    correctly -- guards the chunk-bounds math at bench scale."""
    base = replace(SWEEP_BASE, n=300)
    odd = benchmark.pedantic(
        lambda: sweep(
            base,
            {"num_agents": [0, 1, 3]},
            minutes=6,
            metrics={"succ": steady_success(4)},
            trials=3,  # 9 tasks across 4 workers -> ragged chunks
            seed0=3,
            workers=4,
        ),
        rounds=1,
        iterations=1,
    )
    ref = sweep(
        base,
        {"num_agents": [0, 1, 3]},
        minutes=6,
        metrics={"succ": steady_success(4)},
        trials=3,
        seed0=3,
        workers=1,
    )
    assert odd == ref
    assert len(odd) == 3
