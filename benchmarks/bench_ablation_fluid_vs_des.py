"""Ablation: fluid engine accuracy against the message-level DES.

The large-scale experiments run on the fluid engine (DESIGN.md section
1.1 substitution #3); this bench quantifies the substitution error on a
static overlay both engines can run.
"""

import numpy as np
import pytest

from benchmarks.conftest import publish
from repro.experiments.reporting import render_table
from repro.fluid.coverage import novelty_schedule
from repro.fluid.flows import build_edge_arrays, propagate_flows
from repro.overlay.network import NetworkConfig, OverlayNetwork
from repro.overlay.topology import TopologyConfig, generate_topology
from repro.simkit.engine import Simulator
from repro.simkit.rng import RngRegistry
from repro.workload.generator import QueryWorkload, WorkloadConfig


def des_messages_per_min(n: int, rate_qpm: float, seed: int, minutes: float = 5.0):
    topo = generate_topology(TopologyConfig(n=n, ba_m=2, seed=seed))
    sim = Simulator()
    net = OverlayNetwork(
        sim,
        topo,
        config=NetworkConfig(hop_latency_jitter_s=0.0, seed=seed),
        rng_registry=RngRegistry(seed),
    )
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=rate_qpm, seed=seed))
    wl.start()
    sim.run(until=minutes * 60.0)
    return topo, net.stats.query_messages / minutes


def fluid_messages_per_min(topo, rate_qpm: float):
    n = topo.n
    adj = {u: set(vs) for u, vs in enumerate(topo.adjacency)}
    src, dst, rev = build_edge_arrays(adj)
    sigma = novelty_schedule(topo.degrees(), 7, n=n)
    flow = propagate_flows(
        src,
        dst,
        rev,
        n,
        good_rate=np.full(n, rate_qpm),
        attack_edge_inject=np.zeros(len(src)),
        capacity=np.full(n, 1e12),
        ttl=7,
        sigma=sigma,
    )
    return flow.total_messages_per_min


@pytest.mark.parametrize("n", [40, 60, 100])
def test_fluid_within_model_error(n):
    topo, des = des_messages_per_min(n, rate_qpm=6.0, seed=5)
    fluid = fluid_messages_per_min(topo, 6.0)
    assert 0.5 < fluid / des < 1.6, f"n={n}: fluid/DES = {fluid / des:.2f}"


def test_fluid_vs_des_table(results_dir):
    rows = []
    for n in (40, 60, 100):
        topo, des = des_messages_per_min(n, rate_qpm=6.0, seed=5)
        fluid = fluid_messages_per_min(topo, 6.0)
        rows.append([n, int(des), int(fluid), round(fluid / des, 2)])
    text = render_table(
        ["peers", "DES msgs/min", "fluid msgs/min", "ratio"],
        rows,
        title="Ablation: fluid-engine message volume vs message-level DES",
    )
    publish(results_dir, "ablation_fluid_vs_des", text)


def test_bench_des_minute(benchmark):
    """Cost of one simulated minute in the DES at n=60 (why the paper
    scale needs the fluid engine)."""
    topo = generate_topology(TopologyConfig(n=60, ba_m=2, seed=5))

    def one_minute():
        sim = Simulator()
        net = OverlayNetwork(
            sim,
            topo,
            config=NetworkConfig(hop_latency_jitter_s=0.0, seed=5),
            rng_registry=RngRegistry(5),
        )
        wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=6.0, seed=5))
        wl.start()
        sim.run(until=60.0)
        return net.stats.query_messages

    msgs = benchmark.pedantic(one_minute, rounds=1, iterations=1)
    assert msgs > 0
