"""Figure 12: damage rate over time, DD-POLICE-{3,7,10} vs no defense.

Paper anchors: without DD-POLICE the damage plateaus high; DD-POLICE-3
converges fastest but with a non-zero floor (good peers misjudged);
DD-POLICE-7 reaches the lowest floor; DD-POLICE-10 converges slowest.
"""

import pytest

from benchmarks.conftest import publish
from repro.experiments import figures
from repro.experiments.reporting import render_table


@pytest.fixture(scope="module")
def timelines(scale):
    return figures.damage_timelines(
        scale, cut_thresholds=(3.0, 7.0, 10.0), seed=11, trials=3
    )


def test_fig12_damage_over_time(results_dir, timelines, scale):
    header = ["minute"] + [t.label for t in timelines]
    rows = []
    for i, minute in enumerate(timelines[0].minutes):
        rows.append([minute] + [round(t.damage_pct[i], 1) for t in timelines])
    text = render_table(
        header, rows, title="Figure 12: damage rate (%) over time, 0.5% agents"
    )
    publish(results_dir, "fig12_damage", text)

    undefended = timelines[0]
    post = [
        d
        for m, d in zip(undefended.minutes, undefended.damage_pct)
        if m > scale.attack_start_min
    ]
    assert max(post) > 20.0  # the attack hurts
    # every DD-POLICE variant beats no-defense in the tail
    tail_undef = sum(undefended.damage_pct[-5:])
    for tl in timelines[1:]:
        assert sum(tl.damage_pct[-5:]) < tail_undef


def test_fig12_convergence(timelines, scale):
    """DD-POLICE pulls damage down within a few minutes of the attack."""
    for tl in timelines[1:]:
        after = [
            d
            for m, d in zip(tl.minutes, tl.damage_pct)
            if m >= scale.attack_start_min + 5
        ]
        undef_after = [
            d
            for m, d in zip(timelines[0].minutes, timelines[0].damage_pct)
            if m >= scale.attack_start_min + 5
        ]
        assert sum(after) / len(after) < 0.7 * (sum(undef_after) / len(undef_after))


def test_bench_damage_timeline(benchmark, scale):
    def run():
        return figures.damage_timelines(
            scale,
            cut_thresholds=(5.0,),
            minutes=scale.attack_start_min + 6,
            seed=11,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result) == 2
