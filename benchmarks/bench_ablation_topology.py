"""Ablation: topology sensitivity of attack impact and defense.

The paper evaluates on BRITE heavy-tailed topologies; this bench
checks how much the headline result depends on that choice by
re-running the 0.5%-agent scenario on Waxman and Erdos-Renyi graphs
with the same mean degree.
"""

from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import publish
from repro.experiments.reporting import render_table
from repro.fluid.model import FluidConfig, FluidSimulation
from repro.overlay.topology import TopologyConfig


def run_model(model: str, n: int, defended: bool, seed: int = 31):
    agents = max(1, round(0.005 * n))
    cfg = FluidConfig(
        n=n,
        topology=TopologyConfig(n=n, model=model, seed=seed),
        num_agents=agents,
        attack_start_min=5,
        defense="ddpolice" if defended else "none",
        seed=seed,
    )
    sim = FluidSimulation(cfg)
    sim.run(16)
    tail = [r.success_rate for r in sim.rows if r.minute >= 10]
    return float(np.mean(tail))


@pytest.fixture(scope="module")
def topology_rows(scale):
    n = min(scale.n_peers, 1000)  # Waxman generation is O(n^2)
    rows = []
    for model in ("ba", "waxman", "random", "two_tier"):
        baseline_cfg = FluidConfig(
            n=n, topology=TopologyConfig(n=n, model=model, seed=31), seed=31
        )
        baseline = FluidSimulation(baseline_cfg)
        baseline.run(16)
        base = float(np.mean([r.success_rate for r in baseline.rows if r.minute >= 10]))
        attacked = run_model(model, n, defended=False)
        defended = run_model(model, n, defended=True)
        rows.append([
            model,
            round(100 * base, 1),
            round(100 * attacked, 1),
            round(100 * defended, 1),
        ])
    return rows


def test_topology_sensitivity_table(results_dir, topology_rows):
    text = render_table(
        ["topology", "success % (clean)", "success % (attacked)",
         "success % (DD-POLICE)"],
        topology_rows,
        title="Ablation: topology family vs attack impact (0.5% agents)",
    )
    publish(results_dir, "ablation_topology", text)


def test_result_holds_across_topologies(topology_rows):
    """The qualitative claim must not be an artifact of the BA graphs."""
    for model, clean, attacked, defended in topology_rows:
        assert attacked < clean, model
        assert defended > attacked, model


def test_bench_waxman_generation(benchmark):
    from repro.overlay.topology import generate_topology

    cfg = TopologyConfig(n=500, model="waxman", seed=31)
    topo = benchmark.pedantic(lambda: generate_topology(cfg), rounds=1, iterations=1)
    assert topo.is_connected()
