"""Fault-robustness sweep: control-plane loss x fail-stop crashes.

Not a paper figure -- a robustness study of the evidence-collection
rule. The paper-literal Section 3.3 rule ("missing report => assume 0")
turns every lost Neighbor_Traffic message into phantom evidence that the
suspect issued the traffic itself, so control-plane loss manufactures
false negatives (good forwarders cut). The hardened profile (bounded
retries + report quorum with one window extension + neighbor-list
retransmission, all off by default) recovers most of them while leaving
the fault-free behavior untouched.

The sweep itself is the registered ``fault-sweep`` spec
(:mod:`repro.experiments.library`); this module publishes its table and
asserts the robustness claims against its points.
"""

import os

import pytest

from benchmarks.conftest import publish
from repro.experiments.library import run_spec
from repro.experiments.sweeps import fault_sweep

SEED = 23  # the registered fault-sweep spec's seed


@pytest.fixture(scope="module")
def run():
    scale_name = os.environ.get("REPRO_SCALE", "bench").lower()
    return run_spec("fault-sweep", scale=scale_name)


@pytest.fixture(scope="module")
def spec(run):
    return run.spec.faults


@pytest.fixture(scope="module")
def points(run):
    return run.data


def _total_fn(points, profile, min_loss):
    return sum(
        p.false_negative * p.trials
        for p in points
        if p.profile == profile and p.loss >= min_loss
    )


def test_fault_sweep_table(results_dir, run, spec, points):
    assert run.spec.seed == SEED
    publish(results_dir, "fault_sweep", run.tables["fault_sweep"], manifest=run.manifest)
    assert len(points) == (
        len(spec.loss_fractions) * len(spec.crash_counts) * 2
    )


def test_clean_runs_have_no_false_negatives(points):
    # With no faults injected, neither profile cuts good peers: the
    # hardening must be inert when the network behaves.
    for p in points:
        if p.loss == 0.0 and p.crashes == 0:
            assert p.false_negative == 0.0, p


def test_hardening_beats_assume_zero_under_loss(points):
    # The headline claim: at >= 20% control-plane loss the paper-literal
    # rule produces strictly more false negatives than quorum + retry.
    fn_paper = _total_fn(points, "paper", min_loss=0.2)
    fn_hardened = _total_fn(points, "hardened", min_loss=0.2)
    assert fn_paper > fn_hardened, (fn_paper, fn_hardened)


def test_loss_manufactures_false_negatives_for_paper_rule(points):
    # Sanity on the mechanism itself: the paper rule's FN count grows
    # from (near) zero to positive as control loss is injected.
    fn_clean = _total_fn(points, "paper", min_loss=0.0) - _total_fn(
        points, "paper", min_loss=0.1
    )
    fn_lossy = _total_fn(points, "paper", min_loss=0.2)
    assert fn_lossy > fn_clean


def test_bench_fault_point(benchmark, spec):
    from dataclasses import replace

    tiny = replace(
        spec, loss_fractions=(0.3,), crash_counts=(0,), trials=1
    )

    def run():
        return fault_sweep(tiny, seed0=SEED)

    pts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(pts) == 2
