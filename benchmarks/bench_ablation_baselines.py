"""Ablation: DD-POLICE vs the naive rate cutoff and load balancing.

The paper argues (Section 2.1) that disconnecting any high-rate neighbor
is dangerous because good forwarders look like attackers, and
(Section 4) that the load-balancing defense of [21] degrades as agents
multiply. This bench quantifies both claims.
"""

from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import publish
from repro.experiments.reporting import render_table
from repro.fluid.model import FluidConfig, FluidSimulation


@pytest.fixture(scope="module")
def comparison(scale):
    agents = max(1, round(0.005 * scale.n_peers))
    base = FluidConfig(
        n=scale.n_peers, seed=23, num_agents=agents,
        attack_start_min=scale.attack_start_min,
    )
    out = {}
    for label, defense in (("none", "none"), ("ddpolice", "ddpolice"), ("naive", "naive")):
        sim = FluidSimulation(replace(base, defense=defense))
        sim.run(scale.sim_minutes)
        tail = [r for r in sim.rows if r.minute >= scale.attack_start_min + 4]
        out[label] = {
            "success": float(np.mean([r.success_rate for r in tail])),
            "sim": sim,
        }
    return out


def test_baseline_comparison_table(results_dir, comparison):
    rows = []
    for label in ("none", "ddpolice", "naive"):
        entry = comparison[label]
        sim = entry["sim"]
        if label == "none":
            fn = fp = "-"
        else:
            err = sim.error_counts()
            fn, fp = err.false_negative, err.false_positive
        rows.append([label, round(100 * entry["success"], 1), fn, fp])
    text = render_table(
        ["defense", "success (%)", "good peers cut", "agents missed"],
        rows,
        title="Ablation: defense comparison at 0.5% compromised peers",
    )
    publish(results_dir, "ablation_baselines", text)


def test_ddpolice_beats_no_defense(comparison):
    assert comparison["ddpolice"]["success"] > comparison["none"]["success"]


def test_ddpolice_cuts_fewer_good_peers_than_naive(comparison):
    dd = comparison["ddpolice"]["sim"].error_counts()
    nv = comparison["naive"]["sim"].error_counts()
    assert dd.false_negative < nv.false_negative


def test_load_balancing_survival_small_scale():
    """DES-scale check of the [21] baseline: it sheds attack load without
    cutting anyone, so the attacker stays connected (survival approach)."""
    from repro.attack.agent import AgentConfig, DDoSAgent
    from repro.baselines.load_balance import (
        LoadBalancingConfig,
        deploy_load_balancing,
    )
    from repro.overlay.ids import PeerId
    from tests.conftest import make_network

    tree = {0: {1, 2, 3}, 1: {4, 5}, 2: {6, 7}, 3: {8, 9}}
    sim, net = make_network(tree, seed=23)
    defenses = deploy_load_balancing(net, LoadBalancingConfig(capacity_qpm=600.0))
    agent = DDoSAgent(sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=6000.0))
    agent.start()
    sim.run(until=120.0)
    assert net.neighbors_of(PeerId(0))  # nobody disconnected
    assert sum(d.queries_shed for d in defenses.values()) > 0


def test_bench_defended_minute(benchmark, scale):
    agents = max(1, round(0.005 * scale.n_peers))
    sim = FluidSimulation(
        FluidConfig(n=scale.n_peers, seed=23, num_agents=agents, defense="ddpolice")
    )
    sim.run(2)
    benchmark(sim.step)
