"""Extension bench: overlay DDoS in a structured (Chord) P2P system.

The paper's future work (Section 5). Compares the two lookup-flood modes
and the adapted single-link defense: structure concentrates targeted
attacks on the key owner, and deterministic routing lets a lone node
detect floods without buddy groups.
"""

import random

import pytest

from benchmarks.conftest import publish
from repro.experiments.reporting import render_table
from repro.structured.attack import LookupAttackConfig, LookupFlooder, route_events
from repro.structured.chord import ChordConfig, ChordRing
from repro.structured.defense import ChordPolice, ChordPoliceConfig


def run_scenario(mode: str, defended: bool, *, n=128, minutes=4, seed=5):
    # capacity chosen so the diffuse flood (~60k relayed lookups/min over
    # 128 nodes) oversubscribes processing roughly 2x, as in Figures 9-11
    ring = ChordRing(ChordConfig(n_nodes=n, processing_qpm=800.0, seed=seed))
    rng = random.Random(seed)
    target = ring.key_for("hot-object") if mode == "targeted" else None
    flooder = LookupFlooder(
        ring,
        LookupAttackConfig(
            agents=(0, 1, 2), rate_qpm=20_000.0, mode=mode,
            target_key=target, per_agent_cap=1500, seed=seed,
        ),
    )
    police = ChordPolice(ring, ChordPoliceConfig()) if defended else None

    good_total = good_ok = 0
    for minute in range(minutes):
        t0 = minute * 60.0
        good = []
        for origin in range(n):
            for i in range(2):
                t = t0 + 60.0 * (i + rng.random()) / 2
                good.append((t, origin, rng.randrange(ring.space)))
        attack = flooder.events_for_minute(t0)
        results = route_events(ring, good + attack, weight=1.0)
        agents = set(flooder.config.agents)
        for r in results:
            if r.origin not in agents:
                good_total += 1
                good_ok += int(r.succeeded)
        if police is not None:
            police.step(float(minute + 1))
    return {
        "success": good_ok / max(1, good_total),
        "links_cut": police.links_cut if police else 0,
        "agents_flagged": len(police.suspected_nodes() & {0, 1, 2}) if police else 0,
    }


@pytest.fixture(scope="module")
def scenarios():
    out = {}
    for mode in ("diffuse", "targeted"):
        for defended in (False, True):
            out[(mode, defended)] = run_scenario(mode, defended)
    return out


def test_structured_extension_table(results_dir, scenarios):
    rows = []
    for (mode, defended), r in sorted(scenarios.items()):
        rows.append([
            mode,
            "chord-police" if defended else "none",
            round(100 * r["success"], 1),
            r["links_cut"],
            r["agents_flagged"],
        ])
    text = render_table(
        ["attack mode", "defense", "good-lookup success (%)",
         "links cut", "agents flagged"],
        rows,
        title="Extension: lookup-flood DDoS on a 128-node Chord ring",
    )
    publish(results_dir, "extension_structured", text)


def test_defense_restores_lookup_success(scenarios):
    for mode in ("diffuse", "targeted"):
        undefended = scenarios[(mode, False)]["success"]
        defended = scenarios[(mode, True)]["success"]
        assert defended >= undefended
    assert scenarios[("diffuse", True)]["agents_flagged"] >= 2


def test_bench_chord_minute(benchmark):
    ring = ChordRing(ChordConfig(n_nodes=128, seed=5))
    flooder = LookupFlooder(
        ring,
        LookupAttackConfig(agents=(0,), rate_qpm=10_000.0, per_agent_cap=1000, seed=5),
    )
    benchmark.pedantic(lambda: flooder.run_minute(0.0), rounds=1, iterations=1)
