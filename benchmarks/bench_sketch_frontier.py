"""Sketch frontier: count-min evidence memory vs detection quality.

Not a paper figure -- the memory/fidelity frontier of the pluggable
evidence layer (docs/SKETCH.md). The grid is the registered
``sketch-frontier`` spec (:mod:`repro.experiments.library`): for each
attack rate it runs the exact evidence store once and the count-min
store at several widths on the batched SoA engine, reporting detection
latency, false suspects, and end-of-run evidence bytes per cell.

At non-smoke scales the module also runs the acceptance pair -- exact
vs sketch DD-POLICE on a fig9-style attacked run at the paper's
n=20,000 -- in spawn-isolated children (per-row peak-RSS truth, as in
bench_scaling) and appends their throughput/RSS rows to the published
table. The gate: the sketch convicts every true attacker with >= 10x
less evidence memory than exact.

At smoke scale the published table is exactly the spec table, so the
CI ``spec-smoke`` byte-diff against the CLI runner holds.
"""

import multiprocessing
import os
import resource
from dataclasses import replace

import pytest

from benchmarks.conftest import publish
from repro.experiments.library import _frontier_axes, run_spec
from repro.experiments.reporting import render_table
from repro.experiments.spec import _extract_case_result

SEED = 31  # the registered sketch-frontier spec's seed

#: The acceptance pair: fig9's population and smallest agent density
#: (0.05% -> 10 agents) on the BA m=1 tree, one attacked window long
#: enough for the slowest exact conviction (~150 s after onset).
GATE_N = 20_000
GATE_AGENTS = 10
GATE_MINUTES = 5
GATE_RATE_QPM = 2_000.0


def evidence_probe(backend, *, cm_width=2048, cm_depth=2):
    """One attacked DD-POLICE run at paper scale; evidence + perf row.

    Module-level (not a closure) so the spawn context can pickle it.
    """
    from repro.core.config import DDPoliceConfig
    from repro.evidence import EvidenceConfig
    from repro.experiments.runner import DESConfig
    from repro.overlay.network import NetworkConfig
    from repro.overlay.soa_network import run_soa_experiment
    from repro.overlay.topology import TopologyConfig

    cfg = DESConfig(
        n=GATE_N,
        duration_s=GATE_MINUTES * 60.0,
        seed=SEED,
        topology=TopologyConfig(n=GATE_N, seed=SEED, ba_m=1),
        network=NetworkConfig(hop_latency_jitter_s=0.0),
        num_agents=GATE_AGENTS,
        attack_start_s=60.0,
        attack_rate_qpm=GATE_RATE_QPM,
        defense="ddpolice",
        police=DDPoliceConfig(
            evidence=EvidenceConfig(
                backend=backend, cm_width=cm_width, cm_depth=cm_depth
            )
        ),
    )
    run = run_soa_experiment(cfg)
    case = _extract_case_result(run, cfg)
    events = run.stats.messages_delivered + run.heap_events
    return {
        "backend": backend,
        "n": GATE_N,
        "agents": GATE_AGENTS,
        "sim_s": cfg.duration_s,
        "caught": case.caught_attackers,
        "total": len(run.bad_peers),
        "false_suspects": case.false_negative,
        "latency_s": case.detection_latency_s,
        "evidence_bytes": run.evidence_bytes,
        "events": events,
        "events_per_s": events / run.wall_s,
        "wall_s": run.wall_s,
        "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
    }


def _isolated(fn, *args, **kwargs):
    """Run one probe in a fresh spawn child so peak RSS is per-row truth."""
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        return pool.apply(fn, args, kwargs)


def _scale_name() -> str:
    return os.environ.get("REPRO_SCALE", "bench").lower()


@pytest.fixture(scope="module")
def run():
    return run_spec("sketch-frontier", scale=_scale_name())


@pytest.fixture(scope="module")
def rows(run):
    return run.data


@pytest.fixture(scope="module")
def gate_rows():
    if _scale_name() == "smoke":
        pytest.skip("paper-scale acceptance pair runs at bench/paper only")
    return [
        _isolated(evidence_probe, "exact"),
        _isolated(evidence_probe, "sketch"),
    ]


def _gate_table(gate_rows) -> str:
    exact = next(r for r in gate_rows if r["backend"] == "exact")
    return render_table(
        [
            "evidence",
            "peers",
            "agents",
            "sim s",
            "caught",
            "FS",
            "events/s",
            "peak RSS MB",
            "evidence KiB",
            "vs exact",
        ],
        [
            [
                r["backend"],
                r["n"],
                r["agents"],
                int(r["sim_s"]),
                f"{r['caught']:.0f}/{r['total']}",
                f"{r['false_suspects']:.0f}",
                f"{r['events_per_s']:,.0f}",
                round(r["peak_rss_mb"]),
                f"{r['evidence_bytes'] / 1024.0:.1f}",
                f"{exact['evidence_bytes'] / r['evidence_bytes']:.1f}x",
            ]
            for r in gate_rows
        ],
        title=(
            "Acceptance pair: exact vs count-min evidence, fig9-style attack "
            f"at n={GATE_N:,} ({GATE_RATE_QPM:,.0f} qpm, BA m=1, spawn-isolated)"
        ),
    )


def test_sketch_frontier_table(results_dir, run, rows, request):
    assert run.spec.seed == SEED
    text = run.tables["sketch_frontier"]
    if _scale_name() != "smoke":
        gate = request.getfixturevalue("gate_rows")
        text = text + "\n" + _gate_table(gate)
    publish(results_dir, "sketch_frontier", text, manifest=run.manifest)
    widths, rates = _frontier_axes(run.spec)
    assert len(rows) == (1 + len(widths)) * len(rates)


def test_exact_rows_are_the_unit_baseline(rows):
    for r in rows:
        if r.backend == "exact":
            assert r.cm_width == 0
            assert r.reduction == pytest.approx(1.0)


def test_sketch_shrinks_evidence_at_some_width(run, rows):
    # The frontier crosses 1x: the narrowest sketch always beats the
    # exact store's per-edge arrays on memory (the widest may not at
    # small n -- that crossover is the point of publishing the sweep).
    _, rates = _frontier_axes(run.spec)
    for rate in rates:
        cells = [r for r in rows if r.backend == "sketch" and r.attack_rate_qpm == rate]
        assert cells
        assert max(c.reduction for c in cells) > 1.0, rate


def test_false_suspects_fall_as_width_grows(rows):
    # Collision mass, and with it the false-suspect count, must not
    # grow with width at a fixed rate.
    by_rate = {}
    for r in rows:
        if r.backend == "sketch":
            by_rate.setdefault(r.attack_rate_qpm, []).append(r)
    for rate, cells in by_rate.items():
        cells.sort(key=lambda c: c.cm_width)
        assert cells[-1].false_suspects <= cells[0].false_suspects, rate


def test_widest_sketch_matches_exact_detection(rows):
    # Count-min only overestimates, so *per-minute* sketch suspects are
    # a superset of exact suspects (tests/property). End to end that
    # does NOT guarantee more convictions at every width: cutting
    # hundreds of collateral false suspects severs the evidence paths
    # the remaining monitors need, so narrow widths can finish with
    # fewer convictions than exact. Once collision mass is small --
    # the widest width in the sweep -- detection matches exact.
    exact_caught = {
        r.attack_rate_qpm: r.caught_attackers for r in rows if r.backend == "exact"
    }
    widest = {}
    for r in rows:
        if r.backend == "sketch":
            prev = widest.get(r.attack_rate_qpm)
            if prev is None or r.cm_width > prev.cm_width:
                widest[r.attack_rate_qpm] = r
    for rate, r in widest.items():
        assert r.caught_attackers >= exact_caught[rate], r


def test_sketch_convicts_all_attackers_at_10x_less_memory(gate_rows):
    """Acceptance gate: all true attackers at >= 10x less evidence memory.

    At n=20,000 on BA m=1 the exact store holds two int64 minute
    windows per directed edge (~625 KiB); the default 2x2048 int32
    count-min pair is 32 KiB and still convicts every agent (count-min
    never undercounts -- the cost is false suspects, swept in the
    frontier table above, not misses).
    """
    exact = next(r for r in gate_rows if r["backend"] == "exact")
    sketch = next(r for r in gate_rows if r["backend"] == "sketch")
    assert sketch["caught"] == sketch["total"], sketch
    reduction = exact["evidence_bytes"] / sketch["evidence_bytes"]
    assert reduction >= 10.0, (exact["evidence_bytes"], sketch["evidence_bytes"])


def test_bench_frontier_cell(benchmark, run):
    from repro.core.config import DDPoliceConfig
    from repro.evidence import EvidenceConfig
    from repro.experiments.library import _derived_agents
    from repro.experiments.runner import DESConfig
    from repro.overlay.network import NetworkConfig
    from repro.overlay.soa_network import run_soa_experiment
    from repro.overlay.topology import TopologyConfig

    sc = run.spec.scale
    cfg = DESConfig(
        n=sc.n_peers,
        duration_s=sc.sim_minutes * 60.0,
        seed=SEED,
        topology=TopologyConfig(n=sc.n_peers, seed=SEED, ba_m=1),
        network=NetworkConfig(hop_latency_jitter_s=0.0),
        num_agents=_derived_agents(run.spec),
        attack_start_s=sc.attack_start_min * 60.0,
        attack_rate_qpm=run.spec.workload.attack_rate_qpm,
        defense="ddpolice",
        police=replace(
            run.spec.police, evidence=EvidenceConfig(backend="sketch")
        ),
    )
    res = benchmark.pedantic(lambda: run_soa_experiment(cfg), rounds=1, iterations=1)
    assert res.bad_peers
