"""Table 1: Neighbor_Traffic message body -- wire codec benchmark.

Validates the byte layout once more at benchmark time and measures
encode/decode throughput (the per-message cost DD-POLICE adds).
"""

from benchmarks.conftest import publish
from repro.core.wire import (
    HEADER_SIZE,
    decode_neighbor_traffic,
    encode_neighbor_traffic,
)
from repro.experiments.reporting import render_table
from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import NeighborTrafficMessage


def _message() -> NeighborTrafficMessage:
    return NeighborTrafficMessage(
        guid=Guid(b"\x01" * 16),
        ttl=1,
        hops=0,
        source=PeerId(0x0A0B0C),
        suspect=PeerId(0x010203),
        timestamp=1_000_000,
        outgoing_queries=4_321,
        incoming_queries=987,
    )


def test_table1_layout(results_dir):
    msg = _message()
    raw = encode_neighbor_traffic(msg)
    body = raw[HEADER_SIZE:]
    rows = [
        ["Source IP Address", 0, 4, msg.source.ipv4],
        ["Suspect IP Address", 4, 4, msg.suspect.ipv4],
        ["Source timestamp", 8, 4, msg.timestamp],
        ["# of Outgoing queries", 12, 4, msg.outgoing_queries],
        ["# of Incoming queries", 16, 4, msg.incoming_queries],
    ]
    text = render_table(
        ["field", "byte offset", "size", "value"],
        rows,
        title="Table 1: Neighbor_Traffic message body (payload 0x83)",
    )
    publish(results_dir, "table1_wire", text)
    assert len(body) == 20
    assert raw[16] == 0x83
    assert decode_neighbor_traffic(raw).outgoing_queries == 4_321


def test_bench_encode(benchmark):
    msg = _message()
    raw = benchmark(encode_neighbor_traffic, msg)
    assert len(raw) == HEADER_SIZE + 20


def test_bench_decode(benchmark):
    raw = encode_neighbor_traffic(_message())
    msg = benchmark(decode_neighbor_traffic, raw)
    assert msg.incoming_queries == 987
