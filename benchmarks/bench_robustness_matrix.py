"""Robustness matrix: DD-POLICE variants vs adversaries that fight back.

Not a paper figure -- a stress study of the defense itself. Four
adaptive strategies (threshold-aware throttling, colluding excuse
reports, churn-assisted evasion, exchange-locked pulsing) attack
through three defenses (paper-literal Section 3.3, hardened profile,
PPM last-hop traceback) on three overlay shapes (BA tree, hard-cutoff
scale-free, BitTorrent-like swarm).

The grid itself is the registered ``robustness-matrix`` spec
(:mod:`repro.experiments.library`); this module publishes its table and
asserts the evasion claims against its cells.
"""

import os

import pytest

from benchmarks.conftest import publish
from repro.experiments.library import _matrix_axes, run_spec

SEED = 29  # the registered robustness-matrix spec's seed


@pytest.fixture(scope="module")
def run():
    scale_name = os.environ.get("REPRO_SCALE", "bench").lower()
    return run_spec("robustness-matrix", scale=scale_name)


@pytest.fixture(scope="module")
def rows(run):
    return run.data


def _cell(rows, defense, adversary, topology):
    for r in rows:
        if (r.defense, r.adversary, r.topology) == (defense, adversary, topology):
            return r
    raise AssertionError(f"missing matrix cell {(defense, adversary, topology)}")


def _has_cell(rows, defense, adversary, topology):
    return any(
        (r.defense, r.adversary, r.topology) == (defense, adversary, topology)
        for r in rows
    )


def test_robustness_matrix_table(results_dir, run, rows):
    assert run.spec.seed == SEED
    publish(
        results_dir, "robustness_matrix",
        run.tables["robustness_matrix"], manifest=run.manifest,
    )
    defenses, adversaries, topologies = _matrix_axes(run.spec)
    assert len(rows) == len(defenses) * len(adversaries) * len(topologies)


def test_static_flooder_is_caught_on_trees(run, rows):
    # The control row: the paper's own scenario. DD-POLICE convicts the
    # unmodified flooder well before the run ends.
    ms = run.spec.matrix
    censored = (ms.sim_minutes - ms.attack_start_min) * 60.0
    r = _cell(rows, "paper", "static", "ba")
    assert r.caught_attackers == r.total_attackers, r
    assert r.detection_latency_s < censored, r


def test_throttle_and_pulse_evade_paper_literal(rows):
    # The headline claim: rate-shaping adversaries measurably degrade
    # detection vs the static row. Staying under the per-edge warning
    # threshold (throttle) or halving the per-minute counts with an
    # exchange-locked duty cycle (pulse) keeps investigations from
    # ever opening.
    static = _cell(rows, "paper", "static", "ba")
    for adversary in ("throttle", "pulse"):
        r = _cell(rows, "paper", adversary, "ba")
        assert r.detection_latency_s > static.detection_latency_s, r
        assert r.caught_attackers < static.caught_attackers, r


def test_collusion_corroboration_evades(rows):
    # Colluders claim each other in neighbor-list exchanges (consistent
    # lies pass the pairwise check) and corroborate fabricated excuse
    # traffic, clearing both indicators. Unlike SILENT cheats they
    # answer honestly about good suspects, so evasion costs no extra
    # false suspects.
    if not _has_cell(rows, "paper", "collude", "ba"):
        pytest.skip("collude row only in the full (bench) grid")
    static = _cell(rows, "paper", "static", "ba")
    r = _cell(rows, "paper", "collude", "ba")
    assert r.caught_attackers < static.caught_attackers, r
    assert r.false_negative <= static.false_negative, r


def test_churn_evasion_fails_at_default_timing(rows):
    # Negative result kept on record: fleeing at the default
    # evade_on_s comes after the first conviction, so churn-assisted
    # evasion does not beat the paper rule as configured.
    if not _has_cell(rows, "paper", "churn", "ba"):
        pytest.skip("churn row only in the full (bench) grid")
    r = _cell(rows, "paper", "churn", "ba")
    assert r.caught_attackers > 0.0, r


def test_bittorrent_swarms_blind_ddpolice(rows):
    # Structural finding: the dense swarm graph dilutes the General
    # indicator (excess / q*k) below the cut threshold, so even the
    # static flooder is never convicted on the bittorrent topology.
    if not _has_cell(rows, "paper", "static", "bittorrent"):
        pytest.skip("bittorrent column only in the full (bench) grid")
    r = _cell(rows, "paper", "static", "bittorrent")
    assert r.caught_attackers == 0.0, r


def test_bench_matrix_cell(benchmark, run):
    from dataclasses import replace

    from repro.experiments.runner import DESConfig, run_des_experiment
    from repro.overlay.topology import TopologyConfig

    ms = run.spec.matrix
    cfg = DESConfig(
        n=ms.n_peers,
        duration_s=ms.sim_minutes * 60.0,
        seed=SEED,
        topology=TopologyConfig(n=ms.n_peers, seed=SEED, ba_m=1),
        num_agents=ms.num_agents,
        attack_start_s=ms.attack_start_min * 60.0,
        attack_rate_qpm=ms.attack_rate_qpm,
        adaptive=replace(run.spec.adversary, strategy="throttle"),
        defense="ddpolice",
        police=run.spec.police,
    )
    res = benchmark.pedantic(lambda: run_des_experiment(cfg), rounds=1, iterations=1)
    assert res.bad_peers
