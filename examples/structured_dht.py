#!/usr/bin/env python3
"""Future work, implemented: lookup-flood DDoS on a Chord DHT.

The paper closes by proposing to study overlay DDoS in *structured*
P2P systems. This example runs both flood modes on a 128-node Chord
ring and shows how deterministic routing changes the game:

* a targeted flood concentrates on one key's owner (structure focuses
  the attack instead of diffusing it);
* the defense no longer needs buddy groups -- single-path routing means
  a node's outbound can only exceed its inbound by what it issued.

Run:  python examples/structured_dht.py
"""

import random

from repro.experiments.reporting import render_table
from repro.structured.attack import LookupAttackConfig, LookupFlooder, route_events
from repro.structured.chord import ChordConfig, ChordRing
from repro.structured.defense import ChordPolice, ChordPoliceConfig


def run(mode: str, defended: bool, minutes: int = 4, seed: int = 5):
    ring = ChordRing(ChordConfig(n_nodes=128, processing_qpm=800.0, seed=seed))
    rng = random.Random(seed)
    target = ring.key_for("hot-object") if mode == "targeted" else None
    flooder = LookupFlooder(
        ring,
        LookupAttackConfig(agents=(0, 1, 2), rate_qpm=20_000.0, mode=mode,
                           target_key=target, per_agent_cap=1500, seed=seed),
    )
    police = ChordPolice(ring, ChordPoliceConfig()) if defended else None
    good_total = good_ok = 0
    for minute in range(minutes):
        t0 = minute * 60.0
        good = [
            (t0 + 60.0 * (i + rng.random()) / 2, origin, rng.randrange(ring.space))
            for origin in range(128)
            for i in range(2)
        ]
        results = route_events(ring, good + flooder.events_for_minute(t0))
        for r in results:
            if r.origin not in (0, 1, 2):
                good_total += 1
                good_ok += int(r.succeeded)
        if police is not None:
            police.step(float(minute + 1))
    flagged = sorted(police.suspected_nodes() & {0, 1, 2}) if police else []
    return 100.0 * good_ok / good_total, flagged


def main() -> None:
    rows = []
    for mode in ("diffuse", "targeted"):
        base, _ = run(mode, defended=False)
        defended, flagged = run(mode, defended=True)
        rows.append([mode, round(base, 1), round(defended, 1),
                     ",".join(map(str, flagged)) or "-"])
    print(render_table(
        ["flood mode", "success % (no defense)", "success % (defended)",
         "agents flagged"],
        rows,
        title="lookup-flood DDoS on a 128-node Chord ring (3 agents)",
    ))
    print(
        "\nStructure concentrates targeted floods on the key owner; the"
        "\nadapted detector (outbound - inbound - normal rate) spares the"
        "\nrelays that a naive per-link rate cutoff would punish."
    )


if __name__ == "__main__":
    main()
