#!/usr/bin/env python3
"""Large-scale attack impact and DD-POLICE recovery (fluid engine).

Reproduces the Figures 9-11 story at laptop scale: the overlay's traffic,
response time, and success rate under increasing numbers of DDoS agents,
with and without DD-POLICE. Densities match the paper's 20,000-peer
setup (10..200 agents); pass ``--peers`` to change scale.

Run:  python examples/attack_and_defense.py [--peers 2000] [--minutes 20]
"""

import argparse
from dataclasses import replace

from repro.experiments.reporting import render_table
from repro.fluid.model import FluidConfig, FluidSimulation


def steady(rows, attr, first):
    vals = [getattr(r, attr) for r in rows if r.minute >= first]
    return sum(vals) / len(vals)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--peers", type=int, default=2000)
    parser.add_argument("--minutes", type=int, default=20)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    base = FluidConfig(n=args.peers, seed=args.seed, attack_start_min=5)
    first = 10  # steady-state window
    densities = (0.0005, 0.0025, 0.005, 0.01)

    print(f"simulating {args.peers:,} peers, {args.minutes} minutes each run\n")
    baseline = FluidSimulation(base)
    baseline.run(args.minutes)
    b_traffic = steady(baseline.rows, "traffic_cost_kqpm", first)
    b_rt = steady(baseline.rows, "response_time_s", first)
    b_succ = steady(baseline.rows, "success_rate", first)

    rows = []
    for density in densities:
        agents = max(1, round(density * args.peers))
        attacked = FluidSimulation(replace(base, num_agents=agents))
        attacked.run(args.minutes)
        defended = FluidSimulation(
            replace(base, num_agents=agents, defense="ddpolice")
        )
        defended.run(args.minutes)
        err = defended.error_counts()
        rows.append([
            agents,
            round(steady(attacked.rows, "traffic_cost_kqpm", first) / b_traffic, 1),
            round(steady(attacked.rows, "response_time_s", first) / b_rt, 2),
            round(100 * steady(attacked.rows, "success_rate", first), 1),
            round(100 * steady(defended.rows, "success_rate", first), 1),
            err.false_positive,
        ])

    print(render_table(
        ["agents", "traffic x", "response x", "success % (attacked)",
         "success % (DD-POLICE)", "agents missed"],
        rows,
        title=f"attack impact vs DD-POLICE (baseline success "
              f"{100 * b_succ:.1f}%, traffic {b_traffic:.0f}k msg/min)",
    ))


if __name__ == "__main__":
    main()
