#!/usr/bin/env python3
"""Quickstart: detect and expel an overlay DDoS agent with DD-POLICE.

Builds a small Gnutella-style overlay at the message level, lets a
compromised peer flood distinct bogus queries (the Figure 1 pattern),
and watches every neighbor convict it via buddy-group evidence.

Run:  python examples/quickstart.py
"""

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.attack.cheating import CheatStrategy
from repro.core.config import DDPoliceConfig
from repro.core.police import deploy_ddpolice
from repro.overlay.content import ContentCatalog, ContentConfig
from repro.overlay.ids import PeerId
from repro.overlay.network import NetworkConfig, OverlayNetwork
from repro.overlay.topology import TopologyConfig, generate_topology
from repro.simkit.engine import Simulator
from repro.workload.generator import QueryWorkload, WorkloadConfig


def main() -> None:
    # --- substrate: a 30-peer unstructured overlay ---------------------
    # ba_m=1 gives a tree: at this toy scale, cycles let the attacker's
    # distinct per-neighbor queries echo back into it and mask the
    # indicators (run `pytest benchmarks/bench_ablation_echo.py` for the
    # full story; at the paper's scale congestion attenuates the echoes).
    sim = Simulator()
    topology = generate_topology(TopologyConfig(n=30, ba_m=1, seed=42))
    network = OverlayNetwork(
        sim,
        topology,
        config=NetworkConfig(seed=42),
        content=ContentCatalog(
            # densely replicated demo catalog so searches usually succeed
            ContentConfig(num_objects=50, replication_ratio=0.2,
                          replicas_max_fraction=0.3, seed=42),
            30,
        ),
    )

    # --- defense: DD-POLICE on every peer ------------------------------
    attacker = PeerId(0)
    engines = deploy_ddpolice(
        network,
        DDPoliceConfig(exchange_period_s=30.0),  # faster exchange for the demo
        bad_peers={attacker},
        bad_strategy=CheatStrategy.SILENT,
    )
    log = engines[PeerId(1)].judgments  # shared across all engines

    # --- workload: normal peers search at a human rate ------------------
    workload = QueryWorkload(
        sim, network, WorkloadConfig(queries_per_minute=2.0, seed=42)
    )
    workload.start()

    # --- attack: one compromised peer floods at max rate ---------------
    agent = DDoSAgent(
        sim,
        network,
        attacker,
        AgentConfig(nominal_rate_qpm=6000.0, per_neighbor=True),
    )
    agent.start()
    print(f"attacker {attacker.ipv4} starts flooding "
          f"{agent.config.effective_rate_qpm:.0f} bogus queries/min ...")

    sim.run(until=240.0)

    # --- outcome ---------------------------------------------------------
    detections = [
        j for j in log.disconnect_events() if j.suspect == attacker
    ]
    print(f"\nsimulated {sim.now:.0f}s, {network.stats.messages_delivered:,} "
          f"messages delivered")
    print(f"attack queries sent: {agent.queries_sent:,}")
    print(f"query success rate:  {100 * network.success_rate():.1f}%")
    if detections:
        first = min(detections, key=lambda j: j.time)
        print("\nDD-POLICE verdicts against the attacker:")
        for j in sorted(detections, key=lambda j: j.time):
            print(f"  t={j.time:6.1f}s  observer {j.observer.ipv4} "
                  f"g={j.g_value:7.1f} s={j.s_value:7.1f} -> disconnected")
        print(f"\nfirst detection {first.time:.1f}s after launch; "
              f"attacker now has {len(network.neighbors_of(attacker))} neighbors")
    else:
        print("attacker was not detected (try a longer run)")


if __name__ == "__main__":
    main()
