#!/usr/bin/env python3
"""The Section 2.3 testbed, end to end: trace capture + agent replay.

1. A monitoring node's query log is synthesized (substituting the 24 h
   LimeWire capture of 13 M queries).
2. The DDoS-agent prototype (peer A) replays the log into peer B at
   increasing rates; peer C counts what B manages to forward.
3. Prints the Figure 5/6 sweep: B's processing ceiling (~15,000/min) and
   the 47% drop rate at A's maximum (~29,000/min).

Run:  python examples/testbed_capacity.py
"""

import tempfile
from pathlib import Path

from repro.experiments.reporting import render_table
from repro.testbed.pipeline import PipelineExperiment, run_rate_sweep
from repro.workload.trace import QueryTraceReader, synthesize_trace


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "monitor.log"
        synthesize_trace(trace_path, num_queries=20_000, duration_s=3600.0, seed=7)
        reader = QueryTraceReader(trace_path)
        print(f"synthesized monitoring-node trace: "
              f"{sum(1 for _ in reader):,} queries at {trace_path.name}")

        # Replay the actual trace through the pipeline at a few rates.
        exp = PipelineExperiment()
        print("\ntrace replay through A -> B -> C:")
        for rate in (5_000, 15_000, 29_000):
            point = exp.replay_trace(reader, rate, duration_min=0.5)
            print(f"  A sends {point.sent_qpm:8,.0f}/min -> "
                  f"B forwards {point.processed_qpm:8,.0f}/min "
                  f"(drop {point.drop_rate_pct:4.1f}%)")

    # The full Figure 5/6 sweep from the analytic steady state.
    points = run_rate_sweep()
    rows = [
        [int(p.sent_qpm), int(p.processed_qpm), round(p.drop_rate_pct, 1)]
        for p in points
        if p.sent_qpm % 4000 == 1000 or p.sent_qpm >= 28_000
    ]
    print()
    print(render_table(
        ["sent (q/min)", "processed (q/min)", "drop rate (%)"],
        rows,
        title="Figures 5 & 6: peer B capacity sweep",
    ))
    knee = next(p.sent_qpm for p in points if p.dropped_qpm > 0)
    print(f"\ndrop onset at ~{knee:,.0f} queries/min; "
          f"{points[-1].drop_rate_pct:.0f}% dropped at the agent maximum")


if __name__ == "__main__":
    main()
