#!/usr/bin/env python3
"""Section 3.4's cheating analysis, executed.

A compromised peer whose forwarders come under suspicion can answer the
buddy group's Neighbor_Traffic requests four ways: honestly, inflating,
deflating, or staying silent. The paper argues none of them helps it;
this example runs all four on the message-level overlay and prints what
happens to the attacker and to its innocent forwarders.

Run:  python examples/cheating_strategies.py
"""

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.attack.cheating import CheatStrategy
from repro.core.config import DDPoliceConfig
from repro.core.police import deploy_ddpolice
from repro.experiments.reporting import render_table
from repro.overlay.content import ContentCatalog, ContentConfig
from repro.overlay.ids import PeerId
from repro.overlay.network import NetworkConfig, OverlayNetwork
from repro.overlay.topology import Topology
from repro.simkit.engine import Simulator

# Attacker 0 with forwarders 1-3, each serving a small leaf subtree --
# a tree, so the attacker cannot hide behind query echoes.
ADJACENCY = {0: {1, 2, 3}, 1: {4, 5}, 2: {6, 7}, 3: {8, 9}}


def build_network(seed: int):
    n = 10
    adj = [set() for _ in range(n)]
    for u, vs in ADJACENCY.items():
        for v in vs:
            adj[u].add(v)
            adj[v].add(u)
    sim = Simulator()
    net = OverlayNetwork(
        sim,
        Topology(n=n, adjacency=adj, kind="tree"),
        config=NetworkConfig(hop_latency_jitter_s=0.0, seed=seed),
        content=ContentCatalog(ContentConfig(num_objects=20, seed=seed), n),
    )
    return sim, net


def run_strategy(strategy: CheatStrategy):
    sim, net = build_network(seed=1)
    attacker = PeerId(0)
    engines = deploy_ddpolice(
        net,
        DDPoliceConfig(exchange_period_s=30.0),
        bad_peers={attacker},
        bad_strategy=strategy,
    )
    agent = DDoSAgent(
        sim, net, attacker, AgentConfig(nominal_rate_qpm=3000.0, per_neighbor=True)
    )
    agent.start()
    sim.run(until=240.0)
    log = engines[PeerId(1)].judgments
    cut = log.disconnected_suspects()
    first = log.first_disconnect_time(attacker)
    forwarders_cut = sorted(p.value for p in cut if p != attacker)
    return {
        "attacker cut": "yes" if attacker in cut else "no",
        "detected at (s)": f"{first:.0f}" if first is not None else "-",
        "forwarders wrongly cut": ",".join(map(str, forwarders_cut)) or "-",
        "attacker neighbors left": len(net.neighbors_of(attacker)),
    }


def main() -> None:
    rows = []
    for strategy in (
        CheatStrategy.HONEST,
        CheatStrategy.INFLATE,
        CheatStrategy.DEFLATE,
        CheatStrategy.SILENT,
    ):
        result = run_strategy(strategy)
        rows.append([strategy.value] + list(result.values()))
    print(render_table(
        ["strategy", "attacker cut", "detected at (s)",
         "forwarders wrongly cut", "attacker neighbors left"],
        rows,
        title="Section 3.4: cheating buys the attacker nothing",
    ))
    print(
        "\nNote the deflate/silent rows: lying gets the *forwarders* cut too,"
        "\nwhich isolates the attack -- 'not what peer j wants to achieve'."
    )


if __name__ == "__main__":
    main()
