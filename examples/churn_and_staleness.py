#!/usr/bin/env python3
"""Why the cut threshold matters: churn makes buddy groups stale.

Section 3.1 analyzes how peers joining/leaving between neighbor-list
exchanges corrupt the evidence DD-POLICE judges with. This example runs
the fluid engine under the paper's churn (10-minute mean lifetimes,
2-minute exchanges), shows the measured list staleness, and sweeps the
cut threshold to expose the false-negative / false-positive tradeoff of
Figure 13.

Run:  python examples/churn_and_staleness.py
"""

from dataclasses import replace

from repro.core.config import DDPoliceConfig
from repro.experiments.reporting import render_table
from repro.fluid.model import FluidConfig, FluidSimulation


def main() -> None:
    n, agents, minutes = 1000, 5, 22
    base = FluidConfig(n=n, seed=19, num_agents=agents, attack_start_min=5)

    # How stale do published neighbor lists get under the paper's churn?
    probe = FluidSimulation(base)
    probe.run(6)
    staleness = sum(r.list_staleness for r in probe.rows) / len(probe.rows)
    print(f"{n:,} peers, mean lifetime 10 min, exchange every 2 min:")
    print(f"  mean published-list staleness: {100 * staleness:.1f}% of entries\n")

    rows = []
    for ct in (2.0, 3.0, 5.0, 7.0, 10.0):
        cfg = replace(
            base, defense="ddpolice",
            police=DDPoliceConfig().with_cut_threshold(ct),
        )
        sim = FluidSimulation(cfg)
        sim.run(minutes)
        err = sim.error_counts()
        tail = [r.success_rate for r in sim.rows if r.minute >= minutes - 5]
        rows.append([
            ct,
            err.false_negative,
            err.false_positive,
            round(100 * sum(tail) / len(tail), 1),
        ])
    print(render_table(
        ["cut threshold", "good peers wrongly cut", "agents missed",
         "success % (tail)"],
        rows,
        title="Figure 13's tradeoff: evidence staleness vs cut threshold",
    ))
    print(
        "\nLower CT reacts to staleness noise (more good peers cut); higher"
        "\nCT lets slow-link attackers hover under the bar. The paper picks"
        "\nCT = 5 as the compromise."
    )


if __name__ == "__main__":
    main()
