#!/usr/bin/env python3
"""Figures 1 & 2, worked by the library: why rate alone cannot convict.

Figure 1's point: a peer relaying 50 queries/min can be perfectly good,
while the attacker behind it stays below any single-link threshold. The
General and Single indicators (Definitions 2.1-2.3) separate the two by
subtracting what a peer *receives* from what it *sends*.

Run:  python examples/indicator_walkthrough.py
"""

from repro.core.indicators import (
    NeighborReport,
    general_indicator,
    indicators_from_reports,
    is_bad_peer,
    single_indicator,
)

Q = 100.0  # good-peer issue threshold (queries/min)


def figure2(q0: float, inflows: list) -> None:
    """The Figure 2 star: j issues q0 and faithfully forwards q1..qk."""
    total = sum(inflows)
    sent = [q0 + (total - x) for x in inflows]
    g = general_indicator(sent, inflows, Q)
    s = single_indicator(sent[0], inflows[1:], Q)
    verdict = "BAD" if is_bad_peer(g, [s], threshold=1.0) else "good"
    print(f"  j issues {q0:7,.0f}/min, receives {inflows} "
          f"-> g = {g:8.2f}, s = {s:8.2f}  [{verdict}]")


def main() -> None:
    print("Definition 2.1/2.2 on the Figure 2 topology (q = 100/min):")
    print("both indicators always evaluate to exactly q0/q --\n")
    figure2(q0=50, inflows=[300, 400, 500])      # Figure 1's good relay
    figure2(q0=0, inflows=[5000, 8000, 2000])    # a pure forwarding hub
    figure2(q0=90, inflows=[100, 100, 100])      # heavy but human
    figure2(q0=20_000, inflows=[300, 400, 500])  # a DDoS agent

    print("\nthe full buddy-group computation (Section 3.3), as peer A")
    print("judging suspect j with reports from B, C, D:\n")
    # j issues 20,000/min split over 4 neighbors and forwards honestly.
    qd, k = 20_000, 4
    inflow = 200  # what each member sends into j
    out_per_member = qd / k + inflow * (k - 1) / k  # j's flood + forwarding
    reports = {
        m: NeighborReport(member=m, outgoing=inflow, incoming=int(out_per_member))
        for m in (2, 3, 4)
    }
    g, s = indicators_from_reports(
        observer=1,
        own_out_to_j=inflow,
        own_in_from_j=int(out_per_member),
        reports=reports,
        q=Q,
    )
    print(f"  each member reports ({inflow} out, {out_per_member:.0f} in)")
    print(f"  g(j,t) = {g:.1f}, s(j,t,A) = {s:.1f}  "
          f"(~ Q_d/(q*k) = {qd / (Q * k):.1f})")
    print(f"  against cut threshold CT = 5: "
          f"{'DISCONNECT' if g > 5 or s > 5 else 'keep'}")


if __name__ == "__main__":
    main()
