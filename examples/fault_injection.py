#!/usr/bin/env python3
"""Fault injection: how lossy control planes corrupt DD-POLICE evidence.

Section 3.3's collection rule treats a missing Neighbor_Traffic report as
"peer j sent 0 queries to peer m". On a lossless network that is a safe
default; once control messages can vanish in flight, every lost buddy
report silently inflates the suspect's apparent issue rate, and good
forwarders get cut (false negatives in the paper's Figure 13 terms).

This example runs the same attack scenario three times on the
message-level engine -- fault-free, faulted with the paper-literal rule,
and faulted with the hardened evidence profile (bounded report retries +
report quorum + neighbor-list retransmission) -- and prints what the
injector did and who got wrongly disconnected.

Run:  python examples/fault_injection.py
"""

from dataclasses import replace

from repro.attack.cheating import CheatStrategy
from repro.core.config import DDPoliceConfig
from repro.experiments.reporting import render_table
from repro.experiments.runner import DESConfig, run_des_experiment
from repro.faults.plan import CrashRule, DuplicateRule, FaultPlan
from repro.overlay.topology import TopologyConfig
from repro.workload.generator import WorkloadConfig


def main() -> None:
    n, agents, minutes, attack_min = 40, 2, 6, 2

    # Control-plane loss + two silent crashes mid-attack + duplicated
    # control traffic (exercises the idempotency guards). Query traffic
    # is untouched: only the *evidence* is degraded.
    plan = FaultPlan.control_loss(0.25).merged(
        FaultPlan(
            crashes=(CrashRule(at_s=(attack_min + 1) * 60.0, count=2),),
            duplicate=(DuplicateRule(0.10),),
        )
    )

    base = DESConfig(
        n=n,
        duration_s=minutes * 60.0,
        seed=7,
        # Tree overlay: duplicate-free flooding keeps Definition 2.1 exact,
        # so every misjudgment below is attributable to the faults.
        topology=TopologyConfig(n=n, ba_m=1, seed=7),
        workload=WorkloadConfig(queries_per_minute=2.0, seed=7),
        num_agents=agents,
        attack_start_s=attack_min * 60.0,
        attack_rate_qpm=600.0,
        cheat_strategy=CheatStrategy.HONEST,  # attackers flood but report honestly
        defense="ddpolice",
        police=DDPoliceConfig(exchange_period_s=30.0),
    )
    hardened = base.police.with_hardening()

    rows = []
    for label, cfg in (
        ("fault-free, paper rule", base),
        ("faulted, paper rule", replace(base, faults=plan)),
        ("faulted, hardened", replace(base, faults=plan, police=hardened)),
    ):
        run = run_des_experiment(cfg)
        err = run.error_counts()
        dropped = run.injector.stats.messages_dropped if run.injector else 0
        crashed = len(run.injector.crashed) if run.injector else 0
        rows.append([label, dropped, crashed, err.false_negative, err.false_positive])

    print(render_table(
        ["scenario", "ctl msgs lost", "crashed", "good peers wrongly cut",
         "agents missed"],
        rows,
        title=f"{n} peers, {agents} honest-reporting agents @ 600 qpm, "
              f"25% control loss",
    ))
    print(
        "\nLost buddy reports become assumed zeros, so the paper-literal"
        "\nrule convicts the attacker's innocent forwarders. The hardened"
        "\nprofile re-requests missing reports (cheaters still gain nothing"
        "\n-- a liar's reply goes through its cheat strategy again) and"
        "\nrefuses to judge below a report quorum, recovering most of the"
        "\nmanufactured false negatives. benchmarks/bench_fault_sweep.py"
        "\nsweeps the full loss x crash grid; docs/FAULTS.md has the model."
    )


if __name__ == "__main__":
    main()
