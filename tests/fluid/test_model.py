"""Integration tests for the fluid simulation."""

from dataclasses import replace

import pytest

from repro.errors import ConfigError, MetricsError
from repro.fluid.model import FluidConfig, FluidSimulation


BASE = FluidConfig(n=300, seed=7, attack_start_min=3, churn_warmup_min=8)


def steady(rows, attr, first=6):
    vals = [getattr(r, attr) for r in rows if r.minute >= first]
    return sum(vals) / len(vals)


def test_run_produces_rows():
    sim = FluidSimulation(BASE)
    rows = sim.run(5)
    assert [r.minute for r in rows] == [1, 2, 3, 4, 5]
    assert all(r.online > 0 for r in rows)
    assert all(0 <= r.success_rate <= 1 for r in rows)
    assert all(r.response_time_s >= 0 for r in rows)


def test_deterministic_given_seed():
    a = FluidSimulation(BASE).run(4)
    b = FluidSimulation(BASE).run(4)
    assert [r.success_rate for r in a] == [r.success_rate for r in b]
    assert [r.query_messages_qpm for r in a] == [r.query_messages_qpm for r in b]


def test_seed_changes_trajectory():
    a = FluidSimulation(BASE).run(4)
    b = FluidSimulation(replace(BASE, seed=8)).run(4)
    assert [r.query_messages_qpm for r in a] != [r.query_messages_qpm for r in b]


def test_attack_degrades_service():
    clean = FluidSimulation(BASE)
    clean.run(10)
    attacked = FluidSimulation(replace(BASE, num_agents=3))
    attacked.run(10)
    assert steady(attacked.rows, "success_rate") < steady(clean.rows, "success_rate")
    assert steady(attacked.rows, "query_messages_qpm") > steady(
        clean.rows, "query_messages_qpm"
    )
    # At smoke scale the collapse is bandwidth-driven, so queueing delay
    # barely moves; the bench-scale sweep shows the paper's 2.4x growth.
    assert steady(attacked.rows, "response_time_s") > 0.9 * steady(
        clean.rows, "response_time_s"
    )


def test_attack_starts_at_configured_minute():
    sim = FluidSimulation(replace(BASE, num_agents=3, attack_start_min=5))
    rows = sim.run(8)
    assert all(r.attack_injected_qpm == 0 for r in rows if r.minute < 5)
    assert any(r.attack_injected_qpm > 0 for r in rows if r.minute >= 5)


def test_ddpolice_restores_service():
    attacked = FluidSimulation(replace(BASE, num_agents=3))
    attacked.run(12)
    defended = FluidSimulation(replace(BASE, num_agents=3, defense="ddpolice"))
    defended.run(12)
    assert steady(defended.rows, "success_rate", first=8) > steady(
        attacked.rows, "success_rate", first=8
    )
    assert defended.police is not None
    assert defended.police.stats.edges_cut > 0


def test_ddpolice_catches_all_agents():
    sim = FluidSimulation(replace(BASE, num_agents=3, defense="ddpolice"))
    sim.run(12)
    errors = sim.error_counts()
    assert errors.false_positive <= 1  # nearly all attackers identified


def test_naive_defense_runs():
    sim = FluidSimulation(replace(BASE, num_agents=3, defense="naive"))
    sim.run(10)
    assert sim.naive is not None
    assert sim.naive.stats.edges_cut > 0


def test_attack_rate_capped_by_bandwidth():
    sim = FluidSimulation(replace(BASE, num_agents=10))
    assert all(rate <= 20_000.0 for rate in sim.attack_rate.values())
    assert any(rate < 20_000.0 for rate in sim.attack_rate.values())  # modem/dsl


def test_agents_pinned_by_default():
    sim = FluidSimulation(replace(BASE, num_agents=3))
    assert sim.state.pinned == sim.bad_peers
    sim2 = FluidSimulation(replace(BASE, num_agents=3, agents_churn=True))
    assert sim2.state.pinned == set()


def test_warmup_converges_population():
    sim = FluidSimulation(BASE)
    online0 = sim.state.online_count()
    # steady state for leave=join=0.1 is ~50%
    assert 0.35 * BASE.n < online0 < 0.65 * BASE.n
    assert sim.state.minute == 0


def test_control_messages_accounted():
    sim = FluidSimulation(replace(BASE, defense="ddpolice", num_agents=3))
    rows = sim.run(8)
    assert any(r.control_messages_qpm > 0 for r in rows)


def test_mean_over_and_validation():
    sim = FluidSimulation(BASE)
    sim.run(4)
    assert sim.mean_over(2, "success_rate") > 0
    with pytest.raises(MetricsError, match="empty selection window"):
        sim.mean_over(99, "success_rate")
    with pytest.raises(MetricsError, match="no rows"):
        FluidSimulation(BASE).mean_over(0, "success_rate")
    with pytest.raises(ConfigError):
        sim.run(0)


def test_config_validation():
    with pytest.raises(ConfigError):
        FluidConfig(n=1)
    with pytest.raises(ConfigError):
        FluidConfig(defense="magic")
    with pytest.raises(ConfigError):
        FluidConfig(num_agents=10, n=5)
    with pytest.raises(ConfigError):
        FluidConfig(ttl=0)


def test_without_attack_twin():
    cfg = replace(BASE, num_agents=5, defense="ddpolice")
    twin = cfg.without_attack()
    assert twin.num_agents == 0
    assert twin.defense == "none"
    assert twin.seed == cfg.seed


@pytest.mark.parametrize("defense", ["none", "naive", "ddpolice"])
def test_fast_hot_path_matches_legacy(defense):
    """The cached/CSR/vectorized minute loop is bit-identical to the
    pre-optimization path, row for row."""
    from repro.fluid.model import legacy_hot_path

    cfg = replace(
        BASE, n=200, num_agents=4, attack_start_min=2, defense=defense,
        churn_warmup_min=4,
    )
    fast = FluidSimulation(cfg).run(7)
    with legacy_hot_path():
        legacy = FluidSimulation(cfg).run(7)
    assert fast == legacy
    assert repr(fast) == repr(legacy)
