"""Unit tests for the fluid flow propagation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fluid.coverage import novelty_schedule
from repro.fluid.flows import build_edge_arrays, propagate_flows


def line_adjacency(n):
    adj = {i: set() for i in range(n)}
    for i in range(n - 1):
        adj[i].add(i + 1)
        adj[i + 1].add(i)
    return adj


def run_flows(adj, n, good=None, attack_edges=None, cap=1e9, ttl=7, **kw):
    src, dst, rev = build_edge_arrays(adj)
    E = len(src)
    good_rate = np.zeros(n) if good is None else np.asarray(good, float)
    attack = np.zeros(E)
    if attack_edges:
        for (u, v), rate in attack_edges.items():
            for e in range(E):
                if src[e] == u and dst[e] == v:
                    attack[e] = rate
    sigma = novelty_schedule([len(v) for v in adj.values()], ttl, n=n)
    return propagate_flows(
        src,
        dst,
        rev,
        n,
        good_rate=good_rate,
        attack_edge_inject=attack,
        capacity=np.full(n, float(cap)),
        ttl=ttl,
        sigma=sigma,
        **kw,
    ), (src, dst, rev)


def test_edge_arrays_symmetric_pairing():
    adj = {0: {1, 2}, 1: {0}, 2: {0}}
    src, dst, rev = build_edge_arrays(adj)
    assert len(src) == 4
    for e in range(4):
        r = rev[e]
        assert src[r] == dst[e] and dst[r] == src[e]


def test_edge_arrays_reject_asymmetry():
    with pytest.raises(ConfigError):
        build_edge_arrays({0: {1}, 1: set()})


def test_edge_arrays_reject_self_loop():
    with pytest.raises(ConfigError):
        build_edge_arrays({0: {0}})


def test_line_propagation_without_losses():
    """On a line with no capacity limits and sigma ~1, a query issued at
    node 0 flows one copy along each hop."""
    n = 8
    adj = line_adjacency(n)
    good = np.zeros(n)
    good[0] = 60.0
    result, (src, dst, rev) = run_flows(adj, n, good=good, ttl=7)
    flows = {(int(src[e]), int(dst[e])): result.edge_good[e] for e in range(len(src))}
    # degree-2 line barely saturates coverage; each forward hop keeps ~rate
    assert flows[(0, 1)] == pytest.approx(60.0)
    assert flows[(1, 2)] > 30.0
    # nothing flows backwards toward the source
    assert flows[(1, 0)] == pytest.approx(0.0, abs=1e-9)


def test_ttl_limits_depth():
    n = 10
    adj = line_adjacency(n)
    good = np.zeros(n)
    good[0] = 60.0
    result, (src, dst, rev) = run_flows(adj, n, good=good, ttl=3)
    flows = {(int(src[e]), int(dst[e])): result.edge_good[e] for e in range(len(src))}
    assert flows[(2, 3)] > 0
    assert flows[(3, 4)] == pytest.approx(0.0, abs=1e-9)  # hop 4 > ttl 3


def test_capacity_throttles_flow():
    n = 8
    adj = line_adjacency(n)
    good = np.zeros(n)
    good[0] = 1000.0
    free, _ = run_flows(adj, n, good=good, cap=1e9)
    tight, _ = run_flows(adj, n, good=good, cap=500.0)
    assert tight.total_messages_per_min < free.total_messages_per_min
    assert tight.dropped_fraction > 0
    assert (tight.rho <= 1.0 + 1e-12).all()
    assert tight.rho.min() < 1.0


def test_attack_injection_on_specific_edge():
    n = 4
    adj = line_adjacency(n)
    result, (src, dst, rev) = run_flows(
        adj, n, attack_edges={(0, 1): 600.0}, cap=1e9
    )
    flows = {(int(src[e]), int(dst[e])): result.edge_attack[e] for e in range(len(src))}
    assert flows[(0, 1)] == pytest.approx(600.0)
    assert flows[(1, 2)] > 0
    assert result.attack_injected == pytest.approx(600.0)
    assert result.good_injected == 0.0


def test_good_and_attack_share_capacity():
    n = 6
    adj = line_adjacency(n)
    good = np.zeros(n)
    good[0] = 100.0
    clean, _ = run_flows(adj, n, good=good, cap=500.0)
    attacked, _ = run_flows(
        adj, n, good=good, attack_edges={(0, 1): 10_000.0}, cap=500.0
    )
    # attack load displaces good flow
    assert attacked.edge_good.sum() < clean.edge_good.sum()
    assert attacked.good_processed_per_hop.sum() < clean.good_processed_per_hop.sum()


def test_upstream_bandwidth_caps_outflow():
    n = 4
    adj = line_adjacency(n)
    good = np.zeros(n)
    good[0] = 1000.0
    src, dst, rev = build_edge_arrays(adj)
    sigma = novelty_schedule([2] * n, 7, n=n)
    up = np.full(n, np.inf)
    up[0] = 100.0  # source can only push 100/min
    result = propagate_flows(
        src, dst, rev, n,
        good_rate=good,
        attack_edge_inject=np.zeros(len(src)),
        capacity=np.full(n, 1e9),
        ttl=7,
        sigma=sigma,
        upstream_qpm=up,
    )
    flows = {(int(src[e]), int(dst[e])): result.edge_good[e] for e in range(len(src))}
    assert flows[(0, 1)] == pytest.approx(100.0, rel=0.05)
    assert result.omega[0] < 1.0


def test_downstream_bandwidth_caps_inflow():
    n = 4
    adj = line_adjacency(n)
    good = np.zeros(n)
    good[0] = 1000.0
    src, dst, rev = build_edge_arrays(adj)
    sigma = novelty_schedule([2] * n, 7, n=n)
    down = np.full(n, np.inf)
    down[1] = 50.0
    result = propagate_flows(
        src, dst, rev, n,
        good_rate=good,
        attack_edge_inject=np.zeros(len(src)),
        capacity=np.full(n, 1e9),
        ttl=7,
        sigma=sigma,
        downstream_qpm=down,
    )
    flows = {(int(src[e]), int(dst[e])): result.edge_good[e] for e in range(len(src))}
    assert flows[(0, 1)] == pytest.approx(50.0, rel=0.05)
    assert result.iota[1] < 1.0


def test_sent_exceeds_delivered_under_congestion():
    n = 4
    adj = line_adjacency(n)
    good = np.zeros(n)
    good[0] = 1000.0
    src, dst, rev = build_edge_arrays(adj)
    sigma = novelty_schedule([2] * n, 7, n=n)
    down = np.full(n, np.inf)
    down[1] = 50.0
    result = propagate_flows(
        src, dst, rev, n,
        good_rate=good,
        attack_edge_inject=np.zeros(len(src)),
        capacity=np.full(n, 1e9),
        ttl=7,
        sigma=sigma,
        downstream_qpm=down,
    )
    assert result.edge_sent_total.sum() > result.edge_total.sum()


def test_empty_graph_is_fine():
    result, _ = run_flows({}, 3, good=[0.0, 0.0, 0.0])
    assert result.total_messages_per_min == 0.0
    assert result.dropped_fraction == 0.0


def test_validation_errors():
    n = 3
    adj = line_adjacency(n)
    src, dst, rev = build_edge_arrays(adj)
    sigma = novelty_schedule([2] * n, 7, n=n)
    ok = dict(
        good_rate=np.zeros(n),
        attack_edge_inject=np.zeros(len(src)),
        capacity=np.ones(n),
        ttl=7,
        sigma=sigma,
    )
    with pytest.raises(ConfigError):
        propagate_flows(src, dst, rev, n, **{**ok, "good_rate": np.zeros(n + 1)})
    with pytest.raises(ConfigError):
        propagate_flows(src, dst, rev, n, **{**ok, "capacity": np.zeros(n)})
    with pytest.raises(ConfigError):
        propagate_flows(src, dst, rev, n, **{**ok, "attack_edge_inject": -np.ones(len(src))})
    with pytest.raises(ConfigError):
        propagate_flows(src, dst, rev, n, **{**ok, "sigma": sigma[:3]})
    with pytest.raises(ConfigError):
        propagate_flows(src, dst, rev, n, max_iterations=0, **ok)


def test_fixed_point_converges():
    """More iterations should not change the answer materially."""
    n = 20
    adj = line_adjacency(n)
    good = np.zeros(n)
    good[0] = 5000.0
    a, _ = run_flows(adj, n, good=good, cap=1000.0, max_iterations=12)
    b, _ = run_flows(adj, n, good=good, cap=1000.0, max_iterations=40)
    assert a.total_messages_per_min == pytest.approx(
        b.total_messages_per_min, rel=0.02
    )


# ---------------------------------------------------------------------------
# vectorized edge-array builder vs the reference implementation
# ---------------------------------------------------------------------------

def random_adjacency(n, p, seed):
    rng = __import__("random").Random(seed)
    adj = {u: set() for u in range(n)}
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                adj[u].add(v)
                adj[v].add(u)
    return adj


def test_vectorized_builder_matches_reference():
    from repro.fluid.flows import build_edge_arrays_reference

    cases = [
        {},  # no nodes
        {0: set(), 1: set()},  # no edges
        {0: {1}, 1: {0}},  # single link
        line_adjacency(7),
    ] + [random_adjacency(n, p, s) for n, p, s in [(13, 0.3, 1), (40, 0.1, 2), (5, 1.0, 3)]]
    for adj in cases:
        src_v, dst_v, rev_v = build_edge_arrays(adj)
        src_r, dst_r, rev_r = build_edge_arrays_reference(adj)
        assert np.array_equal(src_v, src_r)
        assert np.array_equal(dst_v, dst_r)
        assert np.array_equal(rev_v, rev_r)
        assert src_v.dtype == src_r.dtype
        assert rev_v.dtype == rev_r.dtype


def test_vectorized_builder_rejects_self_loops_and_asymmetry():
    from repro.fluid.flows import build_edge_arrays_reference

    for builder in (build_edge_arrays, build_edge_arrays_reference):
        with pytest.raises(ConfigError):
            builder({0: {0}, 1: set()})
        with pytest.raises(ConfigError, match=r"asymmetric adjacency at edge \(0, 1\)"):
            builder({0: {1}, 1: set()})


def test_edge_slice_index_slices_match_masks():
    from repro.fluid.flows import edge_slice_index

    adj = random_adjacency(20, 0.25, 7)
    src, dst, rev = build_edge_arrays(adj)
    indptr = edge_slice_index(src, 20)
    assert indptr.shape == (21,)
    assert indptr[0] == 0 and indptr[-1] == len(src)
    for u in range(20):
        lo, hi = int(indptr[u]), int(indptr[u + 1])
        np.testing.assert_array_equal(np.arange(lo, hi), np.nonzero(src == u)[0])
        assert hi - lo == len(adj[u])
    # out-degrees come straight off the index
    assert np.array_equal(np.diff(indptr), np.bincount(src, minlength=20))


def test_edge_slice_index_requires_sorted_src():
    from repro.fluid.flows import edge_slice_index

    with pytest.raises(ConfigError):
        edge_slice_index(np.array([1, 0], dtype=np.int64), 2)
    # empty edge set is fine
    empty = edge_slice_index(np.array([], dtype=np.int64), 3)
    assert np.array_equal(empty, np.zeros(4, dtype=np.int64))
