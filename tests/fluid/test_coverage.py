"""Unit tests for the flood-coverage approximation."""

import pytest

from repro.errors import ConfigError
from repro.fluid.coverage import degree_moments, expected_coverage, novelty_schedule


def test_degree_moments_regular_graph():
    mean, excess = degree_moments([4] * 100)
    assert mean == 4.0
    assert excess == 3.0  # d-1 for regular graphs


def test_degree_moments_heavy_tail_raises_excess():
    _, excess_reg = degree_moments([6] * 100)
    _, excess_ht = degree_moments([3] * 90 + [33] * 10)
    assert excess_ht > excess_reg


def test_degree_moments_empty_rejected():
    with pytest.raises(ConfigError):
        degree_moments([])


def test_novelty_monotone_nonincreasing():
    sigma = novelty_schedule([6] * 1000, ttl=7)
    assert sigma[0] == 1.0 and sigma[1] == 1.0
    for a, b in zip(sigma[1:], sigma[2:]):
        assert b <= a + 1e-12


def test_novelty_in_unit_interval():
    sigma = novelty_schedule([3, 4, 3, 5, 30], ttl=7, n=5)
    assert all(0.0 <= s <= 1.0 for s in sigma)


def test_novelty_saturates_on_tiny_graph():
    """A 10-node graph is fully covered after a couple of hops."""
    sigma = novelty_schedule([4] * 10, ttl=7)
    assert sigma[-1] < 0.2


def test_novelty_stays_high_on_huge_graph():
    sigma = novelty_schedule([6] * 1_000_000, ttl=4)
    assert sigma[4] > 0.99


def test_coverage_monotone_and_bounded():
    M = expected_coverage([6] * 500, ttl=7)
    assert M[0] == 1.0
    for a, b in zip(M, M[1:]):
        assert b >= a
    assert M[-1] <= 500.0


def test_coverage_full_on_dense_graph():
    M = expected_coverage([6] * 200, ttl=7)
    assert M[-1] == pytest.approx(200.0, rel=0.05)


def test_coverage_limited_by_ttl():
    """On a near-line graph (degree 2), coverage grows ~linearly."""
    M = expected_coverage([2] * 10_000, ttl=7)
    assert M[-1] < 30


def test_ttl_validation():
    with pytest.raises(ConfigError):
        novelty_schedule([4] * 10, ttl=0)
    with pytest.raises(ConfigError):
        expected_coverage([4] * 10, ttl=0)


def test_zero_degree_graph():
    sigma = novelty_schedule([0] * 5, ttl=3)
    assert list(sigma[1:]) == [0.0, 0.0, 0.0]
