"""Unit tests for the fluid graph state (churn + snapshots)."""

import random

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fluid.graphstate import FluidChurnConfig, GraphState


def ring(n):
    return {i: {(i - 1) % n, (i + 1) % n} for i in range(n)}


def make_state(n=20, **churn_kw):
    return GraphState(
        n,
        ring(n),
        churn=FluidChurnConfig(**churn_kw),
        rng=random.Random(1),
    )


def test_initial_state_all_online():
    s = make_state()
    assert s.online_count() == 20
    assert s.degree(0) == 2


def test_symmetry_enforced():
    with pytest.raises(ConfigError):
        GraphState(3, {0: {1}, 1: set(), 2: set()})


def test_edge_surgery():
    s = make_state()
    s.remove_edge(0, 1)
    assert 1 not in s.adjacency[0] and 0 not in s.adjacency[1]
    s.add_edge(0, 5)
    assert 5 in s.adjacency[0] and 0 in s.adjacency[5]
    with pytest.raises(ConfigError):
        s.add_edge(2, 2)


def test_disconnect_all():
    s = make_state()
    s.disconnect_all(0)
    assert s.adjacency[0] == set()
    assert all(0 not in s.adjacency[v] for v in range(1, 20))


def test_churn_step_balances_population():
    s = make_state(n=200, leave_prob_per_min=0.2, join_prob_per_min=0.2)
    for _ in range(40):
        s.step_churn()
    frac = s.online_count() / 200
    assert 0.3 < frac < 0.7  # steady state ~0.5


def test_churn_disabled_keeps_everyone():
    s = make_state(enabled=False)
    s.step_churn()
    assert s.online_count() == 20


def test_pinned_nodes_never_leave():
    s = make_state(n=100, leave_prob_per_min=0.9, join_prob_per_min=0.0)
    s.pinned = {0, 1, 2}
    for _ in range(10):
        s.step_churn()
    assert all(s.online[u] for u in (0, 1, 2))


def test_leaving_node_loses_edges():
    s = make_state(n=50, leave_prob_per_min=1.0, join_prob_per_min=0.0)
    s.pinned = {0}
    s.step_churn()
    offline = [u for u in range(50) if not s.online[u]]
    assert offline
    for u in offline:
        assert s.adjacency[u] == set()


def test_joining_node_gets_3_or_4_neighbors():
    s = make_state(n=60, leave_prob_per_min=0.0, join_prob_per_min=1.0)
    s.online[:30] = False
    for u in range(30):
        s.disconnect_all(u)
    s.step_churn()
    joined = [u for u in range(30) if s.online[u]]
    assert joined
    for u in joined:
        # a joiner asks for 3-4, but may also be picked by other joiners
        assert 1 <= len(s.adjacency[u]) <= s.churn.max_degree


def test_isolated_node_reconnects_after_delay():
    s = make_state(n=20, leave_prob_per_min=0.0, join_prob_per_min=0.0,
                   reconnect_delay_min=2)
    s.disconnect_all(0)
    s.step_churn()  # minute 1: noticed
    s.step_churn()  # minute 2: delay not yet met
    assert s.adjacency[0] == set()
    s.step_churn()  # minute 3: reconnects
    assert len(s.adjacency[0]) >= 1


def test_snapshots_go_stale_and_refresh():
    s = GraphState(10, ring(10), churn=FluidChurnConfig(enabled=False),
                   exchange_period_min=2, rng=random.Random(2))
    s.remove_edge(0, 1)
    assert 1 in s.known_neighbors(0)  # stale view
    s.step_churn()
    s.step_exchange()
    s.step_churn()
    s.step_exchange()  # within 2 minutes every node republished
    assert 1 not in s.known_neighbors(0)


def test_staleness_metric():
    s = GraphState(10, ring(10), churn=FluidChurnConfig(enabled=False),
                   rng=random.Random(3))
    assert s.snapshot_staleness() == 0.0
    s.remove_edge(0, 1)
    assert s.snapshot_staleness() > 0.0


def test_offline_nodes_do_not_republish():
    s = GraphState(4, ring(4), churn=FluidChurnConfig(enabled=False),
                   exchange_period_min=1, rng=random.Random(4))
    s.online[2] = False
    s.disconnect_all(2)
    before = s.known_neighbors(2)
    s.step_churn()
    s.step_exchange()
    assert s.known_neighbors(2) == before  # stale snapshot retained


def test_config_validation():
    with pytest.raises(ConfigError):
        FluidChurnConfig(leave_prob_per_min=1.5)
    with pytest.raises(ConfigError):
        FluidChurnConfig(join_degree_min=0)
    with pytest.raises(ConfigError):
        FluidChurnConfig(max_degree=2)
    with pytest.raises(ConfigError):
        GraphState(1, {0: set()})


def test_edge_arrays_cached_until_topology_changes():
    s = GraphState(6, ring(6), churn=FluidChurnConfig(enabled=False),
                   rng=random.Random(0))
    first = s.edge_arrays()
    # no mutation -> the exact same tuple comes back (cache hit)
    assert s.edge_arrays() is first
    version = s.topology_version
    s.add_edge(0, 3)
    assert s.topology_version == version + 1
    second = s.edge_arrays()
    assert second is not first
    assert len(second[0]) == len(first[0]) + 2  # one undirected link = 2 arcs
    s.remove_edge(0, 3)
    third = s.edge_arrays()
    assert third is not second
    assert np.array_equal(third[0], first[0])
    assert np.array_equal(third[1], first[1])


def test_edge_arrays_match_live_adjacency_after_churn():
    from repro.fluid.flows import build_edge_arrays, edge_slice_index

    s = GraphState(30, ring(30), rng=random.Random(3))
    for _ in range(5):
        s.step_churn()
        src, dst, rev, indptr = s.edge_arrays()
        ref_src, ref_dst, ref_rev = build_edge_arrays(s.live_adjacency())
        assert np.array_equal(src, ref_src)
        assert np.array_equal(dst, ref_dst)
        assert np.array_equal(rev, ref_rev)
        assert np.array_equal(indptr, edge_slice_index(ref_src, s.n))
