"""Tests for the DD-POLICE-r (r > 1) extension.

Section 3.5 motivates generalizing buddy groups beyond direct neighbors.
The concrete failure of r = 1 is *collusion*: a compromised buddy can
inflate its "queries sent to the suspect" report so the suspect's flood
looks like forwarding. With r = 2 the group cross-validates members
against their own buddy groups and discards reports from members that
are themselves under suspicion.
"""

import random

from repro.attack.cheating import CheatStrategy
from repro.core.config import DDPoliceConfig
from repro.fluid.graphstate import FluidChurnConfig, GraphState
from repro.fluid.police import FluidPolice


def collusion_state():
    """Attacker 0 shielded by accomplice 1; honest observers 2, 3;
    peer 4 observes the accomplice's own flooding."""
    adj = {0: {1, 2, 3}, 1: {0, 4}, 2: {0}, 3: {0}, 4: {1}}
    return GraphState(5, adj, churn=FluidChurnConfig(enabled=False),
                      rng=random.Random(1))


def collusion_flows():
    return {
        # attacker 0 floods its neighbors
        (0, 1): 2000.0, (0, 2): 2000.0, (0, 3): 2000.0,
        # honest trickle into the attacker
        (2, 0): 10.0, (3, 0): 10.0,
        # accomplice really sends 300/min into 0 (will inflate x10)
        (1, 0): 300.0,
        # the accomplice is itself flooding peer 4 -> it is a suspect too
        (1, 4): 600.0, (4, 1): 5.0,
    }


def make_police(radius):
    cfg = DDPoliceConfig(radius=radius)
    return FluidPolice(
        cfg,
        {0, 1},
        cheat_strategy=CheatStrategy.INFLATE,
        rng=random.Random(2),
    )


def test_r1_collusion_shields_the_attacker():
    state = collusion_state()
    police = make_police(radius=1)
    police.step(1.0, state, collusion_flows())
    # the inflated report explains the flood away: 0 keeps all edges
    assert 0 not in police.judgments.disconnected_suspects()


def test_r2_cross_validation_defeats_collusion():
    state = collusion_state()
    police = make_police(radius=2)
    police.step(1.0, state, collusion_flows())
    assert 0 in police.judgments.disconnected_suspects()


def test_r2_does_not_break_honest_detection():
    """With honest reporters, r = 2 must still convict a plain attacker."""
    adj = {0: {1, 2, 3}}
    for i in (1, 2, 3):
        adj[i] = {0}
    state = GraphState(4, adj, churn=FluidChurnConfig(enabled=False),
                       rng=random.Random(3))
    police = FluidPolice(
        DDPoliceConfig(radius=2), {0},
        cheat_strategy=CheatStrategy.HONEST, rng=random.Random(4),
    )
    flows = {}
    for nb in (1, 2, 3):
        flows[(0, nb)] = 2000.0
        flows[(nb, 0)] = 10.0
    police.step(1.0, state, flows)
    assert 0 in police.judgments.disconnected_suspects()
