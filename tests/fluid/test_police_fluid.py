"""Unit tests for fluid-mode DD-POLICE detection."""

import random

import pytest

from repro.attack.cheating import CheatStrategy
from repro.core.config import DDPoliceConfig
from repro.fluid.graphstate import FluidChurnConfig, GraphState
from repro.fluid.police import FluidNaiveCutoff, FluidPolice


def star_state(k=4):
    """Suspect 0 with k fresh neighbors; snapshots accurate."""
    adj = {0: set(range(1, k + 1))}
    for i in range(1, k + 1):
        adj[i] = {0}
    return GraphState(
        k + 1, adj, churn=FluidChurnConfig(enabled=False), rng=random.Random(1)
    )


def attack_flows(state, rate_per_edge):
    """Suspect 0 floods each neighbor; neighbors send a trickle back."""
    flows = {}
    for nb in state.adjacency[0]:
        flows[(0, nb)] = rate_per_edge
        flows[(nb, 0)] = 10.0
    return flows


def make_police(ct=5.0, bad=frozenset({0}), strategy=CheatStrategy.SILENT):
    return FluidPolice(
        DDPoliceConfig().with_cut_threshold(ct),
        set(bad),
        cheat_strategy=strategy,
        rng=random.Random(2),
    )


def test_flooding_suspect_convicted_and_expelled():
    state = star_state()
    police = make_police()
    cut = police.step(1.0, state, attack_flows(state, 2000.0))
    assert cut == 4  # every neighbor cut its edge
    assert state.adjacency[0] == set()
    assert not state.online[0]  # fully isolated -> expelled
    assert police.stats.peers_expelled == 1
    assert 0 in police.judgments.disconnected_suspects()


def test_below_warning_not_investigated():
    state = star_state()
    police = make_police()
    cut = police.step(1.0, state, attack_flows(state, 400.0))
    assert cut == 0
    assert police.stats.investigations == 0


def test_good_forwarder_cleared_with_full_reports():
    """A hub forwarding one heavy stream is exonerated when the inflow is
    visible to the group (the Figure 1 '50 queries/min but good' point).

    Node 1 pushes 900/min into hub 0, which fans it out to 2, 3, 4. The
    hub's buddy group sees matching inflow and clears it. (Node 1 itself
    is a genuine issuer here and is legitimately convicted -- only the
    hub's verdict is under test.)
    """
    state = star_state(k=4)
    flows = {(1, 0): 900.0, (0, 1): 5.0}
    for nb in (2, 3, 4):
        flows[(0, nb)] = 870.0  # forwarded with slight losses
        flows[(nb, 0)] = 5.0
    police = make_police(bad=frozenset())
    police.step(1.0, state, flows)
    assert 0 not in police.judgments.disconnected_suspects()


def test_stale_membership_inflates_indicator():
    """A heavy sender missing from the published list makes a good
    forwarder look like an issuer -- the Section 3.1 misjudgment."""
    state = star_state(k=4)
    # node 4 joined recently: remove it from 0's published snapshot
    state.snapshots[0] = frozenset({1, 2, 3})
    flows = {}
    for nb in (1, 2, 3):
        flows[(nb, 0)] = 100.0
        flows[(0, nb)] = 2000.0
    flows[(4, 0)] = 5800.0  # the invisible inflow
    flows[(0, 4)] = 300.0
    police = make_police(bad=frozenset())
    cut = police.step(1.0, state, flows)
    assert cut >= 1
    assert 0 in police.judgments.disconnected_suspects()


def test_cheat_deflate_can_shield_attacker():
    """Bad buddy deflating its outgoing count shifts blame: the group
    sees less inflow to the suspect (Section 3.4 case 2)."""
    state = star_state(k=3)
    # suspect 1 (good) forwards attacker 0's flood onward
    state.online[:] = True
    adj = {0: {1}, 1: {0, 2, 3}, 2: {1}, 3: {1}}
    state = GraphState(4, adj, churn=FluidChurnConfig(enabled=False),
                       rng=random.Random(3))
    flows = {
        (0, 1): 4000.0, (1, 0): 5.0,
        (1, 2): 2000.0, (2, 1): 5.0,
        (1, 3): 2000.0, (3, 1): 5.0,
    }
    honest = FluidPolice(DDPoliceConfig(), {0}, cheat_strategy=CheatStrategy.HONEST,
                         rng=random.Random(4))
    honest.step(1.0, state, dict(flows))
    assert 1 not in honest.judgments.disconnected_suspects()

    state2 = GraphState(4, adj, churn=FluidChurnConfig(enabled=False),
                        rng=random.Random(5))
    silent = FluidPolice(DDPoliceConfig(), {0}, cheat_strategy=CheatStrategy.SILENT,
                         rng=random.Random(6))
    silent.step(1.0, state2, dict(flows))
    # with the attacker silent, the good forwarder is wrongly cut
    assert 1 in silent.judgments.disconnected_suspects()


def test_offline_member_assumed_zero():
    state = star_state(k=4)
    state.online[4] = False
    state.disconnect_all(4)
    police = make_police(bad=frozenset())
    flows = {}
    for nb in (1, 2, 3):
        flows[(nb, 0)] = 10.0
        flows[(0, nb)] = 900.0
    cut = police.step(1.0, state, flows)
    # the group still judges with member 4 assumed (0,0)
    assert police.stats.investigations == 1
    assert cut >= 1  # outflow unexplained -> convicted


def test_bad_observers_do_not_police():
    state = star_state(k=2)
    police = FluidPolice(DDPoliceConfig(), {0, 1, 2}, rng=random.Random(7))
    cut = police.step(1.0, state, attack_flows(state, 5000.0))
    assert cut == 0


def test_traffic_message_accounting():
    state = star_state(k=4)
    police = make_police(strategy=CheatStrategy.HONEST)
    police.step(1.0, state, attack_flows(state, 2000.0))
    assert police.stats.traffic_messages > 0


def test_naive_cutoff_cuts_any_heavy_edge():
    state = star_state(k=3)
    naive = FluidNaiveCutoff(500.0, {0})
    flows = attack_flows(state, 2000.0)
    cut = naive.step(1.0, state, flows)
    assert cut == 3
    assert not state.online[0]


def test_naive_cutoff_validation():
    with pytest.raises(Exception):
        FluidNaiveCutoff(0.0, set())
