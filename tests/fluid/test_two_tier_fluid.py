"""Fluid-engine runs over the super-peer topology."""

from dataclasses import replace

import pytest

from repro.fluid.model import FluidConfig, FluidSimulation
from repro.overlay.topology import TopologyConfig


BASE = FluidConfig(
    n=400,
    topology=TopologyConfig(n=400, model="two_tier", seed=9),
    seed=9,
    attack_start_min=3,
    churn_warmup_min=4,
)


def steady(rows, attr, first=6):
    vals = [getattr(r, attr) for r in rows if r.minute >= first]
    return sum(vals) / len(vals)


def test_two_tier_baseline_serves_queries():
    sim = FluidSimulation(BASE)
    rows = sim.run(8)
    assert steady(rows, "success_rate") > 0.5


def test_two_tier_attack_and_defense():
    baseline = FluidSimulation(BASE)
    baseline.run(10)
    attacked = FluidSimulation(replace(BASE, num_agents=2))
    attacked.run(10)
    defended = FluidSimulation(replace(BASE, num_agents=2, defense="ddpolice"))
    defended.run(10)
    assert steady(attacked.rows, "success_rate") < steady(baseline.rows, "success_rate")
    assert steady(defended.rows, "success_rate") > steady(attacked.rows, "success_rate")


def test_backbone_concentration():
    """Super-peers carry disproportionate load: flow-weighted offered
    load concentrates on the backbone (first 15% of node ids)."""
    import numpy as np

    from repro.fluid.flows import build_edge_arrays, propagate_flows
    from repro.fluid.coverage import novelty_schedule
    from repro.overlay.topology import generate_topology

    topo = generate_topology(TopologyConfig(n=400, model="two_tier", seed=9))
    adj = {u: set(vs) for u, vs in enumerate(topo.adjacency)}
    src, dst, rev = build_edge_arrays(adj)
    sigma = novelty_schedule(topo.degrees(), 7, n=400)
    flow = propagate_flows(
        src, dst, rev, 400,
        good_rate=np.full(400, 2.0),
        attack_edge_inject=np.zeros(len(src)),
        capacity=np.full(400, 1e9),
        ttl=7,
        sigma=sigma,
    )
    n_super = 60
    super_load = flow.offered[:n_super].mean()
    leaf_load = flow.offered[n_super:].mean()
    assert super_load > 3 * leaf_load
