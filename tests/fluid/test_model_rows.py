"""Focused tests on MinuteRow semantics and fluid bookkeeping."""

from dataclasses import replace

import pytest

from repro.fluid.model import FluidConfig, FluidSimulation, MinuteRow


def make_row(**kw):
    defaults = dict(
        minute=1, online=100, edges_directed=600, agents_online=0,
        agents_attacking=0, good_injected_qpm=30.0, attack_injected_qpm=0.0,
        query_messages_qpm=50_000.0, control_messages_qpm=2_000.0,
        dropped_fraction=0.0, mean_rho=1.0, reach_per_query=90.0,
        success_rate=0.9, response_time_s=0.3, edges_cut=0,
        list_staleness=0.05,
    )
    defaults.update(kw)
    return MinuteRow(**defaults)


def test_traffic_cost_includes_control_plane():
    row = make_row(query_messages_qpm=50_000.0, control_messages_qpm=2_000.0)
    assert row.traffic_cost_kqpm == pytest.approx(52.0)


def test_attack_injection_respects_link_caps():
    sim = FluidSimulation(
        FluidConfig(n=300, num_agents=6, attack_start_min=1, seed=5,
                    churn_warmup_min=3)
    )
    rows = sim.run(4)
    # injected never exceeds the sum of the agents' capped rates
    cap = sum(sim.attack_rate.values())
    for r in rows:
        assert r.attack_injected_qpm <= cap + 1e-6


def test_agents_attacking_counts_only_connected():
    sim = FluidSimulation(
        FluidConfig(n=300, num_agents=4, attack_start_min=1, seed=6,
                    churn_warmup_min=3)
    )
    rows = sim.run(4)
    for r in rows:
        assert r.agents_attacking <= r.agents_online <= 4


def test_staleness_reported_between_zero_and_one():
    sim = FluidSimulation(FluidConfig(n=300, seed=7, churn_warmup_min=3))
    rows = sim.run(4)
    assert all(0.0 <= r.list_staleness <= 1.0 for r in rows)
    # under the paper's churn, lists are never perfectly fresh
    assert any(r.list_staleness > 0.0 for r in rows)


def test_no_churn_means_static_population():
    from repro.fluid.graphstate import FluidChurnConfig

    cfg = FluidConfig(
        n=200, seed=8, churn=FluidChurnConfig(enabled=False), churn_warmup_min=0
    )
    sim = FluidSimulation(cfg)
    rows = sim.run(3)
    assert all(r.online == 200 for r in rows)
    assert all(r.list_staleness == 0.0 for r in rows)


def test_disabled_attack_zero_injection():
    sim = FluidSimulation(FluidConfig(n=200, num_agents=0, seed=9,
                                      churn_warmup_min=2))
    rows = sim.run(3)
    assert all(r.attack_injected_qpm == 0.0 for r in rows)
    assert all(r.agents_online == 0 for r in rows)
