"""Unit tests for the query workload generator."""

import pytest

from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from repro.workload.generator import QueryWorkload, WorkloadConfig
from tests.conftest import make_network


def ring(n):
    return {i: {(i + 1) % n} for i in range(n)}


def test_poisson_rate_approximately_honored():
    sim, net = make_network(ring(20), seed=1)
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=3.0, seed=1))
    wl.start()
    sim.run(until=600.0)
    # 20 peers x 3/min x 10 min = 600 expected
    assert wl.issued == pytest.approx(600, rel=0.2)


def test_paper_rate_default():
    assert WorkloadConfig().queries_per_minute == 0.3


def test_excluded_peers_issue_nothing():
    sim, net = make_network(ring(5), seed=2)
    wl = QueryWorkload(
        sim,
        net,
        WorkloadConfig(queries_per_minute=10.0, seed=2),
        exclude={PeerId(0)},
    )
    wl.start()
    sim.run(until=120.0)
    assert net.peers[PeerId(0)].counters.queries_issued == 0
    assert wl.issued > 0


def test_max_queries_cap():
    sim, net = make_network(ring(5), seed=3)
    wl = QueryWorkload(
        sim, net, WorkloadConfig(queries_per_minute=60.0, max_queries_total=10, seed=3)
    )
    wl.start()
    sim.run(until=600.0)
    assert wl.issued == 10


def test_offline_peers_skip_but_resume():
    sim, net = make_network(ring(5), seed=4)
    net.peers[PeerId(0)].go_offline()
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=30.0, seed=4))
    wl.start()
    sim.run(until=60.0)
    assert net.peers[PeerId(0)].counters.queries_issued == 0
    net.peers[PeerId(0)].go_online()
    net.peers[PeerId(0)].add_neighbor(PeerId(1))
    net.peers[PeerId(1)].add_neighbor(PeerId(0))
    sim.run(until=240.0)
    assert net.peers[PeerId(0)].counters.queries_issued > 0


def test_queries_target_catalog_objects():
    sim, net = make_network(ring(5), seed=5)
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=30.0, seed=5))
    wl.start()
    sim.run(until=60.0)
    assert net.query_records
    assert all(r.object_id is not None for r in net.query_records.values())


def test_config_validation():
    with pytest.raises(ConfigError):
        WorkloadConfig(queries_per_minute=0)
    with pytest.raises(ConfigError):
        WorkloadConfig(max_queries_total=-1)
