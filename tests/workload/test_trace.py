"""Unit tests for the query-trace format (Section 2.3 monitoring node)."""

import pytest

from repro.errors import ConfigError, WireFormatError
from repro.workload.trace import (
    QueryTraceReader,
    QueryTraceWriter,
    TraceRecord,
    synthesize_trace,
)


def test_record_roundtrip():
    rec = TraceRecord(12.5, "ab" * 16, "red song id3")
    parsed = TraceRecord.from_line(rec.to_line())
    assert parsed == rec


def test_record_validation():
    with pytest.raises(ConfigError):
        TraceRecord(-1.0, "ab" * 16, "x")
    with pytest.raises(ConfigError):
        TraceRecord(0.0, "abcd", "x")


def test_malformed_lines_rejected():
    with pytest.raises(WireFormatError):
        TraceRecord.from_line("only two\tfields")
    with pytest.raises(WireFormatError):
        TraceRecord.from_line("notafloat\t" + "ab" * 16 + "\tsearch")


def test_writer_reader_roundtrip(tmp_path):
    path = tmp_path / "trace.log"
    records = [TraceRecord(float(i), f"{i:032x}", f"query {i}") for i in range(10)]
    with QueryTraceWriter(path) as w:
        for rec in records:
            w.write(rec)
        assert w.records_written == 10
    assert QueryTraceReader(path).read_all() == records


def test_reader_missing_file():
    with pytest.raises(ConfigError):
        QueryTraceReader("/nonexistent/trace.log")


def test_replay_cyclic_wraps(tmp_path):
    path = tmp_path / "trace.log"
    with QueryTraceWriter(path) as w:
        for i in range(3):
            w.write(TraceRecord(float(i), f"{i:032x}", f"q{i}"))
    replayed = list(QueryTraceReader(path).replay_cyclic(8))
    assert len(replayed) == 8
    assert [r.search_string for r in replayed[:4]] == ["q0", "q1", "q2", "q0"]


def test_replay_cyclic_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.log"
    path.write_text("")
    with pytest.raises(ConfigError):
        list(QueryTraceReader(path).replay_cyclic(1))


def test_synthesize_trace_shape(tmp_path):
    path = synthesize_trace(tmp_path / "synth.log", num_queries=500, duration_s=100.0, seed=1)
    records = QueryTraceReader(path).read_all()
    assert len(records) == 500
    times = [r.timestamp_s for r in records]
    assert times == sorted(times)
    assert all(0 <= t <= 100.0 for t in times)
    # Zipf skew: the most common search string dominates
    from collections import Counter

    top = Counter(r.search_string for r in records).most_common(1)[0][1]
    assert top > 500 / 50


def test_gzip_roundtrip(tmp_path):
    path = tmp_path / "trace.log.gz"
    records = [TraceRecord(float(i), f"{i:032x}", f"query {i}") for i in range(50)]
    with QueryTraceWriter(path) as w:
        for rec in records:
            w.write(rec)
    # actually compressed on disk
    assert path.read_bytes()[:2] == b"\x1f\x8b"
    assert QueryTraceReader(path).read_all() == records


def test_gzip_synthesize(tmp_path):
    path = synthesize_trace(tmp_path / "synth.log.gz", num_queries=100,
                            duration_s=10.0, seed=4)
    assert len(QueryTraceReader(path).read_all()) == 100


def test_synthesize_validation(tmp_path):
    with pytest.raises(ConfigError):
        synthesize_trace(tmp_path / "x.log", num_queries=0)
    with pytest.raises(ConfigError):
        synthesize_trace(tmp_path / "x.log", duration_s=0)
