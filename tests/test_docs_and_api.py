"""Meta tests: public-API surface and documentation coverage."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.overlay",
    "repro.fluid",
    "repro.attack",
    "repro.churn",
    "repro.workload",
    "repro.testbed",
    "repro.baselines",
    "repro.metrics",
    "repro.experiments",
    "repro.structured",
    "repro.simkit",
]


def iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                yield importlib.import_module(f"{pkg_name}.{info.name}")


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public items: {undocumented}"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_subpackage_alls_resolve():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert getattr(pkg, name, None) is not None, f"{pkg_name}.{name}"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_exceptions_rooted_at_repro_error():
    from repro import errors

    for name in ("ConfigError", "ProtocolError", "WireFormatError", "TopologyError"):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)
