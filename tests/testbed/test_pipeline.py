"""Unit tests for the A->B->C pipeline experiment (Figures 5-6)."""

import pytest

from repro.errors import ConfigError
from repro.testbed.pipeline import (
    AGENT_MAX_RATE_QPM,
    PipelineExperiment,
    run_rate_sweep,
)
from repro.workload.trace import QueryTraceReader, synthesize_trace


def test_agent_max_rate_is_29k():
    """'peer A is capable of ... a rate of around 29,000 per minute'."""
    assert AGENT_MAX_RATE_QPM == 29_000.0


def test_measure_below_knee_is_lossless():
    point = PipelineExperiment().measure(10_000)
    assert point.processed_qpm == 10_000
    assert point.drop_rate_pct == 0.0


def test_measure_above_knee_drops():
    point = PipelineExperiment().measure(29_000)
    assert point.drop_rate_pct == pytest.approx(47.0, abs=1.0)


def test_send_rate_capped_by_agent_max():
    point = PipelineExperiment().measure(50_000)
    assert point.sent_qpm == 29_000


def test_default_sweep_covers_figure5_axis():
    points = run_rate_sweep()
    assert len(points) == 29
    assert points[0].sent_qpm == 1_000
    assert points[-1].sent_qpm == 29_000
    # processed is monotone nondecreasing, flat after the knee
    processed = [p.processed_qpm for p in points]
    assert all(b >= a for a, b in zip(processed, processed[1:]))
    assert processed[-1] == processed[-5]  # plateau


def test_figure6_shape():
    points = run_rate_sweep()
    drops = [p.drop_rate_pct for p in points]
    assert drops[0] == 0.0
    assert all(b >= a - 1e-9 for a, b in zip(drops, drops[1:]))
    assert drops[-1] > 40.0


def test_replay_trace_through_pipeline(tmp_path):
    path = synthesize_trace(tmp_path / "t.log", num_queries=2000, duration_s=60.0, seed=2)
    exp = PipelineExperiment()
    point = exp.replay_trace(QueryTraceReader(path), send_rate_qpm=12_000, duration_min=0.5)
    assert point.sent_qpm == pytest.approx(12_000, rel=0.01)
    assert point.drop_rate_pct == 0.0


def test_replay_trace_validation(tmp_path):
    path = synthesize_trace(tmp_path / "t.log", num_queries=10, duration_s=1.0, seed=3)
    with pytest.raises(ConfigError):
        PipelineExperiment().replay_trace(QueryTraceReader(path), 1000, duration_min=0)


def test_measure_validation():
    with pytest.raises(ConfigError):
        PipelineExperiment().measure(-1)
    with pytest.raises(ConfigError):
        PipelineExperiment(agent_max_rate_qpm=0)
