"""Unit tests for the LimeWire servent queueing model."""

import pytest

from repro.errors import ConfigError
from repro.testbed.limewire import LimewirePeerModel, ServiceParameters


def test_calibration_anchor_capacity():
    """47% drop at 29,000/min pins the ceiling near 15,400/min."""
    model = LimewirePeerModel()
    assert model.params.capacity_qpm == pytest.approx(15_400, rel=0.01)


def test_calibration_anchor_drop_at_max_rate():
    """Section 2.3: 'When peer A sends queries to B as fast as it is
    capable of, 47% of the queries are dropped by peer B.'"""
    model = LimewirePeerModel()
    assert model.drop_rate(29_000) == pytest.approx(0.47, abs=0.01)


def test_no_drops_below_onset():
    """Figure 5: drops begin around 15,000/min."""
    model = LimewirePeerModel()
    for rate in (1_000, 5_000, 10_000, 15_000):
        assert model.drop_rate(rate) == 0.0
        assert model.processed_qpm(rate) == rate


def test_processed_saturates_above_ceiling():
    model = LimewirePeerModel()
    assert model.processed_qpm(20_000) == model.params.capacity_qpm
    assert model.processed_qpm(29_000) == model.params.capacity_qpm


def test_drop_rate_monotone_in_load():
    model = LimewirePeerModel()
    rates = [model.drop_rate(r) for r in range(10_000, 30_000, 1_000)]
    assert all(b >= a for a, b in zip(rates, rates[1:]))


def test_larger_index_lowers_capacity():
    """'Normally a peer's local index includes many contents ... which
    reduces time for local look up' -- bigger library, lower ceiling."""
    empty = ServiceParameters(index_entries=0)
    loaded = ServiceParameters(index_entries=100_000)
    assert loaded.capacity_qpm < empty.capacity_qpm


def test_utilization():
    model = LimewirePeerModel()
    assert model.utilization(0) == 0.0
    assert model.utilization(model.params.capacity_qpm) == pytest.approx(1.0)
    assert model.utilization(1e9) == 1.0


def test_queueing_delay_grows_with_load():
    model = LimewirePeerModel()
    low = model.queueing_delay_s(1_000)
    mid = model.queueing_delay_s(12_000)
    high = model.queueing_delay_s(16_000)
    assert low < mid < high
    # at overload the wait is the buffer drain time
    assert high == pytest.approx(
        model.params.buffer_queries * model.params.service_time_s
    )


def test_validation():
    with pytest.raises(ConfigError):
        ServiceParameters(base_service_s=0)
    with pytest.raises(ConfigError):
        ServiceParameters(buffer_queries=0)
    with pytest.raises(ConfigError):
        LimewirePeerModel().processed_qpm(-1)
