"""End-to-end DES scenario: churn + attack + DD-POLICE, full protocol.

The slowest, most complete test in the suite: every message is real,
peers churn, the attacker floods, and the defense runs its actual
exchange/monitor/recognize loop.

S(t) here is the origin-aware (good-only) metric, so the attack can no
longer "degrade" it just by stuffing its own unanswerable queries into
the denominator.  The degradation asserted below is genuine service
loss: processing capacity is low enough (400 qpm) that the flood
saturates peers and *user* queries get dropped.  Because churn makes
unpaired pre/post comparisons noisy, every assertion is a paired
comparison against a same-seed no-attack baseline -- identical RNG
streams mean the runs are event-for-event identical until the attack
starts (the pre-attack equality test pins that down).
"""

from dataclasses import replace

import pytest

from repro.churn.lifetimes import LifetimeConfig
from repro.churn.process import ChurnConfig
from repro.core.config import DDPoliceConfig
from repro.experiments.runner import DESConfig, run_des_experiment
from repro.overlay.network import NetworkConfig
from repro.overlay.topology import TopologyConfig
from repro.workload.generator import WorkloadConfig

SCENARIO = DESConfig(
    n=60,
    duration_s=420.0,
    seed=9,
    topology=TopologyConfig(n=60, ba_m=1, seed=9),  # tree: clean semantics
    # Low processing capacity so the flood genuinely saturates peers and
    # drops user queries -- real damage, not denominator pollution.
    network=NetworkConfig(processing_qpm_good=400.0),
    workload=WorkloadConfig(queries_per_minute=2.0, seed=9),
    churn=ChurnConfig(
        lifetime=LifetimeConfig(family="exponential", mean_s=240.0),
        offtime=LifetimeConfig(family="exponential", mean_s=120.0),
        enabled=True,
        seed=9,
    ),
    num_agents=3,
    attack_start_s=120.0,
    attack_rate_qpm=8_000.0,
    police=DDPoliceConfig(exchange_period_s=30.0),
)

# attack starts at minute 2; give the flood a window to bite and DD-POLICE
# time to run its first exchange/judge rounds before measuring the tail
TAIL_FROM_MINUTE = 4


def _mean_success(run, lo, hi=None):
    ms = [
        m
        for m in run.collector.minutes
        if m.minute >= lo and (hi is None or m.minute <= hi) and m.queries_issued
    ]
    assert ms
    return sum(m.success_rate for m in ms) / len(ms)


@pytest.fixture(scope="module")
def runs():
    baseline = run_des_experiment(replace(SCENARIO, num_agents=0))
    undefended = run_des_experiment(SCENARIO)
    defended = run_des_experiment(replace(SCENARIO, defense="ddpolice"))
    return baseline, undefended, defended


@pytest.mark.slow
def test_pre_attack_minutes_match_clean_baseline(runs):
    baseline, undefended, _ = runs
    # Same seed, and attack origins register only at attack start: the
    # first two minutes must be *identical*, not merely close.
    pre_base = [m for m in baseline.collector.minutes if m.minute <= 2]
    pre_atk = [m for m in undefended.collector.minutes if m.minute <= 2]
    assert [m.queries_issued for m in pre_base] == [
        m.queries_issued for m in pre_atk
    ]
    assert [m.success_rate for m in pre_base] == [
        m.success_rate for m in pre_atk
    ]
    assert all(m.attack_queries_issued == 0 for m in pre_atk)


@pytest.mark.slow
def test_attack_under_churn_degrades_service(runs):
    baseline, undefended, _ = runs
    base_tail = _mean_success(baseline, TAIL_FROM_MINUTE)
    atk_tail = _mean_success(undefended, TAIL_FROM_MINUTE)
    # observed: baseline ~0.92 vs attacked ~0.77; require a real gap, not
    # churn noise
    assert atk_tail < base_tail - 0.05


@pytest.mark.slow
def test_good_metric_diverges_from_all_traffic_under_attack(runs):
    _, undefended, _ = runs
    post = [
        m
        for m in undefended.collector.minutes
        if m.minute >= TAIL_FROM_MINUTE and m.attack_queries_issued
    ]
    assert post
    # The polluted (pre-fix) metric collapses toward zero because the
    # flood's bogus queries dominate the denominator; the good-only
    # metric stays in service-quality territory.
    for m in post:
        assert m.all_success_rate < m.success_rate
    all_tail = sum(m.all_success_rate for m in post) / len(post)
    good_tail = sum(m.success_rate for m in post) / len(post)
    assert all_tail < 0.2 < good_tail


@pytest.mark.slow
def test_ddpolice_expels_attackers_under_churn(runs):
    _, _, defended = runs
    assert defended.judgments is not None
    cut = defended.judgments.disconnected_suspects()
    # at least one attacker caught despite churn; ideally all three
    assert cut & defended.bad_peers


@pytest.mark.slow
def test_ddpolice_improves_service_under_attack(runs):
    _, undefended, defended = runs
    atk_tail = _mean_success(undefended, TAIL_FROM_MINUTE)
    dfd_tail = _mean_success(defended, TAIL_FROM_MINUTE)
    # observed: defended ~0.84 vs undefended ~0.77
    assert dfd_tail > atk_tail


@pytest.mark.slow
def test_protocol_overhead_is_bounded(runs):
    _, _, defended = runs
    stats = defended.network.stats
    # control traffic (lists, reports, pings) stays a small fraction of
    # query traffic even with the defense fully active and capacity
    # drops suppressing query forwarding
    assert stats.control_messages < 0.3 * stats.query_messages
