"""End-to-end DES scenario: churn + attack + DD-POLICE, full protocol.

The slowest, most complete test in the suite: every message is real,
peers churn, the attacker floods, and the defense runs its actual
exchange/monitor/recognize loop.
"""

from dataclasses import replace

import pytest

from repro.churn.lifetimes import LifetimeConfig
from repro.churn.process import ChurnConfig
from repro.core.config import DDPoliceConfig
from repro.experiments.runner import DESConfig, run_des_experiment
from repro.overlay.topology import TopologyConfig
from repro.workload.generator import WorkloadConfig

SCENARIO = DESConfig(
    n=60,
    duration_s=420.0,
    seed=9,
    topology=TopologyConfig(n=60, ba_m=1, seed=9),  # tree: clean semantics
    workload=WorkloadConfig(queries_per_minute=2.0, seed=9),
    churn=ChurnConfig(
        lifetime=LifetimeConfig(family="exponential", mean_s=240.0),
        offtime=LifetimeConfig(family="exponential", mean_s=120.0),
        enabled=True,
        seed=9,
    ),
    num_agents=2,
    attack_start_s=120.0,
    attack_rate_qpm=2500.0,
    police=DDPoliceConfig(exchange_period_s=30.0),
)


@pytest.fixture(scope="module")
def runs():
    undefended = run_des_experiment(SCENARIO)
    defended = run_des_experiment(replace(SCENARIO, defense="ddpolice"))
    return undefended, defended


@pytest.mark.slow
def test_attack_under_churn_degrades_service(runs):
    undefended, _ = runs
    collector = undefended.collector
    pre = [m for m in collector.minutes if m.time_s <= 120.0 and m.queries_issued]
    post = [m for m in collector.minutes if m.time_s > 180.0 and m.queries_issued]
    assert pre and post
    pre_rate = sum(m.success_rate for m in pre) / len(pre)
    post_rate = sum(m.success_rate for m in post) / len(post)
    assert post_rate < pre_rate


@pytest.mark.slow
def test_ddpolice_expels_attackers_under_churn(runs):
    _, defended = runs
    assert defended.judgments is not None
    cut = defended.judgments.disconnected_suspects()
    # at least one attacker caught despite churn; ideally both
    assert cut & defended.bad_peers


@pytest.mark.slow
def test_ddpolice_improves_service_under_attack(runs):
    undefended, defended = runs

    def tail_success(run):
        ms = [
            m
            for m in run.collector.minutes
            if m.time_s > 240.0 and m.queries_issued
        ]
        return sum(m.success_rate for m in ms) / max(1, len(ms))

    assert tail_success(defended) >= tail_success(undefended)


@pytest.mark.slow
def test_protocol_overhead_is_bounded(runs):
    _, defended = runs
    stats = defended.network.stats
    # control traffic (lists, reports, pings) stays a small fraction of
    # query traffic even with the defense fully active
    assert stats.control_messages < 0.2 * stats.query_messages
