"""Cross-validation: the fluid engine against the message-level DES.

The fluid model replaces per-message simulation with per-minute rates;
this test pins its accuracy on a static overlay where both engines are
given identical topology, workload, and capacity parameters.
"""

import numpy as np
import pytest

from repro.fluid.coverage import novelty_schedule
from repro.fluid.flows import build_edge_arrays, propagate_flows
from repro.overlay.ids import PeerId
from repro.overlay.network import NetworkConfig, OverlayNetwork
from repro.overlay.topology import TopologyConfig, generate_topology
from repro.simkit.engine import Simulator
from repro.simkit.rng import RngRegistry
from repro.workload.generator import QueryWorkload, WorkloadConfig


@pytest.fixture(scope="module")
def matched_runs():
    """Run both engines over the same 60-node BA graph, uncongested."""
    n = 60
    rate_qpm = 6.0
    topo = generate_topology(TopologyConfig(n=n, ba_m=2, seed=5))

    # --- message-level DES: measure steady-state messages/minute -------
    sim = Simulator()
    net = OverlayNetwork(
        sim,
        topo,
        config=NetworkConfig(hop_latency_jitter_s=0.0, seed=5),
        rng_registry=RngRegistry(5),
    )
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=rate_qpm, seed=5))
    wl.start()
    sim.run(until=300.0)
    des_msgs_per_min = net.stats.query_messages / 5.0
    des_queries_per_min = wl.issued / 5.0

    # --- fluid engine on the identical graph ---------------------------
    adj = {u: set(vs) for u, vs in enumerate(topo.adjacency)}
    src, dst, rev = build_edge_arrays(adj)
    sigma = novelty_schedule(topo.degrees(), 7, n=n)
    flow = propagate_flows(
        src,
        dst,
        rev,
        n,
        good_rate=np.full(n, rate_qpm),
        attack_edge_inject=np.zeros(len(src)),
        capacity=np.full(n, 1e12),
        ttl=7,
        sigma=sigma,
    )
    return {
        "des_msgs_per_min": des_msgs_per_min,
        "des_queries_per_min": des_queries_per_min,
        "fluid_msgs_per_min": flow.total_messages_per_min,
        "fluid_queries_per_min": flow.good_injected,
        "n": n,
        "rate": rate_qpm,
    }


def test_issue_rates_match(matched_runs):
    m = matched_runs
    assert m["des_queries_per_min"] == pytest.approx(
        m["fluid_queries_per_min"], rel=0.15
    )


def test_total_message_volume_within_model_error(matched_runs):
    """The novelty approximation should land within ~40% of the exact
    per-message count -- the documented accuracy of the substitution."""
    m = matched_runs
    ratio = m["fluid_msgs_per_min"] / m["des_msgs_per_min"]
    assert 0.6 < ratio < 1.4, f"fluid/DES message ratio {ratio:.2f}"


def test_amplification_factor_sane(matched_runs):
    """Each query should generate on the order of 2x|E| transmissions on
    a fully covered graph, in both engines."""
    m = matched_runs
    for key in ("des_msgs_per_min", "fluid_msgs_per_min"):
        amplification = m[key] / (m["n"] * m["rate"])
        assert amplification > 10  # far more messages than queries
