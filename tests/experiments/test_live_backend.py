"""Cross-backend validation: the live UDP testbed agrees with the DES.

The message-level DES is the repo's ground-truth oracle; the ``live``
backend replays the same registered agent-sweep scenario over real
loopback sockets and OS processes. Running one spec through both must
reproduce the paper's qualitative Figure 9-11 claims on each: the
attack inflates traffic and depresses the success rate, and DD-POLICE
cuts the flooder and restores the success rate toward its no-attack
level.

The spec exercises the documented live scale adaptation: the abstract
scenario runs n=100 peers, the swarm caps at the ``LiveSpec`` size
(10 processes) with the agent count scaled to keep attack density.
Workload rates keep the no-attack regime under the per-peer capacity
on the DES side (flooding delivers every query to every peer, so 3
qpm x 100 peers ~ 300 qpm incoming) while the 2000-qpm flooder
saturates its neighborhood on both backends.

The live swarm measures real wall-clock behaviour, so its numbers are
nondeterministic run to run; margins below are directional, not exact,
and were chosen ~3x wider than observed run-to-run spread.
"""

import pytest

from repro.core.config import DDPoliceConfig
from repro.experiments.library import run_spec
from repro.experiments.scenarios import Scale
from repro.experiments.spec import ExperimentSpec, GridSpec, WorkloadSpec
from repro.live.spec import LiveSpec


def _spec(backend: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"live-xback-{backend}",
        scenario="agent-sweep",
        backend=backend,
        seed=7,
        scale=Scale(
            name="xlive", n_peers=100, sim_minutes=8, attack_start_min=1, trials=1
        ),
        police=DDPoliceConfig(exchange_period_s=30.0, q_threshold_qpm=10.0),
        workload=WorkloadSpec(
            queries_per_minute=3.0,
            attack_rate_qpm=2000.0,
            capacity_qpm=400.0,
            cheat_strategy="honest",
        ),
        grid=GridSpec(agent_counts=(1,)),
        live=LiveSpec(name="xback", n_nodes=10, minute_s=0.5),
    )


@pytest.fixture(scope="module", params=["des", "live"])
def row(request):
    # The live backend spawns a 10-process swarm per case; one worker
    # keeps the three swarms sequential so they never fight for ports
    # or CPU (which would distort the wall-clock minute windows).
    workers = 1 if request.param == "live" else 4
    run = run_spec(_spec(request.param), workers=workers, cache=False)
    assert run.cases == 3
    return run.data[0]


@pytest.mark.slow
def test_attack_raises_traffic_cost(row):
    assert row.traffic_attack_k > 1.2 * row.traffic_no_ddos_k, row


@pytest.mark.slow
def test_attack_depresses_success_rate(row):
    assert row.success_attack < row.success_no_ddos - 0.1, row


@pytest.mark.slow
def test_ddpolice_recovers_success_rate(row):
    assert row.success_defended > row.success_attack + 0.1, row
    assert row.success_defended > row.success_no_ddos - 0.25, row
