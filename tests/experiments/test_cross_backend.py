"""Cross-backend smoke: the fluid and DES engines agree directionally.

The paper's figures run on the fluid model; the message-level DES is
the ground-truth oracle at small N. Running the *same* registered
agent-sweep scenario through both backends at n=400 must reproduce the
paper's qualitative claims on each: the attack inflates traffic cost
and depresses the success rate, and DD-POLICE restores the success rate
to near its no-attack level.

Rates are scaled for the message-level run (the DESConfig convention:
keep ratios, not absolutes): agents send 600 qpm -- above the paper's
500 qpm warning threshold so detection fires -- and ``capacity_qpm``
is lowered so that the flood saturates peer processing at this scale
exactly as the paper's 20,000 qpm nominal attack saturates the
Section 2.3 capacity anchors at full scale.
"""

import pytest

from repro.experiments.library import run_spec
from repro.experiments.scenarios import Scale
from repro.experiments.spec import ExperimentSpec, GridSpec, WorkloadSpec


def _spec(backend: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"cross-backend-{backend}",
        scenario="agent-sweep",
        backend=backend,
        seed=5,
        scale=Scale(
            name="xback", n_peers=400, sim_minutes=6, attack_start_min=1, trials=1
        ),
        workload=WorkloadSpec(
            queries_per_minute=0.3,
            attack_rate_qpm=600.0,
            capacity_qpm=400.0,
            cheat_strategy="honest",
        ),
        grid=GridSpec(agent_counts=(1,)),
    )


@pytest.fixture(scope="module", params=["fluid", "des"])
def row(request):
    run = run_spec(_spec(request.param), workers=4, cache=False)
    assert run.cases == 3
    return run.data[0]


def test_attack_raises_traffic_cost(row):
    assert row.traffic_attack_k > 1.5 * row.traffic_no_ddos_k, row


def test_attack_depresses_success_rate(row):
    assert row.success_attack < row.success_no_ddos - 0.04, row


def test_ddpolice_recovers_success_rate(row):
    assert row.success_defended > row.success_attack + 0.04, row
    assert row.success_defended > row.success_no_ddos - 0.03, row
