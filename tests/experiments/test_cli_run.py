"""Unit tests for the generic `repro run` spec-runner subcommand."""

import json

import pytest

from repro.cli import main
from repro.experiments.spec import get_spec, list_specs, spec_sha256
from repro.obs.manifest import load_manifest, verify_manifest


def test_run_list_enumerates_every_spec(capsys):
    assert main(["run", "--list"]) == 0
    out = capsys.readouterr().out
    for spec in list_specs():
        assert spec.name in out
        assert spec.scenario in out


def test_run_paths_lists_override_paths(capsys):
    assert main(["run", "--paths"]) == 0
    out = capsys.readouterr().out.splitlines()
    for path in (
        "police.cut_threshold",
        "scale.n_peers",
        "workload.capacity_qpm",
        "faults.trials",
        "grid.agent_counts",
    ):
        assert path in out


def test_run_without_specs_is_an_error(capsys):
    assert main(["run"]) == 2
    assert "no specs given" in capsys.readouterr().err


def test_run_unknown_spec_is_an_error(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown spec" in err and "fig9" in err


def test_run_unknown_override_path_is_an_error(capsys):
    assert main(["run", "fig5", "--set", "police.cut_treshold=7"]) == 2
    err = capsys.readouterr().err
    assert "unknown key" in err and "cut_threshold" in err


def test_run_invalid_override_value_is_an_error(capsys):
    assert main(["run", "fig9", "--scale", "smoke", "--set", "scale.n_peers=10"]) == 2
    assert "invalid --set scale.n_peers" in capsys.readouterr().err


def test_run_fig5_prints_table_and_provenance(capsys):
    from repro.experiments.library import spec_at_scale

    assert main(["run", "fig5", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    # The hash covers the spec as resolved (scale retarget included).
    sha = spec_sha256(spec_at_scale(get_spec("fig5"), "smoke"))
    assert f"# spec fig5 sha256={sha[:12]}" in out


def test_run_with_override_changes_the_hash(capsys):
    from repro.experiments.library import spec_at_scale

    assert main(
        ["run", "fig5", "--scale", "smoke", "--set", "police.cut_threshold=7"]
    ) == 0
    out = capsys.readouterr().out
    sha = spec_sha256(spec_at_scale(get_spec("fig5"), "smoke"))
    assert sha[:12] not in out


def test_run_out_writes_tables_with_manifest(tmp_path, capsys):
    assert main(["run", "fig5", "--scale", "smoke", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    artifact = tmp_path / "fig05_processed.txt"
    assert artifact.exists()
    assert f"# wrote {artifact}" in out
    assert artifact.read_text().rstrip("\n") in out
    manifest = load_manifest(tmp_path / "fig05_processed.manifest.json")
    assert manifest["kind"] == "spec-run"
    assert manifest["extra"]["spec_name"] == "fig5"
    sidecar_sha = manifest["extra"]["spec_sha256"]
    assert sidecar_sha == json.loads(json.dumps(sidecar_sha))  # plain string


def test_run_manifest_verifies_against_the_resolved_spec(tmp_path):
    from repro.experiments.library import spec_at_scale

    assert main(["run", "fig5", "--scale", "smoke", "--out", str(tmp_path)]) == 0
    manifest = load_manifest(tmp_path / "fig05_processed.manifest.json")
    resolved = spec_at_scale(get_spec("fig5"), "smoke")
    assert verify_manifest(manifest, config=resolved)
    assert manifest["extra"]["spec_sha256"] == spec_sha256(resolved)


def test_run_rejects_bad_assignment_syntax(capsys):
    assert main(["run", "fig5", "--set", "police.cut_threshold"]) == 2
    assert "bad --set assignment" in capsys.readouterr().err


def test_run_backend_choice_validated():
    with pytest.raises(SystemExit):
        main(["run", "fig5", "--backend", "ns3"])
