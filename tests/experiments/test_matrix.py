"""Unit tests for the robustness-matrix scenario plumbing."""

import pytest

from repro.errors import ConfigError
from repro.experiments.library import (
    MatrixRow,
    _matrix_axes,
    format_robustness_matrix,
    run_spec,
    spec_at_scale,
)
from repro.experiments.spec import get_spec

TINY_OVERRIDES = {
    "matrix.n_peers": "20",
    "matrix.sim_minutes": "3",
    "matrix.attack_start_min": "1",
    "matrix.trials": "1",
    "matrix.num_agents": "1",
    "grid.defenses": "paper",
    "grid.adversaries": "throttle",
    "grid.topologies": "ba",
}


@pytest.fixture(scope="module")
def tiny_run():
    return run_spec(
        "robustness-matrix", overrides=TINY_OVERRIDES, workers=1, cache=False
    )


def test_tiny_matrix_shape(tiny_run):
    assert tiny_run.cases == 2  # one clean baseline + one attacked cell
    (row,) = tiny_run.data
    assert (row.defense, row.adversary, row.topology) == ("paper", "throttle", "ba")
    assert row.total_attackers == 1
    assert row.trials == 1


def test_tiny_matrix_metrics_in_range(tiny_run):
    (row,) = tiny_run.data
    censored = (3 - 1) * 60.0
    assert 0.0 <= row.detection_latency_s <= censored
    assert 0.0 <= row.caught_attackers <= row.total_attackers
    assert row.false_negative >= 0.0
    assert 0.0 <= row.damage_pct <= 100.0


def test_tiny_matrix_table_renders(tiny_run):
    table = tiny_run.tables["robustness_matrix"]
    assert "defense" in table and "latency_s" in table
    assert "paper" in table and "throttle" in table


def test_explicit_grid_axes_win_over_defaults():
    spec = spec_at_scale(get_spec("robustness-matrix"), "smoke")
    assert _matrix_axes(spec) == (
        ("paper", "traceback"), ("static", "throttle", "pulse"), ("ba",)
    )
    bench = get_spec("robustness-matrix")
    defenses, adversaries, topologies = _matrix_axes(bench)
    assert "hardened" in defenses
    assert set(adversaries) == {"static", "throttle", "collude", "churn", "pulse"}
    assert "bittorrent" in topologies


def test_format_includes_censoring_legend():
    ms = spec_at_scale(get_spec("robustness-matrix"), "smoke").matrix
    row = MatrixRow(
        defense="paper", adversary="static", topology="ba",
        detection_latency_s=65.0, caught_attackers=2.0, total_attackers=2,
        false_negative=0.0, damage_pct=12.5, trials=1,
    )
    table = format_robustness_matrix(ms, [row])
    assert "censored" in table
    assert "2.0/2" in table


def test_collude_requires_matching_cheat():
    from repro.attack.adaptive import AdaptiveConfig
    from repro.experiments.runner import DESConfig

    with pytest.raises(ConfigError, match="requires cheat_strategy 'collude'"):
        DESConfig(
            n=20, num_agents=2, adaptive=AdaptiveConfig(strategy="collude")
        )
