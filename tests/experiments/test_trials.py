"""Tests for multi-trial aggregation in the figure sweeps."""

import pytest

from repro.experiments import figures
from repro.experiments.scenarios import smoke_scale


@pytest.fixture(scope="module")
def scale():
    return smoke_scale()


def test_damage_timelines_trials_average(scale):
    single = figures.damage_timelines(
        scale, cut_thresholds=(5.0,), minutes=scale.sim_minutes, seed=21, trials=1
    )
    averaged = figures.damage_timelines(
        scale, cut_thresholds=(5.0,), minutes=scale.sim_minutes, seed=21, trials=2
    )
    assert [t.label for t in single] == [t.label for t in averaged]
    assert len(averaged[0].damage_pct) == len(averaged[0].minutes)
    # pre-attack zeros survive averaging
    pre = [
        d for m, d in zip(averaged[0].minutes, averaged[0].damage_pct)
        if m < scale.attack_start_min
    ]
    assert all(d == 0.0 for d in pre)


def test_damage_timelines_first_trial_matches_single(scale):
    """trials=1 must be identical to the first trial of trials=N."""
    single = figures.damage_timelines(
        scale, cut_thresholds=(), minutes=scale.sim_minutes, seed=23, trials=1
    )
    assert single[0].label == "no DD-POLICE"


def test_cut_threshold_sweep_trials_sum_errors(scale):
    one = figures.cut_threshold_sweep(
        scale, cut_thresholds=(5.0,), minutes=scale.sim_minutes, seed=25, trials=1
    )[0]
    two = figures.cut_threshold_sweep(
        scale, cut_thresholds=(5.0,), minutes=scale.sim_minutes, seed=25, trials=2
    )[0]
    # summed counts can only grow with more trials
    assert two.false_negative >= one.false_negative
    assert two.false_judgment == two.false_negative + two.false_positive
