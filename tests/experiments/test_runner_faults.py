"""Fault-plan wiring through the DES experiment runner."""

from dataclasses import replace

import pytest

from repro.core.config import DDPoliceConfig
from repro.errors import ConfigError
from repro.experiments.runner import DESConfig, run_des_experiment
from repro.experiments.scenarios import FaultSweepSpec, fault_sweep_spec
from repro.experiments.sweeps import FAULT_PROFILES, fault_sweep, format_fault_sweep
from repro.faults.plan import CrashRule, FaultPlan
from repro.overlay.topology import TopologyConfig


def test_runner_skips_injector_for_empty_plan():
    run = run_des_experiment(DESConfig(n=10, duration_s=30.0, seed=5))
    assert run.injector is None
    assert run.network.fault_injector is None
    assert run.network.stats.messages_dropped_fault == 0


def test_runner_attaches_injector_and_protects_attackers():
    cfg = DESConfig(
        n=20,
        duration_s=120.0,
        seed=5,
        topology=TopologyConfig(n=20, ba_m=1, seed=5),
        num_agents=2,
        attack_rate_qpm=600.0,
        defense="ddpolice",
        police=DDPoliceConfig(exchange_period_s=30.0),
        faults=FaultPlan.control_loss(0.2),
    )
    run = run_des_experiment(cfg)
    assert run.injector is not None
    assert run.network.fault_injector is run.injector
    # Random crash/fail-slow victims are drawn from the good population:
    # the ground-truth error accounting needs the attackers alive.
    assert set(run.injector._protected) == set(run.bad_peers)
    assert run.injector.stats.messages_dropped > 0
    assert run.network.stats.messages_dropped_fault == run.injector.stats.messages_dropped


def test_runner_executes_scheduled_crashes():
    cfg = DESConfig(
        n=10,
        duration_s=30.0,
        seed=6,
        faults=FaultPlan(crashes=(CrashRule(at_s=10.0, count=2),)),
    )
    run = run_des_experiment(cfg)
    assert run.injector is not None
    assert len(run.injector.crashed) == 2
    for pid in run.injector.crashed:
        assert not run.network.peers[pid].online


# ---------------------------------------------------------------------------
# fault-sweep plumbing
# ---------------------------------------------------------------------------

TINY_SPEC = FaultSweepSpec(
    name="tiny",
    n_peers=20,
    sim_minutes=3,
    attack_start_min=1,
    trials=1,
    loss_fractions=(0.3,),
    crash_counts=(0,),
    num_agents=1,
    attack_rate_qpm=600.0,
)


def test_fault_sweep_produces_one_point_per_cell_and_profile():
    points = fault_sweep(TINY_SPEC, seed0=2)
    assert len(points) == len(FAULT_PROFILES)
    assert {p.profile for p in points} == set(FAULT_PROFILES)
    for p in points:
        assert p.loss == 0.3 and p.crashes == 0 and p.trials == 1
        assert p.false_negative >= 0.0 and p.false_positive >= 0.0
    table = format_fault_sweep(TINY_SPEC, points)
    assert "paper" in table and "hardened" in table


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n_peers": 5},
        {"sim_minutes": 1},  # not past attack_start_min
        {"trials": 0},
        {"loss_fractions": ()},
        {"loss_fractions": (1.5,)},
        {"crash_counts": (-1,)},
        {"num_agents": 0},
        {"attack_rate_qpm": 0.0},
    ],
)
def test_fault_sweep_spec_validation(kwargs):
    with pytest.raises(ConfigError):
        replace(TINY_SPEC, **kwargs)


def test_fault_sweep_spec_for_active_scale_is_valid():
    spec = fault_sweep_spec()
    assert spec.loss_fractions[0] == 0.0  # always includes a clean column
    assert spec.trials >= 1
