"""Unit tests for sparkline/timeline rendering."""

import pytest

from repro.errors import ConfigError
from repro.experiments.reporting import render_timelines, sparkline


def test_sparkline_extremes():
    s = sparkline([0.0, 100.0], lo=0.0, hi=100.0)
    assert s[0] == " " and s[-1] == "@"


def test_sparkline_length_matches():
    assert len(sparkline(list(range(17)))) == 17


def test_sparkline_constant_series():
    assert sparkline([5.0, 5.0, 5.0]) == "   "


def test_sparkline_clamps_out_of_range():
    s = sparkline([-10.0, 200.0], lo=0.0, hi=100.0)
    assert s == " @"


def test_sparkline_monotone_levels():
    s = sparkline([float(i) for i in range(10)], lo=0.0, hi=9.0)
    # non-decreasing character intensity
    levels = " .:-=+*#%@"
    assert [levels.index(c) for c in s] == sorted(levels.index(c) for c in s)


def test_sparkline_empty_rejected():
    with pytest.raises(ConfigError):
        sparkline([])
    with pytest.raises(ConfigError):
        sparkline([1.0], lo=5.0, hi=1.0)


def test_render_timelines_alignment():
    out = render_timelines(
        ["short", "a-much-longer-label"],
        [[0, 50, 100], [100, 50, 0]],
        title="T",
        hi=100.0,
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].index("|") == lines[2].index("|")


def test_render_timelines_validation():
    with pytest.raises(ConfigError):
        render_timelines(["a"], [[1], [2]])
    with pytest.raises(ConfigError):
        render_timelines([], [])
