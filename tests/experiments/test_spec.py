"""Unit tests for the declarative experiment-spec layer."""

import pytest

from repro.core.config import DDPoliceConfig
from repro.errors import ConfigError
from repro.experiments.library import list_scenarios, spec_at_scale
from repro.experiments.spec import (
    ExperimentSpec,
    GridSpec,
    WorkloadSpec,
    apply_overrides,
    get_backend,
    get_spec,
    list_backends,
    list_specs,
    override_paths,
    parse_assignments,
    scenario_sha256,
    spec_from_jsonable,
    spec_sha256,
    spec_to_jsonable,
)

ALL_SPECS = (
    "fig5",
    "fig6",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig12-stabilized",
    "fig13",
    "fig14",
    "exchange",
    "fault-sweep",
    "robustness-matrix",
    "sketch-frontier",
)


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------

def test_every_paper_figure_is_registered():
    assert [s.name for s in list_specs()] == sorted(ALL_SPECS)


def test_unknown_spec_lists_registered():
    with pytest.raises(ConfigError, match="unknown spec 'fig99'.*fig9"):
        get_spec("fig99")


def test_unknown_backend_lists_registered():
    with pytest.raises(ConfigError, match="unknown backend 'ns3'.*des.*fluid"):
        get_backend("ns3")


def test_backend_registry_has_fluid_and_des():
    assert [b.name for b in list_backends()] == ["des", "des-soa", "fluid", "live"]


def test_every_spec_scenario_and_tables_resolve():
    scenarios = {s.name: s for s in list_scenarios()}
    for spec in list_specs():
        assert spec.scenario in scenarios, spec.name
        assert set(spec.tables) <= set(scenarios[spec.scenario].tables), spec.name


# ---------------------------------------------------------------------------
# JSON round-trip
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_SPECS)
def test_spec_json_roundtrip(name):
    spec = get_spec(name)
    doc = spec_to_jsonable(spec)
    assert spec_from_jsonable(doc) == spec
    assert spec_sha256(spec_from_jsonable(doc)) == spec_sha256(spec)


def test_from_jsonable_rejects_unknown_keys():
    doc = spec_to_jsonable(get_spec("fig9"))
    doc["polise"] = {}
    with pytest.raises(ConfigError, match="unknown key.*polise.*valid keys"):
        spec_from_jsonable(doc)


def test_from_jsonable_rejects_wrong_types():
    doc = spec_to_jsonable(get_spec("fig9"))
    doc["seed"] = "seven"
    with pytest.raises(ConfigError, match="spec.seed.*expected an integer"):
        spec_from_jsonable(doc)


def test_figures_9_10_11_share_the_scenario_hash():
    hashes = {scenario_sha256(get_spec(n)) for n in ("fig9", "fig10", "fig11")}
    assert len(hashes) == 1
    # ... while the full provenance hash still tells them apart.
    assert len({spec_sha256(get_spec(n)) for n in ("fig9", "fig10", "fig11")}) == 3


# ---------------------------------------------------------------------------
# dotted-path overrides
# ---------------------------------------------------------------------------

def test_parse_assignments():
    assert parse_assignments(["a.b=1", "c= x "]) == {"a.b": "1", "c": "x"}


def test_parse_assignments_rejects_missing_equals():
    with pytest.raises(ConfigError, match="bad --set assignment"):
        parse_assignments(["police.cut_threshold"])


def test_override_each_config_layer():
    spec = get_spec("fig13")
    out = apply_overrides(
        spec,
        parse_assignments(
            [
                "police.cut_threshold=7",
                "scale.n_peers=500",
                "workload.issue_rate_qpm=0.5",
                "faults.trials=1",
                "grid.cut_thresholds=3,5",
                "trials=2",
            ]
        ),
    )
    assert out.police.cut_threshold == 7.0
    assert out.scale.n_peers == 500
    assert out.workload.issue_rate_qpm == 0.5
    assert out.faults.trials == 1
    assert out.grid.cut_thresholds == (3.0, 5.0)
    assert out.trials == 2
    assert spec == get_spec("fig13")  # original untouched (frozen tree)


def test_unknown_path_lists_valid_keys():
    with pytest.raises(ConfigError, match="unknown key 'police.cut_treshold'.*cut_threshold"):
        apply_overrides(get_spec("fig13"), {"police.cut_treshold": "7"})


def test_unknown_top_level_key_lists_valid_keys():
    with pytest.raises(ConfigError, match="unknown key 'polise.x'.*valid keys.*police"):
        apply_overrides(get_spec("fig13"), {"polise.x": "7"})


def test_section_path_without_leaf_rejected():
    with pytest.raises(ConfigError, match="config section, not a value"):
        apply_overrides(get_spec("fig13"), {"police": "7"})


def test_invariant_violation_names_the_path():
    # Scale requires n_peers >= 100; the error carries the dotted path.
    with pytest.raises(ConfigError, match="invalid --set scale.n_peers"):
        apply_overrides(get_spec("fig9"), {"scale.n_peers": "10"})


def test_non_numeric_value_rejected_with_path():
    with pytest.raises(ConfigError, match="police.cut_threshold.*not a number"):
        apply_overrides(get_spec("fig9"), {"police.cut_threshold": "many"})


def test_bool_and_tuple_coercion():
    out = apply_overrides(
        get_spec("fig12"),
        {"police.assume_zero_on_missing": "false", "grid.cut_thresholds": "2.5"},
    )
    assert out.police.assume_zero_on_missing is False
    assert out.grid.cut_thresholds == (2.5,)


def test_override_paths_cover_every_layer():
    paths = override_paths()
    for expected in (
        "seed",
        "trials",
        "scale.n_peers",
        "police.cut_threshold",
        "workload.attack_rate_qpm",
        "faults.loss_fractions",
        "grid.agent_counts",
    ):
        assert expected in paths


def test_overridden_spec_roundtrips_through_json():
    out = apply_overrides(
        get_spec("fig13"), {"police.cut_threshold": "7", "scale.n_peers": "500"}
    )
    assert spec_from_jsonable(spec_to_jsonable(out)) == out


# ---------------------------------------------------------------------------
# scale retargeting
# ---------------------------------------------------------------------------

def test_spec_at_scale_by_name():
    spec = spec_at_scale(get_spec("fig9"), "smoke")
    assert spec.scale.n_peers == 300
    assert spec.faults.name == "smoke"


def test_spec_at_scale_swaps_matrix_sizing():
    spec = spec_at_scale(get_spec("robustness-matrix"), "smoke")
    assert spec.matrix.name == "smoke"
    assert spec.matrix.trials == 1


def test_spec_at_scale_unknown_name():
    with pytest.raises(ConfigError, match="unknown scale 'galactic'"):
        spec_at_scale(get_spec("fig9"), "galactic")


# ---------------------------------------------------------------------------
# spec dataclass validation
# ---------------------------------------------------------------------------

def test_workload_validation():
    with pytest.raises(ConfigError, match="attack_rate_qpm must be positive"):
        WorkloadSpec(attack_rate_qpm=0.0)
    with pytest.raises(ConfigError, match="unknown cheat_strategy"):
        WorkloadSpec(cheat_strategy="psychic")


def test_grid_validation():
    with pytest.raises(ConfigError, match="cut_thresholds must be positive"):
        GridSpec(cut_thresholds=(0.0,))
    with pytest.raises(ConfigError, match="periods_min must be >= 1"):
        GridSpec(periods_min=(0,))


def test_grid_matrix_axes_validated():
    with pytest.raises(ConfigError, match="unknown strategy 'stealth'"):
        GridSpec(adversaries=("stealth",))
    with pytest.raises(ConfigError, match="unknown.*model"):
        GridSpec(topologies=("torus",))
    with pytest.raises(ConfigError, match="unknown defense 'firewall'"):
        GridSpec(defenses=("firewall",))


def test_grid_agents_cannot_exceed_population():
    # k > n dies at spec construction, before any case is built.
    with pytest.raises(ConfigError, match="cannot compromise.*k must not exceed"):
        apply_overrides(
            get_spec("fig9"),
            {"grid.agents": "999999", "scale.n_peers": "300"},
        )


def test_adversary_knobs_overridable_by_dotted_path():
    out = apply_overrides(
        get_spec("robustness-matrix"),
        {"adversary.strategy": "pulse", "adversary.pulse_duty": "0.25"},
    )
    assert out.adversary.strategy == "pulse"
    assert out.adversary.pulse_duty == 0.25
    with pytest.raises(ConfigError, match="invalid --set adversary.strategy"):
        apply_overrides(
            get_spec("robustness-matrix"), {"adversary.strategy": "stealth"}
        )


def test_matrix_num_agents_bounds():
    from repro.experiments.scenarios import MatrixSpec

    with pytest.raises(ConfigError, match="0 < k < n"):
        MatrixSpec(
            name="x", n_peers=20, sim_minutes=5, attack_start_min=1,
            trials=1, num_agents=20, attack_rate_qpm=600.0,
        )


def test_case_rejects_overfull_botnet():
    from repro.experiments.spec import Case

    with pytest.raises(ConfigError, match="k must not exceed n"):
        Case(n=10, minutes=3, seed=0, num_agents=11)


def test_fluid_backend_rejects_des_only_features():
    from repro.attack.adaptive import AdaptiveConfig
    from repro.experiments.spec import Case

    task = get_backend("fluid").task_fn
    with pytest.raises(ConfigError, match="adaptive strategy.*DES only"):
        task(Case(n=300, minutes=3, seed=0,
                  adaptive=AdaptiveConfig(strategy="pulse")))
    with pytest.raises(ConfigError, match="topology.*DES only"):
        task(Case(n=300, minutes=3, seed=0, topology="bittorrent"))
    with pytest.raises(ConfigError, match="traceback.*DES only"):
        task(Case(n=300, minutes=3, seed=0, defense="traceback"))


def test_spec_validation():
    with pytest.raises(ConfigError, match="trials must be >= 1"):
        ExperimentSpec(name="x", scenario="agent-sweep", trials=0)
    with pytest.raises(ConfigError, match="name must be non-empty"):
        ExperimentSpec(name="", scenario="agent-sweep")


def test_specs_are_frozen():
    spec = get_spec("fig9")
    with pytest.raises(AttributeError):
        spec.seed = 1
    with pytest.raises(AttributeError):
        spec.police.cut_threshold = 1.0


def test_default_police_matches_paper_constants():
    spec = get_spec("fig9")
    assert spec.police == DDPoliceConfig()
    assert spec.seed == 7
