"""Integration tests for the DES experiment runner."""

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import DESConfig, run_des_experiment
from repro.overlay.topology import TopologyConfig
from repro.workload.generator import WorkloadConfig


from repro.core.config import DDPoliceConfig

# Tree topology (ba_m=1): attack queries cannot echo back to their
# issuer, so detection semantics are clean at this tiny scale (see
# tests/core/test_police.py::test_cyclic_echo_neutralizes_indicator).
SMALL = DESConfig(
    n=40,
    duration_s=240.0,
    seed=1,
    topology=TopologyConfig(n=40, ba_m=1, seed=1),
    workload=WorkloadConfig(queries_per_minute=2.0, seed=1),
    police=DDPoliceConfig(exchange_period_s=30.0),
)


def test_clean_run_mostly_succeeds():
    run = run_des_experiment(SMALL)
    assert run.success_rate > 0.5
    assert run.mean_response_time is not None and run.mean_response_time > 0
    assert run.total_messages > 0


def test_attack_raises_traffic():
    from dataclasses import replace

    clean = run_des_experiment(SMALL)
    attacked = run_des_experiment(
        replace(SMALL, num_agents=2, attack_rate_qpm=1200.0)
    )
    assert attacked.total_messages > 2 * clean.total_messages
    assert attacked.bad_peers and len(attacked.bad_peers) == 2


def test_ddpolice_cuts_attackers():
    from dataclasses import replace

    run = run_des_experiment(
        replace(SMALL, num_agents=2, attack_rate_qpm=3000.0, defense="ddpolice")
    )
    errors = run.error_counts()
    assert errors.false_positive == 0  # both attackers identified
    cut = run.judgments.disconnected_suspects()
    assert run.bad_peers <= cut


def test_naive_defense_active():
    from dataclasses import replace

    run = run_des_experiment(
        replace(SMALL, num_agents=2, attack_rate_qpm=3000.0, defense="naive")
    )
    assert run.judgments is not None
    assert run.judgments.disconnected_suspects()


def test_churn_enabled_run():
    from dataclasses import replace

    from repro.churn.lifetimes import LifetimeConfig
    from repro.churn.process import ChurnConfig

    cfg = replace(
        SMALL,
        churn=ChurnConfig(
            lifetime=LifetimeConfig(family="exponential", mean_s=60.0),
            offtime=LifetimeConfig(family="exponential", mean_s=60.0),
            enabled=True,
        ),
    )
    run = run_des_experiment(cfg)
    assert run.churn is not None
    assert run.churn.leaves > 0


def test_error_counts_without_defense_rejected():
    run = run_des_experiment(SMALL)
    with pytest.raises(ConfigError):
        run.error_counts()


def test_reproducibility():
    a = run_des_experiment(SMALL)
    b = run_des_experiment(SMALL)
    assert a.total_messages == b.total_messages
    assert a.success_rate == b.success_rate


def test_bandwidth_enabled_run():
    """DES attack with Saroiu link enforcement drops excess in flight."""
    from dataclasses import replace

    from repro.overlay.network import NetworkConfig

    cfg = replace(
        SMALL,
        network=NetworkConfig(bandwidth_enabled=True, seed=1),
        num_agents=2,
        attack_rate_qpm=30_000.0,
    )
    run = run_des_experiment(cfg)
    assert run.network.stats.messages_dropped_bandwidth > 0


def test_config_validation():
    with pytest.raises(ConfigError):
        DESConfig(n=1)
    with pytest.raises(ConfigError):
        DESConfig(defense="magic")
    with pytest.raises(ConfigError):
        DESConfig(n=5, num_agents=6)
    with pytest.raises(ConfigError):
        run_des_experiment(DESConfig(n=10, topology=TopologyConfig(n=20)))
