"""Unit tests for experiment scales."""

import pytest

from repro.errors import ConfigError
from repro.experiments.scenarios import (
    PAPER_AGENT_FRACTIONS,
    Scale,
    active_scale,
    bench_scale,
    paper_scale,
    smoke_scale,
)


def test_paper_scale_matches_paper():
    scale = paper_scale()
    assert scale.n_peers == 20_000
    assert scale.agent_counts() == [10, 20, 50, 100, 200]


def test_bench_scale_preserves_densities():
    scale = bench_scale()
    for agents, frac in zip(scale.agent_counts(), PAPER_AGENT_FRACTIONS):
        assert agents == pytest.approx(frac * scale.n_peers, abs=1)


def test_paper_equivalent_agents():
    scale = bench_scale()
    assert scale.paper_equivalent_agents(10) == 100
    assert paper_scale().paper_equivalent_agents(100) == 100


def test_active_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "paper")
    assert active_scale().name == "paper"
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    assert active_scale().name == "smoke"
    monkeypatch.delenv("REPRO_SCALE")
    assert active_scale().name == "bench"
    monkeypatch.setenv("REPRO_SCALE", "galaxy")
    with pytest.raises(ConfigError):
        active_scale()


def test_scale_validation():
    with pytest.raises(ConfigError):
        Scale(name="x", n_peers=10, sim_minutes=10, attack_start_min=1, trials=1)
    with pytest.raises(ConfigError):
        Scale(name="x", n_peers=200, sim_minutes=5, attack_start_min=5, trials=1)
    with pytest.raises(ConfigError):
        Scale(name="x", n_peers=200, sim_minutes=10, attack_start_min=1, trials=0)


def test_smoke_scale_small():
    assert smoke_scale().n_peers <= 500
