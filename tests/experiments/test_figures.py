"""Smoke-level tests for the per-figure experiment functions.

These use the smoke scale; the shape assertions mirror the paper's
qualitative claims, while the benchmarks print the full tables.
"""

import pytest

from repro.experiments import figures
from repro.experiments.scenarios import smoke_scale


@pytest.fixture(scope="module")
def sweep():
    scale = smoke_scale()
    # widely separated agent counts: smoke scale (300 peers) is noisy
    return figures.agent_sweep(scale, seed=3, agent_counts=[1, 8])


def test_fig5_shape():
    pts = figures.fig5_processed_vs_sent()
    assert pts[0] == (1000.0, 1000.0)
    processed = [y for _, y in pts]
    assert max(processed) < 16_000  # capacity ceiling


def test_fig6_shape():
    pts = figures.fig6_drop_rate_vs_density()
    assert pts[0][1] == 0.0
    assert pts[-1][1] == pytest.approx(47.0, abs=1.5)


def test_fig9_traffic_ordering(sweep):
    rows = figures.fig9_traffic_cost(sweep)
    for _, attack, defended, baseline in rows:
        assert attack > baseline  # attack inflates traffic
        assert defended < attack  # DD-POLICE reduces it


def test_fig10_response_ordering(sweep):
    rows = figures.fig10_response_time(sweep)
    for _, attack, defended, baseline in rows:
        # smoke scale: congestion delay is muted (bandwidth-driven
        # collapse), so only require non-degradation ordering
        assert attack > baseline * 0.9


def test_fig11_success_ordering(sweep):
    rows = figures.fig11_success_rate(sweep)
    for _, attack, defended, baseline in rows:
        assert attack < baseline  # attack hurts success
        assert defended > attack  # DD-POLICE recovers


def test_fig11_attack_monotone(sweep):
    rows = figures.fig11_success_rate(sweep)
    assert rows[-1][1] < rows[0][1]  # more agents, less success


def test_fig12_timelines():
    scale = smoke_scale()
    tls = figures.damage_timelines(
        scale, cut_thresholds=(3.0, 7.0), minutes=scale.sim_minutes, seed=4
    )
    assert [t.label for t in tls] == ["no DD-POLICE", "DD-POLICE-3", "DD-POLICE-7"]
    undefended = tls[0]
    pre_attack = [d for m, d in zip(undefended.minutes, undefended.damage_pct)
                  if m < scale.attack_start_min]
    assert all(d == 0.0 for d in pre_attack)
    post = [d for m, d in zip(undefended.minutes, undefended.damage_pct)
            if m >= scale.attack_start_min + 1]
    assert max(post) > 10.0  # the attack does damage
    # DD-POLICE's tail damage is below the undefended tail
    for tl in tls[1:]:
        assert sum(tl.damage_pct[-4:]) < sum(undefended.damage_pct[-4:])


def test_fig13_fig14_rows():
    scale = smoke_scale()
    rows = figures.cut_threshold_sweep(
        scale, cut_thresholds=(3.0, 7.0), minutes=scale.sim_minutes, seed=5
    )
    assert [r.cut_threshold for r in rows] == [3.0, 7.0]
    for r in rows:
        assert r.false_judgment == r.false_negative + r.false_positive
        assert r.stabilized_damage_pct >= 0
    errors = figures.fig13_errors(rows)
    assert errors[0][0] == 3.0
    recovery = figures.fig14_recovery(rows)
    assert len(recovery) == 2


def test_exchange_frequency_rows():
    scale = smoke_scale()
    rows = figures.exchange_frequency_study(
        scale, periods_min=(1, 4), minutes=scale.sim_minutes, seed=6
    )
    labels = [r.policy for r in rows]
    assert labels == ["periodic-1min", "periodic-4min", "event-driven"]
    assert all(r.control_overhead_kqpm >= 0 for r in rows)


def test_steady_means_empty_window_raises_metrics_error():
    from repro.errors import MetricsError
    from repro.fluid.model import FluidConfig, FluidSimulation

    sim = FluidSimulation(FluidConfig(n=60, seed=1, churn_warmup_min=1))
    sim.run(3)
    with pytest.raises(MetricsError, match="no steady-state rows"):
        figures._steady_means(sim.rows, 99)
    with pytest.raises(MetricsError, match="no steady-state rows"):
        figures._steady_means([], 0)
