"""Unit tests for table rendering."""

import pytest

from repro.errors import ConfigError
from repro.experiments.reporting import render_series, render_table


def test_render_table_basic():
    out = render_table(["a", "b"], [[1, 2.5], [30, 4.0]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert "-" in lines[2]
    assert len(lines) == 5


def test_render_table_alignment():
    out = render_table(["x"], [[1], [100]])
    lines = out.splitlines()
    assert len(lines[1]) == len(lines[2]) == len(lines[3])


def test_render_table_arity_checked():
    with pytest.raises(ConfigError):
        render_table(["a", "b"], [[1]])


def test_render_series():
    out = render_series("agents", "traffic", [(10, 1.5), (20, 3.0)])
    assert "agents" in out and "traffic" in out
    assert "10" in out and "20" in out


def test_float_formatting():
    out = render_table(["v"], [[1234567.8]])
    assert "1,234,567.8" in out
