"""Unit tests for the generic sweep utilities."""

import pytest

from repro.errors import ConfigError
from repro.experiments.sweeps import (
    final_false_positive,
    run_point,
    steady_success,
    steady_traffic_k,
    sweep,
)
from repro.fluid.model import FluidConfig

BASE = FluidConfig(n=300, seed=3, churn_warmup_min=4, attack_start_min=2)
METRICS = {"succ": steady_success(3), "traffic": steady_traffic_k(3)}


def test_run_point_single_trial():
    pt = run_point(BASE, {"num_agents": 0}, minutes=5, metrics=METRICS)
    assert pt.trials == 1
    assert 0 <= pt["succ"] <= 1
    assert pt.stddevs["succ"] == 0.0


def test_run_point_multi_trial_stddev():
    pt = run_point(BASE, {"num_agents": 2}, minutes=5, metrics=METRICS, trials=3)
    assert pt.trials == 3
    assert pt.stddevs["succ"] >= 0.0


def test_sweep_cartesian_grid():
    pts = sweep(
        BASE,
        {"num_agents": [0, 2], "defense": ["none", "ddpolice"]},
        minutes=5,
        metrics=METRICS,
    )
    assert len(pts) == 4
    combos = {(p.overrides["num_agents"], p.overrides["defense"]) for p in pts}
    assert combos == {(0, "none"), (0, "ddpolice"), (2, "none"), (2, "ddpolice")}


def test_sweep_attack_hurts_success():
    pts = sweep(BASE, {"num_agents": [0, 3]}, minutes=6, metrics=METRICS)
    by_agents = {p.overrides["num_agents"]: p for p in pts}
    assert by_agents[3]["succ"] < by_agents[0]["succ"]
    assert by_agents[3]["traffic"] > by_agents[0]["traffic"]


def test_error_extractors_need_defense():
    pt = run_point(
        BASE,
        {"num_agents": 2, "defense": "ddpolice"},
        minutes=5,
        metrics={"fp": final_false_positive},
    )
    assert pt["fp"] >= 0


def test_validation():
    with pytest.raises(ConfigError):
        sweep(BASE, {}, minutes=3, metrics=METRICS)
    with pytest.raises(ConfigError):
        sweep(BASE, {"num_agents": []}, minutes=3, metrics=METRICS)
    with pytest.raises(ConfigError):
        run_point(BASE, {}, minutes=3, metrics={})
    with pytest.raises(ConfigError):
        run_point(BASE, {}, minutes=3, metrics=METRICS, trials=0)
