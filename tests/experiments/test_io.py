"""Unit tests for experiment-result persistence."""

import pytest

from repro.errors import ConfigError
from repro.experiments.figures import CutThresholdRow
from repro.experiments.io import load_records, load_rows, save_records, save_rows
from repro.fluid.model import FluidConfig, FluidSimulation


def test_minute_rows_roundtrip(tmp_path):
    sim = FluidSimulation(FluidConfig(n=200, seed=2, churn_warmup_min=2))
    rows = sim.run(3)
    path = save_rows(tmp_path / "run.json", rows)
    loaded = load_rows(path)
    assert loaded == rows


def test_figure_records_roundtrip(tmp_path):
    records = [
        CutThresholdRow(
            cut_threshold=5.0,
            false_negative=10,
            false_positive=1,
            false_judgment=11,
            damage_recovery_min=2.0,
            stabilized_damage_pct=4.5,
        ),
        CutThresholdRow(
            cut_threshold=7.0,
            false_negative=8,
            false_positive=2,
            false_judgment=10,
            damage_recovery_min=None,
            stabilized_damage_pct=3.2,
        ),
    ]
    path = save_records(tmp_path / "ct.json", records, kind="ct-rows")
    loaded = load_records(path, CutThresholdRow, kind="ct-rows")
    assert loaded == records


def test_kind_mismatch_rejected(tmp_path):
    sim = FluidSimulation(FluidConfig(n=200, seed=2, churn_warmup_min=2))
    path = save_rows(tmp_path / "run.json", sim.run(2))
    with pytest.raises(ConfigError):
        load_records(path, CutThresholdRow, kind="ct-rows")


def test_non_dataclass_rejected(tmp_path):
    with pytest.raises(ConfigError):
        save_records(tmp_path / "x.json", [{"not": "a dataclass"}], kind="x")


def test_format_version_checked(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format": 99, "kind": "minute-rows", "records": []}')
    with pytest.raises(ConfigError):
        load_rows(path)
