"""Unit tests for experiment-result persistence."""

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.figures import CutThresholdRow
from repro.experiments.io import (
    load_records,
    load_rows,
    load_spec,
    save_records,
    save_rows,
)
from repro.experiments.spec import get_spec, spec_sha256
from repro.fluid.model import FluidConfig, FluidSimulation


def test_minute_rows_roundtrip(tmp_path):
    sim = FluidSimulation(FluidConfig(n=200, seed=2, churn_warmup_min=2))
    rows = sim.run(3)
    path = save_rows(tmp_path / "run.json", rows)
    loaded = load_rows(path)
    assert loaded == rows


def test_figure_records_roundtrip(tmp_path):
    records = [
        CutThresholdRow(
            cut_threshold=5.0,
            false_negative=10,
            false_positive=1,
            false_judgment=11,
            damage_recovery_min=2.0,
            stabilized_damage_pct=4.5,
        ),
        CutThresholdRow(
            cut_threshold=7.0,
            false_negative=8,
            false_positive=2,
            false_judgment=10,
            damage_recovery_min=None,
            stabilized_damage_pct=3.2,
        ),
    ]
    path = save_records(tmp_path / "ct.json", records, kind="ct-rows")
    loaded = load_records(path, CutThresholdRow, kind="ct-rows")
    assert loaded == records


def test_kind_mismatch_rejected(tmp_path):
    sim = FluidSimulation(FluidConfig(n=200, seed=2, churn_warmup_min=2))
    path = save_rows(tmp_path / "run.json", sim.run(2))
    with pytest.raises(ConfigError):
        load_records(path, CutThresholdRow, kind="ct-rows")


def test_non_dataclass_rejected(tmp_path):
    with pytest.raises(ConfigError):
        save_records(tmp_path / "x.json", [{"not": "a dataclass"}], kind="x")


def test_format_version_checked(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"format": 99, "kind": "minute-rows", "records": []}')
    with pytest.raises(ConfigError):
        load_rows(path)


def test_spec_provenance_roundtrip(tmp_path):
    spec = get_spec("fig13")
    records = [
        CutThresholdRow(
            cut_threshold=5.0,
            false_negative=10,
            false_positive=1,
            false_judgment=11,
            damage_recovery_min=2.0,
            stabilized_damage_pct=4.5,
        ),
    ]
    path = save_records(tmp_path / "ct.json", records, kind="ct-rows", spec=spec)
    assert load_records(path, CutThresholdRow, kind="ct-rows") == records
    loaded = load_spec(path)
    assert loaded == spec
    payload = json.loads(path.read_text())
    assert payload["spec_sha256"] == spec_sha256(spec)


def test_spec_absent_returns_none(tmp_path):
    path = save_records(tmp_path / "ct.json", [], kind="ct-rows")
    assert load_spec(path) is None


def test_tampered_spec_rejected(tmp_path):
    path = save_records(
        tmp_path / "ct.json", [], kind="ct-rows", spec=get_spec("fig13")
    )
    payload = json.loads(path.read_text())
    payload["spec"]["seed"] = payload["spec"]["seed"] + 1  # hand-edit
    path.write_text(json.dumps(payload))
    with pytest.raises(ConfigError, match="spec_sha256"):
        load_spec(path)


def test_old_format_version_rejected(tmp_path):
    path = tmp_path / "v1.json"
    path.write_text('{"format": 1, "kind": "minute-rows", "records": []}')
    with pytest.raises(ConfigError, match="unsupported results format 1"):
        load_rows(path)


def test_non_object_payload_rejected(tmp_path):
    path = tmp_path / "list.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ConfigError, match="expected a JSON object"):
        load_rows(path)


def test_truncated_json_rejected(tmp_path):
    path = tmp_path / "trunc.json"
    path.write_text('{"format": 2, "kind": "minute-ro')
    with pytest.raises(ConfigError, match="not valid JSON"):
        load_rows(path)


def test_mismatched_record_fields_rejected(tmp_path):
    path = save_records(
        tmp_path / "ct.json",
        [
            CutThresholdRow(
                cut_threshold=5.0,
                false_negative=10,
                false_positive=1,
                false_judgment=11,
                damage_recovery_min=2.0,
                stabilized_damage_pct=4.5,
            )
        ],
        kind="minute-rows",  # lie about the kind
    )
    with pytest.raises(ConfigError, match="does not match MinuteRow"):
        load_rows(path)


def test_save_with_manifest_sidecar(tmp_path):
    from repro.obs.manifest import build_manifest, load_manifest, verify_manifest

    cfg = FluidConfig(n=200, seed=2, churn_warmup_min=2)
    sim = FluidSimulation(cfg)
    rows = sim.run(2)
    manifest = build_manifest(kind="minute-rows", config=cfg, seed=2)
    path = save_rows(tmp_path / "run.json", rows, manifest=manifest)
    sidecar = tmp_path / "run.manifest.json"
    assert verify_manifest(load_manifest(sidecar), config=cfg)
    assert load_rows(path) == rows


def test_save_is_atomic(tmp_path, monkeypatch):
    """A crashed save leaves the previous file intact, never a truncation."""
    import os

    sim = FluidSimulation(FluidConfig(n=200, seed=2, churn_warmup_min=2))
    rows = sim.run(2)
    path = save_rows(tmp_path / "run.json", rows)
    original = path.read_bytes()

    def boom(*a, **k):
        raise OSError("simulated crash at rename")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError):
        save_rows(path, rows + rows)
    monkeypatch.undo()
    assert path.read_bytes() == original  # old artifact untouched
    assert [p.name for p in tmp_path.iterdir()] == ["run.json"]  # no temp litter
    assert load_rows(path) == rows
