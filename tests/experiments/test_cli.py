"""Unit tests for the repro-experiments CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_rejected(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_fig5_runs(capsys):
    assert main(["fig5", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "15400" in out or "15,400" in out


def test_fig6_runs(capsys):
    assert main(["fig6", "--scale", "smoke"]) == 0
    assert "drop rate" in capsys.readouterr().out


def test_multiple_experiments(capsys):
    assert main(["fig5", "fig6", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out and "Figure 6" in out


def test_parser_defaults():
    args = build_parser().parse_args(["fig5"])
    assert args.scale == "bench"
    assert args.experiments == ["fig5"]


@pytest.mark.slow
def test_fig12_smoke(capsys):
    assert main(["fig12", "--scale", "smoke"]) == 0
    assert "damage rate" in capsys.readouterr().out


def test_parser_workers_flag():
    parser = build_parser()
    assert parser.parse_args(["fig5"]).workers is None
    assert parser.parse_args(["fig5", "--workers", "4"]).workers == 4


def test_workers_flag_runs_parallel(capsys):
    # fig5 is closed-form (no sweep), so this just proves the flag
    # threads through main() without disturbing any experiment.
    assert main(["fig5", "--scale", "smoke", "--workers", "2"]) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_bad_workers_rejected(capsys):
    assert main(["fig5", "--workers", "-3"]) == 2
