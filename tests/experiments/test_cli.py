"""Unit tests for the repro-experiments CLI."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_rejected(capsys):
    assert main(["fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_fig5_runs(capsys):
    assert main(["fig5", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "15400" in out or "15,400" in out


def test_fig6_runs(capsys):
    assert main(["fig6", "--scale", "smoke"]) == 0
    assert "drop rate" in capsys.readouterr().out


def test_multiple_experiments(capsys):
    assert main(["fig5", "fig6", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out and "Figure 6" in out


def test_parser_defaults():
    args = build_parser().parse_args(["fig5"])
    assert args.scale == "bench"
    assert args.experiments == ["fig5"]


@pytest.mark.slow
def test_fig12_smoke(capsys):
    assert main(["fig12", "--scale", "smoke"]) == 0
    assert "damage rate" in capsys.readouterr().out


def test_parser_workers_flag():
    parser = build_parser()
    assert parser.parse_args(["fig5"]).workers is None
    assert parser.parse_args(["fig5", "--workers", "4"]).workers == 4


def test_workers_flag_runs_parallel(capsys):
    # fig5 is closed-form (no sweep), so this just proves the flag
    # threads through main() without disturbing any experiment.
    assert main(["fig5", "--scale", "smoke", "--workers", "2"]) == 0
    assert "Figure 5" in capsys.readouterr().out


def test_bad_workers_rejected(capsys):
    assert main(["fig5", "--workers", "-3"]) == 2


def test_parser_trace_and_profile_flags():
    parser = build_parser()
    args = parser.parse_args(["fig5"])
    assert args.trace is None and args.profile is False
    args = parser.parse_args(["fig5", "--trace", "/tmp/t.jsonl", "--profile"])
    assert args.trace == "/tmp/t.jsonl" and args.profile is True


@pytest.mark.slow
def test_trace_flag_writes_trace_and_manifest(tmp_path, capsys):
    from repro.obs.manifest import load_manifest, verify_manifest
    from repro.obs.trace import summarize_trace

    trace = tmp_path / "run.jsonl"
    assert main(["fig12", "--scale", "smoke", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "damage rate" in out
    assert "trace written" in out
    summary = summarize_trace(trace)  # validates every record
    assert summary["kinds"].get("fluid.minute", 0) > 0
    sidecar = tmp_path / "run.manifest.json"
    manifest = load_manifest(sidecar)
    assert manifest["kind"] == "cli-trace"
    assert manifest["config"]["experiments"] == ["fig12"]
    assert verify_manifest(manifest)


def test_profile_flag_prints_top_functions(capsys):
    assert main(["fig5", "--scale", "smoke", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "# profile cli.fig5" in out
    assert "cumulative" in out


def test_trace_summarize_subcommand(tmp_path, capsys):
    from repro.obs.trace import JsonlSink, Tracer

    path = tmp_path / "t.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path)])
    tracer.event("net.deliver", t=1.0)
    tracer.event("net.deliver", t=2.0)
    tracer.event("police.cut", t=3.0)
    tracer.close()
    assert main(["trace", "summarize", str(path)]) == 0
    out = capsys.readouterr().out
    assert "records: 3" in out
    assert "net.deliver: 2" in out
    assert "police.cut: 1" in out


def test_trace_summarize_missing_file(tmp_path, capsys):
    assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2
    assert "trace summarize" in capsys.readouterr().err


def test_trace_summarize_invalid_trace(tmp_path, capsys):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"v": 99, "seq": 0, "t": 0, "kind": "x"}\n{}\n')
    assert main(["trace", "summarize", str(path)]) == 2
    assert "invalid trace" in capsys.readouterr().err
