"""Unit tests for the origin-aware incremental query accounting."""

import pytest

from repro.errors import ConfigError
from repro.metrics.accounting import ClassTotals, MinuteMetrics, QueryAccounting


def roll(acc, now, messages=0, bytes_=0):
    return acc.on_minute_rolled(now, messages, bytes_)


def test_window_attribution_follows_roll_counter():
    acc = QueryAccounting(grace_minutes=1)
    assert acc.on_issued(b"a", False) == 0
    roll(acc, 60.0)
    assert acc.on_issued(b"b", False) == 1
    assert acc.on_issued(b"c", True) == 1
    roll(acc, 120.0)
    roll(acc, 180.0)
    assert [m.minute for m in acc.rows] == [1, 2]
    assert acc.rows[0].queries_issued == 1
    assert acc.rows[1].queries_issued == 1
    assert acc.rows[1].attack_queries_issued == 1


def test_rows_emitted_grace_minutes_after_window_close():
    acc = QueryAccounting(grace_minutes=2)
    acc.on_issued(b"a", False)
    roll(acc, 60.0)
    roll(acc, 120.0)
    assert acc.rows == []  # window 1 still within grace
    roll(acc, 180.0)
    assert [m.minute for m in acc.rows] == [1]
    assert acc.rows[0].time_s == 60.0


def test_response_within_grace_counts_in_row_and_totals():
    acc = QueryAccounting(grace_minutes=1)
    w = acc.on_issued(b"a", False)
    roll(acc, 60.0)
    # response arrives during the grace minute, before finalization
    acc.on_first_response(w, False, 1.5)
    roll(acc, 120.0)
    (row,) = acc.rows
    assert row.queries_succeeded == 1
    assert row.mean_response_time_s == 1.5
    assert acc.totals("good").succeeded == 1
    assert acc.late_responses == 0


def test_response_after_finalization_is_late_and_ignored():
    acc = QueryAccounting(grace_minutes=0, retire_records=False)
    w = acc.on_issued(b"a", False)
    roll(acc, 60.0)  # grace 0: window finalized immediately
    acc.on_first_response(w, False, 2.0)
    assert acc.late_responses == 1
    assert acc.rows[0].queries_succeeded == 0
    assert acc.totals("good").succeeded == 0


def test_retirement_returns_keys_of_finalized_window_only():
    acc = QueryAccounting(grace_minutes=1)
    acc.on_issued(b"a", False)
    acc.on_issued(b"b", True)
    assert roll(acc, 60.0) == ()
    acc.on_issued(b"c", False)
    assert list(roll(acc, 120.0)) == [b"a", b"b"]
    assert list(roll(acc, 180.0)) == [b"c"]


def test_no_keys_tracked_when_retirement_off():
    acc = QueryAccounting(grace_minutes=0, retire_records=False)
    acc.on_issued(b"a", False)
    assert roll(acc, 60.0) == ()


def test_live_window_count_is_bounded_by_grace_plus_one():
    acc = QueryAccounting(grace_minutes=1)
    for minute in range(50):
        acc.on_issued(f"q{minute}".encode(), minute % 3 == 0)
        roll(acc, 60.0 * (minute + 1))
        assert acc.live_window_count <= 2
    assert len(acc.rows) == 49


def test_empty_windows_emit_zero_rows():
    acc = QueryAccounting(grace_minutes=1)
    roll(acc, 60.0)
    roll(acc, 120.0)
    (row,) = acc.rows
    assert row.queries_issued == 0
    assert row.success_rate == 0.0
    assert row.mean_response_time_s is None


def test_message_and_byte_deltas_per_row():
    acc = QueryAccounting(grace_minutes=0)
    roll(acc, 60.0, messages=100, bytes_=1000)
    roll(acc, 120.0, messages=250, bytes_=2600)
    assert [m.messages for m in acc.rows] == [100, 150]
    assert [m.bytes_transferred for m in acc.rows] == [1000, 1600]


def test_per_class_totals_and_all_merge():
    acc = QueryAccounting(grace_minutes=1)
    w = acc.on_issued(b"g", False)
    acc.on_issued(b"x", True)
    acc.on_first_response(w, False, 0.5)
    assert acc.totals("good").issued == 1
    assert acc.totals("attack").issued == 1
    assert acc.totals("all").issued == 2
    assert acc.success_rate("good") == 1.0
    assert acc.success_rate("attack") == 0.0
    assert acc.success_rate("all") == 0.5
    assert acc.mean_response_time("good") == 0.5
    assert acc.mean_response_time("attack") is None
    with pytest.raises(ConfigError):
        acc.totals("bogus")


def test_configure_grace_rejected_after_first_roll():
    acc = QueryAccounting(grace_minutes=1)
    acc.configure_grace(2)  # fine before any roll
    assert acc.grace_minutes == 2
    roll(acc, 60.0)
    acc.configure_grace(2)  # no-op is always allowed
    with pytest.raises(ConfigError):
        acc.configure_grace(3)
    with pytest.raises(ConfigError):
        acc.configure_grace(-1)


def test_negative_grace_rejected_at_construction():
    with pytest.raises(ConfigError):
        QueryAccounting(grace_minutes=-1)


def test_class_totals_merge_and_rates():
    a = ClassTotals(issued=4, succeeded=2, response_time_sum=3.0)
    b = ClassTotals(issued=6, succeeded=3, response_time_sum=2.0)
    m = a.merged_with(b)
    assert (m.issued, m.succeeded, m.response_time_sum) == (10, 5, 5.0)
    assert m.success_rate == 0.5
    assert m.mean_response_time == 1.0
    assert ClassTotals().success_rate == 0.0
    assert ClassTotals().mean_response_time is None


def test_minute_metrics_all_traffic_properties():
    row = MinuteMetrics(
        minute=1,
        time_s=60.0,
        messages=0,
        bytes_transferred=0,
        queries_issued=8,
        queries_succeeded=6,
        mean_response_time_s=0.4,
        attack_queries_issued=92,
        attack_queries_succeeded=0,
    )
    assert row.success_rate == 0.75
    assert row.all_queries_issued == 100
    assert row.all_queries_succeeded == 6
    assert row.all_success_rate == 0.06
