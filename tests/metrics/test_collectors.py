"""Unit tests for the per-minute metrics collector."""

from repro.metrics.collectors import MetricsCollector
from repro.overlay.network import NetworkConfig
from repro.workload.generator import QueryWorkload, WorkloadConfig
from tests.conftest import make_network


def ring(n):
    return {i: {(i + 1) % n} for i in range(n)}


def test_minutes_collected_with_grace():
    sim, net = make_network(ring(10), seed=1)
    collector = MetricsCollector(net, grace_minutes=1)
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=6.0, seed=1))
    wl.start()
    sim.run(until=310.0)
    # 5 minute rolls happened; with 1 minute grace, 4 windows evaluated
    assert len(collector.minutes) == 4
    assert [m.minute for m in collector.minutes] == [1, 2, 3, 4]


def test_window_counts_queries_issued_in_window():
    # retirement off: the assertion below scans query_records directly,
    # which only stays complete when settled records are retained
    sim, net = make_network(
        ring(10),
        seed=2,
        config=NetworkConfig(
            hop_latency_jitter_s=0.0, seed=2, retire_settled_records=False
        ),
    )
    collector = MetricsCollector(net, grace_minutes=1)
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=6.0, seed=2))
    wl.start()
    sim.run(until=200.0)
    total_windowed = sum(m.queries_issued for m in collector.minutes)
    issued_in_first_2min = sum(
        1 for r in net.query_records.values() if r.issued_at < 120.0
    )
    assert total_windowed == issued_in_first_2min


def test_success_rate_definition():
    sim, net = make_network(ring(6), seed=3)
    collector = MetricsCollector(net, grace_minutes=1)
    # make every query succeed: object 0 replicated everywhere
    for obj in range(len(net.content.replica_holders)):
        net.content.replica_holders[obj] = set(range(6))
    net.content.peer_objects = {
        p: set(range(len(net.content.replica_holders))) for p in range(6)
    }
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=6.0, seed=3))
    wl.start()
    sim.run(until=200.0)
    for m in collector.minutes:
        if m.queries_issued:
            assert m.success_rate == 1.0
            assert m.mean_response_time_s is not None


def test_traffic_series_deltas():
    sim, net = make_network(ring(10), seed=4)
    collector = MetricsCollector(net, grace_minutes=0)
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=6.0, seed=4))
    wl.start()
    sim.run(until=190.0)
    total = sum(m.messages for m in collector.minutes)
    assert total <= net.stats.messages_delivered
    series = collector.traffic_series()
    assert len(series) == len(collector.minutes)


def test_series_accessors():
    sim, net = make_network(ring(6), seed=5)
    collector = MetricsCollector(net)
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=10.0, seed=5))
    wl.start()
    sim.run(until=250.0)
    assert len(collector.success_series()) > 0
    assert len(collector.traffic_series()) > 0
