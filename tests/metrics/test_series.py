"""Unit tests for the time-series container."""

import pytest

from repro.errors import ConfigError
from repro.metrics.series import TimeSeries


def test_append_and_iterate():
    ts = TimeSeries([(0.0, 1.0), (1.0, 2.0)])
    assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
    assert len(ts) == 2
    assert ts.times == [0.0, 1.0]
    assert ts.values == [1.0, 2.0]


def test_out_of_order_append_rejected():
    ts = TimeSeries([(5.0, 1.0)])
    with pytest.raises(ConfigError):
        ts.append(4.0, 2.0)


def test_equal_times_allowed():
    ts = TimeSeries([(1.0, 1.0)])
    ts.append(1.0, 2.0)
    assert len(ts) == 2


def test_window_half_open():
    ts = TimeSeries([(float(i), float(i)) for i in range(10)])
    w = ts.window(2.0, 5.0)
    assert w.times == [2.0, 3.0, 4.0]


def test_reductions():
    ts = TimeSeries([(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)])
    assert ts.mean() == 3.0
    assert ts.total() == 9.0
    assert ts.max() == 5.0
    assert ts.last() == (2.0, 5.0)


def test_empty_reductions_rejected():
    ts = TimeSeries()
    with pytest.raises(ConfigError):
        ts.mean()
    with pytest.raises(ConfigError):
        ts.max()
    with pytest.raises(ConfigError):
        ts.last()
    assert ts.total() == 0.0


def test_value_at_or_before():
    ts = TimeSeries([(1.0, 10.0), (5.0, 50.0)])
    assert ts.value_at_or_before(0.5) is None
    assert ts.value_at_or_before(1.0) == 10.0
    assert ts.value_at_or_before(3.0) == 10.0
    assert ts.value_at_or_before(9.0) == 50.0
