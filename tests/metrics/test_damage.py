"""Unit tests for damage rate and recovery time (Section 3.7.2)."""

import pytest

from repro.errors import ConfigError
from repro.metrics.damage import damage_rate, damage_rate_series, damage_recovery_time
from repro.metrics.series import TimeSeries


def test_damage_rate_formula():
    """D = (S - S') / S * 100%."""
    assert damage_rate(0.8, 0.4) == pytest.approx(50.0)
    assert damage_rate(0.9, 0.9) == 0.0
    assert damage_rate(0.5, 0.0) == 100.0


def test_damage_rate_clamped():
    assert damage_rate(0.5, 0.6) == 0.0  # better than baseline -> 0 damage


def test_damage_rate_zero_baseline():
    assert damage_rate(0.0, 0.0) == 0.0


def test_damage_rate_validation():
    with pytest.raises(ConfigError):
        damage_rate(1.5, 0.5)
    with pytest.raises(ConfigError):
        damage_rate(0.5, -0.1)


def test_damage_series_aligns_by_time():
    baseline = TimeSeries([(0.0, 0.8), (1.0, 0.8), (2.0, 0.9)])
    attacked = TimeSeries([(0.0, 0.8), (1.0, 0.4), (2.0, 0.45)])
    d = damage_rate_series(baseline, attacked)
    assert d.values == [0.0, 50.0, 50.0]


def test_damage_series_skips_points_before_baseline():
    baseline = TimeSeries([(5.0, 0.8)])
    attacked = TimeSeries([(1.0, 0.4), (6.0, 0.4)])
    d = damage_rate_series(baseline, attacked)
    assert d.times == [6.0]


def test_recovery_time_definition():
    """Time from first D >= 20 to the next D <= 15."""
    d = TimeSeries([(0, 0), (1, 25), (2, 22), (3, 18), (4, 14), (5, 10)])
    assert damage_recovery_time(d) == 3.0  # t=1 onset, t=4 recovered


def test_recovery_none_if_never_damaged():
    d = TimeSeries([(0, 5), (1, 10)])
    assert damage_recovery_time(d) is None


def test_recovery_none_if_never_recovers():
    d = TimeSeries([(0, 30), (1, 40), (2, 35)])
    assert damage_recovery_time(d) is None


def test_recovery_custom_levels():
    d = TimeSeries([(0, 60), (1, 45), (2, 30)])
    assert damage_recovery_time(d, onset_pct=50.0, recovered_pct=35.0) == 2.0
    with pytest.raises(ConfigError):
        damage_recovery_time(d, onset_pct=10.0, recovered_pct=15.0)


def test_recovery_uses_first_onset():
    d = TimeSeries([(0, 25), (1, 10), (2, 30), (3, 12)])
    assert damage_recovery_time(d) == 1.0
