"""Unit tests for judgment accounting (Figure 13 terminology)."""

from repro.metrics.errors import ErrorCounts, Judgment, JudgmentLog


def judgment(suspect, disconnected=True, time=1.0, observer="obs"):
    return Judgment(
        time=time,
        observer=observer,
        suspect=suspect,
        g_value=9.0,
        s_value=9.0,
        disconnected=disconnected,
    )


def test_error_counts_paper_terminology():
    """false negative = good peers wrongly disconnected; false positive =
    bad peers never identified (the paper's swapped usage)."""
    log = JudgmentLog()
    log.record(judgment("good1"))
    log.record(judgment("bad1"))
    counts = log.error_counts(bad_peers={"bad1", "bad2"})
    assert counts.false_negative == 1  # good1 wrongly cut
    assert counts.false_positive == 1  # bad2 escaped
    assert counts.false_judgment == 2


def test_distinct_peers_counted_once():
    log = JudgmentLog()
    for t in (1.0, 2.0, 3.0):
        log.record(judgment("good1", time=t))
    counts = log.error_counts(bad_peers=set())
    assert counts.false_negative == 1


def test_cleared_judgments_do_not_count():
    log = JudgmentLog()
    log.record(judgment("good1", disconnected=False))
    counts = log.error_counts(bad_peers=set())
    assert counts.false_negative == 0
    assert log.disconnect_events() == []


def test_first_disconnect_time():
    log = JudgmentLog()
    log.record(judgment("bad1", time=7.0))
    log.record(judgment("bad1", time=3.0))
    assert log.first_disconnect_time("bad1") == 3.0
    assert log.first_disconnect_time("ghost") is None


def test_detection_latency():
    log = JudgmentLog()
    log.record(judgment("bad1", time=12.0))
    log.record(judgment("bad2", time=15.0))
    latencies = dict(log.detection_latency({"bad1", "bad2", "bad3"}, attack_start=10.0))
    assert latencies == {"bad1": 2.0, "bad2": 5.0}


def test_perfect_run_zero_errors():
    log = JudgmentLog()
    log.record(judgment("bad1"))
    log.record(judgment("bad2"))
    counts = log.error_counts(bad_peers={"bad1", "bad2"})
    assert counts == ErrorCounts(false_negative=0, false_positive=0)
    assert counts.false_judgment == 0
