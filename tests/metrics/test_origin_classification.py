"""Regression tests: attack queries must not pollute the S(t) denominator.

The original metrics path computed S(t) over *every* query record, so an
attack flood of unanswerable queries dragged measured S(t) down even
when not a single user query was harmed -- the damage figures measured
the measurement.  These tests pin the fix: with capacity ample enough
that the flood causes no real service degradation, the good-only S(t)
of an attacked run is *identical* (same seeds, jitter disabled) to the
no-attack baseline, while the all-traffic diagnostic collapses.

Both runs construct the same (deterministic) attack scenario and
exclude the compromised peers from the user workload so the good-query
streams are event-for-event identical; only the attacked run launches
the agents.
"""

import pytest

from repro.attack.scenario import AttackScenario, ScenarioConfig
from repro.metrics.collectors import MetricsCollector
from repro.overlay.content import ContentCatalog, ContentConfig
from repro.overlay.network import NetworkConfig, OverlayNetwork
from repro.overlay.topology import TopologyConfig, generate_topology
from repro.simkit.engine import Simulator
from repro.simkit.rng import RngRegistry
from repro.workload.generator import QueryWorkload, WorkloadConfig

SEED = 21
N = 30


def _run(launch_attack: bool):
    rngs = RngRegistry(SEED)
    sim = Simulator()
    topo = generate_topology(TopologyConfig(n=N, ba_m=1, seed=SEED))
    content = ContentCatalog(ContentConfig(num_objects=60, seed=SEED), N)
    # Deterministic: no jitter, and processing capacity (default 10k qpm)
    # far above the offered flood, so the attack cannot change how user
    # queries are served.
    net = OverlayNetwork(
        sim,
        topo,
        config=NetworkConfig(hop_latency_jitter_s=0.0, seed=SEED),
        content=content,
        rng_registry=rngs,
    )
    collector = MetricsCollector(net)
    scenario = AttackScenario(
        sim,
        net,
        ScenarioConfig(
            num_agents=2, start_time_s=60.0, nominal_rate_qpm=600.0, seed=SEED
        ),
        rng=rngs.stream("attack"),
    )
    wl = QueryWorkload(
        sim,
        net,
        WorkloadConfig(queries_per_minute=3.0, seed=SEED),
        rng=rngs.stream("workload"),
        exclude=scenario.compromised,
    )
    wl.start()
    if launch_attack:
        scenario.launch()
    sim.run(until=300.0)
    return net, collector, scenario


@pytest.fixture(scope="module")
def paired_runs():
    return _run(launch_attack=False), _run(launch_attack=True)


def test_good_metrics_identical_to_no_attack_baseline(paired_runs):
    (base_net, base_col, _), (atk_net, atk_col, _) = paired_runs
    base_rows = base_col.minutes
    atk_rows = atk_col.minutes
    assert len(base_rows) == len(atk_rows) >= 3
    for b, a in zip(base_rows, atk_rows):
        assert (b.queries_issued, b.queries_succeeded) == (
            a.queries_issued,
            a.queries_succeeded,
        )
        assert b.mean_response_time_s == a.mean_response_time_s
    assert atk_net.success_rate("good") == base_net.success_rate()


def test_attack_queries_recorded_in_their_own_class(paired_runs):
    (_, base_col, _), (atk_net, atk_col, _) = paired_runs
    assert all(m.attack_queries_issued == 0 for m in base_col.minutes)
    post = [m for m in atk_col.minutes if m.time_s > 120.0]
    assert post and all(m.attack_queries_issued > 0 for m in post)
    # the flood's queries are bogus (unique nonce keywords): none succeed
    assert atk_net.accounting.totals("attack").succeeded == 0


def test_all_traffic_diagnostic_shows_the_old_pollution(paired_runs):
    _, (atk_net, atk_col, _) = paired_runs
    post = [m for m in atk_col.minutes if m.attack_queries_issued]
    assert post
    for m in post:
        assert m.all_success_rate < m.success_rate
    # whole-run: the polluted metric is visibly depressed vs. the fixed one
    assert atk_net.success_rate("all") < 0.5 * atk_net.success_rate("good")


def test_origin_registry_follows_attack_lifecycle(paired_runs):
    (base_net, _, _), (atk_net, _, scenario) = paired_runs
    # unlaunched scenario leaves the registry empty (agents register at
    # start, not at construction)
    assert base_net.attack_origins == set()
    assert atk_net.attack_origins == scenario.compromised
    assert len(atk_net.attack_origins) == 2
