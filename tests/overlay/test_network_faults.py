"""Drop accounting on the transmit path under the fault injector.

Bandwidth, capacity, and fault drops are charged to separate counters in
a fixed order (bandwidth at send, loss in flight, capacity at the
receiving peer), and every counter is deterministic for a fixed seed.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.overlay.ids import PeerId
from repro.overlay.message import Query
from repro.overlay.network import NetworkConfig
from tests.conftest import make_network

#: Big enough to overrun every Saroiu class's one-second link burst
#: (the largest, t1, holds ~1506 messages).
BURST = 2_000


def _burst_run(seed):
    cfg = NetworkConfig(
        hop_latency_jitter_s=0.0,
        bandwidth_enabled=True,
        processing_qpm_good=60.0,  # 1 query/s: the survivors overrun it
        seed=seed,
    )
    sim, net = make_network({0: {1}}, seed=seed, config=cfg)
    injector = FaultInjector(FaultPlan.message_loss(0.5), net.rngs)
    injector.attach(net)
    for _ in range(BURST):
        q = Query(guid=net.guid_factory.new(), ttl=2, hops=0, keywords=("no-such-object",))
        net.transmit(PeerId(0), PeerId(1), q)
    sim.run(until=5.0)
    return net, injector


def test_burst_charges_all_three_drop_counters():
    net, injector = _burst_run(seed=3)
    s = net.stats
    assert s.messages_dropped_bandwidth > 0
    assert s.messages_dropped_fault > 0
    assert s.queries_dropped_capacity > 0
    assert s.messages_dropped_fault == injector.stats.messages_dropped


def test_drop_accounting_is_exhaustive():
    # Every sent message is exactly one of: delivered, dropped by a link
    # budget, or dropped by the injector (the receiver stays online, so
    # nothing vanishes unaccounted).
    net, _ = _burst_run(seed=3)
    s = net.stats
    assert (
        s.messages_delivered + s.messages_dropped_bandwidth + s.messages_dropped_fault
        == BURST
    )
    # Capacity drops happen after delivery, so they never exceed it.
    assert 0 < s.queries_dropped_capacity <= s.messages_delivered


def test_drop_counts_are_deterministic_for_fixed_seed():
    net_a, inj_a = _burst_run(seed=9)
    net_b, inj_b = _burst_run(seed=9)
    for field in (
        "messages_delivered",
        "messages_dropped_bandwidth",
        "messages_dropped_fault",
        "queries_dropped_capacity",
    ):
        assert getattr(net_a.stats, field) == getattr(net_b.stats, field), field
    assert inj_a.stats.dropped_by_kind == inj_b.stats.dropped_by_kind
