"""Edge-case tests for the peer's bounded GUID caches."""

import pytest

from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from repro.overlay.network import NetworkConfig
from tests.conftest import make_network

#: Shrunk LRU limit so eviction is observable -- a first-class config
#: knob now, not a monkeypatched module constant.
SMALL = NetworkConfig(hop_latency_jitter_s=0.0, seed=0, seen_cache_limit=5)


def test_seen_cache_limit_validated():
    with pytest.raises(ConfigError):
        NetworkConfig(seen_cache_limit=0)
    with pytest.raises(ConfigError):
        NetworkConfig(seen_cache_limit=-3)


def test_seen_cache_evicts_oldest():
    sim, net = make_network({0: {1}}, config=SMALL)
    p1 = net.peers[PeerId(1)]
    guids = []
    for i in range(8):
        guids.append(net.peers[PeerId(0)].issue_query(("nosuch", f"id90{i}")))
        sim.run(until=(i + 1) * 0.2)
    # the oldest GUIDs were evicted; the most recent are retained
    assert not p1.has_seen(guids[0])
    assert p1.has_seen(guids[-1])


def test_evicted_guid_treated_as_novel_again():
    """After eviction, a replayed GUID is processed as new -- the
    documented memory/precision tradeoff of bounded dup tables."""
    sim, net = make_network({0: {1}}, config=SMALL)
    p0, p1 = net.peers[PeerId(0)], net.peers[PeerId(1)]
    first = p0.issue_query(("nosuch", "id900"))
    sim.run(until=0.2)
    assert p1.counters.queries_dropped_duplicate == 0
    for i in range(7):  # push `first` out of peer 1's cache
        p0.issue_query(("nosuch", f"id91{i}"))
    sim.run(until=1.0)
    # replaying the evicted GUID: peer 1 no longer recognizes it
    from repro.overlay.message import Query

    replay = Query(guid=first, ttl=3, hops=0, keywords=("nosuch", "id900"))
    p0._send(PeerId(1), replay)
    before = p1.counters.queries_dropped_duplicate
    sim.run(until=2.0)
    assert p1.counters.queries_dropped_duplicate == before


def test_offline_clears_caches():
    sim, net = make_network({0: {1}})
    p1 = net.peers[PeerId(1)]
    guid = net.peers[PeerId(0)].issue_query(("nosuch", "id900"))
    sim.run(until=0.5)
    assert p1.has_seen(guid)
    p1.go_offline()
    assert not p1.has_seen(guid)
    assert p1.neighbors == set()


def test_bytes_counters_track_both_directions():
    sim, net = make_network({0: {1}})
    p0, p1 = net.peers[PeerId(0)], net.peers[PeerId(1)]
    p0.issue_query(("nosuch", "id900"))
    sim.run(until=0.5)
    assert p0.counters.bytes_sent > 0
    assert p1.counters.bytes_received == p0.counters.bytes_sent
