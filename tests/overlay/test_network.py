"""Unit tests for the overlay network container."""

import pytest

from repro.errors import ProtocolError
from repro.overlay.ids import PeerId
from repro.overlay.network import NetworkConfig
from tests.conftest import make_network


def test_latency_applied_per_hop(line_network):
    sim, net = line_network
    net.peers[PeerId(0)].issue_query(("nosuch", "idx"))
    sim.run(until=0.04)
    assert net.peers[PeerId(1)].counters.queries_received == 0
    sim.run(until=0.06)
    assert net.peers[PeerId(1)].counters.queries_received == 1


def test_stats_count_messages_and_bytes(line_network):
    sim, net = line_network
    net.peers[PeerId(0)].issue_query(("nosuch", "idx"))
    sim.run(until=10)
    assert net.stats.query_messages == 3  # 0->1->2->3
    assert net.stats.messages_delivered == 3
    assert net.stats.bytes_transferred > 0


def test_connect_disconnect_symmetry(line_network):
    sim, net = line_network
    net.connect(PeerId(0), PeerId(3))
    assert PeerId(3) in net.neighbors_of(PeerId(0))
    assert PeerId(0) in net.neighbors_of(PeerId(3))
    net.disconnect(PeerId(0), PeerId(3))
    assert PeerId(3) not in net.neighbors_of(PeerId(0))
    assert PeerId(0) not in net.neighbors_of(PeerId(3))


def test_connect_self_rejected(line_network):
    sim, net = line_network
    with pytest.raises(ProtocolError):
        net.connect(PeerId(0), PeerId(0))


def test_success_rate_and_response_time_empty():
    from tests.conftest import make_network

    sim, net = make_network({0: {1}})
    assert net.success_rate() == 0.0
    assert net.mean_response_time() is None


def test_minute_listener_ordering():
    sim, net = make_network({0: {1}})
    windows = []

    def listener(minute, now):
        # windows already rolled when the listener runs
        windows.append(dict(net.peers[PeerId(1)].last_minute_in))

    net.minute_listeners.append(listener)
    net.peers[PeerId(0)].issue_query(("nosuch", "idq"))
    sim.run(until=61.0)
    assert windows and windows[0][PeerId(0)] == 1


def test_minute_index_advances():
    sim, net = make_network({0: {1}})
    sim.run(until=185.0)
    assert net.minute_index == 3


def test_query_records_track_object_resolution():
    sim, net = make_network({0: {1}})
    net.peers[PeerId(0)].issue_query(net.content.keywords_for(2))
    rec = next(iter(net.query_records.values()))
    assert rec.object_id == 2
    net.peers[PeerId(0)].issue_query(("bogus", "xnope"))
    recs = list(net.query_records.values())
    assert any(r.object_id is None for r in recs)


def test_bogus_queries_never_match():
    sim, net = make_network({0: {1}})
    assert net.match_content(PeerId(1), type("Q", (), {"keywords": ("bogus", "x1n1")})()) is None


def test_transmit_to_unknown_peer_rejected(line_network):
    sim, net = line_network
    from repro.overlay.message import Ping

    with pytest.raises(ProtocolError):
        net.transmit(PeerId(0), PeerId(99), Ping(guid=net.guid_factory.new()))


def test_network_config_validation():
    import pytest as _p

    from repro.errors import ConfigError

    with _p.raises(ConfigError):
        NetworkConfig(default_ttl=0)
    with _p.raises(ConfigError):
        NetworkConfig(minute_window_s=0)
