"""Unit tests for the token-bucket capacity model."""

import pytest

from repro.errors import ConfigError
from repro.overlay.capacity import TokenBucket


def test_initial_burst_available():
    tb = TokenBucket(rate_per_min=600.0)  # 10/s, burst=10
    assert tb.available(0.0) == pytest.approx(10.0)
    for _ in range(10):
        assert tb.try_consume(0.0)
    assert not tb.try_consume(0.0)


def test_refill_over_time():
    tb = TokenBucket(rate_per_min=60.0)  # 1 token/s, burst=1
    assert tb.try_consume(0.0)
    assert not tb.try_consume(0.0)
    assert not tb.try_consume(0.5)
    assert tb.try_consume(1.0)


def test_burst_caps_accumulation():
    tb = TokenBucket(rate_per_min=60.0, burst=2.0)
    assert tb.available(100.0) == pytest.approx(2.0)


def test_sustained_rate_is_enforced():
    tb = TokenBucket(rate_per_min=600.0)
    consumed = 0
    t = 0.0
    while t < 60.0:
        if tb.try_consume(t):
            consumed += 1
        t += 0.05
    # 600/min sustained + initial burst of 10
    assert 590 <= consumed <= 615


def test_custom_amount():
    tb = TokenBucket(rate_per_min=60.0, burst=5.0)
    assert tb.try_consume(0.0, amount=5.0)
    assert not tb.try_consume(0.0, amount=0.1)


def test_time_backwards_tolerated_without_refill():
    """Out-of-order timestamps (interleaved sources in one window) must
    not crash, and must not mint tokens either."""
    tb = TokenBucket(rate_per_min=60.0, burst=1.0)
    assert tb.try_consume(5.0)
    assert not tb.try_consume(4.0)  # earlier time: no refill happened
    assert tb.try_consume(6.0)  # a second later: one token refilled


def test_invalid_params():
    with pytest.raises(ConfigError):
        TokenBucket(rate_per_min=0.0)
    tb = TokenBucket(rate_per_min=60.0)
    with pytest.raises(ConfigError):
        tb.try_consume(0.0, amount=-1.0)


def test_rate_per_sec_property():
    assert TokenBucket(rate_per_min=600.0).rate_per_sec == pytest.approx(10.0)
