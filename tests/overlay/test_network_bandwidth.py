"""Tests for DES-mode access-link bandwidth enforcement."""

import pytest

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.overlay.ids import PeerId
from repro.overlay.network import NetworkConfig
from tests.conftest import make_network

BW_CONFIG = NetworkConfig(hop_latency_jitter_s=0.0, bandwidth_enabled=True, seed=3)


def test_disabled_by_default():
    sim, net = make_network({0: {1}})
    assert not net._up_links
    net.peers[PeerId(0)].issue_query(("nosuch", "id900"))
    sim.run(until=1.0)
    assert net.stats.messages_dropped_bandwidth == 0


def test_light_traffic_unaffected():
    sim, net = make_network({0: {1}, 1: {2}}, config=BW_CONFIG)
    for i in range(5):
        net.peers[PeerId(0)].issue_query(("nosuch", f"id90{i}"))
    sim.run(until=5.0)
    assert net.stats.messages_dropped_bandwidth == 0
    assert net.peers[PeerId(2)].counters.queries_received == 5


def test_flood_exceeding_links_is_dropped():
    sim, net = make_network({0: {1, 2, 3}}, config=BW_CONFIG)
    agent = DDoSAgent(
        sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=60_000.0)
    )
    agent.start()
    sim.run(until=60.0)
    assert net.stats.messages_dropped_bandwidth > 0
    # what got through is bounded by the modelled link rates
    delivered = sum(
        net.peers[PeerId(i)].counters.queries_received for i in (1, 2, 3)
    )
    assert delivered < agent.queries_sent


def test_bandwidth_assignment_deterministic():
    sim1, net1 = make_network({0: {1}}, config=BW_CONFIG)
    sim2, net2 = make_network({0: {1}}, config=BW_CONFIG)
    r1 = net1._up_links[PeerId(0)].rate_per_min
    r2 = net2._up_links[PeerId(0)].rate_per_min
    assert r1 == r2
