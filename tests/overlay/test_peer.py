"""Unit tests for the message-level peer: flooding, dedup, reverse path."""

import pytest

from repro.errors import ProtocolError
from repro.overlay.ids import PeerId
from repro.overlay.message import Bye, Ping
from tests.conftest import make_network


def run(sim, seconds=10.0):
    sim.run(until=seconds)


def kw(net, obj=0):
    return net.content.keywords_for(obj)


def test_flood_reaches_all_nodes(line_network):
    sim, net = line_network
    origin = net.peers[PeerId(0)]
    origin.issue_query(("nosuch", "id999999"))
    run(sim)
    # every other peer received the query exactly once
    for i in (1, 2, 3):
        assert net.peers[PeerId(i)].counters.queries_received >= 1


def test_ttl_limits_flood_depth():
    from tests.conftest import make_network

    sim, net = make_network({i: {i + 1} for i in range(5)})  # 0-1-2-3-4-5
    net.peers[PeerId(0)].issue_query(("nosuch", "idx"), ttl=2)
    run(sim)
    assert net.peers[PeerId(1)].counters.queries_received == 1
    assert net.peers[PeerId(2)].counters.queries_received == 1
    assert net.peers[PeerId(3)].counters.queries_received == 0


def test_duplicate_suppression_in_cycle():
    # triangle: each peer sees the query once and drops duplicates
    sim, net = make_network({0: {1, 2}, 1: {2}})
    net.peers[PeerId(0)].issue_query(("nosuch", "idx"))
    run(sim)
    p1, p2 = net.peers[PeerId(1)], net.peers[PeerId(2)]
    assert p1.counters.queries_received == 2  # from 0 and from 2
    assert p1.counters.queries_dropped_duplicate == 1
    assert p2.counters.queries_dropped_duplicate == 1


def test_query_hit_routed_back_on_reverse_path(line_network):
    sim, net = line_network
    # place the object at peer 3 and query from peer 0
    obj = 0
    net.content.replica_holders[obj] = {3}
    net.content.peer_objects = {3: {obj}}
    net.peers[PeerId(0)].issue_query(kw(net, obj))
    run(sim)
    assert net.success_rate() == 1.0
    rec = next(iter(net.query_records.values()))
    assert rec.responses == 1
    assert rec.response_time == pytest.approx(6 * 0.05, rel=0.01)  # 3 hops each way


def test_own_object_not_counted_as_remote_hit(star_network):
    sim, net = star_network
    obj = 0
    net.content.replica_holders[obj] = {0}
    net.content.peer_objects = {0: {obj}}
    net.peers[PeerId(0)].issue_query(kw(net, obj))
    run(sim)
    # nobody else has it; the issuing peer doesn't respond to itself
    assert net.success_rate() == 0.0


def test_multiple_replicas_first_response_wins():
    sim, net = make_network({0: {1, 2}, 1: {3}, 2: {3}})
    obj = 0
    net.content.replica_holders[obj] = {1, 3}
    net.content.peer_objects = {1: {obj}, 3: {obj}}
    net.peers[PeerId(0)].issue_query(kw(net, obj))
    run(sim)
    rec = next(iter(net.query_records.values()))
    assert rec.responses >= 1
    # first responder is the 1-hop replica
    assert rec.response_time == pytest.approx(2 * 0.05, rel=0.01)


def test_capacity_exhaustion_drops_queries(star_network):
    sim, net = star_network
    center = net.peers[PeerId(0)]
    # tiny capacity: 60/min = 1/s, burst 1
    center.processing.rate_per_min = 60.0
    center.processing.burst = 1.0
    center.processing._tokens = 1.0
    leaf = net.peers[PeerId(1)]
    for i in range(20):
        leaf.issue_query(("nosuch", f"id90{i}"))
    run(sim, 2.0)
    assert center.counters.queries_dropped_capacity > 0
    assert net.stats.queries_dropped_capacity > 0


def test_offline_peer_ignores_messages(line_network):
    sim, net = line_network
    net.peers[PeerId(1)].go_offline()
    net.peers[PeerId(0)].issue_query(("nosuch", "idx"))
    run(sim)
    assert net.peers[PeerId(2)].counters.queries_received == 0


def test_offline_peer_cannot_issue(line_network):
    sim, net = line_network
    net.peers[PeerId(0)].go_offline()
    with pytest.raises(ProtocolError):
        net.peers[PeerId(0)].issue_query(("x",))


def test_originate_query_to_single_neighbor():
    """The Figure 1 attack pattern: different queries per neighbor."""
    sim, net = make_network({0: {1, 2}, 1: {3}, 2: {3}})
    attacker = net.peers[PeerId(0)]
    attacker.originate_query_to(PeerId(1), ("nosuch", "id901"))
    attacker.originate_query_to(PeerId(2), ("nosuch", "id902"))
    run(sim)
    # each branch gets its own query directly plus the other one looped
    # around the diamond (distinct GUIDs are never suppressed)
    assert net.peers[PeerId(1)].counters.queries_received == 2
    assert net.peers[PeerId(2)].counters.queries_received == 2
    assert net.peers[PeerId(3)].counters.queries_received == 2
    assert attacker.counters.queries_issued == 2


def test_originate_query_to_non_neighbor_rejected(line_network):
    sim, net = line_network
    with pytest.raises(ProtocolError):
        net.peers[PeerId(0)].originate_query_to(PeerId(3), ("x",))


def test_minute_window_counters(line_network):
    sim, net = line_network
    p0, p1 = net.peers[PeerId(0)], net.peers[PeerId(1)]
    p0.issue_query(("nosuch", "idq1"))
    p0.issue_query(("nosuch", "idq2"))
    run(sim, 61.0)
    assert p1.last_minute_in[PeerId(0)] == 2
    assert p0.last_minute_out[PeerId(1)] == 2
    # windows were reset after the roll
    assert p0.out_query_window[PeerId(1)] == 0


def test_ping_answered_with_pong(line_network):
    sim, net = line_network
    p0 = net.peers[PeerId(0)]
    pongs = []
    p0.control_handlers.append(lambda src, m: pongs.append((src, m)))
    p0.send_control(PeerId(1), Ping(guid=net.guid_factory.new(), ttl=1))
    run(sim)
    assert len(pongs) == 1
    assert pongs[0][0] == PeerId(1)


def test_disconnect_listeners_fire(line_network):
    sim, net = line_network
    events = []
    net.peers[PeerId(1)].disconnect_listeners.append(
        lambda nb, code: events.append((nb, code))
    )
    net.disconnect(PeerId(0), PeerId(1), reason_code=Bye.REASON_DDOS_SUSPECT)
    assert events == [(PeerId(0), Bye.REASON_DDOS_SUSPECT)]


def test_connect_listeners_fire(line_network):
    sim, net = line_network
    events = []
    net.peers[PeerId(0)].connect_listeners.append(events.append)
    net.connect(PeerId(0), PeerId(2))
    assert events == [PeerId(2)]


def test_self_neighbor_rejected(line_network):
    sim, net = line_network
    with pytest.raises(ProtocolError):
        net.peers[PeerId(0)].add_neighbor(PeerId(0))


def test_forward_filter_can_veto(star_network):
    sim, net = star_network
    center = net.peers[PeerId(0)]
    center.forward_filters.append(lambda q, targets: [])
    net.peers[PeerId(1)].issue_query(("nosuch", "idz"))
    run(sim)
    # center received but forwarded nothing
    assert net.peers[PeerId(2)].counters.queries_received == 0
    assert center.counters.queries_forwarded == 0


def test_go_offline_clears_last_minute_snapshots(line_network):
    sim, net = line_network
    p0, p1 = net.peers[PeerId(0)], net.peers[PeerId(1)]
    p0.issue_query(("nosuch", "idq1"))
    run(sim, 61.0)  # one roll: snapshots populated
    assert p1.last_minute_in[PeerId(0)] == 1
    p1.go_offline()
    # the snapshots describe connections that no longer exist; a
    # rejoining peer must not report pre-departure traffic to DD-POLICE
    assert p1.last_minute_in == {}
    assert p1.last_minute_out == {}


def test_churn_round_trip_snapshots_only_cover_current_session(line_network):
    sim, net = line_network
    p0, p1 = net.peers[PeerId(0)], net.peers[PeerId(1)]
    p0.issue_query(("nosuch", "idq1"))
    p0.issue_query(("nosuch", "idq2"))
    run(sim, 61.0)
    assert p1.last_minute_in[PeerId(0)] == 2
    p1.go_offline()
    p1.go_online()
    p1.add_neighbor(PeerId(0))
    p1.add_neighbor(PeerId(2))
    run(sim, 121.0)  # next roll, no traffic in the new session
    assert p1.last_minute_in == {PeerId(0): 0, PeerId(2): 0}
    assert p1.last_minute_out == {PeerId(0): 0, PeerId(2): 0}


def test_in_flight_query_cannot_resurrect_removed_counter(line_network):
    sim, net = line_network
    p0, p1 = net.peers[PeerId(0)], net.peers[PeerId(1)]
    p0.issue_query(("nosuch", "idz"))  # delivery is in flight (hop latency)
    p1.remove_neighbor(PeerId(0))
    assert PeerId(0) not in p1.in_query_window
    run(sim)
    # the late arrival was processed but must not recreate the counter
    # key: DD-POLICE would otherwise report traffic for a connection the
    # peer already tore down
    assert p1.counters.queries_received == 1
    assert PeerId(0) not in p1.in_query_window
    assert PeerId(0) not in p1.last_minute_in


def test_query_to_departed_neighbor_not_counted_out(line_network):
    sim, net = line_network
    p0 = net.peers[PeerId(0)]
    p0.issue_query(("nosuch", "ida"))
    assert p0.out_query_window[PeerId(1)] == 1
    p0.remove_neighbor(PeerId(1))
    assert PeerId(1) not in p0.out_query_window
    run(sim, 61.0)
    assert PeerId(1) not in p0.last_minute_out
