"""Unit tests for the standard Gnutella 0.6 body codecs."""

import pytest

from repro.errors import WireFormatError
from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import Ping, Pong, Query, QueryHit
from repro.overlay.wire import (
    HitRecord,
    decode_ping,
    decode_pong,
    decode_query,
    decode_query_hit,
    encode_ping,
    encode_pong,
    encode_query,
    encode_query_hit,
)


def guid(n=1):
    return Guid(n.to_bytes(16, "big"))


def test_ping_roundtrip():
    msg = Ping(guid=guid(), ttl=4, hops=3)
    decoded = decode_ping(encode_ping(msg))
    assert (decoded.guid, decoded.ttl, decoded.hops) == (msg.guid, 4, 3)


def test_ping_is_header_only():
    assert len(encode_ping(Ping(guid=guid()))) == 23


def test_pong_roundtrip():
    msg = Pong(guid=guid(2), ttl=1, hops=0, responder=PeerId(777), shared_files=42)
    decoded, port, kbytes = decode_pong(
        encode_pong(msg, port=6347, shared_kbytes=1024)
    )
    assert decoded.responder == PeerId(777)
    assert decoded.shared_files == 42
    assert (port, kbytes) == (6347, 1024)


def test_pong_requires_responder():
    with pytest.raises(WireFormatError):
        encode_pong(Pong(guid=guid()))
    with pytest.raises(WireFormatError):
        encode_pong(Pong(guid=guid(), responder=PeerId(1)), port=70_000)


def test_query_roundtrip():
    msg = Query(guid=guid(3), ttl=7, hops=0, keywords=("red", "song", "id3"),
                min_speed=56)
    decoded = decode_query(encode_query(msg))
    assert decoded.keywords == ("red", "song", "id3")
    assert decoded.min_speed == 56
    assert decoded.search_string == msg.search_string


def test_query_empty_keywords():
    msg = Query(guid=guid(), keywords=())
    decoded = decode_query(encode_query(msg))
    assert decoded.keywords == ()


def test_query_nul_rejected():
    msg = Query(guid=guid(), keywords=("bad\x00name",))
    with pytest.raises(WireFormatError):
        encode_query(msg)


def test_query_hit_roundtrip():
    msg = QueryHit(
        guid=guid(4), ttl=5, hops=0, responder=PeerId(9), result_count=2,
        query_guid=guid(5),
    )
    hits = [
        HitRecord(file_index=1, file_size=1_000_000, name="red song.mp3"),
        HitRecord(file_index=2, file_size=2_000_000, name="blue song.mp3"),
    ]
    decoded, got_hits = decode_query_hit(encode_query_hit(msg, hits, port=6346,
                                                          speed=1000))
    assert decoded.responder == PeerId(9)
    assert decoded.query_guid == guid(5)
    assert decoded.result_count == 2
    assert got_hits == hits


def test_query_hit_requires_fields():
    msg = QueryHit(guid=guid(), responder=None, query_guid=guid(5))
    with pytest.raises(WireFormatError):
        encode_query_hit(msg, [HitRecord(1, 1, "x")])
    msg2 = QueryHit(guid=guid(), responder=PeerId(1), query_guid=guid(5))
    with pytest.raises(WireFormatError):
        encode_query_hit(msg2, [])


def test_query_hit_truncation_detected():
    msg = QueryHit(guid=guid(), responder=PeerId(1), result_count=1,
                   query_guid=guid(5))
    raw = encode_query_hit(msg, [HitRecord(1, 10, "a.mp3")])
    with pytest.raises(WireFormatError):
        decode_query_hit(raw[:-4])


def test_hit_record_validation():
    with pytest.raises(WireFormatError):
        HitRecord(file_index=-1, file_size=0, name="x")
    with pytest.raises(WireFormatError):
        HitRecord(file_index=0, file_size=0, name="a\x00b")


def test_cross_kind_decode_rejected():
    ping_raw = encode_ping(Ping(guid=guid()))
    with pytest.raises(WireFormatError):
        decode_query(ping_raw)
    with pytest.raises(WireFormatError):
        decode_pong(ping_raw)
