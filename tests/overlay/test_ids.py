"""Unit tests for peer ids and GUIDs."""

import random

import pytest

from repro.overlay.ids import Guid, GuidFactory, PeerId


def test_peer_id_ipv4_mapping_roundtrip():
    pid = PeerId(0x012345)
    raw = pid.ipv4_bytes()
    assert raw[0] == 10
    assert PeerId.from_ipv4_bytes(raw) == pid


def test_peer_id_dotted_quad():
    assert PeerId(0).ipv4 == "10.0.0.0"
    assert PeerId(1).ipv4 == "10.0.0.1"
    assert PeerId(256).ipv4 == "10.0.1.0"
    assert PeerId(2**24 - 1).ipv4 == "10.255.255.255"


def test_peer_id_range_enforced():
    with pytest.raises(ValueError):
        PeerId(-1)
    with pytest.raises(ValueError):
        PeerId(2**24)


def test_peer_id_ordering_and_hash():
    a, b = PeerId(1), PeerId(2)
    assert a < b
    assert len({PeerId(3), PeerId(3)}) == 1


def test_from_ipv4_bytes_validates():
    with pytest.raises(ValueError):
        PeerId.from_ipv4_bytes(b"\x0a\x00\x00")  # too short
    with pytest.raises(ValueError):
        PeerId.from_ipv4_bytes(b"\x0b\x00\x00\x00")  # wrong prefix


def test_guid_must_be_16_bytes():
    with pytest.raises(ValueError):
        Guid(b"short")
    Guid(b"\x00" * 16)  # ok


def test_guid_factory_unique():
    factory = GuidFactory(random.Random(0))
    guids = {factory.new().raw for _ in range(1000)}
    assert len(guids) == 1000


def test_guid_factory_deterministic():
    a = GuidFactory(random.Random(5)).new()
    b = GuidFactory(random.Random(5)).new()
    assert a.raw == b.raw


def test_guid_hex():
    g = Guid(bytes(range(16)))
    assert g.hex() == bytes(range(16)).hex()
