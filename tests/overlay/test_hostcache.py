"""Unit tests for the bootstrap host cache."""

import random

import pytest

from repro.errors import ConfigError
from repro.overlay.hostcache import HostCache
from repro.overlay.ids import PeerId


@pytest.fixture
def cache():
    return HostCache(random.Random(1))


def test_online_tracking(cache):
    cache.mark_online(PeerId(1))
    cache.mark_online(PeerId(2))
    cache.mark_offline(PeerId(1))
    assert cache.online_peers() == {PeerId(2)}
    assert cache.online_count == 1


def test_candidates_respect_exclusion(cache):
    for i in range(10):
        cache.mark_online(PeerId(i))
    got = cache.candidates(20, exclude={PeerId(0), PeerId(1)})
    assert PeerId(0) not in got and PeerId(1) not in got
    assert len(got) == 8


def test_candidates_sample_size(cache):
    for i in range(50):
        cache.mark_online(PeerId(i))
    assert len(cache.candidates(5)) == 5


def test_candidates_filter_by_degree(cache):
    for i in range(5):
        cache.mark_online(PeerId(i))
    degree_of = {PeerId(i): 40 for i in range(4)}  # above max_degree=32
    got = cache.candidates(5, degree_of=degree_of)
    assert got == [PeerId(4)]


def test_negative_want_rejected(cache):
    with pytest.raises(ConfigError):
        cache.candidates(-1)


def test_max_degree_validation():
    with pytest.raises(ConfigError):
        HostCache(random.Random(0), max_degree=0)
