"""Unit tests for the Saroiu bandwidth model."""

import pytest

from repro.errors import ConfigError
from repro.overlay.bandwidth import (
    MEAN_QUERY_SIZE_BYTES,
    BandwidthClass,
    BandwidthModel,
    queries_per_minute,
)


def test_queries_per_minute_conversion():
    # 100 Kbps -> 100_000 * 60 / (8 * 83) ~= 9036 queries/min
    qpm = queries_per_minute(100_000)
    assert qpm == pytest.approx(100_000 * 60 / (8 * MEAN_QUERY_SIZE_BYTES))


def test_queries_per_minute_rejects_nonpositive():
    with pytest.raises(ConfigError):
        queries_per_minute(0)


def test_population_matches_saroiu_breakpoints():
    """78% downstream >= 100 Kbps, 22% upstream <= 100 Kbps."""
    model = BandwidthModel(seed=3)
    summary = model.population_summary(n=20_000)
    assert summary["downstream_ge_100k"] == pytest.approx(0.78, abs=0.02)
    assert summary["upstream_le_100k"] == pytest.approx(0.22, abs=0.02)


def test_assignment_deterministic_by_seed():
    a = [c.name for c in BandwidthModel(seed=1).assign(100)]
    b = [c.name for c in BandwidthModel(seed=1).assign(100)]
    assert a == b


def test_attack_rate_law():
    """Q_d = min(20,000, link capacity) -- Section 3.5."""
    model = BandwidthModel(seed=0)
    modem = next(c for c in model.classes if c.name == "modem")
    t1 = next(c for c in model.classes if c.name == "t1")
    assert model.attack_rate_qpm(modem) == pytest.approx(model.upstream_qpm(modem))
    assert model.attack_rate_qpm(modem) < 20_000
    assert model.attack_rate_qpm(t1) == 20_000.0


def test_class_validation():
    with pytest.raises(ConfigError):
        BandwidthClass("bad", downstream_bps=0, upstream_bps=1, weight=1)
    with pytest.raises(ConfigError):
        BandwidthClass("bad", downstream_bps=1, upstream_bps=1, weight=-1)


def test_model_requires_classes():
    with pytest.raises(ConfigError):
        BandwidthModel(classes=[])


def test_assign_negative_rejected():
    with pytest.raises(ConfigError):
        BandwidthModel().assign(-1)


def test_upstream_downstream_qpm_ordering():
    model = BandwidthModel()
    for cls in model.classes:
        assert model.downstream_qpm(cls) >= model.upstream_qpm(cls) or cls.name == "t1"
