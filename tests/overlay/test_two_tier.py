"""Unit tests for the super-peer (two-tier) topology."""

import random

import pytest

from repro.errors import TopologyError
from repro.overlay.topology import TopologyConfig, generate_topology, two_tier


@pytest.fixture(scope="module")
def topo():
    return two_tier(400, 0.15, random.Random(1))


def test_connected_and_symmetric(topo):
    assert topo.is_connected()
    assert topo.check_symmetric()
    assert topo.kind == "two_tier"


def test_leaves_attach_only_to_supers(topo):
    n_super = 60  # 400 * 0.15
    for leaf in range(n_super, 400):
        neighbors = topo.neighbors(leaf)
        assert 1 <= len(neighbors) <= 2
        assert all(v < n_super for v in neighbors)


def test_backbone_is_flooding_mesh(topo):
    n_super = 60
    super_degrees = [
        sum(1 for v in topo.neighbors(s) if v < n_super) for s in range(n_super)
    ]
    # supers keep BA-like backbone connectivity among themselves
    assert min(super_degrees) >= 3
    assert sum(super_degrees) / n_super >= 5.0


def test_supers_carry_leaves(topo):
    n_super = 60
    leaf_loads = [
        sum(1 for v in topo.neighbors(s) if v >= n_super) for s in range(n_super)
    ]
    assert sum(leaf_loads) >= 340  # every leaf attached
    assert max(leaf_loads) <= 30  # cap respected


def test_generate_topology_two_tier():
    topo = generate_topology(TopologyConfig(n=300, model="two_tier", seed=3))
    assert topo.kind == "two_tier"
    assert topo.is_connected()


def test_validation():
    with pytest.raises(TopologyError):
        two_tier(100, 0.0, random.Random(0))
    with pytest.raises(TopologyError):
        two_tier(4, 0.99, random.Random(0))
    with pytest.raises(TopologyError):
        TopologyConfig(model="two_tier", super_fraction=0.0)


def test_deterministic():
    a = two_tier(200, 0.2, random.Random(7))
    b = two_tier(200, 0.2, random.Random(7))
    assert a.adjacency == b.adjacency
