"""Unit tests for the content catalog."""

import random

import pytest

from repro.errors import ConfigError
from repro.overlay.content import ContentCatalog, ContentConfig


@pytest.fixture
def catalog():
    return ContentCatalog(ContentConfig(num_objects=50, seed=1), n_peers=200)


def test_popularity_is_zipf_normalized(catalog):
    assert sum(catalog.popularity) == pytest.approx(1.0)
    # strictly decreasing by rank
    assert all(a >= b for a, b in zip(catalog.popularity, catalog.popularity[1:]))


def test_every_object_has_replicas(catalog):
    for obj in range(50):
        assert catalog.replica_count(obj) >= 1


def test_replica_cap_respected():
    cfg = ContentConfig(num_objects=20, replicas_max_fraction=0.05, seed=2)
    cat = ContentCatalog(cfg, n_peers=1000)
    for obj in range(20):
        assert cat.replica_count(obj) <= 50


def test_popular_objects_have_more_replicas(catalog):
    assert catalog.replica_count(0) >= catalog.replica_count(49)


def test_keywords_roundtrip(catalog):
    for obj in (0, 7, 49):
        kws = catalog.keywords_for(obj)
        assert catalog.object_for_keywords(kws) == obj


def test_object_for_unknown_keywords_raises(catalog):
    with pytest.raises(ConfigError):
        catalog.object_for_keywords(("bogus", "xq1n5"))


def test_keywords_for_out_of_range(catalog):
    with pytest.raises(ConfigError):
        catalog.keywords_for(50)


def test_sample_object_respects_popularity(catalog):
    rng = random.Random(3)
    counts = [0] * 50
    for _ in range(5000):
        counts[catalog.sample_object(rng)] += 1
    assert counts[0] > counts[49]
    assert sum(counts) == 5000


def test_reverse_index_consistent(catalog):
    for obj, holders in enumerate(catalog.replica_holders):
        for peer in holders:
            assert obj in catalog.peer_objects[peer]
    for peer, objs in catalog.peer_objects.items():
        for obj in objs:
            assert catalog.peer_has(peer, obj)


def test_relocate_replicas_preserves_counts(catalog):
    rng = random.Random(4)
    victim = next(iter(catalog.peer_objects))
    before = {obj: catalog.replica_count(obj) for obj in range(50)}
    owned = set(catalog.peer_objects[victim])
    alive = [p for p in range(200) if p != victim]
    catalog.relocate_replicas(victim, alive, rng)
    assert victim not in catalog.peer_objects
    for obj in owned:
        assert victim not in catalog.replica_holders[obj]
        # count stays within 1 of the original (collision with existing holder)
        assert abs(catalog.replica_count(obj) - before[obj]) <= 1


def test_config_validation():
    with pytest.raises(ConfigError):
        ContentConfig(num_objects=0)
    with pytest.raises(ConfigError):
        ContentConfig(zipf_s=0)
    with pytest.raises(ConfigError):
        ContentConfig(replication_ratio=0)
    with pytest.raises(ConfigError):
        ContentConfig(replicas_max_fraction=0)


def test_catalog_rejects_bad_n():
    with pytest.raises(ConfigError):
        ContentCatalog(ContentConfig(), n_peers=0)
