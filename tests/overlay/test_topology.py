"""Unit tests for BRITE-like topology generation."""

import random

import pytest

from repro.errors import TopologyError
from repro.overlay.topology import (
    Topology,
    TopologyConfig,
    barabasi_albert,
    bittorrent_like,
    degree_statistics,
    generate_topology,
    hard_cutoff_scale_free,
    random_regularish,
    waxman,
)


def test_ba_basic_invariants():
    topo = barabasi_albert(200, 3, random.Random(1))
    assert topo.n == 200
    assert topo.check_symmetric()
    assert topo.is_connected()
    # every non-seed node has degree >= m
    assert all(topo.degree(u) >= 3 for u in range(200))


def test_ba_mean_degree_close_to_2m():
    topo = barabasi_albert(2000, 3, random.Random(2))
    stats = degree_statistics(topo)
    assert 5.5 <= stats["mean"] <= 6.5  # paper: average 6


def test_ba_paper_degree_profile():
    """Most peers have 3-4 neighbors, a few have tens (Section 3.5)."""
    topo = barabasi_albert(2000, 3, random.Random(3))
    stats = degree_statistics(topo)
    assert stats["mode"] in (3.0, 4.0)
    assert stats["frac_3_or_4"] > 0.4
    assert stats["max"] >= 20  # heavy tail
    assert 0 < stats["frac_tens"] < 0.3


def test_ba_requires_n_greater_than_m():
    with pytest.raises(TopologyError):
        barabasi_albert(3, 3, random.Random(0))


def test_waxman_connected_after_stitching():
    topo = waxman(100, alpha=0.1, beta=0.3, rng=random.Random(4))
    assert topo.is_connected()
    assert topo.check_symmetric()


def test_waxman_parameter_validation():
    with pytest.raises(TopologyError):
        waxman(10, alpha=0.0, beta=0.5, rng=random.Random(0))
    with pytest.raises(TopologyError):
        waxman(10, alpha=0.5, beta=1.5, rng=random.Random(0))


def test_random_regularish_mean_degree():
    topo = random_regularish(500, 6.0, random.Random(5))
    stats = degree_statistics(topo)
    assert 5.0 <= stats["mean"] <= 7.0
    assert topo.is_connected()


def test_hard_cutoff_truncates_the_tail():
    topo = hard_cutoff_scale_free(300, 2, 8, random.Random(5))
    assert topo.is_connected()
    degrees = [len(a) for a in topo.adjacency]
    assert max(degrees) <= 8  # no mega-hubs
    # An uncapped BA graph of the same size does grow a hub past the
    # cutoff, so the cap is doing real work.
    ba = barabasi_albert(300, 2, random.Random(5))
    assert max(len(a) for a in ba.adjacency) > 8


def test_hard_cutoff_validation():
    with pytest.raises(TopologyError):
        hard_cutoff_scale_free(10, 2, 2, random.Random(0))  # cutoff <= m
    with pytest.raises(TopologyError):
        hard_cutoff_scale_free(2, 2, 5, random.Random(0))  # n <= m
    with pytest.raises(TopologyError):
        TopologyConfig(n=50, model="hard_cutoff", ba_m=3, degree_cutoff=3)


def test_bittorrent_degrees_bounded_and_connected():
    topo = bittorrent_like(200, 4, 12, random.Random(7))
    assert topo.is_connected()
    degrees = [len(a) for a in topo.adjacency]
    assert max(degrees) <= 12
    # Flat-random swarm profile, not Gnutella's heavy tail: the mean
    # sits well above min_peers because later joiners keep attaching.
    assert sum(degrees) / len(degrees) >= 4


def test_bittorrent_validation():
    with pytest.raises(TopologyError):
        bittorrent_like(20, 0, 5, random.Random(0))
    with pytest.raises(TopologyError):
        bittorrent_like(20, 6, 5, random.Random(0))


def test_generate_topology_dispatch():
    for model in ("ba", "waxman", "random", "hard_cutoff", "bittorrent"):
        topo = generate_topology(TopologyConfig(n=120, model=model, seed=9))
        assert topo.n == 120
        assert topo.is_connected()
        assert topo.kind == model


def test_generate_topology_deterministic():
    a = generate_topology(TopologyConfig(n=100, seed=11))
    b = generate_topology(TopologyConfig(n=100, seed=11))
    assert a.adjacency == b.adjacency


def test_generate_topology_seed_sensitivity():
    a = generate_topology(TopologyConfig(n=100, seed=11))
    b = generate_topology(TopologyConfig(n=100, seed=12))
    assert a.adjacency != b.adjacency


def test_config_validation():
    with pytest.raises(TopologyError):
        TopologyConfig(n=1)
    with pytest.raises(TopologyError):
        TopologyConfig(model="grid")
    with pytest.raises(TopologyError):
        TopologyConfig(n=3, ba_m=3)


def test_edge_surgery():
    topo = Topology(n=3, adjacency=[set(), set(), set()])
    topo.add_edge(0, 1)
    assert topo.has_edge(0, 1) and topo.has_edge(1, 0)
    assert topo.edge_count() == 1
    topo.remove_edge(0, 1)
    assert not topo.has_edge(0, 1)
    with pytest.raises(TopologyError):
        topo.add_edge(1, 1)


def test_edges_iterates_each_once():
    topo = barabasi_albert(50, 2, random.Random(6))
    edges = list(topo.edges())
    assert len(edges) == topo.edge_count()
    assert all(u < v for u, v in edges)
    assert len(set(edges)) == len(edges)


def test_connected_component():
    topo = Topology(n=4, adjacency=[{1}, {0}, {3}, {2}])
    assert topo.connected_component(0) == {0, 1}
    assert not topo.is_connected()


def test_degree_statistics_empty_rejected():
    with pytest.raises(TopologyError):
        degree_statistics(Topology(n=0, adjacency=[]))
