"""Unit tests for overlay message types."""

import pytest

from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import (
    GNUTELLA_HEADER_SIZE,
    Bye,
    MessageKind,
    NeighborListMessage,
    NeighborTrafficMessage,
    Ping,
    Pong,
    Query,
    QueryHit,
)


def guid(n: int = 0) -> Guid:
    return Guid(n.to_bytes(16, "big"))


def test_payload_descriptors_match_spec():
    assert MessageKind.PING.value == 0x00
    assert MessageKind.PONG.value == 0x01
    assert MessageKind.QUERY.value == 0x80
    assert MessageKind.QUERY_HIT.value == 0x81
    assert MessageKind.NEIGHBOR_TRAFFIC.value == 0x83  # Section 3.3


def test_sizes_include_23_byte_header():
    p = Ping(guid())
    assert p.size_bytes == GNUTELLA_HEADER_SIZE
    q = Query(guid(), keywords=("abc",))
    assert q.size_bytes > GNUTELLA_HEADER_SIZE


def test_query_search_string():
    q = Query(guid(), keywords=("red", "song"))
    assert q.search_string == "red song"
    assert q.kind is MessageKind.QUERY


def test_query_payload_size_grows_with_keywords():
    short = Query(guid(), keywords=("a",))
    long = Query(guid(), keywords=("a", "much-longer-keyword"))
    assert long.payload_size > short.payload_size


def test_aged_copy_decrements_ttl_increments_hops():
    q = Query(guid(), ttl=7, hops=0, keywords=("x",))
    fwd = q.aged_copy()
    assert (fwd.ttl, fwd.hops) == (6, 1)
    assert (q.ttl, q.hops) == (7, 0)  # original untouched
    assert fwd.guid == q.guid


def test_aged_copy_preserves_ttl_plus_hops():
    q = Query(guid(), ttl=5, hops=2, keywords=("x",))
    fwd = q.aged_copy()
    assert fwd.ttl + fwd.hops == q.ttl + q.hops


def test_aged_copy_at_zero_ttl_rejected():
    q = Query(guid(), ttl=0, keywords=("x",))
    with pytest.raises(ValueError):
        q.aged_copy()


def test_query_hit_references_query_guid():
    qh = QueryHit(guid(1), responder=PeerId(4), query_guid=guid(2))
    assert qh.kind is MessageKind.QUERY_HIT
    assert qh.query_guid == guid(2)
    assert qh.payload_size > 0


def test_bye_reason_codes():
    b = Bye(guid(), reason_code=Bye.REASON_DDOS_SUSPECT, reason_text="ddos")
    assert b.kind is MessageKind.BYE
    assert b.reason_code == 1


def test_neighbor_list_size_scales_with_members():
    small = NeighborListMessage(guid(), sender=PeerId(1), neighbors=frozenset())
    big = NeighborListMessage(
        guid(), sender=PeerId(1), neighbors=frozenset(PeerId(i) for i in range(10))
    )
    assert big.payload_size == small.payload_size + 60


def test_neighbor_traffic_fixed_body_size():
    msg = NeighborTrafficMessage(
        guid(), source=PeerId(1), suspect=PeerId(2), timestamp=1,
        outgoing_queries=10, incoming_queries=20,
    )
    assert msg.payload_size == 20  # Table 1
    assert msg.size_bytes == GNUTELLA_HEADER_SIZE + 20


def test_pong_carries_responder():
    p = Pong(guid(), responder=PeerId(9), shared_files=3)
    assert p.responder == PeerId(9)
    assert p.kind is MessageKind.PONG
