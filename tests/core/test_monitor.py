"""Unit tests for the traffic monitor (Section 3.2)."""

import pytest

from repro.core.monitor import TrafficMonitor
from repro.errors import ConfigError


def test_latest_window_counts():
    mon = TrafficMonitor()
    mon.record_window(1, {"a": 10, "b": 5}, {"a": 3})
    assert mon.out_query("a") == 10
    assert mon.in_query("a") == 3
    assert mon.out_query("b") == 5
    assert mon.in_query("b") == 0


def test_report_pair_is_table1_order():
    mon = TrafficMonitor()
    mon.record_window(1, {"a": 7}, {"a": 9})
    assert mon.report_pair("a") == (7, 9)


def test_unknown_neighbor_reads_zero():
    mon = TrafficMonitor()
    assert mon.out_query("ghost") == 0
    assert mon.report_pair("ghost") == (0, 0)
    assert mon.latest("ghost") is None


def test_history_bounded():
    mon = TrafficMonitor(history_minutes=3)
    for minute in range(10):
        mon.record_window(minute, {"a": minute}, {"a": minute})
    hist = mon.history("a")
    assert len(hist) == 3
    assert [h.minute for h in hist] == [7, 8, 9]
    assert mon.out_query("a") == 9


def test_suspicious_neighbors_threshold():
    mon = TrafficMonitor()
    mon.record_window(1, {}, {"quiet": 400, "loud": 600, "edge": 500})
    suspects = mon.suspicious_neighbors(500.0)
    assert suspects == ["loud"]  # strictly greater than


def test_suspicion_uses_latest_window_only():
    mon = TrafficMonitor()
    mon.record_window(1, {}, {"a": 9000})
    mon.record_window(2, {}, {"a": 10})
    assert mon.suspicious_neighbors(500.0) == []


def test_forget_removes_history():
    mon = TrafficMonitor()
    mon.record_window(1, {"a": 1}, {"a": 1})
    mon.forget("a")
    assert mon.history("a") == []
    assert "a" not in mon.tracked_neighbors()


def test_validation():
    with pytest.raises(ConfigError):
        TrafficMonitor(history_minutes=0)
    # The threshold check happens at construction (config time), not on
    # every suspicious_neighbors call.
    with pytest.raises(ConfigError):
        TrafficMonitor(warning_threshold_qpm=0.0)
    with pytest.raises(ConfigError):
        TrafficMonitor(warning_threshold_qpm=-1.0)


def test_constructed_threshold_drives_suspicion():
    mon = TrafficMonitor(warning_threshold_qpm=500.0)
    mon.record_window(1, {}, {"quiet": 400, "loud": 600})
    assert mon.suspicious_neighbors() == ["loud"]


def test_unconfigured_threshold_requires_argument():
    with pytest.raises(ConfigError):
        TrafficMonitor().suspicious_neighbors()
