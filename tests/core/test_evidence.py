"""Unit tests for investigation evidence collection (Section 3.3)."""

import pytest

from repro.core.config import DDPoliceConfig
from repro.core.evidence import Investigation, InvestigationOutcome
from repro.core.indicators import NeighborReport
from repro.errors import ConfigError, ProtocolError


def make_inv(own_out=100, own_in=6000, members=("m1", "m2")):
    return Investigation(
        observer="obs",
        suspect="j",
        started_at=0.0,
        expected_members=frozenset(members),
        own_out_to_suspect=own_out,
        own_in_from_suspect=own_in,
    )


def report(member, out=100, inc=100):
    return NeighborReport(member=0, outgoing=out, incoming=inc)


def test_reports_accepted_from_expected_members():
    inv = make_inv()
    assert inv.add_report("m1", report("m1"))
    assert not inv.complete
    assert inv.add_report("m2", report("m2"))
    assert inv.complete
    assert inv.missing_members == frozenset()


def test_unexpected_member_ignored():
    inv = make_inv()
    assert not inv.add_report("stranger", report("stranger"))


def test_decide_convicts_heavy_sender():
    """Attacker-like numbers: huge inflow to the observer, tiny inflow to
    the suspect from everyone."""
    inv = make_inv(own_out=10, own_in=6000)
    inv.add_report("m1", NeighborReport(member=1, outgoing=10, incoming=6000))
    inv.add_report("m2", NeighborReport(member=2, outgoing=10, incoming=6000))
    outcome = inv.decide(DDPoliceConfig())
    assert outcome is InvestigationOutcome.CONVICTED
    g, s = inv.indicator_pair()
    assert g > 5 and s > 5


def test_decide_clears_pure_forwarder():
    """Forwarder numbers: outflow ~= sum of inflow spread over others."""
    inv = make_inv(own_out=1000, own_in=2000)
    inv.add_report("m1", NeighborReport(member=1, outgoing=1000, incoming=2000))
    inv.add_report("m2", NeighborReport(member=2, outgoing=1000, incoming=2000))
    outcome = inv.decide(DDPoliceConfig())
    assert outcome is InvestigationOutcome.CLEARED


def test_missing_reports_assumed_zero():
    inv = make_inv(own_out=0, own_in=700)
    # nobody reports: with assume-zero, g = own_in/(q*k) computed anyway
    outcome = inv.decide(DDPoliceConfig())
    assert outcome in (InvestigationOutcome.CONVICTED, InvestigationOutcome.CLEARED)
    g, s = inv.indicator_pair()
    # own_in=700, k=3 members total, q=100 -> g = 700/300
    assert g == pytest.approx(700 / 300.0)


def test_without_assume_zero_missing_reports_clear():
    from dataclasses import replace

    inv = make_inv(own_out=0, own_in=99999)
    config = replace(DDPoliceConfig(), assume_zero_on_missing=False)
    assert inv.decide(config) is InvestigationOutcome.CLEARED


def test_decide_is_idempotent():
    inv = make_inv()
    first = inv.decide(DDPoliceConfig())
    assert inv.decide(DDPoliceConfig()) is first


def test_reports_after_decision_rejected():
    inv = make_inv()
    inv.decide(DDPoliceConfig())
    assert not inv.add_report("m1", report("m1"))


def test_indicator_pair_before_decision_raises():
    with pytest.raises(ProtocolError):
        make_inv().indicator_pair()


def test_validation():
    with pytest.raises(ConfigError):
        Investigation("a", "a", 0.0, frozenset(), 0, 0)
    with pytest.raises(ConfigError):
        Investigation("a", "j", 0.0, frozenset({"a"}), 0, 0)
    with pytest.raises(ConfigError):
        Investigation("a", "j", 0.0, frozenset({"j"}), 0, 0)
    with pytest.raises(ConfigError):
        Investigation("a", "j", 0.0, frozenset(), -1, 0)
