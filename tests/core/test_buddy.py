"""Unit tests for buddy groups (Section 3.1, Figure 7)."""

import pytest

from repro.core.buddy import BuddyGroup, buddy_group_of
from repro.errors import ConfigError


def neighbors_oracle(adjacency):
    return lambda p: adjacency.get(p, set())


def test_bg1_is_direct_neighbors():
    """Figure 7: BG1-j = {A, B, C, D}, the direct neighbors of j."""
    adjacency = {"j": {"A", "B", "C", "D"}}
    group = buddy_group_of("j", neighbors_oracle(adjacency))
    assert group.members == frozenset({"A", "B", "C", "D"})
    assert group.suspect == "j"
    assert group.radius == 1


def test_bg2_extends_one_more_hop():
    adjacency = {
        "j": {"A", "B"},
        "A": {"j", "x"},
        "B": {"j", "y"},
    }
    group = buddy_group_of("j", neighbors_oracle(adjacency), radius=2)
    assert group.members == frozenset({"A", "B", "x", "y"})


def test_bgr_never_contains_suspect():
    adjacency = {"j": {"A"}, "A": {"j"}}
    group = buddy_group_of("j", neighbors_oracle(adjacency), radius=3)
    assert "j" not in group.members


def test_peers_to_contact_excludes_observer():
    group = BuddyGroup(suspect="j", members=frozenset({"A", "B", "C"}))
    assert group.peers_to_contact("A") == {"B", "C"}


def test_peers_to_contact_requires_membership():
    group = BuddyGroup(suspect="j", members=frozenset({"A"}))
    with pytest.raises(ConfigError):
        group.peers_to_contact("Z")


def test_refresh_updates_members_and_time():
    group = BuddyGroup(suspect="j", members=frozenset({"A"}), formed_at=0.0)
    refreshed = group.refresh({"B", "C", "j"}, now=10.0)
    assert refreshed.members == frozenset({"B", "C"})
    assert refreshed.formed_at == 10.0
    assert refreshed.suspect == "j"


def test_suspect_in_members_rejected():
    with pytest.raises(ConfigError):
        BuddyGroup(suspect="j", members=frozenset({"j", "A"}))


def test_radius_validation():
    with pytest.raises(ConfigError):
        buddy_group_of("j", lambda p: set(), radius=0)
    with pytest.raises(ConfigError):
        BuddyGroup(suspect="j", members=frozenset(), radius=0)


def test_empty_oracle_gives_empty_group():
    group = buddy_group_of("j", lambda p: set())
    assert group.size == 0
