"""Integration tests for the DES DD-POLICE engine (Section 3 end to end)."""

import pytest

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.attack.cheating import CheatStrategy
from repro.core.config import DDPoliceConfig, ExchangePolicy
from repro.core.police import deploy_ddpolice
from repro.overlay.ids import PeerId
from tests.conftest import make_network

#: attacker(0) with buddy group {1,2,3}; tree topology so attack queries
#: cannot echo back to the attacker through alternate paths (the echo
#: effect is covered by test_cyclic_echo_neutralizes_indicator below).
TOPOLOGY = {0: {1, 2, 3}, 1: {4, 5}, 2: {6, 7}, 3: {8, 9}}

FAST_EXCHANGE = DDPoliceConfig(exchange_period_s=30.0)


def attack_run(
    *,
    rate_qpm=3000.0,
    config=FAST_EXCHANGE,
    strategy=CheatStrategy.SILENT,
    duration_s=200.0,
    seed=1,
):
    sim, net = make_network(TOPOLOGY, seed=seed)
    bad = {PeerId(0)}
    engines = deploy_ddpolice(net, config, bad_peers=bad, bad_strategy=strategy)
    agent = DDoSAgent(
        sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=rate_qpm, per_neighbor=True)
    )
    agent.start()
    sim.run(until=duration_s)
    return sim, net, engines, agent


def test_attacker_detected_and_disconnected():
    sim, net, engines, agent = attack_run()
    log = engines[PeerId(1)].judgments
    assert PeerId(0) in log.disconnected_suspects()
    # all of the attacker's neighbors eventually cut it
    assert net.neighbors_of(PeerId(0)) == set()


def test_detection_is_fast():
    """'DD-POLICE can help peers disconnect with DDoS agents in a very
    short time period after attacks are launched' -- within ~2 windows."""
    sim, net, engines, agent = attack_run()
    log = engines[PeerId(1)].judgments
    t = log.first_disconnect_time(PeerId(0))
    assert t is not None and t <= 130.0  # first minute window + decision


def test_good_peers_not_disconnected_with_honest_reports():
    """Section 3.4's default assumption: 'we assume that peer j will not
    cheat in delivering the Neighbor_Traffic messages' -- then only the
    attacker is cut."""
    sim, net, engines, agent = attack_run(strategy=CheatStrategy.HONEST)
    log = engines[PeerId(1)].judgments
    cut = log.disconnected_suspects()
    assert cut == {PeerId(0)}, f"good peers wrongly cut: {cut - {PeerId(0)}}"


def test_silent_attacker_gets_its_forwarders_cut_but_attack_isolated():
    """Section 3.4 cases 2/3: refusing to report makes the forwarding
    neighbors look like issuers to *their* buddy groups, so they may be
    wrongly disconnected -- 'making peer m be wrongly disconnected ...
    will lead to peer j's attack queries being blocked', which is why
    cheating buys the attacker nothing."""
    sim, net, engines, agent = attack_run(strategy=CheatStrategy.SILENT)
    log = engines[PeerId(1)].judgments
    cut = log.disconnected_suspects()
    assert PeerId(0) in cut  # the attacker still falls
    # the attack is isolated: the attacker has no neighbors left
    assert net.neighbors_of(PeerId(0)) == set()


def test_no_attack_no_disconnects():
    sim, net = make_network(TOPOLOGY, seed=2)
    engines = deploy_ddpolice(net, FAST_EXCHANGE)
    from repro.workload.generator import QueryWorkload, WorkloadConfig

    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=2.0, seed=2))
    wl.start()
    sim.run(until=240.0)
    log = engines[PeerId(0)].judgments
    assert log.disconnected_suspects() == set()


def test_below_warning_threshold_not_investigated():
    sim, net, engines, agent = attack_run(rate_qpm=900.0)
    # 900/min split over 3 neighbors = 300/min/edge < 500 warning
    log = engines[PeerId(1)].judgments
    assert PeerId(0) not in log.disconnected_suspects()


@pytest.mark.parametrize(
    "strategy",
    [CheatStrategy.HONEST, CheatStrategy.INFLATE, CheatStrategy.DEFLATE, CheatStrategy.SILENT],
)
def test_cheating_does_not_save_the_attacker(strategy):
    """Section 3.4: 'cheating or not reporting will do nothing good for
    peer j' -- it is disconnected under every reporting strategy."""
    sim, net, engines, agent = attack_run(strategy=strategy)
    log = engines[PeerId(1)].judgments
    assert PeerId(0) in log.disconnected_suspects()
    assert net.neighbors_of(PeerId(0)) == set()


def test_reports_flow_between_members():
    sim, net, engines, agent = attack_run(strategy=CheatStrategy.HONEST)
    member_engines = [engines[PeerId(i)] for i in (1, 2, 3)]
    assert any(e.reports_sent > 0 for e in member_engines)
    assert any(e.reports_received > 0 for e in member_engines)


def test_neighbor_lists_exchanged_periodically():
    sim, net = make_network(TOPOLOGY, seed=3)
    engines = deploy_ddpolice(net, FAST_EXCHANGE)
    sim.run(until=120.0)
    e1 = engines[PeerId(1)]
    assert e1.lists_sent > 0
    # peer 1 knows peer 0's neighbors from the exchange
    assert e1.directory.known_neighbors(PeerId(0)) == {PeerId(1), PeerId(2), PeerId(3)}


def test_event_driven_exchange_announces_changes():
    cfg = DDPoliceConfig(exchange_policy=ExchangePolicy.EVENT_DRIVEN)
    sim, net = make_network(TOPOLOGY, seed=4)
    engines = deploy_ddpolice(net, cfg)
    sim.run(until=10.0)
    baseline = engines[PeerId(1)].lists_sent
    net.connect(PeerId(1), PeerId(5))
    sim.run(until=20.0)
    assert engines[PeerId(1)].lists_sent > baseline


def test_cyclic_echo_neutralizes_indicator():
    """Known limitation of Definition 2.1, reproduced deliberately.

    In a small cyclic overlay, every distinct attack query loops back to
    the attacker along alternate paths. Those echoes count as inflow
    *into* the suspect, and the (k-1)-weighted subtraction then masks the
    issued volume entirely -- the attacker evades detection. At the
    paper's scale the echoes are attenuated by TTL expiry and congestion
    drops, which is why detection still works there (see the fluid-engine
    experiments).
    """
    cyclic = {0: {1, 2, 3}, 1: {4}, 2: {4, 5}, 3: {5}, 4: {5}}
    sim, net = make_network(cyclic, seed=1)
    engines = deploy_ddpolice(
        net, FAST_EXCHANGE, bad_peers={PeerId(0)}, bad_strategy=CheatStrategy.HONEST
    )
    agent = DDoSAgent(
        sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=3000.0, per_neighbor=True)
    )
    agent.start()
    sim.run(until=200.0)
    log = engines[PeerId(1)].judgments
    # echoes drive g strongly negative; the attacker is never cut
    assert PeerId(0) not in log.disconnected_suspects()
    negatives = [
        j.g_value for j in log.judgments if j.suspect == PeerId(0)
    ]
    assert negatives and all(g < 0 for g in negatives)


def test_engine_stop_halts_exchange():
    sim, net = make_network(TOPOLOGY, seed=5)
    engines = deploy_ddpolice(net, FAST_EXCHANGE)
    engines[PeerId(0)].stop()
    sim.run(until=65.0)
    assert engines[PeerId(0)].lists_sent == 0
