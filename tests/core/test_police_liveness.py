"""Tests for buddy-group liveness pings and lying-list detection."""

from repro.core.config import DDPoliceConfig
from repro.core.police import deploy_ddpolice
from repro.overlay.ids import PeerId
from repro.overlay.message import NeighborListMessage
from tests.conftest import make_network

TOPOLOGY = {0: {1, 2, 3}, 1: {4, 5}, 2: {6, 7}, 3: {8, 9}}
FAST = DDPoliceConfig(exchange_period_s=20.0, liveness_ping_period_s=15.0)


def test_pings_flow_and_pongs_return():
    sim, net = make_network(TOPOLOGY, seed=1)
    engines = deploy_ddpolice(net, FAST)
    sim.run(until=120.0)
    e1 = engines[PeerId(1)]
    assert e1.pings_sent > 0
    assert e1.pongs_received > 0


def test_dead_member_evicted_from_directory():
    sim, net = make_network(TOPOLOGY, seed=2)
    engines = deploy_ddpolice(net, FAST)
    sim.run(until=40.0)  # lists exchanged, directory warm
    e1 = engines[PeerId(1)]
    assert e1.directory.get(PeerId(0)) is not None
    # peer 0 silently disappears (crash: no Bye, no churn notification)
    net.peers[PeerId(0)].go_offline()
    sim.run(until=160.0)  # several missed ping rounds
    assert e1.directory.get(PeerId(0)) is None


def test_live_members_retained():
    sim, net = make_network(TOPOLOGY, seed=3)
    engines = deploy_ddpolice(net, FAST)
    sim.run(until=200.0)
    e1 = engines[PeerId(1)]
    assert e1.directory.get(PeerId(0)) is not None


def test_lying_neighbor_list_earns_strikes_and_disconnect():
    """Section 3.1: inconsistent neighbor-list claims get the liar cut.

    The liar hides its real neighbors 2 and 3 and invents 9. Honest
    lists from 2, 3 (who claim the liar) and from 9 (who does not)
    contradict the fake, strikes accumulate, and peer 1 disconnects it.
    """
    sim, net = make_network(TOPOLOGY, seed=4)
    engines = deploy_ddpolice(net, FAST)
    liar = PeerId(0)
    engines[liar].stop()  # the liar's honest engine must not out-shout it
    victim_observer = engines[PeerId(1)]

    def send_lie():
        if liar in net.peers[liar].neighbors or PeerId(1) in net.peers[liar].neighbors:
            fake = NeighborListMessage(
                guid=net.guid_factory.new(),
                ttl=1,
                hops=0,
                sender=liar,
                neighbors=frozenset({PeerId(1), PeerId(9)}),
            )
            net.peers[liar].send_control(PeerId(1), fake)

    for delay in (30.0, 50.0, 70.0, 90.0, 110.0):
        sim.schedule_in(delay, send_lie)
    sim.run(until=240.0)
    assert liar not in net.neighbors_of(PeerId(1))
    cut = victim_observer.judgments.disconnect_events()
    assert any(j.suspect == liar and j.reason == "inconsistent_list" for j in cut)
