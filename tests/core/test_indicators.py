"""Unit tests for Definitions 2.1-2.3 (the heart of DD-POLICE)."""

import pytest

from repro.core.indicators import (
    NeighborReport,
    general_indicator,
    indicators_from_reports,
    is_bad_peer,
    single_indicator,
)
from repro.errors import ConfigError


def figure2_counts(q0, q1, q2, q3):
    """The Figure 2 star: j issues q0, receives q1/q2/q3 from neighbors
    1/2/3, forwards everything (no duplicates). Returns (sent_by_j,
    received_by_j) ordered by neighbor."""
    sent = [q0 + q2 + q3, q0 + q1 + q3, q0 + q1 + q2]
    received = [q1, q2, q3]
    return sent, received


def test_figure2_general_indicator_equals_q0_over_q():
    """Worked example from Section 2.2: g(j,t) = q0/q exactly."""
    q = 10.0
    for q0 in (0, 5, 100, 20_000):
        sent, received = figure2_counts(q0, 30, 40, 50)
        assert general_indicator(sent, received, q) == pytest.approx(q0 / q)


def test_figure2_single_indicator_equals_q0_over_q():
    q = 10.0
    q0, q1, q2, q3 = 70, 30, 40, 50
    # i is neighbor 1: Q_ji = q0+q2+q3; others into j: q2, q3
    s = single_indicator(q0 + q2 + q3, [q2, q3], q)
    assert s == pytest.approx(q0 / q)


def test_good_forwarder_with_losses_scores_nonpositive():
    """A peer that forwards *less* than it receives (drops, dedup) must
    never look worse than a faithful forwarder."""
    q = 10.0
    q1, q2, q3 = 300, 400, 500
    # forwards only 80% of traffic, issues nothing
    sent = [0.8 * (q2 + q3), 0.8 * (q1 + q3), 0.8 * (q1 + q2)]
    assert general_indicator(sent, [q1, q2, q3], q) < 0


def test_attacker_rate_dominates_indicator():
    """g ~= Q_d / (q*k) for an attacker (Section 2.2 analysis)."""
    q, k, qd = 10.0, 4, 20_000
    sent = [qd / k] * k  # distinct queries split across neighbors
    received = [0.0] * k
    g = general_indicator(sent, received, q)
    assert g == pytest.approx(qd / (q * k))
    assert g > 100


def test_general_indicator_validation():
    with pytest.raises(ConfigError):
        general_indicator([1.0], [1.0], 0.0)
    with pytest.raises(ConfigError):
        general_indicator([1.0, 2.0], [1.0], 10.0)
    with pytest.raises(ConfigError):
        general_indicator([], [], 10.0)


def test_single_indicator_validation():
    with pytest.raises(ConfigError):
        single_indicator(1.0, [], 0.0)
    with pytest.raises(ConfigError):
        single_indicator(-1.0, [], 10.0)


def test_is_bad_peer_definition_2_3():
    assert is_bad_peer(1.5, [0.0])  # g over threshold
    assert is_bad_peer(0.0, [0.5, 1.2])  # any s over threshold
    assert not is_bad_peer(1.0, [1.0])  # strict inequality
    assert not is_bad_peer(-5.0, [])


def test_is_bad_peer_custom_threshold():
    assert not is_bad_peer(4.0, [], threshold=5.0)
    assert is_bad_peer(6.0, [], threshold=5.0)
    with pytest.raises(ConfigError):
        is_bad_peer(1.0, [], threshold=0.0)


def test_indicators_from_reports_matches_figure2():
    q = 10.0
    q0, q1, q2, q3 = 200, 30, 40, 50
    sent, received = figure2_counts(q0, q1, q2, q3)
    # observer is neighbor index 0; members 2 and 3 report
    reports = {
        2: NeighborReport(member=2, outgoing=q2, incoming=sent[1]),
        3: NeighborReport(member=3, outgoing=q3, incoming=sent[2]),
    }
    g, s = indicators_from_reports(
        observer=1,
        own_out_to_j=q1,
        own_in_from_j=sent[0],
        reports=reports,
        q=q,
    )
    assert g == pytest.approx(q0 / q)
    assert s == pytest.approx(q0 / q)


def test_missing_report_treated_as_zero():
    """Section 3.4: silence means (0, 0) -- and that inflates g."""
    q = 10.0
    reports_full = {
        2: NeighborReport(member=2, outgoing=100, incoming=100),
        3: NeighborReport(member=3, outgoing=100, incoming=100),
    }
    reports_missing = {2: reports_full[2], 3: None}
    g_full, _ = indicators_from_reports(1, 100, 300, reports_full, q)
    g_missing, _ = indicators_from_reports(1, 100, 300, reports_missing, q)
    # refusing to report removes inflow evidence -> higher g (worse for j)
    assert g_missing > g_full


def test_observer_cannot_be_in_reports():
    with pytest.raises(ConfigError):
        indicators_from_reports(
            1, 0, 0, {1: NeighborReport(member=1, outgoing=0, incoming=0)}, 10.0
        )


def test_report_validation():
    with pytest.raises(ConfigError):
        NeighborReport(member=1, outgoing=-1, incoming=0)
