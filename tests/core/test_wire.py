"""Unit tests for the Table 1 wire format and Gnutella header codec."""

import pytest

from repro.core.wire import (
    HEADER_SIZE,
    NEIGHBOR_TRAFFIC_BODY_SIZE,
    GnutellaHeader,
    decode_neighbor_list,
    decode_neighbor_traffic,
    encode_neighbor_list,
    encode_neighbor_traffic,
)
from repro.errors import WireFormatError
from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import (
    MessageKind,
    NeighborListMessage,
    NeighborTrafficMessage,
)


def guid(n=1):
    return Guid(n.to_bytes(16, "big"))


def make_traffic(**kw):
    defaults = dict(
        guid=guid(),
        ttl=1,
        hops=0,
        source=PeerId(0x010203),
        suspect=PeerId(0x0A0B0C),
        timestamp=1234,
        outgoing_queries=567,
        incoming_queries=89,
    )
    defaults.update(kw)
    return NeighborTrafficMessage(**defaults)


def test_header_is_23_bytes():
    header = GnutellaHeader(guid(), MessageKind.QUERY, 7, 0, 100)
    assert len(header.encode()) == HEADER_SIZE == 23


def test_header_roundtrip():
    header = GnutellaHeader(guid(9), MessageKind.NEIGHBOR_TRAFFIC, 3, 4, 20)
    decoded = GnutellaHeader.decode(header.encode())
    assert decoded == header


def test_header_payload_descriptor_0x83():
    raw = encode_neighbor_traffic(make_traffic())
    assert raw[16] == 0x83  # payload descriptor byte, Section 3.3


def test_table1_byte_offsets():
    """Table 1: Source IP @0, Suspect IP @4, timestamp @8, out @12, in @16."""
    msg = make_traffic()
    body = encode_neighbor_traffic(msg)[HEADER_SIZE:]
    assert len(body) == NEIGHBOR_TRAFFIC_BODY_SIZE == 20
    assert body[0:4] == msg.source.ipv4_bytes()
    assert body[4:8] == msg.suspect.ipv4_bytes()
    assert int.from_bytes(body[8:12], "big") == 1234
    assert int.from_bytes(body[12:16], "big") == 567
    assert int.from_bytes(body[16:20], "big") == 89


def test_neighbor_traffic_roundtrip():
    msg = make_traffic()
    decoded = decode_neighbor_traffic(encode_neighbor_traffic(msg))
    assert decoded.source == msg.source
    assert decoded.suspect == msg.suspect
    assert decoded.timestamp == msg.timestamp
    assert decoded.outgoing_queries == msg.outgoing_queries
    assert decoded.incoming_queries == msg.incoming_queries
    assert decoded.guid == msg.guid
    assert (decoded.ttl, decoded.hops) == (msg.ttl, msg.hops)


def test_traffic_encode_requires_endpoints():
    with pytest.raises(WireFormatError):
        encode_neighbor_traffic(make_traffic(source=None))
    with pytest.raises(WireFormatError):
        encode_neighbor_traffic(make_traffic(suspect=None))


def test_traffic_encode_rejects_out_of_range():
    with pytest.raises(WireFormatError):
        encode_neighbor_traffic(make_traffic(outgoing_queries=2**32))
    with pytest.raises(WireFormatError):
        encode_neighbor_traffic(make_traffic(timestamp=-1))


def test_decode_truncated_rejected():
    raw = encode_neighbor_traffic(make_traffic())
    with pytest.raises(WireFormatError):
        decode_neighbor_traffic(raw[:-1])
    with pytest.raises(WireFormatError):
        GnutellaHeader.decode(raw[:10])


def test_decode_wrong_kind_rejected():
    msg = NeighborListMessage(
        guid=guid(), ttl=1, hops=0, sender=PeerId(1), neighbors=frozenset()
    )
    raw = encode_neighbor_list(msg)
    with pytest.raises(WireFormatError):
        decode_neighbor_traffic(raw)


def test_unknown_descriptor_rejected():
    raw = bytearray(encode_neighbor_traffic(make_traffic()))
    raw[16] = 0x77
    with pytest.raises(WireFormatError):
        GnutellaHeader.decode(bytes(raw))


def test_neighbor_list_roundtrip():
    msg = NeighborListMessage(
        guid=guid(2),
        ttl=1,
        hops=0,
        sender=PeerId(42),
        neighbors=frozenset(PeerId(i) for i in (5, 9, 1000)),
    )
    decoded = decode_neighbor_list(encode_neighbor_list(msg))
    assert decoded.sender == PeerId(42)
    assert decoded.neighbors == msg.neighbors


def test_neighbor_list_empty_ok():
    msg = NeighborListMessage(
        guid=guid(), ttl=1, hops=0, sender=PeerId(1), neighbors=frozenset()
    )
    assert decode_neighbor_list(encode_neighbor_list(msg)).neighbors == frozenset()


def test_neighbor_list_length_mismatch_rejected():
    raw = encode_neighbor_list(
        NeighborListMessage(
            guid=guid(), ttl=1, hops=0, sender=PeerId(1),
            neighbors=frozenset({PeerId(2)}),
        )
    )
    with pytest.raises(WireFormatError):
        decode_neighbor_list(raw[:-2])


def test_header_field_ranges():
    with pytest.raises(WireFormatError):
        GnutellaHeader(guid(), MessageKind.PING, ttl=256, hops=0, payload_length=0)
    with pytest.raises(WireFormatError):
        GnutellaHeader(guid(), MessageKind.PING, ttl=1, hops=-1, payload_length=0)
