"""Unit tests for DD-POLICE configuration."""

import pytest

from repro.core.config import DDPoliceConfig, ExchangePolicy
from repro.errors import ConfigError


def test_paper_defaults():
    """Reconstructed Section 3 constants (see DESIGN.md section 0)."""
    cfg = DDPoliceConfig()
    assert cfg.q_threshold_qpm == 100.0
    assert cfg.warning_threshold_qpm == 500.0
    assert cfg.cut_threshold == 5.0  # "we choose CT = 5"
    assert cfg.exchange_period_s == 120.0  # every 2 minutes
    assert cfg.report_dedup_window_s == 5.0
    assert cfg.collection_window_s == 5.0
    assert cfg.radius == 1  # DD-POLICE-1
    assert cfg.exchange_policy is ExchangePolicy.PERIODIC
    assert cfg.assume_zero_on_missing


def test_with_cut_threshold_copies():
    base = DDPoliceConfig()
    ct3 = base.with_cut_threshold(3.0)
    assert ct3.cut_threshold == 3.0
    assert base.cut_threshold == 5.0
    assert ct3.q_threshold_qpm == base.q_threshold_qpm


@pytest.mark.parametrize(
    "kwargs",
    [
        {"q_threshold_qpm": 0},
        {"warning_threshold_qpm": -1},
        {"cut_threshold": 0},
        {"radius": 0},
        {"exchange_period_s": 0},
        {"report_dedup_window_s": -1},
        {"collection_window_s": 0},
        {"inconsistency_tolerance": 0},
        {"liveness_ping_period_s": 0},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigError):
        DDPoliceConfig(**kwargs)
