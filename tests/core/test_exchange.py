"""Unit tests for neighbor-list exchange and consistency checking."""

import pytest

from repro.core.config import DDPoliceConfig, ExchangePolicy
from repro.core.exchange import (
    ConsistencyTracker,
    ListExchangeProtocol,
    NeighborListDirectory,
)
from repro.errors import ConfigError


def test_directory_stores_latest_list():
    d = NeighborListDirectory()
    d.update("j", {"a", "b"}, now=1.0)
    d.update("j", {"c"}, now=2.0)
    assert d.known_neighbors("j") == frozenset({"c"})
    assert d.age("j", now=5.0) == 3.0


def test_directory_unknown_owner():
    d = NeighborListDirectory()
    assert d.known_neighbors("ghost") == frozenset()
    assert d.age("ghost", 1.0) is None
    assert d.get("ghost") is None


def test_directory_forget():
    d = NeighborListDirectory()
    d.update("j", {"a"}, now=0.0)
    d.forget("j")
    assert d.get("j") is None


def test_find_inconsistencies_detects_one_sided_claims():
    d = NeighborListDirectory()
    d.update("liar", {"victim"}, now=0.0)
    d.update("victim", set(), now=0.0)
    assert ("liar", "victim") in d.find_inconsistencies()


def test_consistent_pairs_not_flagged():
    d = NeighborListDirectory()
    d.update("a", {"b"}, now=0.0)
    d.update("b", {"a"}, now=0.0)
    assert d.find_inconsistencies() == []


def test_claims_about_unknown_peers_not_judged():
    d = NeighborListDirectory()
    d.update("a", {"mystery"}, now=0.0)
    assert d.find_inconsistencies() == []


def test_consistency_tracker_tolerance():
    t = ConsistencyTracker(tolerance=3)
    assert not t.strike("x", "y")
    assert not t.strike("y", "x")  # pair is unordered
    assert t.strike("x", "y")  # third strike
    assert t.strikes("x", "y") == 3
    t.clear("x", "y")
    assert t.strikes("x", "y") == 0


def test_consistency_tracker_pairs_independent():
    t = ConsistencyTracker(tolerance=3)
    t.strike("x", "y")
    t.strike("x", "z")
    assert t.strikes("x", "y") == 1
    assert t.strikes("x", "z") == 1
    assert t.strikes_involving("x") == 2
    assert t.strikes_involving("y") == 1


def test_consistency_tracker_forgiveness():
    t = ConsistencyTracker(tolerance=3)
    t.strike("x", "y")
    t.strike("x", "y")
    t.observe_consistent("x", "y")
    assert t.strikes("x", "y") == 0
    assert not t.strike("x", "y")  # counter restarted


def test_consistency_tracker_validation():
    with pytest.raises(ConfigError):
        ConsistencyTracker(tolerance=0)


def test_periodic_protocol_sends_on_timer_only():
    sends = []
    config = DDPoliceConfig(exchange_policy=ExchangePolicy.PERIODIC)
    proto = ListExchangeProtocol(config, lambda: sends.append(1) or 1)
    proto.on_timer_tick()
    proto.on_membership_change()
    assert len(sends) == 1
    assert proto.exchanges_sent == 1


def test_event_driven_protocol_sends_on_change_only():
    sends = []
    config = DDPoliceConfig(exchange_policy=ExchangePolicy.EVENT_DRIVEN)
    proto = ListExchangeProtocol(config, lambda: sends.append(1) or 1)
    proto.on_timer_tick()
    proto.on_membership_change()
    proto.on_membership_change()
    assert len(sends) == 2
