"""Robustness extensions of the evidence protocol (off by default).

Covers: investigation re-requests of missing Neighbor_Traffic reports,
the report quorum with window extension and abstention, neighbor-list
retransmission, stale list/report rejection, the stopped-engine guards,
and the cheaters-don't-benefit invariant for retries.
"""

import math

import pytest

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.attack.cheating import CheatStrategy
from repro.core.config import DDPoliceConfig
from repro.core.evidence import Investigation, InvestigationOutcome
from repro.core.indicators import NeighborReport
from repro.core.police import deploy_ddpolice
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultWindow, LossRule
from repro.overlay.ids import PeerId
from repro.overlay.message import MessageKind, NeighborListMessage, NeighborTrafficMessage
from tests.conftest import make_network

#: Suspect 0 with buddy group {1, 2, 3} (tree; same shape as test_police).
TOPOLOGY = {0: {1, 2, 3}, 1: {4, 5}, 2: {6, 7}, 3: {8, 9}}

FAST = DDPoliceConfig(exchange_period_s=30.0)

TRAFFIC_ONLY = frozenset({MessageKind.NEIGHBOR_TRAFFIC})


def _network_with_directories(config, seed, *, loss_plan=None, **deploy_kwargs):
    """Deploy engines on TOPOLOGY and run long enough to exchange lists."""
    sim, net = make_network(TOPOLOGY, seed=seed)
    engines = deploy_ddpolice(net, config, **deploy_kwargs)
    if loss_plan is not None:
        FaultInjector(loss_plan, net.rngs).attach(net)
    sim.run(until=70.0)
    return sim, net, engines


# ---------------------------------------------------------------------------
# config knobs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {"report_retry_limit": -1},
        {"report_retry_backoff_s": 0.0},
        {"report_quorum": 1.5},
        {"report_quorum": -0.1},
        {"quorum_extension_limit": -1},
        {"exchange_retransmit_limit": -1},
        {"exchange_retransmit_timeout_s": 0.0},
    ],
)
def test_invalid_hardening_knobs_rejected(kwargs):
    with pytest.raises(ConfigError):
        DDPoliceConfig(**kwargs)


def test_with_hardening_flips_only_the_robustness_knobs():
    base = DDPoliceConfig()
    hardened = base.with_hardening()
    assert hardened.report_retry_limit == 3
    assert hardened.report_quorum == 0.5
    assert hardened.exchange_retransmit_limit == 1
    # Paper-literal protocol constants stay untouched.
    assert hardened.cut_threshold == base.cut_threshold
    assert hardened.warning_threshold_qpm == base.warning_threshold_qpm
    assert hardened.assume_zero_on_missing == base.assume_zero_on_missing


# ---------------------------------------------------------------------------
# investigation-level quorum mechanics
# ---------------------------------------------------------------------------

def test_investigation_quorum_and_abstention():
    inv = Investigation(
        observer="a",
        suspect="b",
        started_at=0.0,
        expected_members=frozenset({"c", "d"}),
        own_out_to_suspect=0,
        own_in_from_suspect=0,
    )
    assert inv.received_fraction == 0.0
    assert inv.add_report("c", NeighborReport(member="c", outgoing=1, incoming=2))
    assert inv.received_fraction == 0.5
    assert inv.quorum_met(0.5)
    assert not inv.quorum_met(0.75)
    inv.abstain()
    assert inv.outcome is InvestigationOutcome.CLEARED
    assert math.isnan(inv.g_value) and math.isnan(inv.s_value)
    # A settled investigation accepts nothing further.
    assert not inv.add_report("d", NeighborReport(member="d", outgoing=0, incoming=0))


def test_trivial_investigation_always_meets_quorum():
    inv = Investigation(
        observer="a",
        suspect="b",
        started_at=0.0,
        expected_members=frozenset(),
        own_out_to_suspect=0,
        own_in_from_suspect=0,
    )
    assert inv.received_fraction == 1.0
    assert inv.quorum_met(1.0)


# ---------------------------------------------------------------------------
# report re-requests
# ---------------------------------------------------------------------------

def _open_with_first_round_lost(config, seed=11):
    # Every Neighbor_Traffic sent before t=70.5 is lost; the observer
    # opens at t=70, so the initial report burst vanishes and only
    # retries (first one at t=71) can reach the buddy group.
    plan = FaultPlan(loss=(LossRule(1.0, FaultWindow(0.0, 70.5), kinds=TRAFFIC_ONLY),))
    sim, net, engines = _network_with_directories(config, seed, loss_plan=plan)
    observer = engines[PeerId(1)]
    observer._open_investigation(PeerId(0))
    inv = observer._investigations[PeerId(0)]
    assert inv.expected_members == frozenset({PeerId(2), PeerId(3)})
    sim.run(until=73.0)
    return observer, inv, engines


def test_retry_recovers_reports_lost_in_flight():
    hardened = FAST.with_hardening(retry_limit=2, retry_backoff_s=1.0)
    observer, inv, _ = _open_with_first_round_lost(hardened)
    assert observer.report_retries_sent >= 1
    assert set(inv.reports) == {PeerId(2), PeerId(3)}


def test_paper_literal_rule_keeps_the_lost_reports_lost():
    observer, inv, _ = _open_with_first_round_lost(FAST)
    assert observer.report_retries_sent == 0
    assert inv.reports == {}


def test_retry_does_not_recruit_new_judges():
    # Members answering a re-request must not open their own
    # investigations: a poll is not an alarm (each extra judge would be a
    # fresh chance to misjudge under the very loss being mitigated).
    hardened = FAST.with_hardening(retry_limit=2, retry_backoff_s=1.0)
    _, _, engines = _open_with_first_round_lost(hardened)
    for member in (PeerId(2), PeerId(3)):
        assert PeerId(0) not in engines[member]._investigations


def test_silent_cheater_does_not_answer_retries():
    sim, net = make_network(TOPOLOGY, seed=15)
    engines = deploy_ddpolice(
        net, FAST, bad_peers={PeerId(2)}, bad_strategy=CheatStrategy.SILENT
    )
    cheater = engines[PeerId(2)]
    cheater._send_reports(PeerId(0), {PeerId(1)}, is_retry=True, force=True)
    assert cheater.reports_sent == 0


# ---------------------------------------------------------------------------
# quorum: extension then abstention
# ---------------------------------------------------------------------------

def test_unmet_quorum_extends_once_then_abstains():
    config = DDPoliceConfig(
        exchange_period_s=30.0, report_quorum=1.0, quorum_extension_limit=1
    )
    # All reports lost forever: the quorum can never be met.
    plan = FaultPlan(loss=(LossRule(1.0, kinds=TRAFFIC_ONLY),))
    sim, net, engines = _network_with_directories(config, seed=16, loss_plan=plan)
    observer = engines[PeerId(1)]
    observer._open_investigation(PeerId(0))
    sim.run(until=76.0)  # past the first collection window (70 + 5)
    assert observer.window_extensions_used == 1
    assert observer.quorum_abstentions == 0
    assert PeerId(0) in observer._investigations  # still collecting
    sim.run(until=81.0)  # past the extended window
    assert observer.quorum_abstentions == 1
    assert PeerId(0) not in observer._investigations
    # The suspect is NOT disconnected, and the abstention is on record
    # with NaN indicators (no claim about the suspect's rate was made).
    assert PeerId(0) in net.peers[PeerId(1)].neighbors
    abstained = [
        j
        for j in observer.judgments.judgments
        if j.suspect == PeerId(0) and j.reason == "quorum_unmet"
    ]
    assert len(abstained) == 1
    assert not abstained[0].disconnected
    assert math.isnan(abstained[0].g_value)


# ---------------------------------------------------------------------------
# idempotency: stale reports and stale lists
# ---------------------------------------------------------------------------

def _traffic(net, source, suspect, ts, out_q, in_q=0, is_retry=False):
    return NeighborTrafficMessage(
        guid=net.guid_factory.new(),
        ttl=1,
        hops=0,
        source=source,
        suspect=suspect,
        timestamp=ts,
        outgoing_queries=out_q,
        incoming_queries=in_q,
        is_retry=is_retry,
    )


def test_reordered_stale_report_is_rejected():
    sim, net, engines = _network_with_directories(FAST, seed=17)
    observer = engines[PeerId(1)]
    observer._open_investigation(PeerId(0))
    inv = observer._investigations[PeerId(0)]
    observer._on_neighbor_traffic(PeerId(2), _traffic(net, PeerId(2), PeerId(0), 100, 7))
    # A delayed older report arrives after the fresher one: rejected.
    observer._on_neighbor_traffic(PeerId(2), _traffic(net, PeerId(2), PeerId(0), 50, 0))
    assert observer.stale_reports_rejected == 1
    assert inv.reports[PeerId(2)].outgoing == 7
    # Re-delivery of the same report (equal timestamp) is idempotent.
    observer._on_neighbor_traffic(PeerId(2), _traffic(net, PeerId(2), PeerId(0), 100, 7))
    assert observer.stale_reports_rejected == 1
    assert inv.reports[PeerId(2)].outgoing == 7


def _list_msg(net, sender, neighbors, sent_at):
    return NeighborListMessage(
        guid=net.guid_factory.new(),
        ttl=1,
        hops=0,
        sender=sender,
        neighbors=frozenset(neighbors),
        sent_at=sent_at,
    )


def test_reordered_stale_list_is_rejected():
    sim, net = make_network(TOPOLOGY, seed=18)
    engines = deploy_ddpolice(net, FAST)
    observer = engines[PeerId(1)]
    fresh = {PeerId(1), PeerId(2), PeerId(3)}
    observer._on_neighbor_list(PeerId(0), _list_msg(net, PeerId(0), fresh, sent_at=100.0))
    # An older list delivered late must not roll the directory back.
    observer._on_neighbor_list(
        PeerId(0), _list_msg(net, PeerId(0), {PeerId(1)}, sent_at=50.0)
    )
    assert observer.stale_lists_rejected == 1
    assert observer.directory.known_neighbors(PeerId(0)) == fresh


# ---------------------------------------------------------------------------
# neighbor-list retransmission
# ---------------------------------------------------------------------------

def test_list_retransmitted_to_a_silent_neighbor():
    config = DDPoliceConfig(
        exchange_period_s=30.0,
        exchange_retransmit_limit=1,
        exchange_retransmit_timeout_s=5.0,
    )
    sim, net = make_network({0: {1}}, seed=19)
    engines = deploy_ddpolice(net, config)
    engines[PeerId(1)].stop()  # peer 1 never sends a list back
    sim.run(until=45.0)
    assert engines[PeerId(0)].list_retransmits_sent >= 1


def test_hearing_a_list_acks_the_pending_retransmission():
    config = DDPoliceConfig(exchange_period_s=30.0, exchange_retransmit_limit=1)
    sim, net = make_network({0: {1}}, seed=20)
    engines = deploy_ddpolice(net, config)
    e0 = engines[PeerId(0)]
    e0._last_list_from[PeerId(1)] = 10.0  # heard from 1 after our send at 5.0
    sent_before = e0.lists_sent
    e0._maybe_retransmit_list(PeerId(1), 5.0, 1)
    assert e0.lists_sent == sent_before
    assert e0.list_retransmits_sent == 0


# ---------------------------------------------------------------------------
# stopped-engine guards
# ---------------------------------------------------------------------------

def test_stopped_engine_does_not_conclude():
    sim, net, engines = _network_with_directories(FAST, seed=21)
    observer = engines[PeerId(1)]
    observer._open_investigation(PeerId(0))
    recorded_before = len(observer.judgments.judgments)
    observer.stop()
    observer._conclude(PeerId(0))
    assert observer._investigations[PeerId(0)].outcome is InvestigationOutcome.PENDING
    assert len(observer.judgments.judgments) == recorded_before


def test_stopped_engine_ignores_minute_rollover():
    sim, net, engines = _network_with_directories(FAST, seed=21)
    observer = engines[PeerId(2)]
    observer.stop()
    # A rate far above the warning threshold would normally open an
    # investigation on the next minute tick.
    observer.peer.last_minute_in = {PeerId(0): 10_000}
    observer._on_minute(2, 120.0)
    assert PeerId(0) not in observer._investigations


# ---------------------------------------------------------------------------
# defaults stay paper-literal
# ---------------------------------------------------------------------------

def test_hardening_counters_inert_under_default_config():
    sim, net = make_network(TOPOLOGY, seed=1)
    engines = deploy_ddpolice(
        net, FAST, bad_peers={PeerId(0)}, bad_strategy=CheatStrategy.HONEST
    )
    agent = DDoSAgent(
        sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=3000.0, per_neighbor=True)
    )
    agent.start()
    sim.run(until=200.0)
    for engine in engines.values():
        assert engine.report_retries_sent == 0
        assert engine.window_extensions_used == 0
        assert engine.quorum_abstentions == 0
        assert engine.list_retransmits_sent == 0
        assert engine.stale_lists_rejected == 0
        assert engine.stale_reports_rejected == 0
