"""Unit tests for the Chord ring substrate."""

import math

import pytest

from repro.errors import ConfigError
from repro.structured.chord import ChordConfig, ChordRing


@pytest.fixture(scope="module")
def ring():
    return ChordRing(ChordConfig(n_nodes=128, seed=1))


def test_unique_sorted_ids(ring):
    ids = [ring.node_id[i] for i in ring.ring_order]
    assert ids == sorted(ids)
    assert len(set(ids)) == 128


def test_owner_is_first_at_or_after(ring):
    for key in (0, 12345, ring.space - 1):
        owner = ring.owner_of(key)
        oid = ring.node_id[owner]
        # no other node id lies in (key, oid) going clockwise
        for idx in range(128):
            nid = ring.node_id[idx]
            if idx != owner and oid >= key:
                assert not (key <= nid < oid)


def test_lookup_finds_correct_owner(ring):
    import random

    rng = random.Random(2)
    for _ in range(200):
        key = rng.randrange(ring.space)
        origin = rng.randrange(128)
        result = ring.lookup(origin, key, now_s=0.0)
        assert result.succeeded
        assert result.owner == ring.owner_of(key)


def test_lookup_hops_logarithmic(ring):
    import random

    rng = random.Random(3)
    hops = []
    for _ in range(300):
        result = ring.lookup(rng.randrange(128), rng.randrange(ring.space), 0.0)
        hops.append(result.hops)
    mean_hops = sum(hops) / len(hops)
    assert mean_hops <= 2.0 * math.log2(128)
    assert max(hops) <= 2 * ring.config.id_bits


def test_own_key_zero_relays():
    ring = ChordRing(ChordConfig(n_nodes=16, seed=4))
    # a key owned by the origin's immediate successor routes in one hop
    origin = ring.ring_order[0]
    succ = ring.successors[origin][0]
    key = ring.node_id[succ]
    result = ring.lookup(origin, key, 0.0)
    assert result.owner == succ
    assert result.hops == 1


def test_capacity_exhaustion_drops_lookups():
    ring = ChordRing(ChordConfig(n_nodes=32, processing_qpm=60.0, seed=5))
    dropped_before = ring.lookups_dropped
    import random

    rng = random.Random(6)
    for _ in range(500):
        ring.lookup(rng.randrange(32), rng.randrange(ring.space), now_s=0.5)
    assert ring.lookups_dropped > dropped_before


def test_link_counters_roll():
    ring = ChordRing(ChordConfig(n_nodes=32, seed=7))
    ring.lookup(0, ring.space // 2, 0.0)
    snap = ring.roll_minute()
    assert snap  # some links were used
    assert ring.roll_minute() == {}


def test_key_for_stable():
    ring = ChordRing(ChordConfig(n_nodes=16, seed=8))
    assert ring.key_for("song.mp3") == ring.key_for("song.mp3")
    assert ring.key_for("a") != ring.key_for("b")


def test_config_validation():
    with pytest.raises(ConfigError):
        ChordConfig(n_nodes=1)
    with pytest.raises(ConfigError):
        ChordConfig(id_bits=4)
    with pytest.raises(ConfigError):
        ChordConfig(n_nodes=10_000, id_bits=8)
    with pytest.raises(ConfigError):
        ChordConfig(processing_qpm=0)
