"""Tests for DHT lookup floods and the adapted defense."""

import random

import pytest

from repro.errors import ConfigError
from repro.structured.attack import (
    LookupAttackConfig,
    LookupFlooder,
    route_events,
)
from repro.structured.chord import ChordConfig, ChordRing
from repro.structured.defense import ChordPolice, ChordPoliceConfig


def make_ring(n=64, qpm=10_000.0, seed=1):
    return ChordRing(ChordConfig(n_nodes=n, processing_qpm=qpm, seed=seed))


def normal_events(ring, rng, rate_qpm=2.0, minute_start=0.0):
    """One minute of legitimate uniform lookup events."""
    events = []
    per = max(1, int(rate_qpm))
    for origin in range(ring.config.n_nodes):
        for i in range(per):
            t = minute_start + 60.0 * (i + rng.random()) / per
            events.append((t, origin, rng.randrange(ring.space)))
    return events


def test_normal_load_succeeds():
    ring = make_ring(qpm=600.0)
    results = route_events(ring, normal_events(ring, random.Random(2)))
    assert all(r.succeeded for r in results)


def test_diffuse_flood_starves_concurrent_good_lookups():
    ring = make_ring(qpm=600.0)
    rng = random.Random(2)
    flooder = LookupFlooder(
        ring, LookupAttackConfig(agents=(0, 1), rate_qpm=5000.0, seed=2)
    )
    good = normal_events(ring, rng)
    attack = flooder.events_for_minute(0.0)
    results = route_events(ring, good + attack, weight=1.0)
    good_origins = {origin for _, origin, _ in good}
    good_results = [r for r in results if r.origin in good_origins and r.origin not in (0, 1)]
    failed = sum(1 for r in good_results if not r.succeeded)
    assert failed > 0.05 * len(good_results)


def test_targeted_flood_concentrates_on_victim():
    ring = make_ring(qpm=1e9)  # no drops: observe pure load shape
    key = ring.key_for("victim-object")
    victim = ring.owner_of(key)
    flooder = LookupFlooder(
        ring,
        LookupAttackConfig(agents=(0, 1, 2), rate_qpm=1200.0, mode="targeted",
                           target_key=key, seed=3),
    )
    flooder.run_minute(0.0)
    counts = ring.roll_minute()
    inbound = {}
    for (src, dst), c in counts.items():
        inbound[dst] = inbound.get(dst, 0) + c
    # the victim receives every attack lookup's final hop
    assert inbound.get(victim, 0) >= 3 * 1200 * 0.99


def test_defense_cuts_flooding_links():
    ring = make_ring(qpm=1e9)
    agents = (0, 1)
    flooder = LookupFlooder(
        ring, LookupAttackConfig(agents=agents, rate_qpm=20_000.0, seed=4)
    )
    police = ChordPolice(ring, ChordPoliceConfig(cut_threshold=5.0))
    flooder.run_minute(0.0)
    cut = police.step(1.0)
    assert cut > 0
    assert police.suspected_nodes() & set(agents)


def test_defense_spares_normal_load():
    ring = make_ring(qpm=1e9)
    rng = random.Random(5)
    police = ChordPolice(ring, ChordPoliceConfig(normal_rate_qpm=100.0))
    for minute in range(3):
        route_events(ring, normal_events(ring, rng, rate_qpm=3.0,
                                         minute_start=minute * 60.0))
        assert police.step(float(minute)) == 0
    assert police.links_cut == 0


def test_defense_starves_the_flood():
    ring = make_ring(qpm=1e9, n=64)
    flooder = LookupFlooder(
        ring, LookupAttackConfig(agents=(0,), rate_qpm=20_000.0, seed=6)
    )
    police = ChordPolice(ring, ChordPoliceConfig(cut_threshold=5.0))
    first = flooder.run_minute(0.0)
    police.step(1.0)
    flooder.run_minute(60.0)
    police.step(2.0)
    third = flooder.run_minute(120.0)
    def rate(rs):
        return sum(r.succeeded for r in rs) / len(rs)
    # receivers refuse the agent's relays: its flood success collapses
    assert rate(third) < 0.5 * rate(first)


def test_streaks_reset_when_quiet():
    ring = make_ring(qpm=1e9)
    police = ChordPolice(ring, ChordPoliceConfig(patience_minutes=2))
    flooder = LookupFlooder(
        ring, LookupAttackConfig(agents=(0,), rate_qpm=20_000.0, seed=7)
    )
    flooder.run_minute(0.0)
    assert police.step(1.0) == 0  # first strike, patience 2
    # quiet minute: streak resets
    assert police.step(2.0) == 0
    flooder.run_minute(120.0)
    assert police.step(3.0) == 0  # streak restarted at 1


def test_event_weight_scales_rate():
    ring = make_ring()
    flooder = LookupFlooder(
        ring,
        LookupAttackConfig(agents=(0,), rate_qpm=50_000.0, per_agent_cap=1000, seed=8),
    )
    assert flooder.event_weight == pytest.approx(50.0)
    events = flooder.events_for_minute(0.0)
    assert len(events) == 1000


def test_attack_config_validation():
    ring = make_ring()
    with pytest.raises(ConfigError):
        LookupAttackConfig(agents=(0,), rate_qpm=0)
    with pytest.raises(ConfigError):
        LookupAttackConfig(agents=(0,), mode="targeted")
    with pytest.raises(ConfigError):
        LookupFlooder(ring, LookupAttackConfig(agents=(999,), rate_qpm=10))
    with pytest.raises(ConfigError):
        ChordPoliceConfig(cut_threshold=0)
