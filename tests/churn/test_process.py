"""Integration tests for the DES churn process."""

import pytest

from repro.churn.lifetimes import LifetimeConfig
from repro.churn.process import ChurnConfig, ChurnProcess
from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from tests.conftest import make_network

FAST_CHURN = ChurnConfig(
    lifetime=LifetimeConfig(family="exponential", mean_s=30.0),
    offtime=LifetimeConfig(family="exponential", mean_s=30.0),
    enabled=True,
    seed=1,
)


def grid(n):
    return {i: {(i + 1) % n, (i + 3) % n} for i in range(n)}


def make(n=30, config=FAST_CHURN):
    sim, net = make_network(grid(n), seed=1)
    churn = ChurnProcess(sim, net, config)
    return sim, net, churn


def test_peers_leave_and_rejoin():
    sim, net, churn = make()
    churn.start()
    sim.run(until=300.0)
    assert churn.leaves > 0
    assert churn.joins > 0


def test_leaving_peer_loses_connections():
    sim, net, churn = make()
    events = []
    churn.leave_listeners.append(events.append)
    churn.start()
    sim.run(until=120.0)
    assert events
    for pid in events:
        peer = net.peers[pid]
        if not peer.online:
            assert peer.neighbors == set()


def test_rejoining_peer_reconnects():
    sim, net, churn = make()
    joined = []
    churn.join_listeners.append(joined.append)
    churn.start()
    sim.run(until=400.0)
    assert joined
    online_joined = [p for p in joined if net.peers[p].online]
    reconnected = [p for p in online_joined if net.peers[p].neighbors]
    assert len(reconnected) >= len(online_joined) // 2


def test_population_stays_reasonable():
    sim, net, churn = make(n=60)
    churn.start()
    sim.run(until=600.0)
    assert 0.2 < churn.online_fraction() < 0.9


def test_pinned_peers_never_leave():
    cfg = ChurnConfig(
        lifetime=LifetimeConfig(family="exponential", mean_s=5.0),
        offtime=LifetimeConfig(family="exponential", mean_s=1000.0),
        enabled=True,
        seed=2,
    )
    sim, net = make_network(grid(20), seed=2)
    pinned = {PeerId(0), PeerId(1)}
    churn = ChurnProcess(sim, net, cfg, pinned=pinned)
    churn.start()
    sim.run(until=300.0)
    assert net.peers[PeerId(0)].online
    assert net.peers[PeerId(1)].online


def test_disabled_churn_is_inert():
    sim, net, churn = make(config=ChurnConfig(enabled=False))
    churn.start()
    sim.run(until=100.0)
    assert churn.leaves == 0
    assert all(p.online for p in net.peers.values())


def test_content_relocated_on_leave():
    sim, net, churn = make()
    churn.start()
    sim.run(until=200.0)
    # all replicas remain hosted on known peers
    for obj, holders in enumerate(net.content.replica_holders):
        assert len(holders) >= 1


def test_config_validation():
    with pytest.raises(ConfigError):
        ChurnConfig(join_degree_min=0)
    with pytest.raises(ConfigError):
        ChurnConfig(join_degree_min=5, join_degree_max=4)


def test_depart_with_pinned_offtime():
    # Voluntary leave on the natural-churn path, but with the off-time
    # fixed by the caller (the churn-evading agents' flee cycle).
    sim, net, churn = make(config=ChurnConfig(enabled=False))
    churn.depart(PeerId(0), rejoin_after_s=40.0)
    assert not net.peers[PeerId(0)].online
    assert net.peers[PeerId(0)].neighbors == set()
    sim.run(until=39.0)
    assert not net.peers[PeerId(0)].online
    sim.run(until=45.0)
    assert net.peers[PeerId(0)].online  # back exactly after the pin
    assert net.peers[PeerId(0)].neighbors  # with fresh connections


def test_depart_validation_and_offline_noop():
    sim, net, churn = make(config=ChurnConfig(enabled=False))
    with pytest.raises(ConfigError):
        churn.depart(PeerId(0), rejoin_after_s=0.0)
    churn.depart(PeerId(0), rejoin_after_s=10.0)
    leaves = churn.leaves
    churn.depart(PeerId(0), rejoin_after_s=10.0)  # already offline
    assert churn.leaves == leaves
