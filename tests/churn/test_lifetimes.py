"""Unit tests for session-lifetime distributions."""

import random
import statistics

import pytest

from repro.churn.lifetimes import LifetimeConfig, LifetimeDistribution
from repro.errors import ConfigError


def sampler(**kw):
    return LifetimeDistribution(LifetimeConfig(**kw), random.Random(1))


def test_lognormal_mean_matches_config():
    dist = sampler(family="lognormal", mean_s=600.0)
    xs = dist.sample_many(20_000)
    assert statistics.mean(xs) == pytest.approx(600.0, rel=0.05)


def test_lognormal_variance_solver():
    dist = sampler(family="lognormal", mean_s=600.0, variance=90_000.0)
    xs = dist.sample_many(40_000)
    assert statistics.mean(xs) == pytest.approx(600.0, rel=0.05)
    assert statistics.pstdev(xs) == pytest.approx(300.0, rel=0.1)


def test_paper_default_variance_rule():
    """variance = mean/2 read in minutes: 10 min mean -> 5 min^2 var."""
    cfg = LifetimeConfig()
    assert cfg.mean_s == 600.0
    assert cfg.variance == pytest.approx(5.0 * 3600.0)


def test_exponential_mean():
    dist = sampler(family="exponential", mean_s=600.0)
    xs = dist.sample_many(20_000)
    assert statistics.mean(xs) == pytest.approx(600.0, rel=0.05)


def test_fixed_family():
    dist = sampler(family="fixed", mean_s=123.0)
    assert dist.sample_many(5) == [123.0] * 5


def test_min_lifetime_floor():
    dist = sampler(family="exponential", mean_s=1.0, min_lifetime_s=0.5)
    assert all(x >= 0.5 for x in dist.sample_many(1000))


def test_samples_positive():
    dist = sampler()
    assert all(x > 0 for x in dist.sample_many(1000))


def test_reproducible():
    a = LifetimeDistribution(LifetimeConfig(), random.Random(7)).sample_many(10)
    b = LifetimeDistribution(LifetimeConfig(), random.Random(7)).sample_many(10)
    assert a == b


def test_validation():
    with pytest.raises(ConfigError):
        LifetimeConfig(family="weibull")
    with pytest.raises(ConfigError):
        LifetimeConfig(mean_s=0)
    with pytest.raises(ConfigError):
        LifetimeConfig(variance=-1.0)
    with pytest.raises(ConfigError):
        sampler().sample_many(-1)
