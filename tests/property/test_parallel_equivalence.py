"""Parallel/serial equivalence of the experiment sweeps.

The executor's core contract: ``workers=4`` returns results *exactly*
equal -- every metric and stddev, full float repr, not approximately --
to ``workers=1``, because determinism lives in the per-task seeds, never
in the schedule. Exercised here over randomly drawn small grids.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import FaultSweepSpec
from repro.experiments.sweeps import (
    fault_sweep,
    steady_success,
    steady_traffic_k,
    sweep,
)
from repro.fluid.model import FluidConfig


@settings(max_examples=3, deadline=None)
@given(
    seed0=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=50, max_value=90),
    agent_counts=st.lists(
        st.integers(min_value=0, max_value=4), min_size=1, max_size=2, unique=True
    ),
    trials=st.integers(min_value=1, max_value=2),
)
def test_sweep_workers4_exactly_equals_serial(seed0, n, agent_counts, trials):
    base = FluidConfig(n=n, seed=0, churn_warmup_min=2, attack_start_min=1)
    kwargs = dict(
        grid={"num_agents": agent_counts},
        minutes=4,
        metrics={"succ": steady_success(2), "traffic": steady_traffic_k(2)},
        trials=trials,
        seed0=seed0,
    )
    serial = sweep(base, **kwargs, workers=1)
    parallel = sweep(base, **kwargs, workers=4)
    # frozen-dataclass equality is exact float equality on every metric
    # and stddev; repr equality additionally pins the full float repr.
    assert serial == parallel
    assert repr(serial) == repr(parallel)


FAULT_SPEC = FaultSweepSpec(
    name="equivalence-tiny",
    n_peers=16,
    sim_minutes=3,
    attack_start_min=1,
    trials=2,
    loss_fractions=(0.0, 0.25),
    crash_counts=(0,),
    num_agents=1,
    attack_rate_qpm=600.0,
)


def test_fault_sweep_workers4_exactly_equals_serial():
    serial = fault_sweep(FAULT_SPEC, seed0=5, workers=1)
    parallel = fault_sweep(FAULT_SPEC, seed0=5, workers=4)
    assert serial == parallel
    assert repr(serial) == repr(parallel)
