"""Property-based tests on the fluid flow propagation invariants."""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid.coverage import novelty_schedule
from repro.fluid.flows import build_edge_arrays, propagate_flows
from repro.overlay.topology import TopologyConfig, generate_topology


def run_random_case(n, m, seed, good_rate, attack_rate, capacity, up=None, down=None):
    topo = generate_topology(TopologyConfig(n=n, ba_m=m, seed=seed))
    adj = {u: set(vs) for u, vs in enumerate(topo.adjacency)}
    src, dst, rev = build_edge_arrays(adj)
    rng = random.Random(seed)
    attack = np.zeros(len(src))
    if attack_rate > 0:
        agent = rng.randrange(n)
        mask = src == agent
        if mask.any():
            attack[mask] = attack_rate / mask.sum()
    sigma = novelty_schedule(topo.degrees(), 7, n=n)
    result = propagate_flows(
        src,
        dst,
        rev,
        n,
        good_rate=np.full(n, good_rate),
        attack_edge_inject=attack,
        capacity=np.full(n, capacity),
        ttl=7,
        sigma=sigma,
        upstream_qpm=None if up is None else np.full(n, up),
        downstream_qpm=None if down is None else np.full(n, down),
    )
    return result


case = dict(
    n=st.integers(min_value=8, max_value=60),
    m=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=500),
    good_rate=st.floats(min_value=0.0, max_value=50.0),
    attack_rate=st.floats(min_value=0.0, max_value=50_000.0),
    capacity=st.floats(min_value=10.0, max_value=1e6),
)


@settings(max_examples=25, deadline=None)
@given(**case)
def test_flow_invariants(n, m, seed, good_rate, attack_rate, capacity):
    if n <= m:
        return
    r = run_random_case(n, m, seed, good_rate, attack_rate, capacity)
    # loss factors are probabilities
    assert (0.0 <= r.rho).all() and (r.rho <= 1.0).all()
    assert (0.0 <= r.omega).all() and (r.omega <= 1.0).all()
    assert (0.0 <= r.iota).all() and (r.iota <= 1.0).all()
    # flows are non-negative and delivered never exceeds sent
    assert (r.edge_good >= 0).all() and (r.edge_attack >= 0).all()
    assert (r.edge_total <= r.edge_sent_total + 1e-6).all()
    # drop fraction is a fraction
    assert 0.0 <= r.dropped_fraction <= 1.0
    # good-class per-hop processed reach is non-negative
    assert (r.good_processed_per_hop >= -1e-9).all()
    assert (0.0 <= r.good_path_quality_per_hop).all()
    assert (r.good_path_quality_per_hop <= 1.0 + 1e-9).all()


@settings(max_examples=15, deadline=None)
@given(**case)
def test_capacity_monotonicity(n, m, seed, good_rate, attack_rate, capacity):
    """Raising capacity can only increase delivered volume."""
    if n <= m or (good_rate == 0 and attack_rate == 0):
        return
    tight = run_random_case(n, m, seed, good_rate, attack_rate, capacity)
    loose = run_random_case(n, m, seed, good_rate, attack_rate, capacity * 10)
    assert loose.total_messages_per_min >= tight.total_messages_per_min - 1e-6


@settings(max_examples=15, deadline=None)
@given(**case)
def test_bandwidth_limits_only_reduce(n, m, seed, good_rate, attack_rate, capacity):
    """Adding link constraints can only reduce delivered volume."""
    if n <= m or (good_rate == 0 and attack_rate == 0):
        return
    free = run_random_case(n, m, seed, good_rate, attack_rate, capacity)
    limited = run_random_case(
        n, m, seed, good_rate, attack_rate, capacity, up=500.0, down=500.0
    )
    # Relative tolerance: the fixed-point solver runs a capped number of
    # iterations, so both runs carry O(1e-4) relative convergence error
    # each; the gap between them compounds both runs' errors (observed
    # up to ~3.1e-4 at the iteration cap), so the slack covers 2x that.
    slack = 1e-6 + 6e-4 * abs(free.total_messages_per_min)
    assert limited.total_messages_per_min <= free.total_messages_per_min + slack


@settings(max_examples=15, deadline=None)
@given(**case)
def test_no_injection_no_flow(n, m, seed, good_rate, attack_rate, capacity):
    r = run_random_case(n, m, seed, 0.0, 0.0, capacity)
    assert r.total_messages_per_min == 0.0
    assert r.good_injected == 0.0
    assert r.attack_injected == 0.0
