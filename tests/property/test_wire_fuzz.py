"""Fuzzing the binary wire decoders (hypothesis).

Contract under test: whatever bytes arrive -- truncated frames, flipped
bits, wrong payload descriptors, pure noise -- the decoders either return
a valid message or raise inside the :class:`ProtocolError` hierarchy.
``struct.error``, bare ``ValueError``, ``IndexError`` etc. must never
escape (a malformed frame from a remote peer is a protocol event, not a
crash).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wire import (
    HEADER_SIZE,
    GnutellaHeader,
    decode_neighbor_list,
    decode_neighbor_traffic,
    encode_neighbor_list,
    encode_neighbor_traffic,
)
from repro.errors import ProtocolError, ReproError, WireFormatError
from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import NeighborListMessage, NeighborTrafficMessage

peer_ids = st.integers(min_value=0, max_value=2**24 - 1).map(PeerId)
guids = st.binary(min_size=16, max_size=16).map(Guid)
u8 = st.integers(min_value=0, max_value=0xFF)
u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


@st.composite
def traffic_messages(draw):
    return NeighborTrafficMessage(
        guid=draw(guids),
        ttl=draw(u8),
        hops=draw(u8),
        source=draw(peer_ids),
        suspect=draw(peer_ids),
        timestamp=draw(u32),
        outgoing_queries=draw(u32),
        incoming_queries=draw(u32),
    )


@st.composite
def list_messages(draw):
    return NeighborListMessage(
        guid=draw(guids),
        ttl=draw(u8),
        hops=draw(u8),
        sender=draw(peer_ids),
        neighbors=frozenset(draw(st.sets(peer_ids, max_size=8))),
    )


def decode_or_protocol_error(decoder, raw):
    """Run a decoder; anything outside ProtocolError fails the test."""
    try:
        decoder(raw)
    except ProtocolError:
        pass


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------

@given(traffic_messages())
def test_traffic_round_trip(msg):
    assert decode_neighbor_traffic(encode_neighbor_traffic(msg)) == msg


@given(list_messages())
def test_list_round_trip(msg):
    assert decode_neighbor_list(encode_neighbor_list(msg)) == msg


# ---------------------------------------------------------------------------
# truncation
# ---------------------------------------------------------------------------

@given(traffic_messages(), st.data())
def test_truncated_traffic_frame_raises_wire_error(msg, data):
    raw = encode_neighbor_traffic(msg)
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    with pytest.raises(WireFormatError):
        decode_neighbor_traffic(raw[:cut])


@given(list_messages(), st.data())
def test_truncated_list_frame_raises_wire_error(msg, data):
    raw = encode_neighbor_list(msg)
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    with pytest.raises(WireFormatError):
        decode_neighbor_list(raw[:cut])


# ---------------------------------------------------------------------------
# corruption
# ---------------------------------------------------------------------------

@given(traffic_messages(), st.data())
def test_corrupted_traffic_frame_never_escapes_protocol_error(msg, data):
    raw = bytearray(encode_neighbor_traffic(msg))
    pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    raw[pos] = data.draw(u8)
    decode_or_protocol_error(decode_neighbor_traffic, bytes(raw))


@given(list_messages(), st.data())
def test_corrupted_list_frame_never_escapes_protocol_error(msg, data):
    raw = bytearray(encode_neighbor_list(msg))
    pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    raw[pos] = data.draw(u8)
    decode_or_protocol_error(decode_neighbor_list, bytes(raw))


# ---------------------------------------------------------------------------
# noise
# ---------------------------------------------------------------------------

@settings(max_examples=200)
@given(st.binary(max_size=128))
def test_random_bytes_never_escape_protocol_error(raw):
    decode_or_protocol_error(decode_neighbor_traffic, raw)
    decode_or_protocol_error(decode_neighbor_list, raw)
    decode_or_protocol_error(GnutellaHeader.decode, raw)


# ---------------------------------------------------------------------------
# wrong payload descriptor
# ---------------------------------------------------------------------------

@given(traffic_messages())
def test_traffic_frame_rejected_by_list_decoder(msg):
    with pytest.raises(WireFormatError):
        decode_neighbor_list(encode_neighbor_traffic(msg))


@given(list_messages())
def test_list_frame_rejected_by_traffic_decoder(msg):
    with pytest.raises(WireFormatError):
        decode_neighbor_traffic(encode_neighbor_list(msg))


# ---------------------------------------------------------------------------
# hierarchy + header details
# ---------------------------------------------------------------------------

def test_wire_error_sits_in_both_hierarchies():
    # Callers may catch ProtocolError (library convention) or ValueError
    # (stdlib convention for bad input); both must work.
    assert issubclass(WireFormatError, ProtocolError)
    assert issubclass(WireFormatError, ValueError)
    assert issubclass(WireFormatError, ReproError)


def test_short_header_is_a_wire_error():
    with pytest.raises(WireFormatError):
        GnutellaHeader.decode(b"\x00" * (HEADER_SIZE - 1))


def test_address_outside_synthetic_block_is_a_wire_error():
    msg = NeighborTrafficMessage(
        guid=Guid(b"\x00" * 16),
        ttl=1,
        hops=0,
        source=PeerId(1),
        suspect=PeerId(2),
    )
    raw = bytearray(encode_neighbor_traffic(msg))
    raw[HEADER_SIZE] = 192  # first octet of the source address: not 10.x
    with pytest.raises(WireFormatError):
        decode_neighbor_traffic(bytes(raw))
