"""Property-based tests for the sketch evidence primitives.

Three guarantees the pluggable evidence layer leans on:

* count-min never undercounts (a true attacker edge can never be
  hidden by switching the traffic store to a sketch), and conservative
  update keeps the overcount within the classic epsilon*N bound for a
  suitably sized width;
* the rotating Bloom filter never reports a false negative for any of
  the last ``capacity`` inserts (switching the dedup caches to Bloom
  can re-process an old query, never drop a fresh one);
* the exact strategies are behavior-identical to the pre-refactor
  inline implementations (frozen here as oracles), which is what keeps
  every committed results table byte-identical under the default
  ``evidence_backend="exact"``.
"""

import math
from collections import OrderedDict, deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evidence import (
    CountMinSketch,
    EvidenceConfig,
    ExactDedupWindow,
    ExactSeenCache,
    ExactTrafficStore,
    RotatingBloom,
    make_traffic_store,
)

# ---------------------------------------------------------------------------
# count-min
# ---------------------------------------------------------------------------

KEYS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40), st.integers(min_value=1, max_value=50)),
    min_size=1,
    max_size=120,
)


@settings(max_examples=40, deadline=None)
@given(adds=KEYS, width=st.integers(min_value=1, max_value=64), depth=st.integers(min_value=1, max_value=4))
def test_count_min_never_undercounts(adds, width, depth):
    cm = CountMinSketch(width=width, depth=depth)
    true = {}
    for key, count in adds:
        cm.add(key, count)
        true[key] = true.get(key, 0) + count
    for key, expected in true.items():
        assert cm.estimate(key) >= expected
    # keys never added still estimate at most the total mass
    assert cm.estimate("never-added") <= cm.total


@settings(max_examples=25, deadline=None)
@given(adds=KEYS, seed=st.integers(min_value=0, max_value=100))
def test_count_min_epsilon_bound(adds, seed):
    """Conservative update stays within the epsilon*N overcount bound.

    With width w = ceil(e / eps) the classic analysis bounds the
    overcount of any key by eps * N (N = total mass) with probability
    1 - (1/e)^depth per key; conservative update only tightens it.
    Rather than assert a probabilistic bound exactly, size the sketch
    for eps = 0.25 with depth 4 and allow at most one of the (<= 41)
    tracked keys to exceed it -- a deterministic regression test at
    fixed structure, far below the tolerance a real violation of the
    bound would produce.
    """
    eps = 0.25
    cm = CountMinSketch(width=math.ceil(math.e / eps), depth=4, seed=seed)
    true = {}
    for key, count in adds:
        cm.add(key, count)
        true[key] = true.get(key, 0) + count
    allowed = eps * cm.total
    violations = sum(
        1 for key, expected in true.items() if cm.estimate(key) - expected > allowed
    )
    assert violations <= 1


def test_count_min_clear_resets():
    cm = CountMinSketch(width=8, depth=2)
    cm.add("a", 5)
    cm.clear()
    assert cm.estimate("a") == 0
    assert cm.total == 0


# ---------------------------------------------------------------------------
# rotating Bloom
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200),
    capacity=st.integers(min_value=1, max_value=64),
)
def test_rotating_bloom_no_false_negative_in_window(keys, capacity):
    bloom = RotatingBloom(bits=256, hashes=3, capacity=capacity)
    for i, key in enumerate(keys):
        bloom.add(key)
        # every one of the last `capacity` inserts must still be visible
        for recent in keys[max(0, i + 1 - capacity):i + 1]:
            assert recent in bloom
    bloom.clear()
    assert keys[0] not in bloom


def test_rotating_bloom_rotation_forgets_eventually():
    bloom = RotatingBloom(bits=1 << 14, hashes=4, capacity=4)
    bloom.add(b"old")
    # two full generations of later inserts push "old" out
    for i in range(8):
        bloom.add(i)
    assert b"old" not in bloom


# ---------------------------------------------------------------------------
# exact strategies == frozen pre-refactor oracles
# ---------------------------------------------------------------------------

WINDOW_OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),  # minute
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.integers(min_value=0, max_value=800),
            max_size=4,
        ),
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.integers(min_value=0, max_value=800),
            max_size=4,
        ),
    ),
    min_size=1,
    max_size=20,
)


class _OracleMonitor:
    """The pre-refactor TrafficMonitor internals, frozen verbatim."""

    def __init__(self, history_minutes=10):
        self.history_minutes = history_minutes
        self._hist = {}

    def record_window(self, minute, out_counts, in_counts):
        for key in set(out_counts) | set(in_counts):
            dq = self._hist.setdefault(key, deque(maxlen=self.history_minutes))
            dq.append((minute, out_counts.get(key, 0), in_counts.get(key, 0)))

    def latest(self, key):
        dq = self._hist.get(key)
        return dq[-1] if dq else None

    def suspicious(self, threshold):
        out = []
        for key, dq in self._hist.items():
            if dq and dq[-1][2] > threshold:
                out.append(key)
        return sorted(out, key=str)


@settings(max_examples=40, deadline=None)
@given(ops=WINDOW_OPS, threshold=st.integers(min_value=0, max_value=800))
def test_exact_store_matches_pre_refactor_monitor(ops, threshold):
    store = ExactTrafficStore(history_minutes=3)
    oracle = _OracleMonitor(history_minutes=3)
    for minute, out_counts, in_counts in ops:
        store.record_window(minute, out_counts, in_counts)
        oracle.record_window(minute, out_counts, in_counts)
    for key in ["a", "b", "c", "d", "ghost"]:
        got = store.latest(key)
        want = oracle.latest(key)
        if want is None:
            assert got is None
            assert store.report_pair(key) == (0, 0)
        else:
            assert (got.minute, got.out_queries, got.in_queries) == want
            assert store.report_pair(key) == (want[1], want[2])
        assert len(store.history(key)) <= 3
    assert sorted(store.suspicious_neighbors(float(threshold) or 0.5), key=str) == (
        oracle.suspicious(float(threshold) or 0.5)
    )


@settings(max_examples=40, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=80),
    limit=st.integers(min_value=1, max_value=10),
)
def test_exact_seen_cache_matches_ordereddict_lru(keys, limit):
    cache = ExactSeenCache(limit=limit)
    oracle = OrderedDict()
    for key in keys:
        assert (key in cache) == (key in oracle)
        cache.add(key)
        oracle[key] = True
        while len(oracle) > limit:
            oracle.popitem(last=False)
        assert len(cache) == len(oracle)
        assert all(k in cache for k in oracle)


@settings(max_examples=40, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.sampled_from(["x", "y", "z"]),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=40,
    ),
    window=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
def test_exact_dedup_window_matches_timestamp_dict(events, window):
    dedup = ExactDedupWindow(window_s=window)
    oracle = {}
    for key, now in sorted(events, key=lambda e: e[1]):
        last = oracle.get(key)
        want = last is None or now - last >= window
        assert dedup.should_send(key, now) == want
        if want:
            dedup.record(key, now)
            oracle[key] = now


# ---------------------------------------------------------------------------
# sketch traffic store: no attacker hidden
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(ops=WINDOW_OPS, threshold=st.integers(min_value=1, max_value=800))
def test_sketch_store_suspects_superset_of_exact(ops, threshold):
    """Count-min overestimates only: every exact suspect is a sketch
    suspect (narrow widths may add extras -- the documented tradeoff).

    History exceeds the op count so no frame ages out mid-sequence (the
    sketch ring drops idle neighbors earlier than the exact store --
    documented, and it only ever clears suspicion, but it would make
    this containment check vacuous).
    """
    exact = make_traffic_store(EvidenceConfig(backend="exact"), history_minutes=50)
    sketch = make_traffic_store(
        EvidenceConfig(backend="sketch", cm_width=16, cm_depth=2), history_minutes=50
    )
    for minute, out_counts, in_counts in ops:
        exact.record_window(minute, out_counts, in_counts)
        sketch.record_window(minute, out_counts, in_counts)
    exact_suspects = set(exact.suspicious_neighbors(float(threshold)))
    sketch_suspects = set(sketch.suspicious_neighbors(float(threshold)))
    assert exact_suspects <= sketch_suspects
