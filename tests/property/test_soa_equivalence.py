"""Small-n equivalence oracle: message DES vs the batched SoA engine.

The struct-of-arrays backend (``des-soa``) is a *re-expression* of the
message-level simulator, not an approximation: with jitter-free hop
latency the wave batching preserves the event semantics exactly. These
tests pin that contract at n <= 500 across seeds, topology models, and
attack on/off -- per-minute traffic rows, S(t), and (under DD-POLICE)
the full judgment log including the g/s indicator floats and the cut
set.

Known, documented divergences (see docs/PERF.md):

* the SoA engine carries no control plane, so ``messages`` /
  ``bytes_transferred`` rows are only compared when no defense runs;
* DES ``events_fired`` counts per-message deliveries while the SoA
  engine fires one event per wave, so progress is compared through
  delivered messages, not the event counter.
"""

import pytest

from repro.experiments.runner import DESConfig, run_des_experiment
from repro.overlay.network import NetworkConfig
from repro.overlay.soa_network import run_soa_experiment
from repro.overlay.topology import TopologyConfig

SEEDS = [1, 2, 3, 4, 5]
MODELS = ["ba", "random"]


def _full_rows(run):
    return [
        (
            r.minute,
            r.time_s,
            r.messages,
            r.bytes_transferred,
            r.queries_issued,
            r.queries_succeeded,
            r.mean_response_time_s,
            r.attack_queries_issued,
            r.attack_queries_succeeded,
            r.attack_mean_response_time_s,
        )
        for r in run.collector.minutes
    ]


def _traffic_rows(run):
    """Rows minus the messages/bytes columns (control-plane sensitive)."""
    return [r[:2] + r[4:] for r in _full_rows(run)]


def _series(run):
    return list(run.collector.success_series())


def _judgment_set(run):
    return {
        (j.time, j.observer.value, j.suspect.value, j.g_value, j.s_value, j.disconnected)
        for j in run.judgments.judgments
    }


def _cut_set(run):
    return {
        (j.observer.value, j.suspect.value)
        for j in run.judgments.judgments
        if j.disconnected
    }


def _config(seed, model, *, n, duration_s, ttl, num_agents=0, **kwargs):
    return DESConfig(
        n=n,
        duration_s=duration_s,
        seed=seed,
        topology=TopologyConfig(n=n, seed=seed, model=model),
        network=NetworkConfig(hop_latency_jitter_s=0.0, default_ttl=ttl),
        num_agents=num_agents,
        **kwargs,
    )


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("seed", SEEDS)
def test_workload_flood_is_exact(seed, model):
    cfg = _config(seed, model, n=80, duration_s=150.0, ttl=5)
    des = run_des_experiment(cfg)
    soa = run_soa_experiment(cfg)
    assert _full_rows(des) == _full_rows(soa)
    assert _series(des) == _series(soa)


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("seed", SEEDS)
def test_attack_flood_is_exact(seed, model):
    cfg = _config(
        seed,
        model,
        n=120,
        duration_s=200.0,
        ttl=4,
        num_agents=3,
        attack_start_s=60.0,
        attack_rate_qpm=300.0,
    )
    des = run_des_experiment(cfg)
    soa = run_soa_experiment(cfg)
    assert _full_rows(des) == _full_rows(soa)
    assert _series(des) == _series(soa)
    # per-class issue accounting agrees in every window, so the attack
    # batches fired the same query counts at the same minute boundaries;
    # make sure attacked windows actually reached the emitted rows
    assert sum(r.attack_queries_issued for r in des.collector.minutes) > 0


@pytest.mark.parametrize("model", MODELS)
def test_ddpolice_judgments_are_exact(model):
    cfg = _config(
        7,
        model,
        n=120,
        duration_s=190.0,
        ttl=3,
        num_agents=2,
        attack_start_s=130.0,
        attack_rate_qpm=3000.0,
        defense="ddpolice",
    )
    des = run_des_experiment(cfg)
    soa = run_soa_experiment(cfg)
    # acceptance surface: traffic, S(t), suspects/cuts -- all exact
    assert _traffic_rows(des) == _traffic_rows(soa)
    assert _series(des) == _series(soa)
    assert _cut_set(des) == _cut_set(soa)
    # and stronger: the complete judgment log, indicator floats included
    assert _judgment_set(des) == _judgment_set(soa)
    assert des.error_counts() == soa.error_counts()
    assert {p.value for p in des.bad_peers} == {p.value for p in soa.bad_peers}
    # the flood itself must have been disturbed identically by the cuts
    q_des = sum(p.counters.queries_received for p in des.network.peers.values())
    assert q_des == soa.stats.query_messages


def test_soa_rejects_unsupported_features():
    from repro.churn.process import ChurnConfig
    from repro.errors import ConfigError

    cfg = DESConfig(n=50, duration_s=60.0, churn=ChurnConfig(enabled=True))
    with pytest.raises(ConfigError):
        run_soa_experiment(cfg)
    with pytest.raises(ConfigError):
        run_soa_experiment(DESConfig(n=50, duration_s=60.0, defense="naive"))
    # jitter breaks the shared-timestamp wave contract
    with pytest.raises(ConfigError):
        run_soa_experiment(
            DESConfig(
                n=50,
                duration_s=60.0,
                network=NetworkConfig(hop_latency_jitter_s=0.01),
            )
        )
