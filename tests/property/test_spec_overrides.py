"""Property: `--set` overrides survive the spec JSON round-trip.

The CLI's dotted-path overrides produce a typed spec; that spec's
canonical JSON is embedded in manifests and results files and must
rebuild the *identical* dataclass tree (same values, same SHA-256) --
otherwise provenance hashes would drift between a run and its replay.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.spec import (
    apply_overrides,
    get_spec,
    spec_from_jsonable,
    spec_sha256,
    spec_to_jsonable,
)

# Each entry: dotted path -> strategy for a *valid* CLI value string.
# Floats are rendered with repr(), which round-trips exactly.
_finite = dict(allow_nan=False, allow_infinity=False)

_PATH_VALUES = {
    "seed": st.integers(0, 10_000).map(str),
    "trials": st.integers(1, 5).map(str),
    "scale.n_peers": st.integers(100, 50_000).map(str),
    "police.cut_threshold": st.floats(0.5, 50.0, **_finite).map(repr),
    "police.exchange_period_s": st.floats(1.0, 600.0, **_finite).map(repr),
    "police.assume_zero_on_missing": st.booleans().map(lambda b: str(b).lower()),
    "workload.issue_rate_qpm": st.floats(0.0, 10.0, **_finite).map(repr),
    "workload.attack_rate_qpm": st.floats(1.0, 50_000.0, **_finite).map(repr),
    "workload.cheat_strategy": st.sampled_from(["silent", "honest"]),
    "faults.trials": st.integers(1, 4).map(str),
    "grid.agent_fraction": st.floats(0.001, 1.0, **_finite).map(repr),
    "grid.cut_thresholds": st.lists(
        st.floats(0.5, 20.0, **_finite), min_size=0, max_size=4
    ).map(lambda xs: ",".join(repr(x) for x in xs)),
    "grid.agent_counts": st.lists(
        st.integers(0, 100), min_size=0, max_size=4
    ).map(lambda xs: ",".join(str(x) for x in xs)),
}

_overrides = st.dictionaries(
    st.sampled_from(sorted(_PATH_VALUES)), st.none(), min_size=1, max_size=6
).flatmap(
    lambda keys: st.fixed_dictionaries({k: _PATH_VALUES[k] for k in keys})
)


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(["fig9", "fig12", "fig13", "exchange", "fault-sweep"]),
    overrides=_overrides,
)
def test_overrides_roundtrip_through_spec_json(name, overrides):
    spec = apply_overrides(get_spec(name), overrides)
    rebuilt = spec_from_jsonable(spec_to_jsonable(spec))
    assert rebuilt == spec
    assert spec_sha256(rebuilt) == spec_sha256(spec)


@settings(max_examples=60, deadline=None)
@given(overrides=_overrides)
def test_overrides_land_on_the_requested_values(overrides):
    spec = apply_overrides(get_spec("fig13"), overrides)
    doc = spec_to_jsonable(spec)
    for path, raw in overrides.items():
        node = doc
        *parents, leaf = path.split(".")
        for p in parents:
            node = node[p]
        got = node[leaf]
        if isinstance(got, bool):
            assert got == (raw == "true")
        elif isinstance(got, list):
            parts = [p for p in raw.split(",") if p]
            assert [float(p) for p in parts] == [float(v) for v in got]
        elif isinstance(got, (int, float)):
            assert float(got) == float(raw)
        else:
            assert got == raw
