"""Property-based tests for the Chord substrate."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structured.chord import ChordConfig, ChordRing


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=150),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_lookup_always_finds_true_owner(n, seed):
    ring = ChordRing(ChordConfig(n_nodes=n, seed=seed))
    rng = random.Random(seed)
    for _ in range(25):
        key = rng.randrange(ring.space)
        origin = rng.randrange(n)
        result = ring.lookup(origin, key, now_s=0.0)
        assert result.succeeded
        assert result.owner == ring.owner_of(key)
        assert result.hops <= 2 * ring.config.id_bits
        # the path's first element is always the origin
        assert result.path[0] == origin
        # the path never revisits a node (progress is strictly clockwise)
        assert len(set(result.path)) == len(result.path)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=150),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_ring_structure_invariants(n, seed):
    ring = ChordRing(ChordConfig(n_nodes=n, seed=seed))
    # successor relation forms one cycle covering the whole ring
    start = 0
    seen = set()
    cur = start
    for _ in range(n):
        seen.add(cur)
        cur = ring.successors[cur][0]
    assert cur == start
    assert len(seen) == n
    # fingers never include the node itself
    for idx in range(n):
        assert idx not in ring.fingers[idx]


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=16, max_value=128),
    seed=st.integers(min_value=0, max_value=100),
)
def test_mean_hops_logarithmic(n, seed):
    ring = ChordRing(ChordConfig(n_nodes=n, seed=seed))
    rng = random.Random(seed + 1)
    hops = [
        ring.lookup(rng.randrange(n), rng.randrange(ring.space), 0.0).hops
        for _ in range(60)
    ]
    assert sum(hops) / len(hops) <= 2.0 * math.log2(n) + 1
