"""Property test: incremental accounting == legacy full-scan collector.

The incremental metrics path (O(1) per event, bounded memory) replaced
the per-minute scan over every ``QueryRecord``.  The legacy collector is
kept in-tree behind ``DESConfig(metrics_mode="legacy")`` as the oracle:
for any seeded workload -- including churn, an attack flood, and
injected message faults -- both paths must produce the same per-minute
rows, because identical seeds give identical event streams and neither
path perturbs the simulation it measures.
"""

from dataclasses import replace

import pytest

from repro.churn.lifetimes import LifetimeConfig
from repro.churn.process import ChurnConfig
from repro.experiments.runner import DESConfig, run_des_experiment
from repro.faults.plan import FaultPlan
from repro.overlay.topology import TopologyConfig
from repro.workload.generator import WorkloadConfig

TOL = 1e-9


def _config(seed: int, **overrides) -> DESConfig:
    base = dict(
        n=40,
        duration_s=360.0,
        seed=seed,
        topology=TopologyConfig(n=40, seed=seed),
        workload=WorkloadConfig(queries_per_minute=4.0, seed=seed),
    )
    base.update(overrides)
    return DESConfig(**base)


def _assert_rows_equal(incremental, legacy):
    inc_rows = incremental.collector.minutes
    leg_rows = legacy.collector.minutes
    assert len(inc_rows) == len(leg_rows) > 0
    for i, (a, b) in enumerate(zip(inc_rows, leg_rows)):
        assert a.minute == b.minute, i
        assert a.time_s == pytest.approx(b.time_s, abs=TOL)
        assert a.messages == b.messages
        assert a.bytes_transferred == b.bytes_transferred
        assert a.queries_issued == b.queries_issued
        assert a.queries_succeeded == b.queries_succeeded
        assert a.attack_queries_issued == b.attack_queries_issued
        assert a.attack_queries_succeeded == b.attack_queries_succeeded
        for attr in ("mean_response_time_s", "attack_mean_response_time_s"):
            x, y = getattr(a, attr), getattr(b, attr)
            if x is None or y is None:
                assert x == y, (i, attr)
            else:
                assert x == pytest.approx(y, abs=TOL), (i, attr)
    # whole-run summaries agree too
    assert incremental.success_rate == pytest.approx(legacy.success_rate, abs=TOL)
    assert incremental.success_rate_all_traffic == pytest.approx(
        legacy.success_rate_all_traffic, abs=TOL
    )


def _run_both(config: DESConfig):
    incremental = run_des_experiment(config)
    legacy = run_des_experiment(replace(config, metrics_mode="legacy"))
    return incremental, legacy


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 7, 23])
def test_equivalence_plain_workload(seed):
    _assert_rows_equal(*_run_both(_config(seed)))


@pytest.mark.slow
@pytest.mark.parametrize("seed", [11, 42])
def test_equivalence_under_churn_and_attack(seed):
    cfg = _config(
        seed,
        churn=ChurnConfig(
            lifetime=LifetimeConfig(family="exponential", mean_s=180.0),
            offtime=LifetimeConfig(family="exponential", mean_s=90.0),
            enabled=True,
            seed=seed,
        ),
        num_agents=3,
        attack_start_s=90.0,
        attack_rate_qpm=1_500.0,
    )
    incremental, legacy = _run_both(cfg)
    _assert_rows_equal(incremental, legacy)
    # the scenario must actually exercise the attack class
    assert any(m.attack_queries_issued for m in incremental.collector.minutes)


@pytest.mark.slow
def test_equivalence_with_faults_and_defense():
    cfg = _config(
        5,
        churn=ChurnConfig(
            lifetime=LifetimeConfig(family="exponential", mean_s=200.0),
            offtime=LifetimeConfig(family="exponential", mean_s=100.0),
            enabled=True,
            seed=5,
        ),
        num_agents=2,
        attack_start_s=60.0,
        attack_rate_qpm=1_000.0,
        defense="ddpolice",
        faults=FaultPlan.message_loss(0.02, start_s=30.0),
    )
    _assert_rows_equal(*_run_both(cfg))


def test_legacy_mode_forces_record_retention():
    incremental, legacy = _run_both(_config(3, duration_s=240.0))
    # incremental default retires settled records; legacy keeps them all
    assert legacy.network.config.retire_settled_records is False
    assert len(legacy.network.query_records) > len(incremental.network.query_records)


def test_incremental_memory_stays_bounded():
    run = run_des_experiment(_config(3, duration_s=240.0))
    assert run.network.accounting.live_window_count <= 2  # grace + 1
    # only queries from unfinalized windows remain live
    rolls = int(run.config.duration_s // 60.0)
    tail_start = (rolls - 1) * 60.0
    for rec in run.network.query_records.values():
        assert rec.issued_at >= tail_start - 60.0
