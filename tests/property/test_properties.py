"""Property-based tests (hypothesis) on core invariants."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indicators import (
    NeighborReport,
    general_indicator,
    indicators_from_reports,
    single_indicator,
)
from repro.core.wire import (
    decode_neighbor_list,
    decode_neighbor_traffic,
    encode_neighbor_list,
    encode_neighbor_traffic,
)
from repro.fluid.coverage import expected_coverage, novelty_schedule
from repro.metrics.damage import damage_rate
from repro.overlay.capacity import TokenBucket
from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import NeighborListMessage, NeighborTrafficMessage
from repro.overlay.topology import TopologyConfig, generate_topology
from repro.simkit.engine import Simulator

# ---------------------------------------------------------------------------
# Indicators
# ---------------------------------------------------------------------------

counts = st.integers(min_value=0, max_value=1_000_000)


@given(
    q0=counts,
    inflows=st.lists(counts, min_size=1, max_size=10),
    q=st.floats(min_value=0.5, max_value=1000),
)
def test_faithful_forwarder_indicator_equals_issue_rate(q0, inflows, q):
    """For a lossless forwarder the Figure 2 identity g = s = q0/q holds
    for any neighbor count and any traffic mix."""
    total = sum(inflows)
    sent = [q0 + (total - x) for x in inflows]
    g = general_indicator(sent, inflows, q)
    assert g == pytest.approx(q0 / q, rel=1e-9, abs=1e-9)
    s = single_indicator(sent[0], inflows[1:], q)
    assert s == pytest.approx(q0 / q, rel=1e-9, abs=1e-9)


@given(
    inflows=st.lists(counts, min_size=1, max_size=8),
    loss=st.floats(min_value=0.0, max_value=1.0),
    q=st.floats(min_value=0.5, max_value=1000),
)
def test_lossy_forwarder_never_positive(inflows, loss, q):
    """Dropping traffic can only lower the indicators -- a good peer that
    forwards less than it receives is never blamed."""
    total = sum(inflows)
    sent = [(total - x) * (1.0 - loss) for x in inflows]
    g = general_indicator(sent, inflows, q)
    assert g <= 1e-6


@given(
    reports=st.dictionaries(
        st.integers(min_value=2, max_value=20),
        st.tuples(counts, counts),
        min_size=1,
        max_size=8,
    ),
    own=st.tuples(counts, counts),
    q=st.floats(min_value=0.5, max_value=100),
)
def test_missing_reports_never_help_the_suspect(reports, own, q):
    """Replacing any report with silence (0,0) cannot decrease g:
    assume-zero is always adversarial to the suspect."""
    full = {
        m: NeighborReport(member=m, outgoing=o, incoming=i)
        for m, (o, i) in reports.items()
    }
    g_full, _ = indicators_from_reports(1, own[0], own[1], full, q)
    some_member = next(iter(full))
    partial = dict(full)
    partial[some_member] = None
    g_partial, _ = indicators_from_reports(1, own[0], own[1], partial, q)
    inc = full[some_member].incoming
    out = full[some_member].outgoing
    # g changes by (k-1)*out/qk - inc/qk; silence only helps j if the
    # member was mostly *sending into* j
    k = len(full) + 1
    expected_delta = ((k - 1) * out - inc) / (q * k)
    assert g_partial - g_full == pytest.approx(expected_delta, rel=1e-6, abs=1e-6)


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------

peer_ids = st.integers(min_value=0, max_value=2**24 - 1).map(PeerId)
guids = st.binary(min_size=16, max_size=16).map(Guid)


@given(
    guid=guids,
    source=peer_ids,
    suspect=peer_ids,
    ts=st.integers(min_value=0, max_value=2**32 - 1),
    out=st.integers(min_value=0, max_value=2**32 - 1),
    inc=st.integers(min_value=0, max_value=2**32 - 1),
    ttl=st.integers(min_value=0, max_value=255),
    hops=st.integers(min_value=0, max_value=255),
)
def test_neighbor_traffic_roundtrip_property(guid, source, suspect, ts, out, inc, ttl, hops):
    msg = NeighborTrafficMessage(
        guid=guid, ttl=ttl, hops=hops, source=source, suspect=suspect,
        timestamp=ts, outgoing_queries=out, incoming_queries=inc,
    )
    decoded = decode_neighbor_traffic(encode_neighbor_traffic(msg))
    assert (decoded.source, decoded.suspect) == (source, suspect)
    assert (decoded.timestamp, decoded.outgoing_queries, decoded.incoming_queries) == (ts, out, inc)
    assert (decoded.ttl, decoded.hops) == (ttl, hops)
    assert decoded.guid == guid


@given(
    guid=guids,
    sender=peer_ids,
    neighbors=st.frozensets(peer_ids, max_size=30),
)
def test_neighbor_list_roundtrip_property(guid, sender, neighbors):
    msg = NeighborListMessage(
        guid=guid, ttl=1, hops=0, sender=sender, neighbors=neighbors
    )
    decoded = decode_neighbor_list(encode_neighbor_list(msg))
    assert decoded.sender == sender
    assert decoded.neighbors == neighbors


_keyword = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=12,
)


@given(
    guid=guids,
    keywords=st.lists(_keyword, max_size=6),
    min_speed=st.integers(min_value=0, max_value=0xFFFF),
    ttl=st.integers(min_value=0, max_value=255),
)
def test_query_wire_roundtrip_property(guid, keywords, min_speed, ttl):
    from repro.overlay.message import Query
    from repro.overlay.wire import decode_query, encode_query

    msg = Query(guid=guid, ttl=ttl, hops=0, keywords=tuple(keywords),
                min_speed=min_speed)
    decoded = decode_query(encode_query(msg))
    # whitespace-splitting canonicalizes the keyword tuple
    assert decoded.search_string == " ".join(" ".join(keywords).split())
    assert decoded.min_speed == min_speed
    assert decoded.guid == guid


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=10, max_value=300),
    m=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_ba_topology_invariants(n, m, seed):
    if n <= m:
        return
    topo = generate_topology(TopologyConfig(n=n, ba_m=m, seed=seed))
    assert topo.check_symmetric()
    assert topo.is_connected()
    assert all(topo.degree(u) >= 1 for u in range(n))
    assert sum(topo.degrees()) == 2 * topo.edge_count()


# ---------------------------------------------------------------------------
# Coverage schedule
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    degrees=st.lists(st.integers(min_value=1, max_value=40), min_size=2, max_size=200),
    ttl=st.integers(min_value=1, max_value=10),
)
def test_coverage_invariants(degrees, ttl):
    sigma = novelty_schedule(degrees, ttl)
    assert all(0.0 <= s <= 1.0 for s in sigma)
    M = expected_coverage(degrees, ttl)
    assert M[0] == 1.0
    assert all(b >= a - 1e-9 for a, b in zip(M, M[1:]))
    assert M[-1] <= len(degrees) + 1e-9


# ---------------------------------------------------------------------------
# Token bucket
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(
    rate=st.floats(min_value=1.0, max_value=100_000.0),
    gaps=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=50),
)
def test_token_bucket_never_exceeds_rate_plus_burst(rate, gaps):
    tb = TokenBucket(rate_per_min=rate)
    t = 0.0
    consumed = 0
    for gap in gaps:
        t += gap
        while tb.try_consume(t):
            consumed += 1
    # total consumed <= burst + rate * elapsed
    assert consumed <= tb.burst + rate * (t / 60.0) + 1


# ---------------------------------------------------------------------------
# Damage metric
# ---------------------------------------------------------------------------

@given(
    base=st.floats(min_value=0.0, max_value=1.0),
    attacked=st.floats(min_value=0.0, max_value=1.0),
)
def test_damage_rate_bounds(base, attacked):
    d = damage_rate(base, attacked)
    assert 0.0 <= d <= 100.0
    if attacked >= base:
        assert d == 0.0


# ---------------------------------------------------------------------------
# DES engine ordering
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_engine_fires_in_sorted_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule_at(t, lambda t=t: fired.append(t))
    sim.run()
    assert fired == sorted(times)
    assert len(fired) == len(times)
