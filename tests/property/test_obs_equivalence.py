"""Observability must never perturb published numbers.

The core invariant of :mod:`repro.obs`: tracing records state, it never
draws randomness and never mutates the simulation, so a fully observed
run is bit-identical to a dark one. These tests pin that for both
simulators -- the fluid model behind fig12 and the message-level DES --
across hypothesis-chosen scenario corners.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import DESConfig, run_des_experiment
from repro.fluid.model import FluidConfig, FluidSimulation
from repro.obs.config import ObsConfig

FULL_OBS = ObsConfig(trace=True, metrics=True, profile=True)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    num_agents=st.integers(min_value=0, max_value=6),
    defense=st.sampled_from(["none", "ddpolice"]),
)
def test_fluid_rows_bit_identical_with_obs_on(seed, num_agents, defense):
    base = dict(
        n=120,
        seed=seed,
        num_agents=num_agents,
        defense=defense,
        attack_start_min=2,
        churn_warmup_min=2,
    )
    dark = FluidSimulation(FluidConfig(**base))
    dark_rows = dark.run(8)
    lit = FluidSimulation(FluidConfig(**base, obs=FULL_OBS))
    lit_rows = lit.run(8)
    lit.close_obs()
    assert lit_rows == dark_rows  # dataclass equality covers every field
    assert lit.obs.tracer.emitted == 8  # ...and the run really was traced


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    num_agents=st.integers(min_value=0, max_value=3),
)
def test_des_results_bit_identical_with_obs_on(seed, num_agents):
    base = dict(
        n=15,
        duration_s=60.0,
        seed=seed,
        num_agents=num_agents,
        defense="ddpolice",
    )
    dark = run_des_experiment(DESConfig(**base))
    lit = run_des_experiment(DESConfig(**base, obs=FULL_OBS))
    assert lit.success_rate == dark.success_rate
    assert lit.total_messages == dark.total_messages
    assert lit.mean_response_time == dark.mean_response_time
    assert lit.network.stats == dark.network.stats
    assert lit.sim.events_fired == dark.sim.events_fired
    assert lit.obs is not None and lit.obs.tracer.emitted > 0
