"""Unit tests for the deterministic parallel executor (:mod:`repro.exec`)."""

import os
import time

import pytest

from repro.errors import ConfigError, TaskTimeoutError, WorkerCrashError
from repro.exec import (
    WORKERS_ENV,
    ExecStats,
    _chunk_bounds,
    pmap,
    resolve_workers,
)


# Worker payload functions must live at module level so the spawn start
# method can re-import them in the child process.
def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("task three exploded")
    return x


def _kill_worker(x):
    os._exit(13)


def _sleep_task(seconds):
    time.sleep(seconds)
    return seconds


# ---------------------------------------------------------------------------
# resolve_workers
# ---------------------------------------------------------------------------

def test_resolve_workers_defaults_to_serial(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers() == 1
    assert resolve_workers(3) == 3


def test_resolve_workers_reads_env(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "5")
    assert resolve_workers() == 5
    # explicit argument wins over the environment
    assert resolve_workers(2) == 2


def test_resolve_workers_zero_means_cpu_count(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert resolve_workers(0) == (os.cpu_count() or 1)
    monkeypatch.setenv(WORKERS_ENV, "0")
    assert resolve_workers() == (os.cpu_count() or 1)


def test_resolve_workers_rejects_garbage(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "many")
    with pytest.raises(ConfigError, match=WORKERS_ENV):
        resolve_workers()
    with pytest.raises(ConfigError):
        resolve_workers(-1)


# ---------------------------------------------------------------------------
# serial path
# ---------------------------------------------------------------------------

def test_serial_pmap_matches_list_comprehension():
    tasks = list(range(17))
    assert pmap(_square, tasks, workers=1) == [t * t for t in tasks]
    # lambdas are fine serially (no pickling involved)
    assert pmap(lambda x: x + 1, [1, 2, 3], workers=1) == [2, 3, 4]


def test_serial_pmap_propagates_task_exception():
    with pytest.raises(ValueError, match="task three exploded"):
        pmap(_fail_on_three, [1, 2, 3, 4], workers=1)


def test_serial_pmap_progress_and_stats():
    seen = []
    stats = ExecStats()
    out = pmap(
        _square,
        [1, 2, 3],
        workers=1,
        on_progress=lambda done, total: seen.append((done, total)),
        stats=stats,
    )
    assert out == [1, 4, 9]
    assert seen == [(1, 3), (2, 3), (3, 3)]
    assert stats.tasks == 3 and stats.workers == 1 and stats.chunks == 3
    assert stats.wall_s > 0
    assert [(i, n) for i, n, _ in stats.chunk_timings] == [(0, 1), (1, 1), (2, 1)]


def test_serial_pmap_deadline_between_tasks():
    with pytest.raises(TaskTimeoutError, match="serial pmap exceeded"):
        pmap(_sleep_task, [0.05, 0.05, 0.05], workers=1, timeout_s=0.01)


def test_empty_task_list():
    assert pmap(_square, [], workers=1) == []
    # the parallel branch also short-circuits on <= 1 task
    assert pmap(_square, [], workers=4) == []
    assert pmap(_square, [6], workers=4) == [36]


# ---------------------------------------------------------------------------
# chunking
# ---------------------------------------------------------------------------

def test_chunk_bounds_cover_exactly():
    assert _chunk_bounds(10, 3) == [(0, 3), (3, 6), (6, 9), (9, 10)]
    assert _chunk_bounds(4, 4) == [(0, 4)]
    assert _chunk_bounds(0, 3) == []


def test_chunk_size_validation():
    with pytest.raises(ConfigError, match="chunk_size"):
        pmap(_square, [1, 2, 3], workers=2, chunk_size=0)


# ---------------------------------------------------------------------------
# parallel path (spawns real worker processes -- keep these few and small)
# ---------------------------------------------------------------------------

def test_parallel_pmap_ordered_and_equal_to_serial():
    tasks = list(range(23))
    stats = ExecStats()
    seen = []
    out = pmap(
        _square,
        tasks,
        workers=2,
        chunk_size=4,
        on_progress=lambda done, total: seen.append((done, total)),
        stats=stats,
    )
    assert out == pmap(_square, tasks, workers=1)
    assert stats.workers == 2 and stats.chunks == 6
    # progress is monotone and ends complete, whatever the completion order
    assert [d for d, _ in seen] == sorted(d for d, _ in seen)
    assert seen[-1] == (23, 23)


def test_parallel_pmap_propagates_task_exception():
    with pytest.raises(ValueError, match="task three exploded"):
        pmap(_fail_on_three, [1, 2, 3, 4], workers=2, chunk_size=1)


def test_parallel_worker_crash_is_typed():
    with pytest.raises(WorkerCrashError):
        pmap(_kill_worker, [1, 2], workers=2, chunk_size=1)


def test_parallel_timeout_is_typed():
    with pytest.raises(TaskTimeoutError, match="pmap exceeded"):
        pmap(_sleep_task, [2.0, 2.0], workers=2, chunk_size=1, timeout_s=0.3)


# ---------------------------------------------------------------------------
# progress-hook robustness
# ---------------------------------------------------------------------------

def _broken_hook(done, total):
    raise RuntimeError("observer exploded")


def test_broken_progress_hook_does_not_kill_the_sweep():
    from repro.obs.metrics import global_registry

    before = global_registry().counter("exec.progress_hook_errors").value
    stats = ExecStats()
    with pytest.warns(RuntimeWarning, match="progress hook raised"):
        out = pmap(_square, [1, 2, 3], workers=1, on_progress=_broken_hook,
                   stats=stats)
    # results are untouched; every failure is counted, warned only once
    assert out == [1, 4, 9]
    assert stats.hook_errors == 3
    assert global_registry().counter("exec.progress_hook_errors").value == before + 3


def test_broken_progress_hook_parallel_path():
    stats = ExecStats()
    with pytest.warns(RuntimeWarning):
        out = pmap(_square, [1, 2, 3, 4], workers=2, chunk_size=2,
                   on_progress=_broken_hook, stats=stats)
    assert out == [1, 4, 9, 16]
    assert stats.hook_errors == 2  # one per completed chunk


def test_intermittent_hook_failure_keeps_reporting():
    calls = []

    def flaky(done, total):
        calls.append((done, total))
        if done == 2:
            raise ValueError("only the second call fails")

    stats = ExecStats()
    with pytest.warns(RuntimeWarning):
        pmap(_square, [1, 2, 3], workers=1, on_progress=flaky, stats=stats)
    assert calls == [(1, 3), (2, 3), (3, 3)]  # hook still invoked after failing
    assert stats.hook_errors == 1


# ---------------------------------------------------------------------------
# worker profiling
# ---------------------------------------------------------------------------

def test_serial_profile_reports():
    stats = ExecStats()
    out = pmap(_square, [1, 2, 3], workers=1, stats=stats, profile=True)
    assert out == [1, 4, 9]
    (report,) = stats.worker_profiles
    assert report["scope"] == "exec.chunk"
    assert report["tasks"] == 3
    assert "profile_top" in report


def test_parallel_profile_ships_reports_back():
    stats = ExecStats()
    out = pmap(
        _square, list(range(6)), workers=2, chunk_size=3, stats=stats,
        profile=True, profile_top=5,
    )
    assert out == [t * t for t in range(6)]
    assert len(stats.worker_profiles) == 2
    assert sorted(r["first_task"] for r in stats.worker_profiles) == [0, 3]
    for report in stats.worker_profiles:
        assert report["tasks"] == 3
        assert "cumulative" in report["profile_top"]


def test_profile_off_means_no_reports():
    stats = ExecStats()
    pmap(_square, [1, 2], workers=1, stats=stats)
    assert stats.worker_profiles == []
    assert stats.hook_errors == 0
