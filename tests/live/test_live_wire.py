"""Round-trip + fuzz tests for the live datagram codecs.

Contract under test (same as the PR-1 wire fuzz suite): whatever bytes
arrive -- truncated datagrams, flipped bits, wrong payload descriptors,
pure noise -- ``decode_message`` either returns a valid message or
raises inside the :class:`ProtocolError` hierarchy. ``struct.error``,
``UnicodeDecodeError``, ``KeyError`` etc. must never escape: a malformed
datagram from a remote peer is a protocol event, not a crash.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.wire import (
    HEADER_SIZE,
    decode_bye,
    decode_ping,
    decode_pong,
    decode_query,
    decode_query_hit,
    encode_bye,
    encode_ping,
    encode_pong,
    encode_query,
    encode_query_hit,
)
from repro.errors import ProtocolError, WireFormatError
from repro.live.wire import MAX_DATAGRAM, decode_message, encode_message
from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import Bye, Ping, Pong, Query, QueryHit

peer_ids = st.integers(min_value=0, max_value=2**24 - 1).map(PeerId)
guids = st.binary(min_size=16, max_size=16).map(Guid)
u8 = st.integers(min_value=0, max_value=0xFF)
u16 = st.integers(min_value=0, max_value=0xFFFF)
keywords = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_.", min_size=1, max_size=12
)


@st.composite
def pings(draw):
    return Ping(guid=draw(guids), ttl=draw(u8), hops=draw(u8))


@st.composite
def pongs(draw):
    return Pong(
        guid=draw(guids),
        ttl=draw(u8),
        hops=draw(u8),
        responder=draw(peer_ids),
        shared_files=draw(st.integers(min_value=0, max_value=0xFFFFFFFF)),
    )


@st.composite
def queries(draw):
    return Query(
        guid=draw(guids),
        ttl=draw(u8),
        hops=draw(u8),
        keywords=tuple(draw(st.lists(keywords, min_size=0, max_size=6))),
        min_speed=draw(u16),
    )


@st.composite
def query_hits(draw):
    return QueryHit(
        guid=draw(guids),
        ttl=draw(u8),
        hops=draw(u8),
        responder=draw(peer_ids),
        result_count=draw(u8),
        query_guid=draw(guids),
    )


@st.composite
def byes(draw):
    return Bye(
        guid=draw(guids),
        ttl=draw(u8),
        hops=draw(u8),
        reason_code=draw(u16),
        reason_text=draw(
            st.text(
                alphabet=st.characters(blacklist_categories=("Cs",)), max_size=32
            )
        ),
    )


def any_message():
    return st.one_of(pings(), pongs(), queries(), query_hits(), byes())


def decode_or_protocol_error(raw):
    try:
        decode_message(raw)
    except ProtocolError:
        pass


# ---------------------------------------------------------------------------
# round trips (per-codec and through the dispatch layer)
# ---------------------------------------------------------------------------

@given(pings())
def test_ping_round_trip(msg):
    decoded = decode_ping(encode_ping(msg))
    assert (decoded.guid, decoded.ttl, decoded.hops) == (msg.guid, msg.ttl, msg.hops)


@given(pongs())
def test_pong_round_trip(msg):
    decoded = decode_pong(encode_pong(msg))
    assert decoded.responder == msg.responder
    assert decoded.shared_files == msg.shared_files
    assert decoded.guid == msg.guid


@given(queries())
def test_query_round_trip(msg):
    decoded = decode_query(encode_query(msg))
    assert decoded.keywords == msg.keywords
    assert decoded.min_speed == msg.min_speed
    assert (decoded.guid, decoded.ttl, decoded.hops) == (msg.guid, msg.ttl, msg.hops)


@given(query_hits())
def test_query_hit_round_trip(msg):
    decoded = decode_query_hit(encode_query_hit(msg))
    assert decoded.responder == msg.responder
    assert decoded.result_count == msg.result_count
    assert decoded.query_guid == msg.query_guid


@given(byes())
def test_bye_round_trip(msg):
    decoded = decode_bye(encode_bye(msg))
    assert decoded.reason_code == msg.reason_code
    assert decoded.reason_text == msg.reason_text


@given(any_message())
def test_dispatch_round_trip_preserves_kind(msg):
    decoded = decode_message(encode_message(msg))
    assert decoded.kind == msg.kind
    assert decoded.guid == msg.guid


# ---------------------------------------------------------------------------
# truncation
# ---------------------------------------------------------------------------

@given(any_message(), st.data())
def test_truncated_datagram_raises_wire_error(msg, data):
    raw = encode_message(msg)
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    with pytest.raises(WireFormatError):
        decode_message(raw[:cut])


# ---------------------------------------------------------------------------
# corruption + noise
# ---------------------------------------------------------------------------

@given(any_message(), st.data())
def test_corrupted_datagram_never_escapes_protocol_error(msg, data):
    raw = bytearray(encode_message(msg))
    pos = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
    raw[pos] = data.draw(u8)
    decode_or_protocol_error(bytes(raw))


@settings(max_examples=300)
@given(st.binary(max_size=128))
def test_random_bytes_never_escape_protocol_error(raw):
    decode_or_protocol_error(raw)


@given(st.integers(min_value=0, max_value=0xFF).filter(
    lambda d: d not in (0x00, 0x01, 0x02, 0x80, 0x81, 0x82, 0x83)
))
def test_unknown_descriptor_is_a_wire_error(descriptor):
    raw = bytearray(encode_message(Ping(guid=Guid(b"\x01" * 16))))
    raw[16] = descriptor
    with pytest.raises(WireFormatError):
        decode_message(bytes(raw))


# ---------------------------------------------------------------------------
# wrong payload descriptor against a specific decoder
# ---------------------------------------------------------------------------

@given(queries())
def test_query_frame_rejected_by_bye_decoder(msg):
    with pytest.raises(WireFormatError):
        decode_bye(encode_query(msg))


@given(byes())
def test_bye_frame_rejected_by_query_decoder(msg):
    with pytest.raises(WireFormatError):
        decode_query(encode_bye(msg))


# ---------------------------------------------------------------------------
# encode-side contract
# ---------------------------------------------------------------------------

def test_encode_rejects_separator_keywords():
    q = Query(guid=Guid(b"\x01" * 16), ttl=1, hops=0, keywords=("a b",))
    with pytest.raises(WireFormatError):
        encode_query(q)


def test_encode_rejects_oversized_datagram():
    big = Query(
        guid=Guid(b"\x01" * 16), ttl=1, hops=0,
        keywords=tuple(f"k{i:05d}x" * 8 for i in range(1200)),
    )
    raw_len = sum(len(k) + 1 for k in big.keywords) + HEADER_SIZE + 3
    assert raw_len > MAX_DATAGRAM  # the fixture really is oversized
    with pytest.raises(WireFormatError):
        encode_message(big)


def test_ping_payload_must_be_empty():
    raw = encode_ping(Ping(guid=Guid(b"\x01" * 16))) + b"\x00"
    with pytest.raises(WireFormatError):
        decode_ping(raw)
