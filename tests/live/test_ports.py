"""Unit tests for live swarm UDP port allocation."""

import socket

import pytest

from repro.errors import ConfigError
from repro.live.ports import (
    ENV_PORT_BASE,
    allocate_udp_ports,
    bind_udp_socket,
    port_base_from_env,
)


def hold_udp(host, port):
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.bind((host, port))
    return sock


# ---------------------------------------------------------------------------
# $REPRO_LIVE_PORT_BASE
# ---------------------------------------------------------------------------

def test_env_unset_means_none():
    assert port_base_from_env({}) is None
    assert port_base_from_env({ENV_PORT_BASE: "  "}) is None


def test_env_valid_base():
    assert port_base_from_env({ENV_PORT_BASE: "42000"}) == 42000


def test_env_non_integer_rejected():
    with pytest.raises(ConfigError):
        port_base_from_env({ENV_PORT_BASE: "not-a-port"})


@pytest.mark.parametrize("bad", ["80", "70000", "-1"])
def test_env_out_of_range_rejected(bad):
    with pytest.raises(ConfigError):
        port_base_from_env({ENV_PORT_BASE: bad})


def test_allocate_honours_env_override():
    holder = hold_udp("127.0.0.1", 0)
    try:
        base = holder.getsockname()[1]
    finally:
        holder.close()
    ports = allocate_udp_ports(3, env={ENV_PORT_BASE: str(base)}, span=64)
    assert ports[0] >= base
    assert len(ports) == 3


# ---------------------------------------------------------------------------
# bind_udp_socket: EADDRINUSE retry with bounded backoff
# ---------------------------------------------------------------------------

def test_bind_plain_success():
    sock = bind_udp_socket("127.0.0.1", 0)
    try:
        assert sock.getsockname()[1] > 0
    finally:
        sock.close()


def test_bind_retries_until_port_frees():
    holder = hold_udp("127.0.0.1", 0)
    port = holder.getsockname()[1]
    slept = []

    def sleep(seconds):
        slept.append(seconds)
        if len(slept) == 2:
            holder.close()  # port frees up after the second backoff

    sock = bind_udp_socket("127.0.0.1", port, retries=5, backoff_s=0.01, sleep=sleep)
    try:
        assert sock.getsockname()[1] == port
    finally:
        sock.close()
    # Doubling backoff: 0.01, 0.02 before the successful third attempt.
    assert slept == [0.01, 0.02]


def test_bind_gives_up_after_retries():
    holder = hold_udp("127.0.0.1", 0)
    port = holder.getsockname()[1]
    slept = []
    try:
        with pytest.raises(ConfigError) as err:
            bind_udp_socket(
                "127.0.0.1", port, retries=3, backoff_s=0.01, sleep=slept.append
            )
    finally:
        holder.close()
    assert str(port) in str(err.value)
    assert slept == [0.01, 0.02, 0.04]


def test_bind_non_addrinuse_error_not_retried():
    slept = []
    with pytest.raises(ConfigError):
        # An unroutable bind address fails with something other than
        # EADDRINUSE; the retry loop must not mask it.
        bind_udp_socket("203.0.113.7", 0, sleep=slept.append)
    assert slept == []


def test_bind_rejects_bad_parameters():
    with pytest.raises(ConfigError):
        bind_udp_socket("127.0.0.1", 0, retries=-1)
    with pytest.raises(ConfigError):
        bind_udp_socket("127.0.0.1", 0, backoff_s=0.0)


# ---------------------------------------------------------------------------
# allocate_udp_ports
# ---------------------------------------------------------------------------

def test_ephemeral_allocation_is_distinct_and_bindable():
    ports = allocate_udp_ports(20, env={})
    assert len(set(ports)) == 20
    socks = [hold_udp("127.0.0.1", p) for p in ports]
    for sock in socks:
        sock.close()


def test_based_allocation_skips_busy_ports():
    probe = allocate_udp_ports(1, env={})
    base = probe[0]
    holder = hold_udp("127.0.0.1", base)
    try:
        ports = allocate_udp_ports(3, base=base, span=64)
    finally:
        holder.close()
    assert base not in ports
    assert ports == sorted(ports)
    assert all(p > base for p in ports)


def test_based_allocation_exhaustion_is_config_error():
    probe = allocate_udp_ports(1, env={})
    base = probe[0]
    with pytest.raises(ConfigError):
        allocate_udp_ports(10, base=base, span=4)


def test_allocate_rejects_bad_count_and_base():
    with pytest.raises(ConfigError):
        allocate_udp_ports(0)
    with pytest.raises(ConfigError):
        allocate_udp_ports(1, base=80)
