"""Unit tests for the Case -> swarm adaptation layer (no sockets)."""

from dataclasses import replace

import pytest

from repro.core.config import DDPoliceConfig
from repro.errors import ConfigError
from repro.experiments.spec import Case, WorkloadSpec
from repro.faults.plan import CrashRule, FaultPlan
from repro.obs.config import ObsConfig
from repro.live.runner import case_result_from_swarm, swarm_config_for
from repro.live.spec import LiveSpec
from repro.live.supervisor import SwarmResult


def make_case(**overrides):
    base = dict(
        n=400,
        minutes=6,
        seed=3,
        num_agents=2,
        attack_start_min=1,
        defense="ddpolice",
        settle_min=3,
        live=LiveSpec(n_nodes=25, minute_s=0.5),
    )
    base.update(overrides)
    return Case(**base)


# ---------------------------------------------------------------------------
# scale adaptation
# ---------------------------------------------------------------------------

def test_swarm_caps_nodes_and_scales_agents_proportionally():
    cfg = swarm_config_for(make_case(n=400, num_agents=16))
    assert cfg.n_nodes == 25
    # 16/400 = 4% density -> 1 agent per 25 nodes.
    assert cfg.num_agents == 1
    assert cfg.minute_s == 0.5


def test_swarm_below_cap_runs_uncapped():
    cfg = swarm_config_for(make_case(n=400, live=LiveSpec(n_nodes=500)))
    assert cfg.n_nodes == 400
    assert cfg.num_agents == 2  # taken verbatim, not rescaled


def test_scaled_agent_count_never_reaches_swarm_size():
    # 300 agents in 400 peers -> proportionally ~19 of 25; a pathological
    # density can round up to the whole swarm, which must be clamped so
    # at least one good node exists.
    cfg = swarm_config_for(make_case(n=400, num_agents=399, live=LiveSpec(n_nodes=4)))
    assert cfg.num_agents == 3


def test_scaled_agent_count_never_drops_to_zero():
    cfg = swarm_config_for(make_case(n=400, num_agents=1))
    assert cfg.num_agents == 1


def test_workload_and_police_carry_over():
    police = DDPoliceConfig(exchange_period_s=30.0, q_threshold_qpm=10.0)
    case = make_case(
        police=police,
        workload=WorkloadSpec(
            queries_per_minute=3.0, attack_rate_qpm=2000.0, capacity_qpm=400.0
        ),
        topology="random",
        ba_m=2,
    )
    cfg = swarm_config_for(case)
    assert cfg.police == police
    assert cfg.queries_per_minute == 3.0
    assert cfg.attack_rate_qpm == 2000.0
    assert cfg.capacity_qpm == 400.0
    assert cfg.topology_model == "random"
    assert cfg.ba_m == 2


# ---------------------------------------------------------------------------
# unsupported features are rejected loudly
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "overrides",
    [
        {"faults": FaultPlan(crashes=(CrashRule(at_s=60.0, count=1),))},
        {"defense": "traceback"},
        {"workload": WorkloadSpec(cheat_strategy="collude")},
        {"obs": ObsConfig()},
    ],
    ids=["faults", "traceback", "collude", "obs"],
)
def test_unsupported_case_features_rejected(overrides):
    with pytest.raises(ConfigError):
        swarm_config_for(make_case(**overrides))


def test_adaptive_adversary_rejected():
    case = make_case()
    case = replace(case, adaptive=replace(case.adaptive, strategy="pulse"))
    with pytest.raises(ConfigError):
        swarm_config_for(case)


def test_honest_cheat_strategy_is_fine():
    cfg = swarm_config_for(
        make_case(workload=WorkloadSpec(cheat_strategy="honest"))
    )
    assert cfg.cheat_strategy == "honest"


# ---------------------------------------------------------------------------
# CaseResult extraction
# ---------------------------------------------------------------------------

def minute_rec(node, minute, *, issued=10, succeeded=8, sent=100, agent=0):
    return {
        "kind": "live.minute",
        "t": minute * 60.0,
        "node": node,
        "minute": minute,
        "agent": agent,
        "issued": issued,
        "succeeded": succeeded,
        "response_sum_s": succeeded * 2.0,
        "sent": sent,
    }


def swarm_result(case, minute_records, police_records=(), agent_ids=frozenset()):
    return SwarmResult(
        config=swarm_config_for(case),
        minute_records=list(minute_records),
        police_records=list(police_records),
        agent_ids=set(agent_ids),
        crashed=[],
        clean_exits=case.live.n_nodes,
        duration_s=1.0,
    )


def test_rows_and_steady_from_minute_records():
    case = make_case(n=2, num_agents=0, defense="none", minutes=3, settle_min=2,
                     live=LiveSpec(n_nodes=2))
    records = [
        minute_rec(node, minute)
        for node in (0, 1)
        for minute in (1, 2, 3)
    ]
    result = case_result_from_swarm(case, swarm_result(case, records))
    assert result.rows == ((60.0, 0.8), (120.0, 0.8), (180.0, 0.8))
    traffic_k, response_s, success = result.steady
    assert traffic_k == pytest.approx(0.2)   # 200 msgs/min over 2 nodes
    assert response_s == pytest.approx(2.0)
    assert success == pytest.approx(0.8)


def test_agent_workload_excluded_after_attack_starts():
    case = make_case(n=2, num_agents=1, defense="none", minutes=2,
                     attack_start_min=1, settle_min=None, live=LiveSpec(n_nodes=2))
    records = [
        minute_rec(0, 1, issued=10, succeeded=10),
        minute_rec(1, 1, issued=10, succeeded=0, agent=1),
        minute_rec(0, 2, issued=10, succeeded=10),
        minute_rec(1, 2, issued=10, succeeded=0, agent=1),
    ]
    result = case_result_from_swarm(
        case, swarm_result(case, records, agent_ids={1})
    )
    # Minute 1 (the attack minute itself) still counts the agent's good
    # workload; from minute 2 on only the good node's queries count.
    assert result.rows == ((60.0, 0.5), (120.0, 1.0))


def test_detection_latency_and_error_counts():
    case = make_case(n=4, num_agents=2, minutes=6, attack_start_min=1,
                     settle_min=None, live=LiveSpec(n_nodes=4))
    cut = {"kind": "police.cut", "t": 150.0, "observer": 0, "suspect": 3,
           "reason": "ddos"}
    result = case_result_from_swarm(
        case,
        swarm_result(case, [minute_rec(0, 1)], police_records=[cut],
                     agent_ids={2, 3}),
    )
    # Agent 3 cut at t=150 (90 s after the minute-1 attack start); agent 2
    # evaded for the full remaining run (censored at 300 s).
    assert result.caught_attackers == 1
    assert result.total_attackers == 2
    assert result.detection_latency_s == pytest.approx((90.0 + 300.0) / 2.0)
    assert result.false_positive == 1   # agent 2 never cut
    assert result.false_negative == 0   # no good peer cut


def test_no_defense_reports_zero_error_counts():
    case = make_case(n=4, num_agents=2, defense="none", minutes=6,
                     attack_start_min=1, settle_min=None, live=LiveSpec(n_nodes=4))
    result = case_result_from_swarm(
        case, swarm_result(case, [minute_rec(0, 1)], agent_ids={2, 3})
    )
    assert result.false_negative == 0
    assert result.false_positive == 0
    assert result.caught_attackers == 0
