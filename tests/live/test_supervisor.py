"""Supervisor babysitting contract: crash detection and guaranteed reap.

These tests spawn real node subprocesses, so they are the slowest in
the live suite -- swarms are kept tiny and minutes short.
"""

import os
import signal
import time

import pytest

from repro.errors import ConfigError
from repro.live.supervisor import Supervisor, SwarmConfig, run_swarm
from repro.obs.manifest import verify_manifest


def tiny_config(**overrides):
    base = dict(
        n_nodes=4,
        minutes=2,
        seed=5,
        minute_s=0.4,
        queries_per_minute=6.0,
        spawn_stagger_s=0.0,
        drain_timeout_s=8.0,
    )
    base.update(overrides)
    return SwarmConfig(**base)


def assert_all_reaped(supervisor):
    for node_id, proc in supervisor.processes.items():
        assert proc.poll() is not None, f"node {node_id} leaked (pid {proc.pid})"


def test_config_validation():
    with pytest.raises(ConfigError):
        SwarmConfig(n_nodes=1, minutes=2)
    with pytest.raises(ConfigError):
        SwarmConfig(n_nodes=4, minutes=0)
    with pytest.raises(ConfigError):
        SwarmConfig(n_nodes=4, minutes=2, num_agents=4)
    with pytest.raises(ConfigError):
        SwarmConfig(n_nodes=4, minutes=2, defense="firewall")


def test_clean_run_drains_every_node(tmp_path):
    supervisor = Supervisor(tiny_config(), tmp_path)
    result = supervisor.run()
    assert_all_reaped(supervisor)
    assert result.crashed == []
    assert result.clean_exits == 4
    minutes = {r["minute"] for r in result.minute_records}
    assert {1, 2} <= minutes
    nodes_seen = {r["node"] for r in result.minute_records}
    assert nodes_seen == {0, 1, 2, 3}


def test_killed_node_is_detected_and_swarm_drains(tmp_path):
    """SIGKILL one node mid-run: the swarm must still drain cleanly."""
    supervisor = Supervisor(tiny_config(minutes=3), tmp_path)
    victim = 2
    try:
        supervisor.start()
        deadline = time.time() + 30.0
        while not supervisor.start_file.exists() and time.time() < deadline:
            time.sleep(0.02)
        assert supervisor.start_file.exists(), "start barrier never resolved"
        time.sleep(0.3)  # let the scenario get going
        os.kill(supervisor.processes[victim].pid, signal.SIGKILL)
        supervisor.wait()
    finally:
        supervisor.shutdown()
    result = supervisor.collect()
    assert_all_reaped(supervisor)
    assert victim in result.crashed
    # The other three nodes survived the neighbor death and drained.
    assert result.clean_exits == 3
    finals = {
        r["node"] for r in result.minute_records if r["minute"] >= 3
    }
    assert victim not in finals


def test_keyboard_interrupt_still_reaps(tmp_path):
    """A KeyboardInterrupt in the watch loop must not orphan children."""
    supervisor = Supervisor(tiny_config(), tmp_path)

    def interrupted_wait(poll_s=0.1):
        raise KeyboardInterrupt

    supervisor.wait = interrupted_wait
    with pytest.raises(KeyboardInterrupt):
        supervisor.run()
    assert supervisor.processes, "swarm never started"
    assert_all_reaped(supervisor)


def test_double_start_rejected(tmp_path):
    supervisor = Supervisor(tiny_config(), tmp_path)
    try:
        supervisor.start()
        with pytest.raises(ConfigError):
            supervisor.start()
    finally:
        supervisor.shutdown()
    assert_all_reaped(supervisor)


def test_reused_out_dir_does_not_merge_stale_records(tmp_path):
    """JSONL sinks append, so a second swarm in the same directory must
    scrub the first swarm's per-node stats instead of merging them."""
    first = Supervisor(tiny_config(), tmp_path).run()
    assert first.clean_exits == 4
    second = Supervisor(tiny_config(), tmp_path).run()
    assert second.clean_exits == 4
    per_node_minutes = {}
    for rec in second.minute_records:
        per_node_minutes.setdefault(rec["node"], []).append(rec["minute"])
    for node, minutes in per_node_minutes.items():
        assert len(minutes) == len(set(minutes)), (
            f"node {node} reported duplicate minutes: stale records leaked"
        )


def test_run_swarm_writes_table_and_verified_manifest(tmp_path):
    result = run_swarm(tiny_config(), tmp_path)
    assert result.clean_exits == 4
    artifact = tmp_path / "swarm_minutes.txt"
    assert artifact.exists()
    assert "live swarm" in artifact.read_text()
    sidecar = artifact.with_suffix(".manifest.json")
    assert sidecar.exists()
    verify_manifest(sidecar)
    assert (tmp_path / "node-0000.jsonl").exists()
