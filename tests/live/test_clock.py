"""Unit tests for the wall-clock scheduler facade (LiveClock)."""

import asyncio

import pytest

from repro.live.clock import LiveClock, LiveTimer
from repro.simkit.timers import PeriodicTask, Timeout


def run(coro):
    return asyncio.run(coro)


def make_clock(loop, minute_s=0.05):
    return LiveClock(loop, minute_s=minute_s, origin=loop.time())


def test_time_scale():
    async def main():
        loop = asyncio.get_running_loop()
        clock = make_clock(loop, minute_s=0.5)
        assert clock.time_scale == 120.0
        assert clock.wall_delay(60.0) == pytest.approx(0.5)
        assert clock.wall_delay(-5.0) == 0.0

    run(main())


def test_rejects_bad_minute():
    async def main():
        loop = asyncio.get_running_loop()
        with pytest.raises(ValueError):
            LiveClock(loop, minute_s=0.0, origin=loop.time())

    run(main())


def test_now_advances_in_protocol_seconds():
    async def main():
        loop = asyncio.get_running_loop()
        clock = make_clock(loop, minute_s=0.1)  # 600x compression
        t0 = clock.now
        await asyncio.sleep(0.05)
        elapsed = clock.now - t0
        # 0.05 wall seconds is 30 protocol seconds; allow loop jitter.
        assert 20.0 <= elapsed <= 120.0

    run(main())


def test_schedule_in_fires_with_args():
    async def main():
        loop = asyncio.get_running_loop()
        clock = make_clock(loop)
        fired = []
        timer = clock.schedule_in(6.0, fired.append, "x", priority=3)
        assert isinstance(timer, LiveTimer)
        assert timer.pending
        await asyncio.sleep(0.05)
        assert fired == ["x"]
        assert not timer.pending

    run(main())


def test_cancel_prevents_firing():
    async def main():
        loop = asyncio.get_running_loop()
        clock = make_clock(loop)
        fired = []
        timer = clock.schedule_in(6.0, fired.append, "x")
        timer.cancel()
        assert not timer.pending
        await asyncio.sleep(0.05)
        assert fired == []

    run(main())


def test_negative_delay_clamps_to_now():
    async def main():
        loop = asyncio.get_running_loop()
        clock = make_clock(loop)
        fired = []
        clock.schedule_in(-100.0, fired.append, 1)
        await asyncio.sleep(0.02)
        assert fired == [1]

    run(main())


def test_periodic_task_runs_on_live_clock():
    """The DES PeriodicTask drives unmodified off a LiveClock.

    This is the load-bearing compatibility contract: the DD-POLICE
    engine schedules its exchange and liveness rounds through
    PeriodicTask, which only ever sees ``sim.schedule_in``.
    """

    async def main():
        loop = asyncio.get_running_loop()
        clock = make_clock(loop, minute_s=0.02)  # 1 protocol min = 20 ms
        ticks = []
        task = PeriodicTask(clock, 30.0, lambda: ticks.append(clock.now))
        await asyncio.sleep(0.12)  # ~6 protocol minutes
        task.stop()
        count = len(ticks)
        await asyncio.sleep(0.05)
        assert len(ticks) == count  # stop() really cancels
        assert count >= 3
        assert task.fire_count == count

    run(main())


def test_timeout_runs_on_live_clock():
    async def main():
        loop = asyncio.get_running_loop()
        clock = make_clock(loop, minute_s=0.02)
        fired = []
        Timeout(clock, 5.0, lambda: fired.append(True))
        cancelled = Timeout(clock, 5.0, lambda: fired.append(False))
        cancelled.cancel()
        await asyncio.sleep(0.05)
        assert fired == [True]

    run(main())
