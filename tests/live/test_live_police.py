"""Wall-clock DD-POLICE drive: a flooder is warned, convicted, and cut.

Runs real :class:`repro.live.node.LiveNode` instances -- the unmodified
:class:`repro.core.police.DDPoliceEngine` on top of the LiveClock
adapter -- inside one asyncio loop over real loopback UDP sockets, with
heavily compressed minutes (0.5 s). One leaf of a BA tree floods its
neighborhood; the evidence arc must appear in the traces: a
``police.suspect`` warning, a ``police.decision``, and a ``police.cut``
of the flooder.

All nodes share one protocol t=0 (via :meth:`LiveNode.rebase`, exactly
like the supervised startup barrier): DD-POLICE evidence compares
*same-minute* counters across peers, so skewed minute windows would let
a member testify with stale pre-attack numbers.
"""

import asyncio
import random
import time

from repro.live.node import LiveNode, NodeConfig
from repro.live.ports import bind_udp_socket
from repro.obs.trace import JsonlSink, Tracer, iter_records, validate_record
from repro.overlay.topology import TopologyConfig, generate_topology
from repro.simkit.rng import derive_seed

N = 10
SEED = 7
MINUTE_S = 0.5
MINUTES = 8
ATTACK_START_MIN = 1


def flooder_id():
    return random.Random(derive_seed(SEED, "agents")).sample(range(N), 1)[0]


async def run_swarm_in_process(tmp_path, *, defense):
    topology = generate_topology(TopologyConfig(n=N, model="ba", ba_m=1, seed=SEED))
    agent = flooder_id()
    socks = [bind_udp_socket("127.0.0.1", 0) for _ in range(N)]
    for sock in socks:
        sock.setblocking(False)
    addresses = {i: ("127.0.0.1", socks[i].getsockname()[1]) for i in range(N)}

    loop = asyncio.get_running_loop()
    nodes = []
    for i in range(N):
        config = NodeConfig(
            node_id=i,
            host="127.0.0.1",
            port=addresses[i][1],
            addresses=addresses,
            neighbors=tuple(sorted(topology.neighbors(i))),
            n_peers=N,
            minutes=MINUTES,
            minute_s=MINUTE_S,
            seed=SEED,
            queries_per_minute=6.0,
            capacity_qpm=400.0,
            agent=(i == agent),
            attack_start_min=ATTACK_START_MIN,
            attack_rate_qpm=2000.0 if i == agent else 0.0,
            defense=defense,
            police={"exchange_period_s": 30.0, "q_threshold_qpm": 10.0},
            stats_path=str(tmp_path / f"node-{i}.jsonl"),
        )
        tracer = Tracer(sinks=[JsonlSink(config.stats_path)], run="police-live")
        node = LiveNode(config, loop, tracer=tracer)
        await loop.create_datagram_endpoint(lambda n=node: n, sock=socks[i])
        nodes.append(node)
    start_at = time.time() + 0.1
    for node in nodes:
        node.rebase(start_at)
    for node in nodes:
        node.start()
    await asyncio.wait_for(
        asyncio.gather(*(n.done.wait() for n in nodes)),
        timeout=60.0,
    )
    return agent


def collect_events(tmp_path, n=N):
    events = []
    for i in range(n):
        for record in iter_records(tmp_path / f"node-{i}.jsonl"):
            validate_record(record)
            events.append(record)
    return events


def test_flooder_is_warned_convicted_and_cut(tmp_path):
    flooder = asyncio.run(run_swarm_in_process(tmp_path, defense="ddpolice"))
    events = collect_events(tmp_path)
    kinds = {e["kind"] for e in events}

    suspects = [e for e in events if e["kind"] == "police.suspect"]
    assert suspects, f"no warning was ever raised (kinds seen: {sorted(kinds)})"
    assert any(e["suspect"] == flooder for e in suspects)

    assert any(e["kind"] == "police.decision" for e in events), (
        "the flooder was suspected but never judged"
    )

    cuts = [e for e in events if e["kind"] == "police.cut"]
    assert any(e["suspect"] == flooder for e in cuts), (
        f"the flooder ({flooder}) was never cut; cuts: "
        f"{[(e['observer'], e['suspect']) for e in cuts]}"
    )

    first_cut = min(e["t"] for e in cuts if e["suspect"] == flooder)
    assert first_cut >= ATTACK_START_MIN * 60.0, "cut before the attack started"
    assert first_cut < MINUTES * 60.0

    # Every node drained cleanly at the end of the scenario.
    finals = [e for e in events if e["kind"] == "live.final"]
    assert len(finals) == N
    assert all(e["clean"] == 1 for e in finals)


def test_no_defense_means_no_police_events(tmp_path):
    asyncio.run(run_swarm_in_process(tmp_path, defense="none"))
    events = collect_events(tmp_path)
    assert events
    assert not any(e["kind"].startswith("police.") for e in events)
    finals = [e for e in events if e["kind"] == "live.final"]
    assert len(finals) == N
    assert all(e["clean"] == 1 for e in finals)
