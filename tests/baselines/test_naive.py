"""Unit tests for the naive rate-cutoff baseline."""

import pytest

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.baselines.naive import NaiveCutoffConfig, NaiveCutoffDefense, deploy_naive
from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from tests.conftest import make_network

TREE = {0: {1, 2, 3}, 1: {4, 5}, 2: {6, 7}, 3: {8, 9}}


def test_attacker_cut_by_rate_alone():
    sim, net = make_network(TREE, seed=1)
    defenses = deploy_naive(net)
    agent = DDoSAgent(sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=3000.0))
    agent.start()
    sim.run(until=130.0)
    log = defenses[PeerId(1)].judgments
    assert PeerId(0) in log.disconnected_suspects()


def test_good_forwarders_also_cut():
    """The Section 2.1 danger: forwarding peers look like attackers."""
    sim, net = make_network(TREE, seed=2)
    defenses = deploy_naive(net)
    agent = DDoSAgent(sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=6000.0))
    agent.start()
    sim.run(until=130.0)
    cut = defenses[PeerId(1)].judgments.disconnected_suspects()
    good_cut = cut - {PeerId(0)}
    assert good_cut, "naive defense should wrongly cut forwarding peers"


def test_quiet_network_untouched():
    sim, net = make_network(TREE, seed=3)
    defenses = deploy_naive(net)
    from repro.workload.generator import QueryWorkload, WorkloadConfig

    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=2.0, seed=3))
    wl.start()
    sim.run(until=240.0)
    assert defenses[PeerId(0)].judgments.disconnected_suspects() == set()


def test_threshold_boundary_strict():
    sim, net = make_network({0: {1}}, seed=4)
    defense = NaiveCutoffDefense(net, net.peers[PeerId(1)], NaiveCutoffConfig(cutoff_qpm=10.0))
    for i in range(10):  # exactly 10, not above
        net.peers[PeerId(0)].issue_query(("nosuch", f"id90{i}"))
    sim.run(until=65.0)
    assert defense.disconnects_issued == 0


def test_config_validation():
    with pytest.raises(ConfigError):
        NaiveCutoffConfig(cutoff_qpm=0)
