"""Unit tests for the probabilistic packet-marking traceback baseline."""

import random

import pytest

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.baselines.traceback import (
    TracebackConfig,
    TracebackDefense,
    deploy_traceback,
)
from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from repro.overlay.message import Bye
from tests.conftest import make_network

TREE = {0: {1, 2, 3}, 1: {4, 5}, 2: {6, 7}, 3: {8, 9}}


def test_config_validation():
    with pytest.raises(ConfigError):
        TracebackConfig(mark_prob=0.0)
    with pytest.raises(ConfigError):
        TracebackConfig(mark_prob=1.1)
    with pytest.raises(ConfigError):
        TracebackConfig(marks_to_identify=0)
    with pytest.raises(ConfigError):
        TracebackConfig(window_minutes=0)


def test_flooding_edge_identified():
    sim, net = make_network(TREE, seed=1)
    defenses = deploy_traceback(net, rng=random.Random(1))
    agent = DDoSAgent(sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=3000.0))
    agent.start()
    sim.run(until=180.0)
    log = defenses[PeerId(1)].judgments  # shared log
    assert PeerId(0) in log.disconnected_suspects()
    judged = [j for j in log.judgments if j.suspect == PeerId(0)]
    assert all(j.reason == "traceback" for j in judged)


def test_forwarder_blindness():
    # PPM's defining weakness at the overlay layer: marks name the
    # upstream edge, not the originator, so peers forwarding the flood
    # get convicted alongside the attacker.
    sim, net = make_network(TREE, seed=2)
    defenses = deploy_traceback(net, rng=random.Random(2))
    agent = DDoSAgent(sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=6000.0))
    agent.start()
    sim.run(until=180.0)
    cut = defenses[PeerId(0)].judgments.disconnected_suspects()
    assert cut - {PeerId(0)}, "forwarders should be indistinguishable"


def test_quiet_network_untouched():
    from repro.workload.generator import QueryWorkload, WorkloadConfig

    sim, net = make_network(TREE, seed=3)
    defenses = deploy_traceback(net, rng=random.Random(3))
    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=2.0, seed=3))
    wl.start()
    sim.run(until=300.0)
    assert defenses[PeerId(0)].judgments.disconnected_suspects() == set()


def test_marks_are_sampled_not_counted():
    # mark_prob=1 turns the Binomial into the raw count: the threshold
    # then behaves exactly like a rate cutoff over the window.
    sim, net = make_network({0: {1}}, seed=4)
    defense = TracebackDefense(
        net, net.peers[PeerId(1)],
        TracebackConfig(mark_prob=1.0, marks_to_identify=10, window_minutes=1),
        rng=random.Random(4),
    )
    for i in range(9):  # under the threshold
        net.peers[PeerId(0)].issue_query(("nosuch", f"id9{i}"))
    sim.run(until=65.0)
    assert defense.disconnects_issued == 0


def test_cut_uses_traceback_bye_reason():
    sim, net = make_network({0: {1}}, seed=5)
    defense = TracebackDefense(
        net, net.peers[PeerId(1)],
        TracebackConfig(mark_prob=1.0, marks_to_identify=5, window_minutes=1),
        rng=random.Random(5),
    )
    for i in range(20):
        net.peers[PeerId(0)].issue_query(("nosuch", f"idx{i}"))
    sim.run(until=65.0)
    assert defense.disconnects_issued == 1
    assert PeerId(0) not in net.peers[PeerId(1)].neighbors
    assert Bye.REASON_TRACEBACK == 4


def test_deterministic_under_seed():
    def run(seed):
        sim, net = make_network(TREE, seed=6)
        defenses = deploy_traceback(net, rng=random.Random(seed))
        agent = DDoSAgent(
            sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=3000.0)
        )
        agent.start()
        sim.run(until=180.0)
        log = defenses[PeerId(0)].judgments
        return sorted(
            (j.time, j.observer.value, j.suspect.value) for j in log.judgments
        )

    assert run(9) == run(9)
    assert run(9) != run(10)
