"""Unit tests for the Daswani-Garcia-Molina load-balancing baseline."""

import pytest

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.baselines.load_balance import (
    LoadBalancingConfig,
    LoadBalancingDefense,
    deploy_load_balancing,
)
from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from tests.conftest import make_network

TREE = {0: {1, 2, 3}, 1: {4, 5}, 2: {6, 7}, 3: {8, 9}}


def test_fair_share_caps_attack_amplification():
    sim1, net1 = make_network(TREE, seed=1)
    agent1 = DDoSAgent(sim1, net1, PeerId(0), AgentConfig(nominal_rate_qpm=6000.0))
    agent1.start()
    sim1.run(until=120.0)
    undefended = net1.stats.query_messages

    sim2, net2 = make_network(TREE, seed=1)
    deploy_load_balancing(net2, LoadBalancingConfig(capacity_qpm=600.0))
    agent2 = DDoSAgent(sim2, net2, PeerId(0), AgentConfig(nominal_rate_qpm=6000.0))
    agent2.start()
    sim2.run(until=120.0)
    assert net2.stats.query_messages < undefended * 0.6


def test_no_peer_disconnected():
    """Survival approach: nobody is cut, traffic is shed."""
    sim, net = make_network(TREE, seed=2)
    defenses = deploy_load_balancing(net, LoadBalancingConfig(capacity_qpm=600.0))
    agent = DDoSAgent(sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=6000.0))
    agent.start()
    sim.run(until=120.0)
    assert net.neighbors_of(PeerId(0))  # attacker still connected
    assert any(d.queries_shed > 0 for d in defenses.values())


def test_light_traffic_unaffected():
    sim, net = make_network(TREE, seed=3)
    defenses = deploy_load_balancing(net, LoadBalancingConfig(capacity_qpm=10_000.0))
    from repro.workload.generator import QueryWorkload, WorkloadConfig

    wl = QueryWorkload(sim, net, WorkloadConfig(queries_per_minute=2.0, seed=3))
    wl.start()
    sim.run(until=180.0)
    assert all(d.queries_shed == 0 for d in defenses.values())


def test_share_resets_each_minute():
    sim, net = make_network({0: {1}, 1: {2}}, seed=4)
    defense = LoadBalancingDefense(
        net, net.peers[PeerId(1)], LoadBalancingConfig(capacity_qpm=120.0)
    )
    agent = DDoSAgent(sim, net, PeerId(0), AgentConfig(nominal_rate_qpm=600.0))
    agent.start()
    sim.run(until=180.0)
    # sheds every minute but peer 2 keeps receiving the fair share
    assert defense.queries_shed > 0
    received = net.peers[PeerId(2)].counters.queries_received
    assert received > 100  # ~57/min fair share x 3 minutes


def test_config_validation():
    with pytest.raises(ConfigError):
        LoadBalancingConfig(capacity_qpm=0)
    with pytest.raises(ConfigError):
        LoadBalancingConfig(utilization_target=1.5)
