"""Unit tests for the struct-of-arrays primitives behind the batched engine."""

import random

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.overlay.capacity import TokenBucket
from repro.simkit.soa import (
    GrowArray,
    Int64Map,
    TokenBucketArray,
    dedup_first_occurrence,
)


# ----------------------------------------------------------------------
# Int64Map vs dict oracle
# ----------------------------------------------------------------------
def test_int64map_matches_dict_oracle_under_random_batches():
    rng = random.Random(42)
    table = Int64Map(initial_log2_cap=4, epoch_s=1e9)  # never rotates
    oracle = {}
    for _ in range(50):
        batch = rng.sample(range(10_000), rng.randint(1, 200))
        keys = np.unique(np.array(batch, dtype=np.int64))
        vals = np.arange(len(keys), dtype=np.int64)
        fresh = table.insert_new(keys, vals)
        for k, v, f in zip(keys.tolist(), vals.tolist(), fresh.tolist()):
            assert f == (k not in oracle)
            oracle.setdefault(k, v)
        probe = np.array(
            rng.sample(range(12_000), 300), dtype=np.int64
        )
        got = table.lookup(probe, missing=-3)
        want = [oracle.get(k, -3) for k in probe.tolist()]
        assert got.tolist() == want
    assert table.size == len(oracle)


def test_int64map_first_writer_wins_on_reinsert():
    table = Int64Map(initial_log2_cap=4, epoch_s=1e9)
    keys = np.array([7, 8, 9], dtype=np.int64)
    assert table.insert_new(keys, np.array([1, 2, 3])).all()
    fresh = table.insert_new(keys, np.array([10, 20, 30]))
    assert not fresh.any()
    assert table.lookup(keys).tolist() == [1, 2, 3]


def test_int64map_rotation_retires_only_stale_generations():
    table = Int64Map(initial_log2_cap=4, epoch_s=1.0)
    a = np.array([1, 2], dtype=np.int64)
    b = np.array([3, 4], dtype=np.int64)
    table.insert_new(a, a)
    table.maybe_rotate(1.0)  # a -> previous generation
    table.insert_new(b, b)
    # both generations visible: a is a duplicate, values still found
    assert not table.insert_new(a, a * 10).any()
    assert table.lookup(np.array([1, 3])).tolist() == [1, 3]
    table.maybe_rotate(2.0)  # a dropped, b -> previous
    assert table.lookup(np.array([1, 3]), missing=-3).tolist() == [-3, 3]
    # a re-inserts as fresh after falling off both generations
    assert table.insert_new(a, a * 10).all()
    assert table.rotations == 2


def test_int64map_handles_slot_collisions_in_one_batch():
    # With a 16-slot initial table and >16 keys, several keys of one
    # batch must contend for slots; growth keeps load factor <= 0.5.
    table = Int64Map(initial_log2_cap=4, epoch_s=1e9)
    keys = np.arange(0, 4096, 7, dtype=np.int64)
    fresh = table.insert_new(keys, keys * 2)
    assert fresh.all()
    assert table.lookup(keys).tolist() == (keys * 2).tolist()


def test_int64map_rejects_bad_config():
    with pytest.raises(ConfigError):
        Int64Map(epoch_s=0.0)
    with pytest.raises(ConfigError):
        Int64Map(initial_log2_cap=2)


# ----------------------------------------------------------------------
# TokenBucketArray vs the sequential TokenBucket
# ----------------------------------------------------------------------
def test_token_bucket_array_matches_sequential_bucket_exactly():
    rng = random.Random(7)
    rate = 123.4
    n = 5
    seq = [TokenBucket(rate_per_min=rate) for _ in range(n)]
    arr = TokenBucketArray(n, rate)
    now = 0.0
    for _ in range(200):
        now += rng.random() * 0.3
        # counts >= 1: the engine only includes peers with at least one
        # fresh arrival, so both sides refill at identical time points
        # (the exactness contract; a zero-count refill would round the
        # capped-linear path differently in the last ulp).
        peers = sorted(rng.sample(range(n), rng.randint(1, n)))
        counts = [rng.randint(1, 4) for _ in peers]
        granted = arr.grant(
            np.array(peers, dtype=np.int64),
            np.array(counts, dtype=np.int64),
            now,
        )
        for p, c, g in zip(peers, counts, granted.tolist()):
            want = sum(1 for _ in range(c) if seq[p].try_consume(now))
            assert g == want, (p, c, now)
    # internal float state must agree too, or later grants would drift
    for p in range(n):
        assert arr.tokens[p] == seq[p]._tokens


def test_token_bucket_array_rejects_nonpositive_rate():
    with pytest.raises(ConfigError):
        TokenBucketArray(3, 0.0)


# ----------------------------------------------------------------------
# GrowArray + dedup
# ----------------------------------------------------------------------
def test_grow_array_extends_across_reallocations():
    buf = GrowArray(np.int64, initial=4)
    chunks = [np.arange(k, dtype=np.int64) for k in (3, 5, 11, 2)]
    for c in chunks:
        buf.extend(c)
    assert len(buf) == 21
    assert buf.view().tolist() == np.concatenate(chunks).tolist()


def test_dedup_first_occurrence_keeps_first_arrival():
    keys = np.array([5, 3, 5, 9, 3, 5], dtype=np.int64)
    uniq, first = dedup_first_occurrence(keys)
    assert uniq.tolist() == [3, 5, 9]
    assert first.tolist() == [1, 0, 3]
