"""Unit tests for the DES engine."""

import pytest

from repro.simkit.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_negative_start_time_rejected():
    with pytest.raises(ValueError):
        Simulator(start_time=-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, fired.append, "b")
    sim.schedule_at(1.0, fired.append, "a")
    sim.schedule_at(9.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_ties_fire_fifo():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule_at(3.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_priority_orders_same_time_events():
    sim = Simulator()
    fired = []
    sim.schedule_at(1.0, fired.append, "late", priority=5)
    sim.schedule_at(1.0, fired.append, "early", priority=-5)
    sim.run()
    assert fired == ["early", "late"]


def test_schedule_in_is_relative():
    sim = Simulator()
    times = []
    sim.schedule_at(10.0, lambda: sim.schedule_in(5.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [15.0]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(7.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.5]
    assert sim.now == 7.5


def test_scheduling_into_past_rejected():
    sim = Simulator()
    sim.schedule_at(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule_in(-1.0, lambda: None)


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule_at(1.0, fired.append, 1)
    sim.schedule_at(50.0, fired.append, 50)
    sim.run(until=10.0)
    assert fired == [1]
    assert sim.now == 10.0
    # remaining event still fires on the next run
    sim.run()
    assert fired == [1, 50]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule_at(1.0, fired.append, "x")
    assert ev.cancel()
    sim.run()
    assert fired == []
    assert sim.events_fired == 0


def test_cancel_is_idempotent_and_reports_state():
    sim = Simulator()
    ev = sim.schedule_at(1.0, lambda: None)
    assert ev.cancel() is True
    assert ev.cancel() is False


def test_stop_exits_loop():
    sim = Simulator()
    fired = []

    def stopper():
        fired.append("stop")
        sim.stop()

    sim.schedule_at(1.0, stopper)
    sim.schedule_at(2.0, fired.append, "after")
    sim.run()
    assert fired == ["stop"]


def test_max_events_limits_run():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule_at(float(i), fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule_at(1.0, fired.append, 1)
    sim.schedule_at(2.0, fired.append, 2)
    ev = sim.step()
    assert fired == [1]
    assert ev is not None and ev.time == 1.0
    assert sim.step() is not None
    assert sim.step() is None


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule_in(1.0, chain, n + 1)

    sim.schedule_at(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_peek_time_skips_cancelled():
    sim = Simulator()
    ev = sim.schedule_at(1.0, lambda: None)
    sim.schedule_at(2.0, lambda: None)
    ev.cancel()
    assert sim.peek_time() == 2.0


def test_drain_reports_pending_and_cancelled():
    sim = Simulator()
    sim.schedule_at(1.0, lambda: None)
    ev = sim.schedule_at(2.0, lambda: None)
    ev.cancel()
    pending, cancelled = sim.drain()
    assert (pending, cancelled) == (1, 1)
    assert sim.peek_time() is None


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    sim.schedule_at(1.0, lambda: None)
    sim.schedule_at(2.0, lambda: None).cancel()
    assert sim.pending_count == 1


def test_reentrant_run_rejected():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule_at(1.0, reenter)
    sim.run()


def test_events_fired_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule_at(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 5


def test_pending_count_is_exact_under_heavy_cancellation():
    sim = Simulator()
    events = [sim.schedule_at(float(i), lambda: None) for i in range(1000)]
    assert sim.pending_count == 1000
    for ev in events[::2]:
        ev.cancel()
    assert sim.pending_count == 500
    sim.run()
    assert sim.events_fired == 500
    assert sim.pending_count == 0


def test_heap_compacts_when_cancelled_entries_dominate():
    from repro.simkit.engine import COMPACTION_MIN_CANCELLED

    sim = Simulator()
    n = 2 * COMPACTION_MIN_CANCELLED
    events = [sim.schedule_at(float(i), lambda: None) for i in range(n)]
    for ev in events:
        ev.cancel()
    # every entry was cancelled; compaction must have emptied the heap
    # without waiting for the run loop to pop the garbage
    assert sim.pending_count == 0
    assert len(sim._heap) < COMPACTION_MIN_CANCELLED
    sim.run()
    assert sim.events_fired == 0


def test_cancel_after_drain_does_not_corrupt_counter():
    sim = Simulator()
    keep = sim.schedule_at(1.0, lambda: None)
    sim.drain()
    # the drained event is already CANCELLED; a late cancel() is a no-op
    assert keep.cancel() is False
    fresh = [sim.schedule_at(float(i), lambda: None) for i in range(4)]
    assert sim.pending_count == 4
    fresh[0].cancel()
    assert sim.pending_count == 3
    sim.run()
    assert sim.events_fired == 3


def test_schedule_bulk_matches_sequential_pop_order():
    mixed = [(5.0, "a"), (1.0, "b"), (5.0, "c"), (3.0, "d"), (1.0, "e")]
    seq_sim, bulk_sim = Simulator(), Simulator()
    seq_fired, bulk_fired = [], []
    for t, label in mixed:
        seq_sim.schedule_at(t, seq_fired.append, label)
    bulk_sim.schedule_bulk((t, bulk_fired.append, label) for t, label in mixed)
    seq_sim.run()
    bulk_sim.run()
    # ties broken by sequence number = iteration order, same as one
    # schedule_at call per item
    assert bulk_fired == seq_fired == ["b", "e", "d", "a", "c"]


def test_schedule_bulk_interleaves_with_preexisting_events():
    sim = Simulator()
    fired = []
    sim.schedule_at(2.0, fired.append, "old")
    sim.schedule_bulk([(1.0, fired.append, "new1"), (2.0, fired.append, "new2")])
    sim.run()
    # the pre-existing event at t=2.0 has the smaller seq, so it wins its tie
    assert fired == ["new1", "old", "new2"]


def test_schedule_bulk_rejects_past_times():
    import pytest

    from repro.simkit.engine import SimulationError

    sim = Simulator()
    sim.schedule_at(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0
    with pytest.raises(SimulationError):
        sim.schedule_bulk([(6.0, lambda: None), (4.0, lambda: None)])


def test_schedule_bulk_events_are_cancellable():
    sim = Simulator()
    fired = []
    events = sim.schedule_bulk((float(i), fired.append, i) for i in range(10))
    for ev in events[::2]:
        assert ev.cancel() is True
    assert sim.pending_count == 5
    sim.run()
    assert fired == [1, 3, 5, 7, 9]
