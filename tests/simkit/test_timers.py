"""Unit tests for periodic tasks and timeouts."""

import random

import pytest

from repro.simkit.engine import Simulator
from repro.simkit.timers import PeriodicTask, Timeout


def test_periodic_fires_every_period():
    sim = Simulator()
    times = []
    PeriodicTask(sim, 2.0, lambda: times.append(sim.now))
    sim.run(until=7.0)
    assert times == [2.0, 4.0, 6.0]


def test_periodic_start_delay():
    sim = Simulator()
    times = []
    PeriodicTask(sim, 5.0, lambda: times.append(sim.now), start_delay=1.0)
    sim.run(until=12.0)
    assert times == [1.0, 6.0, 11.0]


def test_periodic_stop_cancels_future_firings():
    sim = Simulator()
    count = []
    task = PeriodicTask(sim, 1.0, lambda: count.append(1))
    sim.schedule_at(3.5, task.stop)
    sim.run(until=10.0)
    assert len(count) == 3
    assert not task.active


def test_stop_from_within_callback():
    sim = Simulator()
    task_holder = {}

    def cb():
        task_holder["task"].stop()

    task_holder["task"] = PeriodicTask(sim, 1.0, cb)
    sim.run(until=10.0)
    assert task_holder["task"].fire_count == 1


def test_periodic_jitter_bounds():
    sim = Simulator()
    times = []
    PeriodicTask(
        sim, 10.0, lambda: times.append(sim.now), jitter=2.0, rng=random.Random(1)
    )
    sim.run(until=100.0)
    assert len(times) >= 7
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(10.0 <= g <= 12.0 + 1e-9 for g in gaps)


def test_invalid_period_rejected():
    with pytest.raises(ValueError):
        PeriodicTask(Simulator(), 0.0, lambda: None)


def test_negative_jitter_rejected():
    with pytest.raises(ValueError):
        PeriodicTask(Simulator(), 1.0, lambda: None, jitter=-1.0)


def test_fire_count_tracks():
    sim = Simulator()
    task = PeriodicTask(sim, 1.0, lambda: None)
    sim.run(until=5.5)
    assert task.fire_count == 5


def test_timeout_fires_once():
    sim = Simulator()
    fired = []
    t = Timeout(sim, 3.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [3.0]
    assert t.expired


def test_timeout_cancel():
    sim = Simulator()
    fired = []
    t = Timeout(sim, 3.0, lambda: fired.append(1))
    assert t.cancel()
    sim.run()
    assert fired == []
    assert not t.expired


def test_timeout_cancel_after_fire_fails():
    sim = Simulator()
    t = Timeout(sim, 1.0, lambda: None)
    sim.run()
    assert t.cancel() is False


def test_timeout_negative_delay_rejected():
    with pytest.raises(ValueError):
        Timeout(Simulator(), -0.1, lambda: None)


def test_timeout_pending_state():
    sim = Simulator()
    t = Timeout(sim, 5.0, lambda: None)
    assert t.pending
    sim.run()
    assert not t.pending


def test_jitter_without_rng_rejected():
    sim = Simulator()
    with pytest.raises(ValueError, match="requires an explicit rng"):
        PeriodicTask(sim, 10.0, lambda: None, jitter=1.0)


def test_jittered_tasks_with_distinct_rngs_desynchronize():
    sim = Simulator()
    times = {"a": [], "b": []}
    PeriodicTask(
        sim, 10.0, lambda: times["a"].append(sim.now),
        jitter=5.0, rng=random.Random(1),
    )
    PeriodicTask(
        sim, 10.0, lambda: times["b"].append(sim.now),
        jitter=5.0, rng=random.Random(2),
    )
    sim.run(until=100.0)
    # independent rngs: the two schedules must not be in lockstep
    assert times["a"] != times["b"]


def test_priority_orders_same_time_periodic_tasks():
    sim = Simulator()
    order = []
    PeriodicTask(sim, 10.0, lambda: order.append("roll"), priority=-1)
    PeriodicTask(sim, 10.0, lambda: order.append("app"))
    sim.run(until=10.0)
    assert order == ["roll", "app"]
