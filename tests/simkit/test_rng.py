"""Unit tests for seeded stream registry."""

from repro.simkit.rng import RngRegistry, derive_seed


def test_same_name_returns_same_stream():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_distinct_names_get_distinct_sequences():
    reg = RngRegistry(1)
    a = [reg.stream("a").random() for _ in range(5)]
    b = [reg.stream("b").random() for _ in range(5)]
    assert a != b


def test_reproducible_across_registries():
    a = RngRegistry(42).stream("churn").random()
    b = RngRegistry(42).stream("churn").random()
    assert a == b


def test_master_seed_changes_streams():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_derive_seed_stable_and_bounded():
    s = derive_seed(123, "component")
    assert s == derive_seed(123, "component")
    assert 0 <= s < 2**63


def test_derive_seed_sensitive_to_both_inputs():
    assert derive_seed(1, "a") != derive_seed(2, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")


def test_numpy_stream_memoized_and_reproducible():
    reg = RngRegistry(7)
    g1 = reg.numpy_stream("flows")
    assert g1 is reg.numpy_stream("flows")
    x = RngRegistry(7).numpy_stream("flows").random()
    y = RngRegistry(7).numpy_stream("flows").random()
    assert x == y


def test_numpy_and_stdlib_streams_independent():
    reg = RngRegistry(7)
    _ = reg.stream("flows").random()
    # consuming the stdlib stream must not perturb the numpy one
    x = reg.numpy_stream("flows").random()
    reg2 = RngRegistry(7)
    assert x == reg2.numpy_stream("flows").random()


def test_fork_derives_child_registry():
    parent = RngRegistry(5)
    c1 = parent.fork("trial-1")
    c2 = parent.fork("trial-2")
    assert c1.master_seed != c2.master_seed
    assert c1.master_seed == RngRegistry(5).fork("trial-1").master_seed
