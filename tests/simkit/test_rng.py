"""Unit tests for seeded stream registry."""

from repro.simkit.rng import RngRegistry, derive_seed


def test_same_name_returns_same_stream():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_distinct_names_get_distinct_sequences():
    reg = RngRegistry(1)
    a = [reg.stream("a").random() for _ in range(5)]
    b = [reg.stream("b").random() for _ in range(5)]
    assert a != b


def test_reproducible_across_registries():
    a = RngRegistry(42).stream("churn").random()
    b = RngRegistry(42).stream("churn").random()
    assert a == b


def test_master_seed_changes_streams():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_derive_seed_stable_and_bounded():
    s = derive_seed(123, "component")
    assert s == derive_seed(123, "component")
    assert 0 <= s < 2**63


def test_derive_seed_sensitive_to_both_inputs():
    assert derive_seed(1, "a") != derive_seed(2, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")


def test_numpy_stream_memoized_and_reproducible():
    reg = RngRegistry(7)
    g1 = reg.numpy_stream("flows")
    assert g1 is reg.numpy_stream("flows")
    x = RngRegistry(7).numpy_stream("flows").random()
    y = RngRegistry(7).numpy_stream("flows").random()
    assert x == y


def test_numpy_and_stdlib_streams_independent():
    reg = RngRegistry(7)
    _ = reg.stream("flows").random()
    # consuming the stdlib stream must not perturb the numpy one
    x = reg.numpy_stream("flows").random()
    reg2 = RngRegistry(7)
    assert x == reg2.numpy_stream("flows").random()


def test_fork_derives_child_registry():
    parent = RngRegistry(5)
    c1 = parent.fork("trial-1")
    c2 = parent.fork("trial-2")
    assert c1.master_seed != c2.master_seed
    assert c1.master_seed == RngRegistry(5).fork("trial-1").master_seed


def test_derive_seed_varargs_labels():
    # multi-label derivation is stable and label-order-sensitive
    assert derive_seed(9, "trial", 3) == derive_seed(9, "trial", 3)
    assert derive_seed(9, "trial", 3) != derive_seed(9, 3, "trial")
    # int labels behave as their string form (documented aliasing)
    assert derive_seed(9, "trial", 3) == derive_seed(9, "trial", "3")


def test_derive_seed_requires_a_label():
    import pytest

    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        derive_seed(9)


def test_trial_seed_scheme_has_no_cross_seed0_collisions():
    """Regression for the retired ``seed0 + 1000 * trial`` trial seeds.

    That arithmetic scheme aliases trials across base seeds differing by
    a multiple of 1000 -- e.g. (seed0=0, trial=1) and (seed0=1000,
    trial=0) ran the *same* simulation, so "independent" base seeds
    shared samples. The hash-derived scheme keeps every (seed0, trial)
    pair distinct.
    """
    from repro.experiments.sweeps import trial_seed

    # the old scheme's canonical collisions
    assert (0 + 1000 * 1) == (1000 + 1000 * 0)
    assert trial_seed(0, 1) != trial_seed(1000, 0)
    assert trial_seed(7, 2) != trial_seed(2007, 0)
    # and no collisions across a dense grid of (seed0, trial) pairs
    grid = {trial_seed(s, t) for s in range(0, 5000, 250) for t in range(50)}
    assert len(grid) == 20 * 50
