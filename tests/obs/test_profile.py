"""Profiler scopes: wall time always, cProfile extracts on request."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.profile import Profiler


def test_scope_records_wall_time_and_labels():
    prof = Profiler()
    with prof.scope("des.run", n=100, seed=7):
        pass
    (report,) = prof.reports
    assert report["scope"] == "des.run"
    assert report["wall_s"] >= 0.0
    assert report["n"] == 100 and report["seed"] == 7
    assert "profile_top" not in report


def test_scope_reports_even_when_block_raises():
    prof = Profiler()
    with pytest.raises(ValueError):
        with prof.scope("exec.chunk"):
            raise ValueError("boom")
    assert prof.reports[0]["scope"] == "exec.chunk"


def test_cprofile_top_rows():
    prof = Profiler(cprofile=True, top=5)

    def busy():
        return sum(range(1000))

    with prof.scope("fluid.run"):
        busy()
    report = prof.reports[0]
    assert "profile_top" in report
    assert "cumulative" in report["profile_top"]


def test_reports_are_jsonable():
    prof = Profiler(cprofile=True, top=3)
    with prof.scope("x", label="a"):
        pass
    json.dumps(prof.dump())  # must not raise


def test_validation():
    with pytest.raises(ConfigError):
        Profiler(top=0)
    prof = Profiler()
    with pytest.raises(ConfigError):
        with prof.scope(""):
            pass
