"""Manifests: canonical hashing, sidecars, verification, atomic writes."""

import json
import os
from dataclasses import dataclass

import pytest

from repro.errors import ConfigError
from repro.fluid.model import FluidConfig
from repro.obs.manifest import (
    atomic_write_text,
    build_manifest,
    config_sha256,
    jsonable_config,
    load_manifest,
    sidecar_path,
    verify_manifest,
    write_manifest,
)


@dataclass(frozen=True)
class _Cfg:
    n: int = 10
    tags: tuple = ("a", "b")


def test_atomic_write_text(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "hello")
    assert target.read_text(encoding="utf-8") == "hello"
    # overwrite leaves no temp litter
    atomic_write_text(target, "world")
    assert target.read_text(encoding="utf-8") == "world"
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_atomic_write_cleans_up_on_failure(tmp_path, monkeypatch):
    target = tmp_path / "out.txt"

    def boom(*a, **k):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError):
        atomic_write_text(target, "x")
    assert list(tmp_path.iterdir()) == []  # temp file removed


def test_jsonable_config_canonicalizes():
    out = jsonable_config({"s": {3, 1, 2}, "t": (1, 2), "cfg": _Cfg()})
    assert out == {"s": [1, 2, 3], "t": [1, 2], "cfg": {"n": 10, "tags": ["a", "b"]}}
    with pytest.raises(ConfigError):
        jsonable_config(object())


def test_config_sha256_stable_across_equal_configs():
    assert config_sha256(_Cfg()) == config_sha256(_Cfg())
    assert config_sha256(_Cfg()) != config_sha256(_Cfg(n=11))
    # a real simulator config hashes too (nested dataclasses, enums)
    assert len(config_sha256(FluidConfig(n=50))) == 64


def test_manifest_roundtrip(tmp_path):
    cfg = FluidConfig(n=50, seed=3)
    manifest = build_manifest(
        kind="test-run",
        config=cfg,
        seed=3,
        seed_derivation=["trial", "<t>"],
        workers=2,
        tasks=4,
        duration_s=1.5,
        counters={"events": 10},
        extra={"note": "hi"},
    )
    artifact = tmp_path / "table.txt"
    sidecar = write_manifest(artifact, manifest)
    assert sidecar == tmp_path / "table.manifest.json"
    loaded = load_manifest(sidecar)
    assert loaded["kind"] == "test-run"
    assert loaded["seed"] == 3
    assert loaded["workers"] == 2
    assert loaded["counters"] == {"events": 10}
    assert loaded["environment"]["python"]
    # verification: self-consistent AND describes this live config
    assert verify_manifest(loaded)
    assert verify_manifest(sidecar, config=cfg)


def test_verify_detects_tampered_config(tmp_path):
    manifest = build_manifest(kind="k", config=_Cfg())
    manifest["config"]["n"] = 999  # post-hoc edit
    with pytest.raises(ConfigError, match="hash mismatch"):
        verify_manifest(manifest)


def test_verify_detects_wrong_live_config():
    manifest = build_manifest(kind="k", config=_Cfg(n=10))
    with pytest.raises(ConfigError, match="does not describe"):
        verify_manifest(manifest, config=_Cfg(n=11))


def test_verify_requires_embedded_config():
    with pytest.raises(ConfigError, match="no embedded config"):
        verify_manifest(build_manifest(kind="k"))


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "m.manifest.json"
    path.write_text(json.dumps({"manifest_version": 99}), encoding="utf-8")
    with pytest.raises(ConfigError, match="version"):
        load_manifest(path)


def test_sidecar_path_forms():
    assert str(sidecar_path("results/scaling.txt")).endswith(
        "results/scaling.manifest.json"
    )
    assert str(sidecar_path("trace")).endswith("trace.manifest.json")


def test_build_manifest_requires_kind():
    with pytest.raises(ConfigError):
        build_manifest(kind="")
