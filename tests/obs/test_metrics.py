"""MetricsRegistry: instruments, snapshots, Prometheus export."""

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry, global_registry


def test_counter_memoized_and_monotone():
    reg = MetricsRegistry()
    reg.counter("net.messages.query").inc(3)
    reg.counter("net.messages.query").inc()
    assert reg.counter("net.messages.query").value == 4
    with pytest.raises(ConfigError):
        reg.counter("net.messages.query").inc(-1)


def test_gauge_keeps_last_value():
    reg = MetricsRegistry()
    g = reg.gauge("sim.queue_depth")
    g.set(10)
    g.set(7)
    assert g.value == 7.0


def test_timer_summary_statistics():
    reg = MetricsRegistry()
    t = reg.timer("sim.minute_wall_s")
    for s in (0.1, 0.3, 0.2):
        t.observe(s)
    assert t.count == 3
    assert t.total_s == pytest.approx(0.6)
    assert t.mean_s == pytest.approx(0.2)
    assert t.min_s == pytest.approx(0.1)
    assert t.max_s == pytest.approx(0.3)
    with pytest.raises(ConfigError):
        t.observe(-1.0)


def test_timer_time_context_manager():
    reg = MetricsRegistry()
    t = reg.timer("x")
    with t.time():
        pass
    assert t.count == 1
    assert t.max_s >= 0.0


def test_bad_names_rejected():
    reg = MetricsRegistry()
    for bad in ("", "1abc", "a b", "a-b"):
        with pytest.raises(ConfigError):
            reg.counter(bad)


def test_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.gauge("g").set(1.5)
    reg.timer("t").observe(0.5)
    snap = reg.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"] == {"g": 1.5}
    assert snap["timers"]["t"]["count"] == 1
    assert snap["timers"]["t"]["mean_s"] == pytest.approx(0.5)
    # empty timer reports min as None, not inf (JSON-safe)
    reg.timer("empty")
    assert reg.snapshot()["timers"]["empty"]["min_s"] is None


def test_reset_drops_instruments():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.reset()
    assert reg.snapshot() == {"counters": {}, "gauges": {}, "timers": {}}


def test_prometheus_export():
    reg = MetricsRegistry()
    reg.counter("net.messages.query").inc(5)
    reg.gauge("sim.queue_depth").set(3)
    reg.timer("sim.minute_wall_s").observe(0.25)
    text = reg.to_prometheus()
    assert "# TYPE repro_net_messages_query counter" in text
    assert "repro_net_messages_query 5" in text
    assert "repro_sim_queue_depth 3" in text
    assert "repro_sim_minute_wall_s_count 1" in text
    assert "repro_sim_minute_wall_s_sum 0.25" in text
    assert text.endswith("\n")
    assert MetricsRegistry().to_prometheus() == ""


def test_global_registry_is_singleton():
    assert global_registry() is global_registry()
