"""End-to-end wiring: the simulators actually emit through repro.obs."""

import pytest

from repro.errors import ConfigError
from repro.experiments.runner import DESConfig, run_des_experiment
from repro.fluid.model import FluidConfig, FluidSimulation
from repro.obs.config import Observability, ObsConfig
from repro.obs.trace import iter_records, validate_record


def test_default_obs_config_is_disabled():
    cfg = ObsConfig()
    assert not cfg.enabled
    assert Observability.from_config(cfg) is None
    assert Observability.from_config(None) is None


def test_obs_config_validation():
    with pytest.raises(ConfigError):
        ObsConfig(trace_path="/tmp/x.jsonl")  # trace_path without trace
    with pytest.raises(ConfigError):
        ObsConfig(profile_cprofile=True)  # cprofile without profile
    with pytest.raises(ConfigError):
        ObsConfig(trace_ring=0)


def test_des_run_emits_trace_and_metrics():
    cfg = DESConfig(
        n=12,
        duration_s=45.0,
        seed=1,
        num_agents=2,
        defense="ddpolice",
        obs=ObsConfig(trace=True, metrics=True, trace_ring=1_000_000),
    )
    run = run_des_experiment(cfg)
    assert run.obs is not None
    # ring is larger than the run, so per-kind counts are complete
    assert run.obs.tracer.emitted == len(run.obs.tracer.recent())
    kinds = run.obs.tracer.counts_by_kind()
    assert kinds.get("sim.dispatch", 0) > 0
    assert kinds.get("net.deliver", 0) > 0
    for rec in run.obs.tracer.recent()[:100]:
        validate_record(rec)
    snap = run.obs.counters_snapshot()
    assert sum(
        v for k, v in snap["counters"].items() if k.startswith("net.messages.")
    ) == kinds["net.deliver"]
    assert run.wall_s > 0.0


def test_des_profile_scope_reported():
    cfg = DESConfig(
        n=10, duration_s=30.0, seed=2, obs=ObsConfig(profile=True)
    )
    run = run_des_experiment(cfg)
    (report,) = run.obs.profiler.reports
    assert report["scope"] == "des.run"
    assert report["n"] == 10


def test_fluid_run_emits_minute_records(tmp_path):
    path = tmp_path / "fluid.jsonl"
    cfg = FluidConfig(
        n=60,
        seed=4,
        num_agents=2,
        obs=ObsConfig(trace=True, trace_path=str(path), metrics=True),
    )
    sim = FluidSimulation(cfg)
    sim.run(5)
    sim.close_obs()
    records = list(iter_records(path))
    assert [r["minute"] for r in records] == [1, 2, 3, 4, 5]
    for rec in records:
        validate_record(rec)
        assert rec["kind"] == "fluid.minute"
        assert rec["run"] == "fluid-seed4"
    snap = sim.obs.counters_snapshot()
    assert snap["counters"]["fluid.minutes"] == 5
    assert snap["timers"]["fluid.minute_wall_s"]["count"] == 5


def test_fluid_profile_scope(tmp_path):
    sim = FluidSimulation(
        FluidConfig(n=40, seed=4, obs=ObsConfig(profile=True))
    )
    sim.run(3)
    (report,) = sim.obs.profiler.reports
    assert report["scope"] == "fluid.run"
    assert report["minutes"] == 3
