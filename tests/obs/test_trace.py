"""Tracer, ring buffer, sinks, and the JSONL read-back path."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.trace import (
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    Tracer,
    iter_records,
    summarize_trace,
    validate_record,
)


def test_event_record_shape():
    tracer = Tracer(run="r1")
    rec = tracer.event("net.deliver", t=1.5, src=0, dst=3)
    assert rec == {
        "v": SCHEMA_VERSION,
        "seq": 0,
        "t": 1.5,
        "kind": "net.deliver",
        "run": "r1",
        "src": 0,
        "dst": 3,
    }
    validate_record(rec)


def test_sequence_numbers_are_monotone():
    tracer = Tracer()
    seqs = [tracer.event("a", t=0.0)["seq"] for _ in range(5)]
    assert seqs == [0, 1, 2, 3, 4]
    assert tracer.emitted == 5


def test_ring_buffer_bounds_memory():
    tracer = Tracer(ring_size=3)
    for i in range(10):
        tracer.event("sim.dispatch", t=float(i))
    recent = tracer.recent()
    assert len(recent) == 3
    assert [r["t"] for r in recent] == [7.0, 8.0, 9.0]
    assert tracer.emitted == 10  # ring truncation never loses the count


def test_ring_size_validated():
    with pytest.raises(ConfigError):
        Tracer(ring_size=0)


def test_span_emits_duration_on_exit():
    tracer = Tracer()
    with tracer.span("fluid.minute", t=60.0, minute=1) as rec:
        rec["online"] = 42
    (emitted,) = tracer.recent()
    assert emitted["dur_s"] >= 0.0
    assert emitted["online"] == 42
    validate_record(emitted)


def test_reserved_keys_rejected():
    tracer = Tracer()
    with pytest.raises(ConfigError, match="reserved"):
        tracer.event("a", t=0.0, seq=9)


def test_non_scalar_fields_rejected_by_validation():
    base = {"v": SCHEMA_VERSION, "seq": 0, "t": 0.0, "kind": "a"}
    with pytest.raises(ConfigError, match="scalar"):
        validate_record({**base, "payload": {"nested": 1}})
    with pytest.raises(ConfigError, match="flatten"):
        validate_record({**base, "items": [{"nested": 1}]})


def test_counts_by_kind():
    tracer = Tracer()
    for _ in range(3):
        tracer.event("x", t=0.0)
    tracer.event("y", t=0.0)
    assert tracer.counts_by_kind() == {"x": 3, "y": 1}


def test_memory_sink_receives_every_record():
    sink = MemorySink()
    tracer = Tracer(sinks=[sink])
    tracer.event("a", t=0.0)
    tracer.event("b", t=1.0)
    tracer.close()
    assert [r["kind"] for r in sink.records] == ["a", "b"]
    assert sink.closed


def test_jsonl_sink_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path)])
    tracer.event("net.deliver", t=2.0, src=1)
    tracer.event("net.drop.fault", t=3.0, src=1, dst=2)
    tracer.close()
    records = list(iter_records(path))
    assert [r["kind"] for r in records] == ["net.deliver", "net.drop.fault"]
    for rec in records:
        validate_record(rec)


def test_jsonl_sink_rotation(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path, max_bytes=200, backups=2)
    tracer = Tracer(sinks=[sink])
    for i in range(40):
        tracer.event("sim.dispatch", t=float(i))
    tracer.close()
    assert path.exists()
    assert path.stat().st_size <= 200
    backup1 = tmp_path / "trace.jsonl.1"
    backup2 = tmp_path / "trace.jsonl.2"
    assert backup1.exists() and backup2.exists()
    # no backup beyond the configured limit
    assert not (tmp_path / "trace.jsonl.3").exists()
    # every surviving file is valid JSONL
    for f in (path, backup1, backup2):
        for rec in iter_records(f):
            validate_record(rec)


def test_jsonl_sink_zero_backups_truncates(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path, max_bytes=150, backups=0)])
    for i in range(30):
        tracer.event("sim.dispatch", t=float(i))
    tracer.close()
    assert path.stat().st_size <= 150
    assert not (tmp_path / "trace.jsonl.1").exists()


def test_iter_records_skips_truncated_tail(tmp_path):
    path = tmp_path / "trace.jsonl"
    good = json.dumps({"v": 1, "seq": 0, "t": 0.0, "kind": "a"})
    path.write_text(good + "\n" + '{"v": 1, "seq": 1, "t"', encoding="utf-8")
    assert [r["seq"] for r in iter_records(path)] == [0]


def test_iter_records_rejects_mid_file_corruption(tmp_path):
    path = tmp_path / "trace.jsonl"
    good = json.dumps({"v": 1, "seq": 0, "t": 0.0, "kind": "a"})
    path.write_text("not json\n" + good + "\n", encoding="utf-8")
    with pytest.raises(ConfigError, match="malformed"):
        list(iter_records(path))


def test_summarize_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path)])
    tracer.event("x", t=5.0)
    tracer.event("x", t=15.0)
    tracer.event("y", t=10.0)
    tracer.close()
    summary = summarize_trace(path)
    assert summary == {
        "records": 3,
        "t_min": 5.0,
        "t_max": 15.0,
        "kinds": {"x": 2, "y": 1},
    }


def test_validate_record_rejects_bad_version_and_fields():
    with pytest.raises(ConfigError, match="schema version"):
        validate_record({"v": 99, "seq": 0, "t": 0.0, "kind": "a"})
    with pytest.raises(ConfigError, match="seq"):
        validate_record({"v": SCHEMA_VERSION, "seq": -1, "t": 0.0, "kind": "a"})
    with pytest.raises(ConfigError, match="kind"):
        validate_record({"v": SCHEMA_VERSION, "seq": 0, "t": 0.0, "kind": ""})
    with pytest.raises(ConfigError, match="dur_s"):
        validate_record(
            {"v": SCHEMA_VERSION, "seq": 0, "t": 0.0, "kind": "a", "dur_s": -1}
        )
