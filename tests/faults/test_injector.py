"""FaultInjector behaviour against small deterministic networks."""

import pytest

from repro.churn.process import ChurnConfig, ChurnProcess
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CrashRule,
    DelayRule,
    DuplicateRule,
    FailSlowRule,
    FaultPlan,
    FaultWindow,
    LossRule,
)
from repro.overlay.ids import PeerId
from repro.overlay.message import MessageKind, Ping, Pong
from tests.conftest import make_network


def attach(net, plan, **kwargs):
    injector = FaultInjector(plan, net.rngs)
    injector.attach(net, **kwargs)
    return injector


def ping(net):
    return Ping(guid=net.guid_factory.new(), ttl=1)


def pong(net, responder=0):
    return Pong(guid=net.guid_factory.new(), ttl=1, hops=0, responder=PeerId(responder))


# ---------------------------------------------------------------------------
# loss
# ---------------------------------------------------------------------------

def test_total_loss_drops_every_message():
    sim, net = make_network({0: {1}})
    injector = attach(net, FaultPlan.message_loss(1.0))
    for _ in range(10):
        net.transmit(PeerId(0), PeerId(1), ping(net))
    sim.run(until=5.0)
    assert net.stats.messages_delivered == 0
    assert net.stats.messages_dropped_fault == 10
    assert injector.stats.messages_dropped == 10
    assert injector.stats.dropped_by_kind == {"PING": 10}


def test_loss_respects_its_window():
    sim, net = make_network({0: {1}})
    plan = FaultPlan(
        loss=(LossRule(1.0, FaultWindow(10.0, 20.0), kinds=frozenset({MessageKind.PONG})),)
    )
    attach(net, plan)
    # Pongs so the receiver does not generate reply traffic.
    for t in (5.0, 15.0, 25.0):
        sim.schedule_at(t, net.transmit, PeerId(0), PeerId(1), pong(net))
    sim.run(until=30.0)
    assert net.stats.messages_delivered == 2  # only the t=15 send is lost
    assert net.stats.messages_dropped_fault == 1


def test_per_link_loss_leaves_other_links_alone():
    sim, net = make_network({0: {1, 2}})
    plan = FaultPlan(loss=(LossRule(1.0, links=frozenset({(0, 1)})),))
    attach(net, plan)
    net.transmit(PeerId(0), PeerId(1), pong(net))
    net.transmit(PeerId(0), PeerId(2), pong(net))
    sim.run(until=1.0)
    assert net.stats.messages_delivered == 1
    assert net.stats.messages_dropped_fault == 1


# ---------------------------------------------------------------------------
# duplication / delay
# ---------------------------------------------------------------------------

def test_duplicate_delivers_twice():
    sim, net = make_network({0: {1}})
    plan = FaultPlan(duplicate=(DuplicateRule(1.0, max_extra_delay_s=0.0),))
    injector = attach(net, plan)
    net.transmit(PeerId(0), PeerId(1), pong(net))
    sim.run(until=1.0)
    assert net.stats.messages_delivered == 2
    assert injector.stats.messages_duplicated == 1
    assert net.stats.messages_duplicated_fault == 1


def test_delay_inflates_one_hop_latency():
    sim, net = make_network({0: {1}})
    plan = FaultPlan(delay=(DelayRule(1.0, min_extra_s=5.0, max_extra_s=5.0),))
    injector = attach(net, plan)
    net.transmit(PeerId(0), PeerId(1), pong(net))
    sim.run(until=2.0)
    assert net.stats.messages_delivered == 0  # still in flight
    sim.run(until=6.0)
    assert net.stats.messages_delivered == 1
    assert injector.stats.messages_delayed == 1


def test_selective_delay_reorders_kinds():
    # A delayed Ping sent before an undelayed Pong arrives after it.
    sim, net = make_network({0: {1}})
    plan = FaultPlan(
        delay=(
            DelayRule(
                1.0, min_extra_s=5.0, max_extra_s=5.0, kinds=frozenset({MessageKind.PING})
            ),
        )
    )
    attach(net, plan)
    net.transmit(PeerId(0), PeerId(1), ping(net))
    net.transmit(PeerId(0), PeerId(1), pong(net))
    sim.run(until=1.0)
    # Only the Pong has landed; the earlier Ping is still in flight.
    assert net.stats.messages_delivered == 1
    assert net.stats.control_messages == 1
    sim.run(until=10.0)
    assert net.stats.messages_delivered >= 2


# ---------------------------------------------------------------------------
# fail-stop crashes
# ---------------------------------------------------------------------------

def test_explicit_crash_is_silent():
    sim, net = make_network({0: {1}, 1: {2}})
    plan = FaultPlan(crashes=(CrashRule(at_s=5.0, peers=(1,)),))
    injector = attach(net, plan)
    sim.run(until=10.0)
    assert not net.peers[PeerId(1)].online
    assert injector.crashed == {PeerId(1)}
    assert injector.stats.crashes == 1
    # No Bye, no disconnect notification: neighbors keep the stale entry.
    assert PeerId(1) in net.peers[PeerId(0)].neighbors
    assert PeerId(1) in net.peers[PeerId(2)].neighbors


def test_random_crashes_respect_protected_set():
    sim, net = make_network({0: {1, 2, 3, 4}})
    plan = FaultPlan(crashes=(CrashRule(at_s=1.0, count=4),))
    injector = attach(net, plan, protected=(PeerId(0),))
    sim.run(until=2.0)
    assert net.peers[PeerId(0)].online
    assert injector.crashed == {PeerId(i) for i in (1, 2, 3, 4)}


def test_crashed_peer_never_rejoins_under_churn():
    sim, net = make_network({0: {1}, 1: {2}})
    churn = ChurnProcess(sim, net, ChurnConfig(enabled=False))
    plan = FaultPlan(crashes=(CrashRule(at_s=5.0, peers=(1,)),))
    attach(net, plan, churn=churn)
    sim.run(until=6.0)
    assert PeerId(1) in churn.failed
    # Even an explicit join attempt cannot resurrect a fail-stopped peer.
    churn._join(PeerId(1))
    assert not net.peers[PeerId(1)].online


# ---------------------------------------------------------------------------
# fail-slow
# ---------------------------------------------------------------------------

def test_fail_slow_degrades_then_restores_capacity():
    sim, net = make_network({0: {1}})
    plan = FaultPlan(
        fail_slow=(FailSlowRule(factor=0.5, window=FaultWindow(5.0, 15.0), peers=(1,)),)
    )
    injector = attach(net, plan)
    original = net.peers[PeerId(1)].processing.rate_per_min
    sim.run(until=10.0)
    assert net.peers[PeerId(1)].processing.rate_per_min == original * 0.5
    assert injector.degraded_peers() == {PeerId(1)}
    assert injector.stats.fail_slow_applied == 1
    sim.run(until=20.0)
    assert net.peers[PeerId(1)].processing.rate_per_min == original
    assert injector.stats.fail_slow_restored == 1
    assert injector.degraded_peers() == set()


# ---------------------------------------------------------------------------
# wiring / determinism
# ---------------------------------------------------------------------------

def test_empty_plan_leaves_transmit_path_untouched():
    sim, net = make_network({0: {1}})
    injector = attach(net, FaultPlan())
    assert not injector.plan.enabled
    for _ in range(5):
        net.transmit(PeerId(0), PeerId(1), pong(net))
    sim.run(until=1.0)
    assert net.stats.messages_delivered == 5
    assert net.stats.messages_dropped_fault == 0
    assert injector.stats.messages_dropped == 0


def test_attach_twice_is_rejected():
    sim, net = make_network({0: {1}})
    injector = attach(net, FaultPlan.message_loss(0.5))
    with pytest.raises(ConfigError):
        injector.attach(net)


def _lossy_run(seed, with_delay=False):
    sim, net = make_network({0: {1, 2, 3, 4}}, seed=seed)
    loss = LossRule(0.5, kinds=frozenset({MessageKind.PING}))
    delay = (
        (DelayRule(1.0, min_extra_s=0.0, max_extra_s=3.0, kinds=frozenset({MessageKind.PONG})),)
        if with_delay
        else ()
    )
    injector = attach(net, FaultPlan(loss=(loss,), delay=delay))
    for i in range(60):
        net.transmit(PeerId(0), PeerId(1 + i % 4), ping(net))
    sim.run(until=30.0)
    return net, injector


def test_same_seed_same_faults():
    net_a, inj_a = _lossy_run(seed=7)
    net_b, inj_b = _lossy_run(seed=7)
    assert inj_a.stats.messages_dropped == inj_b.stats.messages_dropped
    assert inj_a.stats.dropped_by_kind == inj_b.stats.dropped_by_kind
    assert net_a.stats.messages_delivered == net_b.stats.messages_delivered
    assert 0 < inj_a.stats.messages_dropped < 60


def test_fault_streams_are_independent():
    # Adding a delay rule (its own rng stream) must not change which
    # messages the loss rule drops.
    _, inj_plain = _lossy_run(seed=7, with_delay=False)
    _, inj_delayed = _lossy_run(seed=7, with_delay=True)
    assert inj_plain.stats.messages_dropped == inj_delayed.stats.messages_dropped
    assert inj_plain.stats.dropped_by_kind == inj_delayed.stats.dropped_by_kind
    assert inj_delayed.stats.messages_delayed > 0
