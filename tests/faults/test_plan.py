"""Validation and matching semantics of the declarative fault plan."""

import math

import pytest

from repro.errors import ConfigError
from repro.faults.plan import (
    CONTROL_KINDS,
    CrashRule,
    DelayRule,
    DuplicateRule,
    FailSlowRule,
    FaultPlan,
    FaultWindow,
    LossRule,
)
from repro.overlay.message import MessageKind


# ---------------------------------------------------------------------------
# FaultWindow
# ---------------------------------------------------------------------------

def test_window_is_half_open():
    w = FaultWindow(10.0, 20.0)
    assert not w.active(9.999)
    assert w.active(10.0)
    assert w.active(19.999)
    assert not w.active(20.0)


def test_window_defaults_to_whole_run():
    w = FaultWindow()
    assert w.active(0.0)
    assert w.active(1e9)


def test_window_minutes_conversion():
    w = FaultWindow.minutes(2.0, 3.0)
    assert w.start_s == 120.0
    assert w.end_s == 180.0
    open_ended = FaultWindow.minutes(5.0)
    assert open_ended.start_s == 300.0
    assert math.isinf(open_ended.end_s)


@pytest.mark.parametrize("start,end", [(-1.0, 10.0), (10.0, 10.0), (10.0, 5.0)])
def test_window_rejects_bad_bounds(start, end):
    with pytest.raises(ConfigError):
        FaultWindow(start, end)


# ---------------------------------------------------------------------------
# rule validation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("p", [-0.1, 1.1])
def test_loss_rule_rejects_bad_probability(p):
    with pytest.raises(ConfigError):
        LossRule(probability=p)


def test_duplicate_rule_rejects_negative_extra_delay():
    with pytest.raises(ConfigError):
        DuplicateRule(probability=0.5, max_extra_delay_s=-1.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"probability": 0.5, "min_extra_s": -1.0},
        {"probability": 0.5, "min_extra_s": 2.0, "max_extra_s": 1.0},
        {"probability": 2.0},
    ],
)
def test_delay_rule_rejects_bad_params(kwargs):
    with pytest.raises(ConfigError):
        DelayRule(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"at_s": -1.0, "count": 1},
        {"at_s": 0.0, "count": -1},
        {"at_s": 0.0},  # neither count nor peers
    ],
)
def test_crash_rule_rejects_bad_params(kwargs):
    with pytest.raises(ConfigError):
        CrashRule(**kwargs)


@pytest.mark.parametrize("factor", [0.0, 1.0, -0.5, 2.0])
def test_fail_slow_rejects_factor_outside_open_interval(factor):
    with pytest.raises(ConfigError):
        FailSlowRule(factor=factor, peers=(1,))


def test_fail_slow_needs_victims():
    with pytest.raises(ConfigError):
        FailSlowRule(factor=0.5)


# ---------------------------------------------------------------------------
# rule matching
# ---------------------------------------------------------------------------

def test_loss_rule_scopes_by_window_kind_and_link():
    rule = LossRule(
        probability=1.0,
        window=FaultWindow(10.0, 20.0),
        kinds=frozenset({MessageKind.PING}),
        links=frozenset({(0, 1)}),
    )
    assert rule.matches(15.0, 0, 1, MessageKind.PING)
    assert not rule.matches(5.0, 0, 1, MessageKind.PING)  # outside window
    assert not rule.matches(15.0, 0, 1, MessageKind.QUERY)  # wrong kind
    assert not rule.matches(15.0, 1, 0, MessageKind.PING)  # wrong direction


def test_unscoped_loss_rule_matches_everything_in_window():
    rule = LossRule(probability=0.5)
    assert rule.matches(0.0, 3, 7, MessageKind.QUERY)
    assert rule.matches(1e6, 7, 3, MessageKind.NEIGHBOR_TRAFFIC)


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------

def test_empty_plan_is_disabled():
    assert not FaultPlan().enabled


def test_any_rule_enables_the_plan():
    assert FaultPlan(loss=(LossRule(0.1),)).enabled
    assert FaultPlan(crashes=(CrashRule(at_s=1.0, peers=(0,)),)).enabled


def test_control_loss_shorthand_targets_control_plane_only():
    plan = FaultPlan.control_loss(0.25, start_s=60.0)
    (rule,) = plan.loss
    assert rule.probability == 0.25
    assert rule.kinds == CONTROL_KINDS
    assert MessageKind.QUERY not in rule.kinds
    assert rule.window.start_s == 60.0


def test_message_loss_shorthand_is_unscoped():
    plan = FaultPlan.message_loss(0.1)
    (rule,) = plan.loss
    assert rule.kinds is None
    assert rule.links is None


def test_merged_unions_rule_lists():
    a = FaultPlan.control_loss(0.2)
    b = FaultPlan(crashes=(CrashRule(at_s=5.0, count=2),))
    merged = a.merged(b)
    assert len(merged.loss) == 1
    assert len(merged.crashes) == 1
    assert merged.enabled
