"""Shared fixtures for the test suite."""

from typing import Dict, List, Optional, Set

import pytest

from repro.overlay.content import ContentCatalog, ContentConfig
from repro.overlay.network import NetworkConfig, OverlayNetwork
from repro.overlay.topology import Topology
from repro.simkit.engine import Simulator


def make_topology(adjacency: Dict[int, Set[int]], n: Optional[int] = None) -> Topology:
    """Build a Topology from a (possibly partial) adjacency mapping."""
    nodes = set(adjacency)
    for vs in adjacency.values():
        nodes |= set(vs)
    size = n if n is not None else (max(nodes) + 1 if nodes else 0)
    adj: List[Set[int]] = [set() for _ in range(size)]
    for u, vs in adjacency.items():
        for v in vs:
            adj[u].add(v)
            adj[v].add(u)
    return Topology(n=size, adjacency=adj, kind="explicit")


def make_network(
    adjacency: Dict[int, Set[int]],
    *,
    n: Optional[int] = None,
    seed: int = 0,
    config: Optional[NetworkConfig] = None,
    num_objects: int = 20,
):
    """(Simulator, OverlayNetwork) over an explicit small topology.

    Latency jitter is disabled so message orderings are exactly
    predictable in unit tests.
    """
    sim = Simulator()
    topo = make_topology(adjacency, n=n)
    cfg = config or NetworkConfig(hop_latency_jitter_s=0.0, seed=seed)
    content = ContentCatalog(ContentConfig(num_objects=num_objects, seed=seed), topo.n)
    net = OverlayNetwork(sim, topo, config=cfg, content=content)
    return sim, net


@pytest.fixture
def line_network():
    """0 - 1 - 2 - 3 line topology."""
    return make_network({0: {1}, 1: {2}, 2: {3}})


@pytest.fixture
def star_network():
    """Star: center 0 with leaves 1..4."""
    return make_network({0: {1, 2, 3, 4}})
