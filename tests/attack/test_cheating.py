"""Unit tests for attacker reporting strategies (Section 3.4)."""

import pytest

from repro.attack.cheating import CheatStrategy, apply_cheat
from repro.errors import ConfigError


def test_honest_returns_truth():
    assert apply_cheat(CheatStrategy.HONEST, 5000, 100) == (5000, 100)


def test_inflate_raises_outgoing_only():
    out, inc = apply_cheat(CheatStrategy.INFLATE, 500, 100, inflate_factor=10.0)
    assert out == 5000
    assert inc == 100


def test_deflate_lowers_outgoing_only():
    """Section 3.4 case 2: 'peer j sent 5,000 queries to peer m in the
    past minute, but it reports ... only 100'."""
    out, inc = apply_cheat(CheatStrategy.DEFLATE, 5000, 100, deflate_factor=0.02)
    assert out == 100
    assert inc == 100


def test_silent_returns_none():
    assert apply_cheat(CheatStrategy.SILENT, 5000, 100) is None


def test_negative_counts_rejected():
    with pytest.raises(ConfigError):
        apply_cheat(CheatStrategy.HONEST, -1, 0)


def test_zero_counts_stable():
    for strategy in (CheatStrategy.HONEST, CheatStrategy.INFLATE, CheatStrategy.DEFLATE):
        assert apply_cheat(strategy, 0, 0) == (0, 0)


def test_collude_excuses_a_fellow_colluder():
    # "I sent j everything it emitted, it sent me nothing": fabricated
    # outgoing count, zeroed incoming, regardless of the true counts.
    out, inc = apply_cheat(
        CheatStrategy.COLLUDE, 0, 4000,
        suspect_is_colluder=True, collude_excuse_qpm=2000.0,
    )
    assert (out, inc) == (2000, 0)


def test_collude_reports_honestly_about_outsiders():
    # About non-colluders the reporter blends in -- it must not trip the
    # Section 3.4 inflate/deflate analysis on its own account.
    assert apply_cheat(
        CheatStrategy.COLLUDE, 120, 30,
        suspect_is_colluder=False, collude_excuse_qpm=2000.0,
    ) == (120, 30)


def test_collude_negative_excuse_rejected():
    with pytest.raises(ConfigError):
        apply_cheat(
            CheatStrategy.COLLUDE, 0, 0,
            suspect_is_colluder=True, collude_excuse_qpm=-1.0,
        )
