"""Unit tests for the DDoS agent."""

import pytest

from repro.attack.agent import AgentConfig, DDoSAgent
from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from tests.conftest import make_network

STAR = {0: {1, 2, 3, 4}}


def make_agent(rate=600.0, per_neighbor=True, link_cap=float("inf"), seed=1):
    sim, net = make_network(STAR, seed=seed)
    cfg = AgentConfig(
        nominal_rate_qpm=rate, per_neighbor=per_neighbor, link_capacity_qpm=link_cap
    )
    agent = DDoSAgent(sim, net, PeerId(0), cfg)
    return sim, net, agent


def test_rate_law_effective_rate():
    """Q_d = min(20,000, link capacity) -- Section 3.5."""
    assert AgentConfig(nominal_rate_qpm=20_000, link_capacity_qpm=3_000).effective_rate_qpm == 3_000
    assert AgentConfig(nominal_rate_qpm=20_000, link_capacity_qpm=90_000).effective_rate_qpm == 20_000


def test_agent_sends_at_configured_rate():
    sim, net, agent = make_agent(rate=600.0)
    agent.start()
    sim.run(until=60.0)
    assert agent.queries_sent == pytest.approx(600, abs=15)


def test_per_neighbor_mode_spreads_distinct_queries():
    sim, net, agent = make_agent(rate=240.0, per_neighbor=True)
    agent.start()
    sim.run(until=60.0)
    received = [net.peers[PeerId(i)].counters.queries_received for i in (1, 2, 3, 4)]
    assert all(r > 0 for r in received)
    # distinct queries: no duplicates dropped anywhere
    assert all(
        net.peers[PeerId(i)].counters.queries_dropped_duplicate == 0 for i in (1, 2, 3, 4)
    )
    assert sum(received) == pytest.approx(agent.queries_sent, abs=10)


def test_flood_mode_copies_to_all_neighbors():
    sim, net, agent = make_agent(rate=120.0, per_neighbor=False)
    agent.start()
    sim.run(until=60.0)
    # each issued query goes to all 4 neighbors
    total = sum(
        net.peers[PeerId(i)].counters.queries_received for i in (1, 2, 3, 4)
    )
    assert total == pytest.approx(4 * agent.queries_sent, rel=0.1)


def test_link_capacity_caps_rate():
    sim, net, agent = make_agent(rate=6000.0, link_cap=600.0)
    agent.start()
    sim.run(until=60.0)
    assert agent.queries_sent == pytest.approx(600, abs=15)


def test_stop_halts_attack():
    sim, net, agent = make_agent(rate=600.0)
    agent.start()
    sim.run(until=10.0)
    sent = agent.queries_sent
    agent.stop()
    sim.run(until=60.0)
    assert agent.queries_sent == sent


def test_offline_agent_idles_without_losing_schedule():
    sim, net, agent = make_agent(rate=600.0)
    net.peers[PeerId(0)].go_offline()
    agent.start()
    sim.run(until=30.0)
    assert agent.queries_sent == 0
    net.peers[PeerId(0)].go_online()
    for i in (1, 2, 3, 4):
        net.peers[PeerId(0)].add_neighbor(PeerId(i))
    sim.run(until=60.0)
    assert agent.queries_sent > 0


def test_fractional_rates_carry_over():
    sim, net, agent = make_agent(rate=30.0)  # 0.5 per batch second
    agent.start()
    sim.run(until=60.0)
    assert agent.queries_sent == pytest.approx(30, abs=3)


def test_trace_replay_attack(tmp_path):
    """Section 2.3 fidelity: the agent replays a captured query log."""
    from repro.workload.trace import QueryTraceReader, synthesize_trace

    path = synthesize_trace(tmp_path / "monitor.log", num_queries=20,
                            duration_s=60.0, seed=9)
    sim, net = make_network(STAR, seed=9)
    received = []
    for i in (1, 2, 3, 4):
        net.peers[PeerId(i)].query_taps.append(
            lambda src, q: received.append(q.search_string)
        )
    agent = DDoSAgent(
        sim, net, PeerId(0),
        AgentConfig(nominal_rate_qpm=300.0, per_neighbor=True),
        trace=QueryTraceReader(path),
    )
    agent.start()
    sim.run(until=30.0)
    assert agent.queries_sent > 20  # the 20-entry log was cycled
    trace_strings = {r.search_string for r in QueryTraceReader(path)}
    assert received
    assert set(received) <= trace_strings  # every query came from the log
    # distinct GUIDs: nothing was dedup-dropped despite repeated strings
    assert all(
        net.peers[PeerId(i)].counters.queries_dropped_duplicate == 0
        for i in (1, 2, 3, 4)
    )


def test_config_validation():
    with pytest.raises(ConfigError):
        AgentConfig(nominal_rate_qpm=0)
    with pytest.raises(ConfigError):
        AgentConfig(batch_interval_s=0)
    with pytest.raises(ConfigError):
        AgentConfig(link_capacity_qpm=0)
