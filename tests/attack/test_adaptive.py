"""Unit tests for the adaptive-adversary strategies."""

import pytest

from repro.attack.adaptive import (
    AdaptiveAgent,
    AdaptiveConfig,
    CollusionRing,
    pulse_is_on,
)
from repro.attack.agent import AgentConfig
from repro.attack.scenario import AttackScenario, ScenarioConfig
from repro.errors import ConfigError
from repro.experiments.runner import DESConfig, run_des_experiment
from repro.overlay.ids import PeerId
from tests.conftest import make_network


def ring(n):
    return {i: {(i + 1) % n} for i in range(n)}


# -- config validation -----------------------------------------------------

def test_unknown_strategy_rejected():
    with pytest.raises(ConfigError, match="unknown strategy"):
        AdaptiveConfig(strategy="stealth")


@pytest.mark.parametrize("kwargs", [
    {"throttle_margin": 0.0},
    {"throttle_margin": 1.5},
    {"warning_threshold_qpm": 0.0},
    {"pulse_period_s": 0.0},
    {"pulse_duty": 0.0},
    {"pulse_duty": 1.1},
    {"pulse_phase_s": -1.0},
    {"evade_on_s": 0.0},
    {"evade_off_s": -5.0},
    {"collude_excuse_qpm": -1.0},
])
def test_bad_knobs_rejected_at_construction(kwargs):
    with pytest.raises(ConfigError):
        AdaptiveConfig(**kwargs)


def test_collusion_ring_rejects_negative_excuse():
    with pytest.raises(ConfigError):
        CollusionRing(members=frozenset({PeerId(1)}), excuse_qpm=-1.0)


def test_scenario_k_greater_than_n_names_the_bound():
    sim, net = make_network(ring(5), seed=0)
    with pytest.raises(ConfigError, match="k must not exceed n"):
        AttackScenario(sim, net, ScenarioConfig(num_agents=6))


def test_churn_strategy_needs_a_churn_process():
    sim, net = make_network(ring(6), seed=0)
    with pytest.raises(ConfigError, match="ChurnProcess"):
        AdaptiveAgent(
            sim, net, PeerId(0),
            adaptive=AdaptiveConfig(strategy="churn"),
        )


# -- rate shaping ----------------------------------------------------------

def test_throttle_caps_at_margin_times_threshold_per_neighbor():
    sim, net = make_network(ring(6), seed=1)
    agent = AdaptiveAgent(
        sim, net, PeerId(0),
        AgentConfig(nominal_rate_qpm=20_000.0),
        AdaptiveConfig(
            strategy="throttle", throttle_margin=0.5,
            warning_threshold_qpm=100.0,
        ),
    )
    assert agent._batch_rate_qpm(4) == pytest.approx(0.5 * 100.0 * 4)
    # A cap above the nominal rate never binds.
    assert agent._batch_rate_qpm(10_000) == pytest.approx(20_000.0)


def test_pulse_phase_arithmetic():
    cfg = AdaptiveConfig(
        strategy="pulse", pulse_period_s=100.0, pulse_duty=0.3,
        pulse_phase_s=10.0,
    )
    assert pulse_is_on(10.0, cfg)
    assert pulse_is_on(39.9, cfg)
    assert not pulse_is_on(40.0, cfg)
    assert not pulse_is_on(109.9, cfg)
    assert pulse_is_on(110.0, cfg)  # next period's burst


def test_pulse_silences_the_off_phase():
    sim, net = make_network(ring(6), seed=2)
    agent = AdaptiveAgent(
        sim, net, PeerId(0),
        AgentConfig(nominal_rate_qpm=600.0),
        AdaptiveConfig(strategy="pulse", pulse_period_s=60.0, pulse_duty=0.5),
    )
    agent.start()
    sim.run(until=29.0)
    burst = agent.queries_sent
    assert burst > 0
    sim.run(until=59.0)
    assert agent.queries_sent == burst  # silent half: not one query
    sim.run(until=89.0)
    assert agent.queries_sent > burst  # next burst resumes


# -- static equivalence ----------------------------------------------------

def test_nonbinding_throttle_equals_static():
    # The adaptive machinery must be inert when its cap does not bind:
    # an AdaptiveAgent whose throttle ceiling exceeds the nominal rate
    # reproduces the static flooder's run exactly (same rng draws, same
    # carry arithmetic, same message stream).
    base = DESConfig(
        n=30, duration_s=240.0, seed=7, num_agents=2,
        attack_start_s=60.0, attack_rate_qpm=600.0, defense="ddpolice",
    )
    static = run_des_experiment(base)
    from dataclasses import replace

    throttled = run_des_experiment(replace(
        base,
        adaptive=AdaptiveConfig(
            strategy="throttle", warning_threshold_qpm=1e9
        ),
    ))
    assert static.bad_peers == throttled.bad_peers
    assert static.success_rate == throttled.success_rate
    assert static.total_messages == throttled.total_messages
    assert static.error_counts() == throttled.error_counts()


def test_static_path_builds_plain_agents():
    sim, net = make_network(ring(10), seed=3)
    scenario = AttackScenario(
        sim, net, ScenarioConfig(num_agents=2, seed=3),
        adaptive=AdaptiveConfig(),  # static
    )
    assert not any(isinstance(a, AdaptiveAgent) for a in scenario.agents.values())
    adaptive = AttackScenario(
        sim, net, ScenarioConfig(num_agents=2, seed=3),
        adaptive=AdaptiveConfig(strategy="pulse"),
    )
    assert all(isinstance(a, AdaptiveAgent) for a in adaptive.agents.values())


# -- attack-origin hygiene (stop / churn rejoin) ---------------------------

def test_stop_unregisters_attack_origin():
    sim, net = make_network(ring(8), seed=4)
    agent = AdaptiveAgent(
        sim, net, PeerId(3), AgentConfig(nominal_rate_qpm=600.0),
        AdaptiveConfig(strategy="throttle"),
    )
    agent.start()
    assert PeerId(3) in net.attack_origins
    agent.stop()
    assert PeerId(3) not in net.attack_origins
    agent.start()  # stop/start cycles re-register
    assert PeerId(3) in net.attack_origins


def test_churn_evasion_cycles_and_leaves_no_stale_origins():
    run = run_des_experiment(DESConfig(
        n=24, duration_s=300.0, seed=11, num_agents=2,
        attack_start_s=30.0, attack_rate_qpm=600.0,
        adaptive=AdaptiveConfig(
            strategy="churn", evade_on_s=40.0, evade_off_s=30.0
        ),
    ))
    agents = run.scenario.agents.values()
    assert sum(a.evasions for a in agents) > 0  # the flee cycle ran
    # Evading agents are pinned: the sampled churn cycle cannot
    # double-drive them (natural churn is disabled here anyway).
    assert run.bad_peers <= run.churn.pinned
    assert run.network.attack_origins == run.bad_peers
    for agent in agents:
        agent.stop()
    assert not run.network.attack_origins  # no stale registrations
