"""Unit tests for attack scenarios."""

import pytest

from repro.attack.scenario import AttackScenario, ScenarioConfig
from repro.errors import ConfigError
from repro.overlay.bandwidth import BandwidthModel
from repro.overlay.ids import PeerId
from tests.conftest import make_network


def ring(n):
    return {i: {(i + 1) % n} for i in range(n)}


def test_selects_k_random_peers():
    sim, net = make_network(ring(20), seed=1)
    scenario = AttackScenario(sim, net, ScenarioConfig(num_agents=5, seed=1))
    assert len(scenario.compromised) == 5
    assert scenario.compromised <= set(net.peers)


def test_selection_deterministic_by_seed():
    sim1, net1 = make_network(ring(20), seed=1)
    sim2, net2 = make_network(ring(20), seed=1)
    a = AttackScenario(sim1, net1, ScenarioConfig(num_agents=5, seed=9)).compromised
    b = AttackScenario(sim2, net2, ScenarioConfig(num_agents=5, seed=9)).compromised
    assert a == b


def test_launch_at_start_time():
    sim, net = make_network(ring(10), seed=2)
    scenario = AttackScenario(
        sim, net, ScenarioConfig(num_agents=2, start_time_s=30.0,
                                 nominal_rate_qpm=600.0, seed=2)
    )
    scenario.launch()
    sim.run(until=29.0)
    assert scenario.total_attack_queries() == 0
    sim.run(until=90.0)
    assert scenario.total_attack_queries() > 0


def test_bandwidth_caps_applied():
    sim, net = make_network(ring(10), seed=3)
    bw = BandwidthModel(seed=3)
    modem = next(c for c in bw.classes if c.name == "modem")
    classes = {i: modem for i in range(10)}
    scenario = AttackScenario(
        sim,
        net,
        ScenarioConfig(num_agents=3, seed=3),
        bandwidth_model=bw,
        bandwidth_classes=classes,
    )
    for agent in scenario.agents.values():
        assert agent.config.effective_rate_qpm == pytest.approx(bw.upstream_qpm(modem))


def test_stop_all():
    sim, net = make_network(ring(10), seed=4)
    scenario = AttackScenario(
        sim, net, ScenarioConfig(num_agents=2, nominal_rate_qpm=600.0, seed=4)
    )
    scenario.launch()
    sim.run(until=10.0)
    scenario.stop_all()
    count = scenario.total_attack_queries()
    sim.run(until=60.0)
    assert scenario.total_attack_queries() == count


def test_too_many_agents_rejected():
    sim, net = make_network(ring(5), seed=5)
    with pytest.raises(ConfigError):
        AttackScenario(sim, net, ScenarioConfig(num_agents=6))


def test_config_validation():
    with pytest.raises(ConfigError):
        ScenarioConfig(num_agents=-1)
    with pytest.raises(ConfigError):
        ScenarioConfig(start_time_s=-1)
    with pytest.raises(ConfigError):
        ScenarioConfig(nominal_rate_qpm=0)
