"""The A -> B -> C pipeline experiment (Figures 4-6).

Peer A replays a query trace at a configured rate; peer B looks up and
forwards; peer C only counts. ``run_rate_sweep`` reproduces the Figure 5
x-axis (A's send rate from 1,000/min up to the agent maximum of
~29,000/min) and reports both panels:

* Figure 5 -- queries processed (forwarded to C) per minute vs sent;
* Figure 6 -- drop rate at B vs query density.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigError
from repro.testbed.limewire import LimewirePeerModel
from repro.workload.trace import QueryTraceReader

#: Maximum rate the paper's agent prototype achieved reading its log.
AGENT_MAX_RATE_QPM = 29_000.0


@dataclass(frozen=True)
class PipelinePoint:
    """One measured point of the sweep."""

    sent_qpm: float
    processed_qpm: float
    dropped_qpm: float

    @property
    def drop_rate_pct(self) -> float:
        if self.sent_qpm <= 0:
            return 0.0
        return 100.0 * self.dropped_qpm / self.sent_qpm


class PipelineExperiment:
    """One configuration of the A->B->C testbed."""

    def __init__(
        self,
        peer_b: Optional[LimewirePeerModel] = None,
        *,
        agent_max_rate_qpm: float = AGENT_MAX_RATE_QPM,
    ) -> None:
        if agent_max_rate_qpm <= 0:
            raise ConfigError("agent_max_rate_qpm must be positive")
        self.peer_b = peer_b or LimewirePeerModel()
        self.agent_max_rate_qpm = agent_max_rate_qpm

    def measure(self, send_rate_qpm: float) -> PipelinePoint:
        """Run one steady-state measurement at A's configured rate.

        A's achievable rate is itself capped by the agent maximum (the
        log-replay bottleneck the paper reports).
        """
        if send_rate_qpm < 0:
            raise ConfigError("send_rate_qpm must be non-negative")
        sent = min(send_rate_qpm, self.agent_max_rate_qpm)
        processed = self.peer_b.processed_qpm(sent)
        return PipelinePoint(
            sent_qpm=sent,
            processed_qpm=processed,
            dropped_qpm=sent - processed,
        )

    def replay_trace(
        self, reader: QueryTraceReader, send_rate_qpm: float, duration_min: float
    ) -> PipelinePoint:
        """Replay a real trace file through the pipeline.

        Exercises the full Section 2.3 loop: the agent reads the log and
        issues at the target rate for ``duration_min`` minutes; queries
        are accounted exactly (not as rates), so partial-minute effects
        show up the way the physical experiment saw them.
        """
        if duration_min <= 0:
            raise ConfigError("duration_min must be positive")
        rate = min(send_rate_qpm, self.agent_max_rate_qpm)
        want = int(rate * duration_min)
        sent = 0
        for _rec in reader.replay_cyclic(want):
            sent += 1
        sent_qpm = sent / duration_min
        processed = self.peer_b.processed_qpm(sent_qpm)
        return PipelinePoint(
            sent_qpm=sent_qpm,
            processed_qpm=processed,
            dropped_qpm=sent_qpm - processed,
        )


def run_rate_sweep(
    rates_qpm: Optional[Sequence[float]] = None,
    *,
    experiment: Optional[PipelineExperiment] = None,
) -> List[PipelinePoint]:
    """Figure 5/6 sweep: default x-axis 1,000 .. 29,000 queries/min."""
    if rates_qpm is None:
        rates_qpm = [1000.0 * i for i in range(1, 30)]
    exp = experiment or PipelineExperiment()
    return [exp.measure(r) for r in rates_qpm]
