"""Model of the Section 2.3 physical testbed.

The paper measured a three-PC pipeline (Figures 4-6): peer A (a modified
LimeWire replaying a captured query log) floods peer B, which looks each
query up in its local index and forwards it to the observer peer C. The
published anchors: B starts discarding queries around 15,000/min incoming
and drops 47% when A sends at its maximum of ~29,000/min.

We reproduce the measurement with a calibrated queueing model of a
LimeWire servent (:mod:`~repro.testbed.limewire`) inside the same A->B->C
pipeline (:mod:`~repro.testbed.pipeline`).
"""

from repro.testbed.limewire import LimewirePeerModel, ServiceParameters
from repro.testbed.pipeline import PipelineExperiment, PipelinePoint, run_rate_sweep

__all__ = [
    "LimewirePeerModel",
    "ServiceParameters",
    "PipelineExperiment",
    "PipelinePoint",
    "run_rate_sweep",
]
