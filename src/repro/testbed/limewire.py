"""Queueing model of a LimeWire servent's query path.

Per received query, a servent (Gnutella 0.6) performs a local index
lookup and then forwards the query. On the testbed hardware (P3 733 MHz,
256 MB, 100 Mbit LAN) the paper observed a processing ceiling around
15,000 queries/minute with an almost-empty index, i.e. a mean service
time of ~4 ms/query dominated by protocol and I/O overhead.

The model is a finite-buffer deterministic-service queue (M/D/1/K at the
fluid limit): below the service ceiling everything is processed; above
it, the excess is dropped once the input buffer fills. The measured 47%
drop at 29,000/min pins the effective ceiling at 29,000 x 0.53 ~= 15,400
processed/min, the second calibration anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ServiceParameters:
    """Calibrated service model for one servent.

    ``lookup_cost_s`` scales with shared-library size: the paper notes
    "Normally a peer's local index includes many contents; while in our
    experiment the local index is almost empty, which reduces time for
    local look up" -- larger ``index_entries`` raises per-query cost and
    lowers the ceiling (used by the sensitivity bench).
    """

    base_service_s: float = 60.0 / 15_400.0  # protocol+forward cost/query
    lookup_cost_per_1k_entries_s: float = 2e-5
    index_entries: int = 0
    buffer_queries: int = 250  # input queue depth before drops

    def __post_init__(self) -> None:
        if self.base_service_s <= 0:
            raise ConfigError("base_service_s must be positive")
        if self.lookup_cost_per_1k_entries_s < 0:
            raise ConfigError("lookup cost must be non-negative")
        if self.index_entries < 0:
            raise ConfigError("index_entries must be non-negative")
        if self.buffer_queries < 1:
            raise ConfigError("buffer_queries must be >= 1")

    @property
    def service_time_s(self) -> float:
        """Per-query service time including the index lookup."""
        return (
            self.base_service_s
            + self.lookup_cost_per_1k_entries_s * (self.index_entries / 1000.0)
        )

    @property
    def capacity_qpm(self) -> float:
        """Processing ceiling in queries/minute."""
        return 60.0 / self.service_time_s


class LimewirePeerModel:
    """Steady-state throughput/drop behaviour of one servent.

    For a sustained offered load the finite buffer only shifts the drop
    onset by a negligible amount, so the steady-state law is::

        processed = min(offered, capacity)
        dropped   = offered - processed
    """

    def __init__(self, params: ServiceParameters = ServiceParameters()) -> None:
        self.params = params

    def processed_qpm(self, offered_qpm: float) -> float:
        """Queries/minute that survive processing and are forwarded."""
        if offered_qpm < 0:
            raise ConfigError("offered load must be non-negative")
        return min(offered_qpm, self.params.capacity_qpm)

    def dropped_qpm(self, offered_qpm: float) -> float:
        return max(0.0, offered_qpm - self.params.capacity_qpm)

    def drop_rate(self, offered_qpm: float) -> float:
        """Fraction of offered queries dropped, in [0, 1]."""
        if offered_qpm <= 0:
            return 0.0
        return self.dropped_qpm(offered_qpm) / offered_qpm

    def utilization(self, offered_qpm: float) -> float:
        if offered_qpm < 0:
            raise ConfigError("offered load must be non-negative")
        return min(1.0, offered_qpm / self.params.capacity_qpm)

    def queueing_delay_s(self, offered_qpm: float) -> float:
        """Mean time a processed query waits before forwarding.

        M/D/1 waiting time below saturation; at/over saturation the wait
        is the full buffer drain time (the peer is permanently backlogged).
        """
        rho = offered_qpm / self.params.capacity_qpm
        svc = self.params.service_time_s
        if rho >= 1.0:
            return self.params.buffer_queries * svc
        if rho <= 0.0:
            return 0.0
        wait = (rho * svc) / (2.0 * (1.0 - rho))  # M/D/1 Pollaczek-Khinchine
        return min(wait, self.params.buffer_queries * svc)
