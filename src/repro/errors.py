"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration value or inconsistent parameter combination."""


class ProtocolError(ReproError):
    """Violation of the overlay or DD-POLICE protocol state machine."""


class WireFormatError(ReproError, ValueError):
    """Malformed on-the-wire message bytes."""


class TopologyError(ReproError, ValueError):
    """Infeasible or inconsistent topology request."""
