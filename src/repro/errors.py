"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration value or inconsistent parameter combination."""


class ProtocolError(ReproError):
    """Violation of the overlay or DD-POLICE protocol state machine."""


class WireFormatError(ProtocolError, ValueError):
    """Malformed on-the-wire message bytes.

    Subclasses :class:`ProtocolError`: a corrupted frame is a protocol
    violation, and callers of the decoders are guaranteed to never see
    anything outside the ProtocolError hierarchy (no ``struct.error``,
    no bare ``ValueError``/``IndexError``).
    """


class TopologyError(ReproError, ValueError):
    """Infeasible or inconsistent topology request."""
