"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration value or inconsistent parameter combination."""


class ProtocolError(ReproError):
    """Violation of the overlay or DD-POLICE protocol state machine."""


class WireFormatError(ProtocolError, ValueError):
    """Malformed on-the-wire message bytes.

    Subclasses :class:`ProtocolError`: a corrupted frame is a protocol
    violation, and callers of the decoders are guaranteed to never see
    anything outside the ProtocolError hierarchy (no ``struct.error``,
    no bare ``ValueError``/``IndexError``).
    """


class TopologyError(ReproError, ValueError):
    """Infeasible or inconsistent topology request."""


class MetricsError(ReproError, ValueError):
    """A metrics query selected an empty or undefined sample.

    Raised instead of ``ZeroDivisionError``/silent ``nan`` when an
    aggregation window contains no rows (e.g. ``mean_over(first_minute)``
    with ``first_minute`` past the end of the run).
    """


class ExecError(ReproError, RuntimeError):
    """Failure inside the parallel experiment executor (:mod:`repro.exec`)."""


class WorkerCrashError(ExecError):
    """A worker process died without returning a result (segfault, OOM
    kill, interpreter abort). The pool is torn down and the error names
    the first task of the chunk that was lost."""


class TaskTimeoutError(ExecError):
    """A dispatched task chunk exceeded the executor's ``timeout_s``."""
