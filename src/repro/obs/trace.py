"""Structured tracing: typed records, bounded ring buffer, pluggable sinks.

A trace is a stream of flat, schema-versioned dicts. Every record carries

* ``v``    -- the schema version (:data:`SCHEMA_VERSION`),
* ``seq``  -- a per-tracer monotone sequence number,
* ``t``    -- the *simulated* time the record refers to (seconds),
* ``kind`` -- a dotted event name (``net.deliver``, ``police.cut``, ...),

plus arbitrary caller-supplied fields (JSON scalars or flat lists). Span
records additionally carry ``dur_s``, the wall-clock duration of the
spanned block. The flat shape keeps traces greppable and ``jq``-able.

The :class:`Tracer` keeps the most recent records in a bounded ring
buffer (post-run inspection without unbounded memory) and forwards every
record to its sinks. :class:`JsonlSink` appends one JSON object per line
with optional size-based rotation; :class:`MemorySink` collects records
in a list for tests.

Tracing records state -- it never draws randomness and never mutates the
simulation, so a traced run is bit-identical to an untraced one.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter as _Counter
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import ConfigError

#: Version stamped into every record; bump on incompatible field changes.
SCHEMA_VERSION = 1

#: Keys the tracer assigns itself; caller fields must not collide.
RESERVED_KEYS = frozenset({"v", "seq", "t", "kind", "dur_s"})

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_field_value(key: str, value: Any) -> None:
    if isinstance(value, _SCALAR_TYPES):
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            if not isinstance(item, _SCALAR_TYPES):
                raise ConfigError(
                    f"trace field {key!r} holds a non-scalar list item "
                    f"({type(item).__name__}); flatten it first"
                )
        return
    raise ConfigError(
        f"trace field {key!r} must be a JSON scalar or flat list, "
        f"got {type(value).__name__}"
    )


def validate_record(record: Dict[str, Any]) -> None:
    """Check one trace record against the schema; raises :class:`ConfigError`.

    Used by tests and the CI trace-smoke job to assert that emitted
    JSONL parses back into well-formed records.
    """
    if not isinstance(record, dict):
        raise ConfigError(f"trace record must be a dict, got {type(record).__name__}")
    if record.get("v") != SCHEMA_VERSION:
        raise ConfigError(f"unsupported trace schema version {record.get('v')!r}")
    seq = record.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        raise ConfigError(f"trace record seq must be a non-negative int, got {seq!r}")
    kind = record.get("kind")
    if not isinstance(kind, str) or not kind:
        raise ConfigError(f"trace record kind must be a non-empty string, got {kind!r}")
    t = record.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool):
        raise ConfigError(f"trace record t must be a number, got {t!r}")
    if "dur_s" in record:
        dur = record["dur_s"]
        if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
            raise ConfigError(f"trace record dur_s must be non-negative, got {dur!r}")
    for key, value in record.items():
        if not isinstance(key, str):
            raise ConfigError(f"trace record key {key!r} is not a string")
        if key in RESERVED_KEYS:
            continue
        _check_field_value(key, value)


class MemorySink:
    """Collects records in a plain list (for tests and in-run inspection)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []
        self.closed = False

    def write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        self.closed = True


class JsonlSink:
    """Appends one compact JSON object per line, with size-based rotation.

    With ``max_bytes > 0`` the sink rotates before a write would push the
    current file past the limit: existing backups shift
    ``path.1 -> path.2 -> ...`` (the oldest beyond ``backups`` is
    dropped), the live file becomes ``path.1``, and a fresh file is
    opened. ``backups=0`` with rotation truncates in place.

    Each record is flushed as it is written, so a crashed run leaves at
    worst one truncated final line (skipped by :func:`iter_records`).
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        max_bytes: int = 0,
        backups: int = 3,
    ) -> None:
        if max_bytes < 0:
            raise ConfigError(f"max_bytes must be non-negative, got {max_bytes}")
        if backups < 0:
            raise ConfigError(f"backups must be non-negative, got {backups}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.backups = backups
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        if (
            self.max_bytes
            and self._file.tell() > 0
            and self._file.tell() + len(line) > self.max_bytes
        ):
            self._rotate()
        self._file.write(line)
        self._file.flush()

    def _rotate(self) -> None:
        self._file.close()
        if self.backups > 0:
            for i in range(self.backups - 1, 0, -1):
                older = self.path.with_name(f"{self.path.name}.{i}")
                newer = self.path.with_name(f"{self.path.name}.{i + 1}")
                if older.exists():
                    os.replace(older, newer)
            os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        else:
            self.path.unlink()
        self._file = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class Tracer:
    """Emits trace records into a ring buffer and the attached sinks.

    >>> tracer = Tracer(ring_size=2)
    >>> _ = tracer.event("sim.dispatch", t=1.0, tag="roll")
    >>> with tracer.span("fluid.minute", t=60.0, minute=1):
    ...     pass
    >>> [r["kind"] for r in tracer.recent()]
    ['sim.dispatch', 'fluid.minute']
    """

    def __init__(
        self,
        *,
        ring_size: int = 4096,
        sinks: Sequence[Any] = (),
        run: Optional[str] = None,
    ) -> None:
        if ring_size < 1:
            raise ConfigError(f"ring_size must be >= 1, got {ring_size}")
        self._ring: deque = deque(maxlen=ring_size)
        self._sinks = list(sinks)
        self._run = run
        self._seq = 0
        self._closed = False

    # ------------------------------------------------------------------
    def _emit(self, record: Dict[str, Any]) -> Dict[str, Any]:
        self._ring.append(record)
        for sink in self._sinks:
            sink.write(record)
        return record

    def _build(self, kind: str, t: float, fields: Dict[str, Any]) -> Dict[str, Any]:
        if not kind:
            raise ConfigError("trace kind must be non-empty")
        clash = RESERVED_KEYS.intersection(fields)
        if clash:
            raise ConfigError(
                f"trace fields collide with reserved keys: {sorted(clash)}"
            )
        record: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "seq": self._seq,
            "t": float(t),
            "kind": kind,
        }
        if self._run is not None:
            record["run"] = self._run
        record.update(fields)
        self._seq += 1
        return record

    def event(self, kind: str, *, t: float = 0.0, **fields: Any) -> Dict[str, Any]:
        """Emit one point-in-time record."""
        return self._emit(self._build(kind, t, fields))

    @contextmanager
    def span(self, kind: str, *, t: float = 0.0, **fields: Any) -> Iterator[Dict[str, Any]]:
        """Wrap a block; the record (with wall ``dur_s``) is emitted on exit.

        The yielded dict may be extended with result fields from inside
        the block; they land in the emitted record.
        """
        record = self._build(kind, t, fields)
        started = time.perf_counter()
        try:
            yield record
        finally:
            record["dur_s"] = time.perf_counter() - started
            self._emit(record)

    # ------------------------------------------------------------------
    def recent(self) -> List[Dict[str, Any]]:
        """The ring buffer's contents, oldest first."""
        return list(self._ring)

    def counts_by_kind(self) -> Dict[str, int]:
        """Per-kind record counts over the ring buffer."""
        return dict(_Counter(r["kind"] for r in self._ring))

    @property
    def emitted(self) -> int:
        """Total records emitted (ring buffer may hold fewer)."""
        return self._seq

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sink in self._sinks:
            sink.close()


# ---------------------------------------------------------------------------
# reading traces back
# ---------------------------------------------------------------------------

def iter_records(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield records from a JSONL trace file, skipping a truncated tail.

    A mid-record truncation (crashed writer) only ever affects the final
    line; any malformed line *before* the last one is a real corruption
    and raises :class:`ConfigError`.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                return  # truncated final line from an interrupted run
            raise ConfigError(f"{path}: malformed trace record on line {i + 1}")


def summarize_trace(path: Union[str, Path]) -> Dict[str, Any]:
    """Per-kind counts and time range of a JSONL trace file.

    Returns ``{"records": N, "t_min": ..., "t_max": ..., "kinds":
    {kind: count}}``. Every record is schema-validated on the way
    through, so a passing summary doubles as a file-level validity check.
    """
    kinds: _Counter = _Counter()
    total = 0
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    for record in iter_records(path):
        validate_record(record)
        kinds[record["kind"]] += 1
        total += 1
        t = float(record["t"])
        t_min = t if t_min is None else min(t_min, t)
        t_max = t if t_max is None else max(t_max, t)
    return {
        "records": total,
        "t_min": t_min,
        "t_max": t_max,
        "kinds": dict(sorted(kinds.items())),
    }
