"""Process-local counters, gauges, and histogram timers.

A :class:`MetricsRegistry` memoizes instruments by dotted name
(``net.messages.query``, ``sim.minute_wall_s``) and exports the whole
set as a JSON-able snapshot or Prometheus-style text. Instruments are
deliberately simple (no labels, no time windows): the registry answers
"what did this run do", not "what is production doing right now".

A module-level registry (:func:`global_registry`) exists for
infrastructure that has no run-scoped registry in reach -- e.g. the
parallel executor counting swallowed progress-hook exceptions.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterator

from repro.errors import ConfigError

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ConfigError(
            f"bad metric name {name!r}: want dotted identifiers "
            "([A-Za-z_][A-Za-z0-9_.]*)"
        )
    return name


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ConfigError(f"counter {self.name} cannot decrease (inc({n}))")
        self.value += n


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Timer:
    """Streaming summary of observed durations (seconds)."""

    __slots__ = ("name", "count", "total_s", "min_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigError(f"timer {self.name} observed negative duration")
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    def time(self):
        """Context manager observing the wall time of the wrapped block."""
        import time as _time
        from contextlib import contextmanager

        @contextmanager
        def _scope() -> Iterator[None]:
            start = _time.perf_counter()
            try:
                yield
            finally:
                self.observe(_time.perf_counter() - start)

        return _scope()

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instrument factory with JSON and Prometheus export.

    >>> reg = MetricsRegistry()
    >>> reg.counter("net.messages.query").inc(3)
    >>> reg.counter("net.messages.query").value
    3
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[_check_name(name)] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[_check_name(name)] = Gauge(name)
        return inst

    def timer(self, name: str) -> Timer:
        inst = self._timers.get(name)
        if inst is None:
            inst = self._timers[_check_name(name)] = Timer(name)
        return inst

    def reset(self) -> None:
        """Drop every instrument (tests and between-run isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able dump of every instrument's current state."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "timers": {
                n: {
                    "count": t.count,
                    "total_s": t.total_s,
                    "mean_s": t.mean_s,
                    "min_s": (None if t.count == 0 else t.min_s),
                    "max_s": t.max_s,
                }
                for n, t in sorted(self._timers.items())
            },
        }

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text-exposition rendering of the registry.

        Dots in metric names become underscores; timers expose
        ``_count`` / ``_sum`` pairs plus min/max gauges.
        """

        def flat(name: str) -> str:
            return f"{prefix}_{name.replace('.', '_')}"

        lines = []
        for name, c in sorted(self._counters.items()):
            lines.append(f"# TYPE {flat(name)} counter")
            lines.append(f"{flat(name)} {c.value}")
        for name, g in sorted(self._gauges.items()):
            lines.append(f"# TYPE {flat(name)} gauge")
            lines.append(f"{flat(name)} {g.value:g}")
        for name, t in sorted(self._timers.items()):
            base = flat(name)
            lines.append(f"# TYPE {base} summary")
            lines.append(f"{base}_count {t.count}")
            lines.append(f"{base}_sum {t.total_s:g}")
            lines.append(f"{base}_min {0.0 if t.count == 0 else t.min_s:g}")
            lines.append(f"{base}_max {t.max_s:g}")
        return "\n".join(lines) + ("\n" if lines else "")


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (executor internals, ad-hoc counters)."""
    return _GLOBAL
