"""Opt-in profiling scopes around the hot loops.

A :class:`Profiler` hands out named ``scope()`` context managers that
always record wall time (``time.perf_counter``) and, when built with
``cprofile=True``, additionally run :mod:`cProfile` over the block and
keep the top-N rows (by cumulative time) as text. Reports accumulate on
the profiler and are JSON-able, so worker processes can ship them back
to the parent through ``exec.pmap``'s :class:`~repro.exec.ExecStats`.

Profiling is strictly opt-in: nothing in this module runs unless a
config asked for it, and the simulators guard every scope behind a
single ``is not None`` branch.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List

from repro.errors import ConfigError


class Profiler:
    """Accumulates per-scope wall times and optional cProfile extracts.

    >>> prof = Profiler()
    >>> with prof.scope("des.run"):
    ...     pass
    >>> prof.reports[0]["scope"]
    'des.run'
    """

    def __init__(self, *, cprofile: bool = False, top: int = 20) -> None:
        if top < 1:
            raise ConfigError(f"top must be >= 1, got {top}")
        self.cprofile = cprofile
        self.top = top
        self.reports: List[Dict[str, Any]] = []

    @contextmanager
    def scope(self, name: str, **labels: Any) -> Iterator[None]:
        """Profile one block; appends a report dict on exit.

        The report carries ``scope``, ``wall_s``, any ``labels``, and --
        under ``cprofile=True`` -- ``profile_top``: the formatted top-N
        cumulative-time rows.
        """
        if not name:
            raise ConfigError("profile scope name must be non-empty")
        prof = None
        if self.cprofile:
            prof = cProfile.Profile()
            prof.enable()
        started = time.perf_counter()
        try:
            yield
        finally:
            wall_s = time.perf_counter() - started
            report: Dict[str, Any] = {"scope": name, "wall_s": wall_s}
            report.update(labels)
            if prof is not None:
                prof.disable()
                report["profile_top"] = self._format_top(prof)
            self.reports.append(report)

    def _format_top(self, prof: cProfile.Profile) -> str:
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.sort_stats("cumulative").print_stats(self.top)
        return buf.getvalue()

    def dump(self) -> List[Dict[str, Any]]:
        """All reports so far (JSON-able; safe to pickle across workers)."""
        return list(self.reports)
