"""Run manifests: provenance sidecars for every ``results/`` artifact.

A manifest is a JSON document written next to the artifact it describes
(``results/fault_sweep.txt`` -> ``results/fault_sweep.manifest.json``)
recording everything needed to re-produce or audit the run: the full
config (as canonical JSON) and its SHA-256, the base seed and the
derivation labels applied to it, worker count, git revision, Python and
numpy versions, hostname, wall duration, and a counter snapshot.

:func:`verify_manifest` recomputes the config hash from the embedded
config, so a manifest whose config section was edited after the fact --
or that was copied next to the wrong artifact -- fails loudly.

All writes go through :func:`atomic_write_text` (temp file +
``os.replace``), so a crashed or OOM-killed run can never leave a
truncated manifest (or, via :mod:`repro.experiments.io`, a truncated
results file) behind.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import platform
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence, Union

from repro.errors import ConfigError

#: Version of the manifest document layout.
MANIFEST_VERSION = 1

#: Sidecar suffix appended next to the artifact.
SIDECAR_SUFFIX = ".manifest.json"


# ---------------------------------------------------------------------------
# atomic writes
# ---------------------------------------------------------------------------

def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` via a same-directory temp file + rename.

    ``os.replace`` is atomic on POSIX and Windows, so readers observe
    either the old content or the complete new content -- never a
    truncated intermediate, even if the writer dies mid-write.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f".{target.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return target


# ---------------------------------------------------------------------------
# canonical config serialization + hashing
# ---------------------------------------------------------------------------

def jsonable_config(obj: Any) -> Any:
    """Convert a (possibly nested) config into canonical JSON-able form.

    Dataclasses become dicts, enums their values, tuples lists, and
    sets/frozensets *sorted* lists -- so two equal configs always yield
    the same canonical JSON, which is what :func:`config_sha256` hashes.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable_config(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return jsonable_config(obj.value)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, (list, tuple)):
        return [jsonable_config(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(jsonable_config(v) for v in obj)
    if isinstance(obj, Mapping):
        return {str(k): jsonable_config(v) for k, v in obj.items()}
    raise ConfigError(
        f"cannot serialize config value of type {type(obj).__name__} "
        "into a manifest"
    )


def _canonical_json(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def config_sha256(config: Any) -> str:
    """SHA-256 hex digest of the config's canonical JSON form."""
    payload = _canonical_json(jsonable_config(config)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


# ---------------------------------------------------------------------------
# environment capture
# ---------------------------------------------------------------------------

def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current git commit SHA, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_info() -> Dict[str, Any]:
    """Interpreter/library/host facts that shape a run's numbers."""
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
    }


# ---------------------------------------------------------------------------
# building / writing / verifying
# ---------------------------------------------------------------------------

def build_manifest(
    *,
    kind: str,
    config: Any = None,
    seed: Optional[int] = None,
    seed_derivation: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    tasks: Optional[int] = None,
    duration_s: Optional[float] = None,
    counters: Optional[Mapping[str, Any]] = None,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one manifest document.

    ``config`` may be any (nested) dataclass or mapping; it is embedded
    in canonical form together with its SHA-256. ``seed_derivation``
    documents the :func:`repro.simkit.rng.derive_seed` labels applied to
    the base seed (e.g. ``["trial", "<t>"]``).
    """
    if not kind:
        raise ConfigError("manifest kind must be non-empty")
    manifest: Dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "kind": kind,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        "git_sha": git_revision(),
        "environment": environment_info(),
    }
    if config is not None:
        embedded = jsonable_config(config)
        manifest["config"] = embedded
        manifest["config_sha256"] = hashlib.sha256(
            _canonical_json(embedded).encode("utf-8")
        ).hexdigest()
    if seed is not None:
        manifest["seed"] = int(seed)
    if seed_derivation is not None:
        manifest["seed_derivation"] = [str(s) for s in seed_derivation]
    if workers is not None:
        manifest["workers"] = int(workers)
    if tasks is not None:
        manifest["tasks"] = int(tasks)
    if duration_s is not None:
        manifest["duration_s"] = float(duration_s)
    if counters is not None:
        manifest["counters"] = jsonable_config(dict(counters))
    if extra is not None:
        manifest["extra"] = jsonable_config(dict(extra))
    return manifest


def sidecar_path(artifact: Union[str, Path]) -> Path:
    """Manifest path next to ``artifact``: its suffix -> ``.manifest.json``."""
    artifact = Path(artifact)
    if artifact.suffix:
        return artifact.with_suffix(SIDECAR_SUFFIX)
    return artifact.with_name(artifact.name + SIDECAR_SUFFIX)


def write_manifest(
    artifact: Union[str, Path], manifest: Mapping[str, Any]
) -> Path:
    """Atomically write the sidecar for ``artifact``; returns its path.

    Pass a path that already ends in ``.manifest.json`` to write the
    manifest exactly there (no sidecar derivation).
    """
    target = Path(artifact)
    if not str(target).endswith(SIDECAR_SUFFIX):
        target = sidecar_path(target)
    return atomic_write_text(
        target, json.dumps(dict(manifest), indent=1, sort_keys=True) + "\n"
    )


def load_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a manifest written by :func:`write_manifest`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ConfigError(f"{path}: manifest is not a JSON object")
    if payload.get("manifest_version") != MANIFEST_VERSION:
        raise ConfigError(
            f"{path}: unsupported manifest version "
            f"{payload.get('manifest_version')!r}"
        )
    return payload


def verify_manifest(
    manifest: Union[str, Path, Mapping[str, Any]],
    *,
    config: Any = None,
) -> bool:
    """Recompute the embedded config's hash; raise on any mismatch.

    With ``config`` given, additionally checks that this live config
    object hashes to the recorded digest -- i.e. the manifest describes
    *that* configuration, not merely a self-consistent one.
    """
    doc = (
        load_manifest(manifest)
        if isinstance(manifest, (str, Path))
        else dict(manifest)
    )
    if doc.get("manifest_version") != MANIFEST_VERSION:
        raise ConfigError(
            f"unsupported manifest version {doc.get('manifest_version')!r}"
        )
    recorded = doc.get("config_sha256")
    embedded = doc.get("config")
    if recorded is None or embedded is None:
        raise ConfigError("manifest has no embedded config to verify")
    recomputed = hashlib.sha256(
        _canonical_json(embedded).encode("utf-8")
    ).hexdigest()
    if recomputed != recorded:
        raise ConfigError(
            f"manifest config hash mismatch: recorded {recorded[:12]}..., "
            f"recomputed {recomputed[:12]}... (config section was altered)"
        )
    if config is not None and config_sha256(config) != recorded:
        raise ConfigError(
            "manifest does not describe the given config "
            f"(recorded {recorded[:12]}..., live {config_sha256(config)[:12]}...)"
        )
    return True
