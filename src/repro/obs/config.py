"""Observability configuration and its runtime counterpart.

:class:`ObsConfig` is a frozen, picklable dataclass that rides inside
the simulator configs (``DESConfig.obs`` / ``FluidConfig.obs``) so obs
settings cross the ``exec.pmap`` spawn boundary with the rest of the
run description. The default instance is fully disabled;
:meth:`Observability.from_config` returns ``None`` for it, so every
instrumentation site in the simulators costs exactly one
``is not None`` branch when observability is off.

:class:`Observability` is the run-scoped bundle built from a config:
a :class:`~repro.obs.trace.Tracer` (or ``None``), a
:class:`~repro.obs.metrics.MetricsRegistry` (or ``None``), and a
:class:`~repro.obs.profile.Profiler` (or ``None``). It owns sink
lifetimes: call :meth:`Observability.close` (or use it as a context
manager) when the run ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import JsonlSink, Tracer


@dataclass(frozen=True)
class ObsConfig:
    """What to observe. Default: nothing (free, invisible).

    trace:
        Emit structured trace records (ring buffer always; JSONL file
        when ``trace_path`` is set).
    trace_path:
        JSONL file to append trace records to. ``None`` keeps tracing
        in-memory only (ring buffer).
    trace_ring:
        Ring-buffer capacity (most recent records kept for post-run
        inspection).
    trace_max_bytes / trace_backups:
        Size-based rotation for the JSONL sink; ``0`` disables rotation.
    metrics:
        Maintain a run-scoped counter/gauge/timer registry.
    profile:
        Wall-clock profiling scopes around the hot loops.
    profile_cprofile:
        Additionally run cProfile inside profiling scopes (implies the
        scope overhead is no longer negligible -- opt-in only).
    profile_top:
        How many cProfile rows to keep per scope report.
    """

    trace: bool = False
    trace_path: Optional[str] = None
    trace_ring: int = 4096
    trace_max_bytes: int = 0
    trace_backups: int = 3
    metrics: bool = False
    profile: bool = False
    profile_cprofile: bool = False
    profile_top: int = 20

    def __post_init__(self) -> None:
        if self.trace_ring < 1:
            raise ConfigError(f"trace_ring must be >= 1, got {self.trace_ring}")
        if self.trace_max_bytes < 0:
            raise ConfigError(
                f"trace_max_bytes must be non-negative, got {self.trace_max_bytes}"
            )
        if self.trace_backups < 0:
            raise ConfigError(
                f"trace_backups must be non-negative, got {self.trace_backups}"
            )
        if self.profile_top < 1:
            raise ConfigError(f"profile_top must be >= 1, got {self.profile_top}")
        if self.trace_path is not None and not self.trace:
            raise ConfigError("trace_path given but trace=False")
        if self.profile_cprofile and not self.profile:
            raise ConfigError("profile_cprofile=True requires profile=True")

    @property
    def enabled(self) -> bool:
        """True when any part of observability is on."""
        return self.trace or self.metrics or self.profile


class Observability:
    """Run-scoped tracer/metrics/profiler bundle built from an ObsConfig.

    Attributes are ``None`` for the parts that are disabled, so callers
    can hand ``obs.tracer`` straight to an instrumentation site.
    """

    def __init__(
        self,
        config: ObsConfig,
        *,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[Profiler] = None,
    ) -> None:
        self.config = config
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self._closed = False

    @classmethod
    def from_config(
        cls, config: Optional[ObsConfig], *, run: Optional[str] = None
    ) -> Optional["Observability"]:
        """Build the runtime bundle; ``None`` when nothing is enabled.

        ``run`` labels every trace record (useful when several runs
        append to one JSONL file, e.g. a serial sweep).
        """
        if config is None or not config.enabled:
            return None
        tracer = None
        if config.trace:
            sinks = []
            if config.trace_path is not None:
                sinks.append(
                    JsonlSink(
                        config.trace_path,
                        max_bytes=config.trace_max_bytes,
                        backups=config.trace_backups,
                    )
                )
            tracer = Tracer(ring_size=config.trace_ring, sinks=sinks, run=run)
        metrics = MetricsRegistry() if config.metrics else None
        profiler = None
        if config.profile:
            profiler = Profiler(
                cprofile=config.profile_cprofile, top=config.profile_top
            )
        return cls(config, tracer=tracer, metrics=metrics, profiler=profiler)

    # ------------------------------------------------------------------
    def counters_snapshot(self) -> Dict[str, Any]:
        """Metrics snapshot for manifest embedding ({} when disabled)."""
        return self.metrics.snapshot() if self.metrics is not None else {}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.tracer is not None:
            self.tracer.close()

    def __enter__(self) -> "Observability":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
