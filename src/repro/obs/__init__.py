"""Observability layer: tracing, counters, run manifests, profiling.

`repro.obs` is the always-available instrumentation substrate behind
every simulation run. It is designed around one invariant: **disabled
observability is free and invisible** -- every instrumentation point in
the simulators guards on a single ``is not None`` branch, and enabling
any part of it must never perturb an experiment's random draws or its
published numbers (proven by the trace-on/off equivalence property
tests).

Four parts:

* :mod:`repro.obs.trace` -- structured, schema-versioned trace records
  through a bounded ring buffer and pluggable sinks (JSONL file,
  in-memory for tests);
* :mod:`repro.obs.metrics` -- process-local counters, gauges, and
  histogram timers, exportable as JSON and Prometheus-style text;
* :mod:`repro.obs.manifest` -- ``*.manifest.json`` sidecars recording
  the config (and its SHA-256), seeds, workers, code version, and
  environment behind every ``results/`` artifact;
* :mod:`repro.obs.profile` -- opt-in cProfile / ``perf_counter`` scopes
  around the hot loops.

See docs/OBSERVABILITY.md for the record schemas and usage.
"""

from repro.obs.config import Observability, ObsConfig
from repro.obs.manifest import (
    build_manifest,
    config_sha256,
    load_manifest,
    sidecar_path,
    verify_manifest,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.profile import Profiler
from repro.obs.trace import (
    JsonlSink,
    MemorySink,
    Tracer,
    summarize_trace,
    validate_record,
)

__all__ = [
    "ObsConfig",
    "Observability",
    "Tracer",
    "JsonlSink",
    "MemorySink",
    "validate_record",
    "summarize_trace",
    "MetricsRegistry",
    "global_registry",
    "Profiler",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "verify_manifest",
    "sidecar_path",
    "config_sha256",
]
