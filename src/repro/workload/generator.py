"""Per-peer Poisson query generation.

"In our simulation, every node issues 0.3 queries per minute, which is
calculated from the observation data shown in [16], i.e., 12,805 unique IP
addresses issued 1,146,782 queries in 50 hours." (Section 3.5; note
1,146,782 / 12,805 / 3,000 min ~= 0.03 -- the paper's own arithmetic gives
0.3 with a 5-hour reading, we keep the stated 0.3/min and expose it.)

Each online peer issues queries as an independent Poisson process; query
targets are drawn from the content catalog's Zipf popularity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.overlay.ids import PeerId
from repro.overlay.network import OverlayNetwork
from repro.simkit.engine import Simulator


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload parameters."""

    queries_per_minute: float = 0.3
    max_queries_total: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.queries_per_minute <= 0:
            raise ConfigError(
                f"queries_per_minute must be positive, got {self.queries_per_minute}"
            )
        if self.max_queries_total is not None and self.max_queries_total < 0:
            raise ConfigError("max_queries_total must be non-negative")


class QueryWorkload:
    """Drives normal-peer query issuing over the message-level network."""

    def __init__(
        self,
        sim: Simulator,
        network: OverlayNetwork,
        config: WorkloadConfig = WorkloadConfig(),
        *,
        rng: Optional[random.Random] = None,
        exclude: Optional[set] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self._rng = rng or random.Random(config.seed)
        self.exclude = set(exclude or ())  # e.g. attack agents issue separately
        self.issued = 0

    @property
    def mean_gap_s(self) -> float:
        return 60.0 / self.config.queries_per_minute

    def start(self) -> None:
        """Arm each peer's first query timer (staggered exponentially).

        Bulk-scheduled: one heapify instead of one push per peer, which
        keeps startup linear at 100k+ peers. Draw order (and thus the
        event sequence numbers) matches the per-peer loop exactly.
        """
        rate = 1.0 / self.mean_gap_s
        now = self.sim.now
        self.sim.schedule_bulk(
            (now + self._rng.expovariate(rate), self._issue, pid)
            for pid in self.network.peers
            if pid not in self.exclude
        )

    def _issue(self, pid: PeerId) -> None:
        if (
            self.config.max_queries_total is not None
            and self.issued >= self.config.max_queries_total
        ):
            return
        peer = self.network.peers[pid]
        if peer.online and peer.neighbors:
            obj = self.network.content.sample_object(self._rng)
            keywords = self.network.content.keywords_for(obj)
            peer.issue_query(keywords)
            self.issued += 1
        # Reschedule regardless of online state: offline peers resume
        # querying when they rejoin.
        self.sim.schedule_in(
            self._rng.expovariate(1.0 / self.mean_gap_s), self._issue, pid
        )
