"""Query workload: generation and trace capture.

Substitutes the paper's measured inputs (24 h LimeWire query log;
UW KaZaA trace) with synthetic equivalents that preserve the statistics
the defense and the evaluation depend on: per-peer issue rate
(0.3 queries/minute), Zipf keyword popularity, and query distinctness.
"""

from repro.workload.generator import WorkloadConfig, QueryWorkload
from repro.workload.trace import QueryTraceWriter, QueryTraceReader, TraceRecord, synthesize_trace

__all__ = [
    "WorkloadConfig",
    "QueryWorkload",
    "QueryTraceWriter",
    "QueryTraceReader",
    "TraceRecord",
    "synthesize_trace",
]
