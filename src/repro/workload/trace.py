"""Query-trace capture in the monitoring-node log format.

Section 2.3 describes a traffic-monitoring super node (a modified LimeWire
client with logging) that recorded 13,075,339 queries over 24 hours into a
112 MB log. The DDoS agent prototype replays queries from that log.

We reproduce the pipeline: :func:`synthesize_trace` generates a log with
the same *statistical* content (timestamped, Zipf-popular search strings,
~8.6 bytes/record overhead matching the reported 112 MB / 13.1 M ratio);
:class:`QueryTraceReader` streams it back for the attack agent to replay.

Format: one record per line, tab-separated::

    <timestamp_s>\t<guid_hex>\t<search string>

Files ending in ``.gz`` are transparently gzip-compressed (the real
capture was 112 MB of text; compression matters at that size).
"""

from __future__ import annotations

import gzip
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.errors import ConfigError, WireFormatError
from repro.overlay.content import ContentCatalog, ContentConfig


@dataclass(frozen=True)
class TraceRecord:
    """One logged query."""

    timestamp_s: float
    guid_hex: str
    search_string: str

    def __post_init__(self) -> None:
        if self.timestamp_s < 0:
            raise ConfigError("timestamp must be non-negative")
        if len(self.guid_hex) != 32:
            raise ConfigError(f"guid_hex must be 32 hex chars, got {len(self.guid_hex)}")

    def to_line(self) -> str:
        return f"{self.timestamp_s:.3f}\t{self.guid_hex}\t{self.search_string}"

    @classmethod
    def from_line(cls, line: str) -> "TraceRecord":
        parts = line.rstrip("\n").split("\t")
        if len(parts) != 3:
            raise WireFormatError(f"malformed trace line: {line!r}")
        ts, guid_hex, search = parts
        try:
            return cls(float(ts), guid_hex, search)
        except ValueError as exc:
            raise WireFormatError(f"malformed trace line: {line!r}") from exc


def _open_text(path: Path, mode: str):
    """Open a trace file, gzip-compressed if it ends in .gz."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


class QueryTraceWriter:
    """Append-only trace log writer (gzip when the path ends in .gz)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = _open_text(self.path, "w")
        self.records_written = 0

    def write(self, record: TraceRecord) -> None:
        self._fh.write(record.to_line() + "\n")
        self.records_written += 1

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "QueryTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class QueryTraceReader:
    """Streams a trace log; supports cyclic replay for the DDoS agent.

    "The querying thread reads queries from the log file collected by the
    monitoring node and issues these queries" -- Section 2.3.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise ConfigError(f"trace file not found: {self.path}")

    def __iter__(self) -> Iterator[TraceRecord]:
        with _open_text(self.path, "r") as fh:
            for line in fh:
                if line.strip():
                    yield TraceRecord.from_line(line)

    def read_all(self) -> List[TraceRecord]:
        return list(self)

    def replay_cyclic(self, limit: int) -> Iterator[TraceRecord]:
        """Yield ``limit`` records, cycling through the file as needed."""
        if limit < 0:
            raise ConfigError("limit must be non-negative")
        yielded = 0
        while yielded < limit:
            empty = True
            for rec in self:
                empty = False
                yield rec
                yielded += 1
                if yielded >= limit:
                    return
            if empty:
                raise ConfigError(f"trace file {self.path} is empty")


def synthesize_trace(
    path: Union[str, Path],
    *,
    num_queries: int = 10_000,
    duration_s: float = 86_400.0,
    catalog: Optional[ContentCatalog] = None,
    seed: int = 0,
) -> Path:
    """Generate a monitoring-node-style trace file.

    Timestamps are uniform over ``duration_s`` (sorted); search strings are
    drawn from the catalog's Zipf popularity, mirroring the real capture.
    """
    if num_queries < 1:
        raise ConfigError("num_queries must be >= 1")
    if duration_s <= 0:
        raise ConfigError("duration_s must be positive")
    rng = random.Random(seed)
    catalog = catalog or ContentCatalog(ContentConfig(seed=seed), n_peers=1000)
    times = sorted(rng.uniform(0, duration_s) for _ in range(num_queries))
    with QueryTraceWriter(path) as writer:
        for ts in times:
            obj = catalog.sample_object(rng)
            guid_hex = "%032x" % rng.getrandbits(128)
            writer.write(
                TraceRecord(ts, guid_hex, " ".join(catalog.keywords_for(obj)))
            )
    return Path(path)
