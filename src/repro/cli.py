"""Command-line interface: regenerate the paper's experiments.

Installed as ``repro-experiments`` (alias: ``repro``)::

    repro-experiments list
    repro-experiments fig9 fig10 fig11          # shared sweep, run once
    repro-experiments fig12 --scale smoke
    repro-experiments all --scale bench --workers 4
    repro-experiments fig12 --scale smoke --trace /tmp/run.jsonl --profile
    repro-experiments trace summarize /tmp/run.jsonl

The generic spec runner exposes every registered experiment spec with
dotted-path config overrides (see docs/EXPERIMENTS.md)::

    repro run --list
    repro run fig9 --backend des --scale smoke
    repro run fig13 --set police.cut_threshold=7 --set scale.n_peers=500
    repro run fault-sweep --set faults.trials=1 --out /tmp/tables
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.exec import resolve_workers
from repro.experiments.library import run_spec
from repro.experiments.reporting import render_timelines
from repro.experiments.spec import (
    list_backends,
    list_specs,
    override_paths,
    parse_assignments,
)
from repro.obs.config import ObsConfig
from repro.obs.manifest import atomic_write_text, build_manifest, write_manifest
from repro.obs.profile import Profiler
from repro.obs.trace import summarize_trace

_SCALES: Tuple[str, ...] = ("bench", "paper", "smoke")

#: Figure-style CLI ids -> registered spec names (the legacy interface;
#: `repro run` exposes the full registry including fig12-stabilized and
#: fault-sweep).
EXPERIMENTS: Dict[str, str] = {
    "fig5": "fig5",
    "fig6": "fig6",
    "fig9": "fig9",
    "fig10": "fig10",
    "fig11": "fig11",
    "fig12": "fig12",
    "fig13": "fig13",
    "fig14": "fig14",
    "exchange": "exchange",
}


def _render_run(run) -> str:
    """Tables of one executed spec, plus sparklines for the timelines."""
    parts = [run.tables[t] for t in run.tables]
    if run.spec.scenario == "damage-timelines":
        parts.append(
            render_timelines(
                [t.label for t in run.data],
                [t.damage_pct for t in run.data],
                title="damage over time (0..100%)",
                hi=100.0,
            )
        )
    return "\n\n".join(parts)


def _run_experiment(
    name: str,
    scale: str,
    workers: Optional[int],
    obs: Optional[ObsConfig],
) -> str:
    run = run_spec(EXPERIMENTS[name], scale=scale, workers=workers, obs=obs)
    return _render_run(run)


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DD-POLICE paper's evaluation artifacts.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see `list`), or `all`",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="bench",
        help="network scale (default: bench = 2,000 peers)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel executor (default: "
        "$REPRO_WORKERS or 1 = serial; 0 = one per CPU); results are "
        "bit-identical for any value",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL trace of every simulation to PATH (overwritten; "
        "a .manifest.json sidecar is written next to it; forces serial "
        "execution so there is a single trace writer)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each experiment under cProfile and print the hottest "
        "functions after its table",
    )
    return parser


def _trace_command(argv: Sequence[str]) -> int:
    """``repro-experiments trace summarize <file>``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments trace",
        description="Inspect JSONL trace files written with --trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summarize = sub.add_parser(
        "summarize", help="validate a trace and print per-kind record counts"
    )
    summarize.add_argument("file", help="JSONL trace file")
    args = parser.parse_args(argv)
    try:
        summary = summarize_trace(args.file)
    except OSError as exc:
        print(f"trace summarize: {exc}", file=sys.stderr)
        return 2
    except ConfigError as exc:
        print(f"trace summarize: invalid trace: {exc}", file=sys.stderr)
        return 2
    print(f"records: {summary['records']}")
    if summary["records"]:
        print(f"t range: {summary['t_min']:g} .. {summary['t_max']:g} s")
    for kind, count in summary["kinds"].items():
        print(f"  {kind}: {count}")
    return 0


def _run_command(argv: Sequence[str]) -> int:
    """``repro-experiments run <spec> [--set dotted.path=value ...]``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments run",
        description="Run registered experiment specs with config overrides.",
    )
    parser.add_argument(
        "specs", nargs="*", help="registered spec names (see --list)"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_specs",
        help="list every registered spec and exit",
    )
    parser.add_argument(
        "--paths",
        action="store_true",
        help="list every valid --set override path and exit",
    )
    parser.add_argument(
        "--backend",
        choices=[b.name for b in list_backends()],
        default=None,
        help="execution engine override (default: the spec's backend)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default=None,
        help="re-target the spec at a named scale before overrides",
    )
    parser.add_argument(
        "--set",
        dest="assignments",
        action="append",
        default=[],
        metavar="PATH=VALUE",
        help="dotted-path config override, e.g. police.cut_threshold=7 "
        "or scale.n_peers=500 (repeatable; see --paths)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (results are bit-identical for any value)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write each table to DIR/<table>.txt with a "
        ".manifest.json sidecar embedding the spec and its SHA-256",
    )
    args = parser.parse_args(argv)

    if args.list_specs:
        for spec in list_specs():
            print(
                f"{spec.name:<17} scenario={spec.scenario:<20} "
                f"backend={spec.backend:<5} {spec.title}"
            )
        return 0
    if args.paths:
        for path in override_paths():
            print(path)
        return 0
    if not args.specs:
        print("run: no specs given (try --list)", file=sys.stderr)
        return 2

    try:
        overrides = parse_assignments(args.assignments)
    except ConfigError as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 2

    out_dir = Path(args.out) if args.out is not None else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    for name in args.specs:
        try:
            run = run_spec(
                name,
                scale=args.scale,
                backend=args.backend,
                overrides=overrides,
                workers=args.workers,
            )
        except ConfigError as exc:
            print(f"run: {exc}", file=sys.stderr)
            return 2
        print(_render_run(run))
        print()
        print(
            f"# spec {run.spec.name} sha256={run.sha256[:12]} "
            f"cases={run.cases} wall={run.duration_s:.2f}s"
        )
        if out_dir is not None:
            for table, text in run.tables.items():
                artifact = out_dir / f"{table}.txt"
                atomic_write_text(artifact, text + "\n")
                sidecar = write_manifest(artifact, run.manifest)
                print(f"# wrote {artifact} (manifest: {sidecar})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return _trace_command(argv[1:])
    if argv and argv[0] == "run":
        return _run_command(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiments == ["list"]:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    wanted: List[str] = (
        sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    )
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    try:
        workers = resolve_workers(args.workers)
    except ConfigError as exc:
        print(f"bad --workers value: {exc}", file=sys.stderr)
        return 2

    obs: Optional[ObsConfig] = None
    if args.trace is not None:
        if workers != 1:
            print(
                "--trace forces serial execution (single trace writer)",
                file=sys.stderr,
            )
            workers = 1
        # Fresh trace per invocation: JsonlSink appends, so clear any
        # leftover file from a previous run first.
        Path(args.trace).unlink(missing_ok=True)
        obs = ObsConfig(
            trace=True,
            trace_path=str(args.trace),
            metrics=True,
            profile=args.profile,
        )

    profiler = Profiler(cprofile=True, top=15) if args.profile else None
    started = time.perf_counter()
    for name in wanted:
        if profiler is not None:
            with profiler.scope(f"cli.{name}"):
                out = _run_experiment(name, args.scale, workers, obs)
        else:
            out = _run_experiment(name, args.scale, workers, obs)
        print(out)
        print()
        if profiler is not None:
            report = profiler.reports[-1]
            print(f"# profile {report['scope']}: {report['wall_s']:.2f}s wall")
            print(report["profile_top"])
    duration_s = time.perf_counter() - started

    if args.trace is not None:
        manifest = build_manifest(
            kind="cli-trace",
            config={
                "scale": args.scale,
                "experiments": list(wanted),
                "obs": obs,
            },
            workers=workers,
            tasks=len(wanted),
            duration_s=duration_s,
            extra={"trace_path": str(args.trace)},
        )
        sidecar = write_manifest(args.trace, manifest)
        print(f"trace written to {args.trace} (manifest: {sidecar})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
