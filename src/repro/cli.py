"""Command-line interface: regenerate the paper's experiments.

Installed as ``repro-experiments``::

    repro-experiments list
    repro-experiments fig9 fig10 fig11          # shared sweep, run once
    repro-experiments fig12 --scale smoke
    repro-experiments all --scale bench --workers 4
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.exec import resolve_workers
from repro.experiments import figures
from repro.experiments.reporting import render_table, render_timelines
from repro.experiments.scenarios import (
    Scale,
    bench_scale,
    paper_scale,
    smoke_scale,
)

_SCALES = {"bench": bench_scale, "paper": paper_scale, "smoke": smoke_scale}


def _run_fig5(scale: Scale, workers: Optional[int]) -> str:
    pts = figures.fig5_processed_vs_sent()
    return render_table(
        ["sent (q/min)", "processed (q/min)"],
        [[int(x), int(y)] for x, y in pts],
        title="Figure 5",
    )


def _run_fig6(scale: Scale, workers: Optional[int]) -> str:
    pts = figures.fig6_drop_rate_vs_density()
    return render_table(
        ["received (q/min)", "drop rate (%)"],
        [[int(x), round(y, 1)] for x, y in pts],
        title="Figure 6",
    )


_SWEEP_CACHE: Dict[str, List[figures.AgentSweepRow]] = {}


def _agent_sweep(scale: Scale, workers: Optional[int]) -> List[figures.AgentSweepRow]:
    key = scale.name
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = figures.agent_sweep(scale, seed=7, workers=workers)
    return _SWEEP_CACHE[key]


def _run_fig9(scale: Scale, workers: Optional[int]) -> str:
    rows = figures.fig9_traffic_cost(_agent_sweep(scale, workers))
    return render_table(
        ["agents", "under DDoS", "with DD-POLICE", "no DDoS"],
        [[a, round(x, 1), round(y, 1), round(z, 1)] for a, x, y, z in rows],
        title="Figure 9: traffic cost (k msgs/min)",
    )


def _run_fig10(scale: Scale, workers: Optional[int]) -> str:
    rows = figures.fig10_response_time(_agent_sweep(scale, workers))
    return render_table(
        ["agents", "under DDoS", "with DD-POLICE", "no DDoS"],
        [[a, round(x, 3), round(y, 3), round(z, 3)] for a, x, y, z in rows],
        title="Figure 10: response time (s)",
    )


def _run_fig11(scale: Scale, workers: Optional[int]) -> str:
    rows = figures.fig11_success_rate(_agent_sweep(scale, workers))
    return render_table(
        ["agents", "under DDoS", "with DD-POLICE", "no DDoS"],
        [[a, round(x, 1), round(y, 1), round(z, 1)] for a, x, y, z in rows],
        title="Figure 11: success rate (%)",
    )


def _run_fig12(scale: Scale, workers: Optional[int]) -> str:
    timelines = figures.damage_timelines(scale, seed=11, workers=workers)
    header = ["minute"] + [t.label for t in timelines]
    rows = []
    for i, minute in enumerate(timelines[0].minutes):
        rows.append([minute] + [round(t.damage_pct[i], 1) for t in timelines])
    table = render_table(header, rows, title="Figure 12: damage rate (%)")
    sparks = render_timelines(
        [t.label for t in timelines],
        [t.damage_pct for t in timelines],
        title="damage over time (0..100%)",
        hi=100.0,
    )
    return table + "\n\n" + sparks


def _run_fig13(scale: Scale, workers: Optional[int]) -> str:
    rows = figures.fig13_errors(
        figures.cut_threshold_sweep(scale, seed=13, workers=workers)
    )
    return render_table(
        ["CT", "false judgment", "false positive", "false negative"],
        rows,
        title="Figure 13: errors vs cut threshold",
    )


def _run_fig14(scale: Scale, workers: Optional[int]) -> str:
    import math

    rows = figures.fig14_recovery(
        figures.cut_threshold_sweep(scale, seed=13, workers=workers)
    )
    return render_table(
        ["CT", "recovery (min)"],
        [[ct, ("n/a" if math.isnan(v) else round(v, 1))] for ct, v in rows],
        title="Figure 14: damage recovery time",
    )


def _run_exchange(scale: Scale, workers: Optional[int]) -> str:
    rows = figures.exchange_frequency_study(scale, seed=17)
    return render_table(
        ["policy", "false judgment", "overhead (k/min)", "damage (%)"],
        [
            [r.policy, r.false_judgment, round(r.control_overhead_kqpm, 2),
             round(r.stabilized_damage_pct, 1)]
            for r in rows
        ],
        title="Section 3.7.1: exchange frequency",
    )


EXPERIMENTS: Dict[str, Callable[[Scale, Optional[int]], str]] = {
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "exchange": _run_exchange,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DD-POLICE paper's evaluation artifacts.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see `list`), or `all`",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="bench",
        help="network scale (default: bench = 2,000 peers)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel executor (default: "
        "$REPRO_WORKERS or 1 = serial; 0 = one per CPU); results are "
        "bit-identical for any value",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiments == ["list"]:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    wanted = (
        sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    )
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    scale = _SCALES[args.scale]()
    try:
        workers = resolve_workers(args.workers)
    except ConfigError as exc:
        print(f"bad --workers value: {exc}", file=sys.stderr)
        return 2
    for name in wanted:
        print(EXPERIMENTS[name](scale, workers))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
