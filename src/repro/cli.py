"""Command-line interface: regenerate the paper's experiments.

Installed as ``repro-experiments``::

    repro-experiments list
    repro-experiments fig9 fig10 fig11          # shared sweep, run once
    repro-experiments fig12 --scale smoke
    repro-experiments all --scale bench --workers 4
    repro-experiments fig12 --scale smoke --trace /tmp/run.jsonl --profile
    repro-experiments trace summarize /tmp/run.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.exec import resolve_workers
from repro.experiments import figures
from repro.experiments.reporting import render_table, render_timelines
from repro.experiments.scenarios import (
    Scale,
    bench_scale,
    paper_scale,
    smoke_scale,
)
from repro.obs.config import ObsConfig
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.profile import Profiler
from repro.obs.trace import summarize_trace

_SCALES = {"bench": bench_scale, "paper": paper_scale, "smoke": smoke_scale}

#: Experiment runner signature: (scale, workers, obs) -> rendered text.
Runner = Callable[[Scale, Optional[int], Optional[ObsConfig]], str]


def _run_fig5(
    scale: Scale, workers: Optional[int], obs: Optional[ObsConfig]
) -> str:
    pts = figures.fig5_processed_vs_sent()
    return render_table(
        ["sent (q/min)", "processed (q/min)"],
        [[int(x), int(y)] for x, y in pts],
        title="Figure 5",
    )


def _run_fig6(
    scale: Scale, workers: Optional[int], obs: Optional[ObsConfig]
) -> str:
    pts = figures.fig6_drop_rate_vs_density()
    return render_table(
        ["received (q/min)", "drop rate (%)"],
        [[int(x), round(y, 1)] for x, y in pts],
        title="Figure 6",
    )


#: fig9/10/11 share one sweep; cache it per (scale, obs) so asking for all
#: three runs the simulations once. Obs is part of the key: a traced sweep
#: must not satisfy an untraced request (or vice versa).
_SWEEP_CACHE: Dict[
    Tuple[str, Optional[ObsConfig]], List[figures.AgentSweepRow]
] = {}


def _agent_sweep(
    scale: Scale, workers: Optional[int], obs: Optional[ObsConfig]
) -> List[figures.AgentSweepRow]:
    key = (scale.name, obs)
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = figures.agent_sweep(
            scale, seed=7, workers=workers, obs=obs
        )
    return _SWEEP_CACHE[key]


def _run_fig9(
    scale: Scale, workers: Optional[int], obs: Optional[ObsConfig]
) -> str:
    rows = figures.fig9_traffic_cost(_agent_sweep(scale, workers, obs))
    return render_table(
        ["agents", "under DDoS", "with DD-POLICE", "no DDoS"],
        [[a, round(x, 1), round(y, 1), round(z, 1)] for a, x, y, z in rows],
        title="Figure 9: traffic cost (k msgs/min)",
    )


def _run_fig10(
    scale: Scale, workers: Optional[int], obs: Optional[ObsConfig]
) -> str:
    rows = figures.fig10_response_time(_agent_sweep(scale, workers, obs))
    return render_table(
        ["agents", "under DDoS", "with DD-POLICE", "no DDoS"],
        [[a, round(x, 3), round(y, 3), round(z, 3)] for a, x, y, z in rows],
        title="Figure 10: response time (s)",
    )


def _run_fig11(
    scale: Scale, workers: Optional[int], obs: Optional[ObsConfig]
) -> str:
    rows = figures.fig11_success_rate(_agent_sweep(scale, workers, obs))
    return render_table(
        ["agents", "under DDoS", "with DD-POLICE", "no DDoS"],
        [[a, round(x, 1), round(y, 1), round(z, 1)] for a, x, y, z in rows],
        title="Figure 11: success rate (%)",
    )


def _run_fig12(
    scale: Scale, workers: Optional[int], obs: Optional[ObsConfig]
) -> str:
    timelines = figures.damage_timelines(scale, seed=11, workers=workers, obs=obs)
    header = ["minute"] + [t.label for t in timelines]
    rows = []
    for i, minute in enumerate(timelines[0].minutes):
        rows.append([minute] + [round(t.damage_pct[i], 1) for t in timelines])
    table = render_table(header, rows, title="Figure 12: damage rate (%)")
    sparks = render_timelines(
        [t.label for t in timelines],
        [t.damage_pct for t in timelines],
        title="damage over time (0..100%)",
        hi=100.0,
    )
    return table + "\n\n" + sparks


def _run_fig13(
    scale: Scale, workers: Optional[int], obs: Optional[ObsConfig]
) -> str:
    rows = figures.fig13_errors(
        figures.cut_threshold_sweep(scale, seed=13, workers=workers, obs=obs)
    )
    return render_table(
        ["CT", "false judgment", "false positive", "false negative"],
        rows,
        title="Figure 13: errors vs cut threshold",
    )


def _run_fig14(
    scale: Scale, workers: Optional[int], obs: Optional[ObsConfig]
) -> str:
    import math

    rows = figures.fig14_recovery(
        figures.cut_threshold_sweep(scale, seed=13, workers=workers, obs=obs)
    )
    return render_table(
        ["CT", "recovery (min)"],
        [[ct, ("n/a" if math.isnan(v) else round(v, 1))] for ct, v in rows],
        title="Figure 14: damage recovery time",
    )


def _run_exchange(
    scale: Scale, workers: Optional[int], obs: Optional[ObsConfig]
) -> str:
    rows = figures.exchange_frequency_study(scale, seed=17, obs=obs)
    return render_table(
        ["policy", "false judgment", "overhead (k/min)", "damage (%)"],
        [
            [r.policy, r.false_judgment, round(r.control_overhead_kqpm, 2),
             round(r.stabilized_damage_pct, 1)]
            for r in rows
        ],
        title="Section 3.7.1: exchange frequency",
    )


EXPERIMENTS: Dict[str, Runner] = {
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig12": _run_fig12,
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "exchange": _run_exchange,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DD-POLICE paper's evaluation artifacts.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (see `list`), or `all`",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="bench",
        help="network scale (default: bench = 2,000 peers)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel executor (default: "
        "$REPRO_WORKERS or 1 = serial; 0 = one per CPU); results are "
        "bit-identical for any value",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL trace of every simulation to PATH (overwritten; "
        "a .manifest.json sidecar is written next to it; forces serial "
        "execution so there is a single trace writer)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each experiment under cProfile and print the hottest "
        "functions after its table",
    )
    return parser


def _trace_command(argv: Sequence[str]) -> int:
    """``repro-experiments trace summarize <file>``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments trace",
        description="Inspect JSONL trace files written with --trace.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summarize = sub.add_parser(
        "summarize", help="validate a trace and print per-kind record counts"
    )
    summarize.add_argument("file", help="JSONL trace file")
    args = parser.parse_args(argv)
    try:
        summary = summarize_trace(args.file)
    except OSError as exc:
        print(f"trace summarize: {exc}", file=sys.stderr)
        return 2
    except ConfigError as exc:
        print(f"trace summarize: invalid trace: {exc}", file=sys.stderr)
        return 2
    print(f"records: {summary['records']}")
    if summary["records"]:
        print(f"t range: {summary['t_min']:g} .. {summary['t_max']:g} s")
    for kind, count in summary["kinds"].items():
        print(f"  {kind}: {count}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "trace":
        return _trace_command(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiments == ["list"]:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    wanted = (
        sorted(EXPERIMENTS) if "all" in args.experiments else args.experiments
    )
    unknown = [e for e in wanted if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    scale = _SCALES[args.scale]()
    try:
        workers = resolve_workers(args.workers)
    except ConfigError as exc:
        print(f"bad --workers value: {exc}", file=sys.stderr)
        return 2

    obs: Optional[ObsConfig] = None
    if args.trace is not None:
        if workers != 1:
            print(
                "--trace forces serial execution (single trace writer)",
                file=sys.stderr,
            )
            workers = 1
        # Fresh trace per invocation: JsonlSink appends, so clear any
        # leftover file from a previous run first.
        Path(args.trace).unlink(missing_ok=True)
        obs = ObsConfig(
            trace=True,
            trace_path=str(args.trace),
            metrics=True,
            profile=args.profile,
        )

    profiler = Profiler(cprofile=True, top=15) if args.profile else None
    started = time.perf_counter()
    for name in wanted:
        if profiler is not None:
            with profiler.scope(f"cli.{name}"):
                out = EXPERIMENTS[name](scale, workers, obs)
        else:
            out = EXPERIMENTS[name](scale, workers, obs)
        print(out)
        print()
        if profiler is not None:
            report = profiler.reports[-1]
            print(f"# profile {report['scope']}: {report['wall_s']:.2f}s wall")
            print(report["profile_top"])
    duration_s = time.perf_counter() - started

    if args.trace is not None:
        manifest = build_manifest(
            kind="cli-trace",
            config={
                "scale": args.scale,
                "experiments": list(wanted),
                "obs": obs,
            },
            workers=workers,
            tasks=len(wanted),
            duration_s=duration_s,
            extra={"trace_path": str(args.trace)},
        )
        sidecar = write_manifest(args.trace, manifest)
        print(f"trace written to {args.trace} (manifest: {sidecar})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
