"""Per-minute metric collection for the message-level network.

Snapshots the cumulative network counters once per minute window and
derives the paper's three service-quality series: traffic cost (bytes
and messages per minute), query success rate S(t) over the window, and
mean response time over the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.metrics.series import TimeSeries
from repro.overlay.network import OverlayNetwork


@dataclass
class MinuteMetrics:
    """Derived metrics for one completed minute."""

    minute: int
    time_s: float
    messages: int
    bytes_transferred: int
    queries_issued: int
    queries_succeeded: int
    mean_response_time_s: Optional[float]

    @property
    def success_rate(self) -> float:
        """S(t) = qs(t)/qw(t) over this minute (Section 3.6)."""
        if self.queries_issued == 0:
            return 0.0
        return self.queries_succeeded / self.queries_issued


class MetricsCollector:
    """Subscribes to the network's minute rollover.

    Success for the window counts queries *issued during the window* that
    have received at least one response by collection time; collection is
    deferred one window (``grace_minutes``) so in-flight responses land.
    """

    def __init__(self, network: OverlayNetwork, grace_minutes: int = 1) -> None:
        self.network = network
        self.grace_minutes = max(0, grace_minutes)
        self.minutes: List[MinuteMetrics] = []
        self._last_messages = 0
        self._last_bytes = 0
        self._window_starts: List[float] = [0.0]
        network.minute_listeners.append(self._on_minute)

    def _on_minute(self, minute: int, now: float) -> None:
        self._window_starts.append(now)
        # Evaluate the window that ended `grace_minutes` ago.
        target = minute - self.grace_minutes
        if target < 1:
            return
        t0 = self._window_starts[target - 1]
        t1 = self._window_starts[target]
        issued = succeeded = 0
        rt_sum, rt_n = 0.0, 0
        for rec in self.network.query_records.values():
            if t0 <= rec.issued_at < t1:
                issued += 1
                if rec.succeeded:
                    succeeded += 1
                    if rec.response_time is not None:
                        rt_sum += rec.response_time
                        rt_n += 1
        msgs = self.network.stats.messages_delivered
        byts = self.network.stats.bytes_transferred
        self.minutes.append(
            MinuteMetrics(
                minute=target,
                time_s=t1,
                messages=msgs - self._last_messages,
                bytes_transferred=byts - self._last_bytes,
                queries_issued=issued,
                queries_succeeded=succeeded,
                mean_response_time_s=(rt_sum / rt_n) if rt_n else None,
            )
        )
        self._last_messages = msgs
        self._last_bytes = byts

    # ------------------------------------------------------------------
    def success_series(self) -> TimeSeries:
        return TimeSeries((m.time_s, m.success_rate) for m in self.minutes)

    def traffic_series(self) -> TimeSeries:
        return TimeSeries((m.time_s, float(m.messages)) for m in self.minutes)

    def response_series(self) -> TimeSeries:
        return TimeSeries(
            (m.time_s, m.mean_response_time_s)
            for m in self.minutes
            if m.mean_response_time_s is not None
        )
