"""Per-minute metric collection for the message-level network.

The heavy lifting lives in :mod:`repro.metrics.accounting`: the network
streams issue/response/rollover events into a :class:`QueryAccounting`,
which emits one origin-classified :class:`MinuteMetrics` row per minute
window in O(1) per event. :class:`MetricsCollector` is the read-side
facade over those rows and derives the paper's three service-quality
series: traffic cost (bytes and messages per minute), query success rate
S(t) over the window (good-origin queries only -- the paper's metric),
and mean response time over the window.

:class:`LegacyMetricsCollector` is the retired O(minutes x records)
full-scan implementation, kept behind an explicit opt-in so the property
test in ``tests/property/test_metrics_equivalence.py`` can prove the
incremental pipeline row-equivalent before the legacy path is deleted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.errors import ConfigError
from repro.metrics.accounting import MinuteMetrics
from repro.metrics.series import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.overlay.network import OverlayNetwork


class _SeriesMixin:
    """Shared TimeSeries accessors over ``self.minutes``."""

    minutes: List[MinuteMetrics]

    def success_series(self) -> TimeSeries:
        """Good-origin S(t) per minute (the paper's Figures 10-12 metric)."""
        return TimeSeries((m.time_s, m.success_rate) for m in self.minutes)

    def all_traffic_success_series(self) -> TimeSeries:
        """Diagnostic S(t) with agent-originated queries in the denominator."""
        return TimeSeries((m.time_s, m.all_success_rate) for m in self.minutes)

    def traffic_series(self) -> TimeSeries:
        return TimeSeries((m.time_s, float(m.messages)) for m in self.minutes)

    def response_series(self) -> TimeSeries:
        return TimeSeries(
            (m.time_s, m.mean_response_time_s)
            for m in self.minutes
            if m.mean_response_time_s is not None
        )


class MetricsCollector(_SeriesMixin):
    """Facade over the network's incremental accounting rows.

    Success for a window counts queries *issued during the window* that
    received at least one response by collection time; collection is
    deferred ``grace_minutes`` windows so in-flight responses land. The
    grace is enforced by the accounting (it also bounds how long settled
    records stay in memory), so it must be fixed before the first minute
    rollover and every collector on a network shares it.
    """

    def __init__(self, network: "OverlayNetwork", grace_minutes: int = 1) -> None:
        self.network = network
        self.grace_minutes = max(0, grace_minutes)
        network.accounting.configure_grace(self.grace_minutes)

    @property
    def minutes(self) -> List[MinuteMetrics]:
        return self.network.accounting.rows


class LegacyMetricsCollector(_SeriesMixin):
    """Pre-incremental collector: full ``query_records`` scan per minute.

    O(minutes x total queries) time and unbounded record retention --
    the scaling bottleneck the incremental pipeline replaced. Requires a
    network with record retirement disabled
    (``NetworkConfig.retire_settled_records=False``); with retirement on,
    the scan would miss retired records and silently undercount.

    Kept only as the oracle for the equivalence property test; delete
    once that test has soaked in CI.
    """

    def __init__(self, network: "OverlayNetwork", grace_minutes: int = 1) -> None:
        if network.config.retire_settled_records:
            raise ConfigError(
                "LegacyMetricsCollector needs retire_settled_records=False; "
                "retired records would be invisible to the full scan"
            )
        self.network = network
        self.grace_minutes = max(0, grace_minutes)
        self.minutes: List[MinuteMetrics] = []
        self._last_messages = 0
        self._last_bytes = 0
        self._window_starts: List[float] = [0.0]
        network.minute_listeners.append(self._on_minute)

    def _on_minute(self, minute: int, now: float) -> None:
        self._window_starts.append(now)
        # Evaluate the window that ended `grace_minutes` ago.
        target = minute - self.grace_minutes
        if target < 1:
            return
        t0 = self._window_starts[target - 1]
        t1 = self._window_starts[target]
        issued = [0, 0]
        succeeded = [0, 0]
        rt_sum = [0.0, 0.0]
        for rec in self.network.query_records.values():
            if t0 <= rec.issued_at < t1:
                cls = 1 if rec.is_attack else 0
                issued[cls] += 1
                if rec.succeeded:
                    succeeded[cls] += 1
                    if rec.response_time is not None:
                        rt_sum[cls] += rec.response_time
        msgs = self.network.stats.messages_delivered
        byts = self.network.stats.bytes_transferred
        self.minutes.append(
            MinuteMetrics(
                minute=target,
                time_s=t1,
                messages=msgs - self._last_messages,
                bytes_transferred=byts - self._last_bytes,
                queries_issued=issued[0],
                queries_succeeded=succeeded[0],
                mean_response_time_s=(
                    rt_sum[0] / succeeded[0] if succeeded[0] else None
                ),
                attack_queries_issued=issued[1],
                attack_queries_succeeded=succeeded[1],
                attack_mean_response_time_s=(
                    rt_sum[1] / succeeded[1] if succeeded[1] else None
                ),
            )
        )
        self._last_messages = msgs
        self._last_bytes = byts
