"""Simple time series container used by every collector."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import ConfigError


class TimeSeries:
    """Append-only (time, value) series with window reductions.

    Times must be appended in non-decreasing order (simulation time is
    monotone), enabling O(log n) window queries.
    """

    def __init__(self, points: Optional[Iterable[Tuple[float, float]]] = None) -> None:
        self._times: List[float] = []
        self._values: List[float] = []
        if points:
            for t, v in points:
                self.append(t, v)

    def append(self, t: float, value: float) -> None:
        if self._times and t < self._times[-1]:
            raise ConfigError(
                f"time series must be appended in order: {t} < {self._times[-1]}"
            )
        self._times.append(float(t))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def last(self) -> Tuple[float, float]:
        if not self._times:
            raise ConfigError("empty time series")
        return self._times[-1], self._values[-1]

    # ------------------------------------------------------------------
    def window(self, t0: float, t1: float) -> "TimeSeries":
        """Points with t0 <= t < t1."""
        lo = bisect_left(self._times, t0)
        hi = bisect_left(self._times, t1)
        out = TimeSeries()
        out._times = self._times[lo:hi]
        out._values = self._values[lo:hi]
        return out

    def mean(self) -> float:
        if not self._values:
            raise ConfigError("mean of empty time series")
        return sum(self._values) / len(self._values)

    def total(self) -> float:
        return sum(self._values)

    def max(self) -> float:
        if not self._values:
            raise ConfigError("max of empty time series")
        return max(self._values)

    def value_at_or_before(self, t: float) -> Optional[float]:
        """Most recent value at time <= t, or None."""
        idx = bisect_right(self._times, t) - 1
        return self._values[idx] if idx >= 0 else None
