"""Evaluation metrics (Sections 3.6-3.7).

* traffic cost, response time, query success rate S(t) -- Figures 9-11;
* damage rate D(t) and damage recovery time -- Figures 12 and 14;
* false negative / false positive / false judgment -- Figure 13 (keeping
  the paper's swapped terminology: *false negative* = good peers wrongly
  disconnected, *false positive* = bad peers not identified).

S(t) and response time are **origin-aware**: agent-originated attack
queries are classified at issue time and excluded from the default
(paper) metrics; the all-traffic variants remain available for
diagnostics. See docs/METRICS.md.
"""

from repro.metrics.series import TimeSeries
from repro.metrics.damage import damage_rate_series, damage_recovery_time
from repro.metrics.errors import Judgment, JudgmentLog, ErrorCounts
from repro.metrics.accounting import ClassTotals, MinuteMetrics, QueryAccounting
from repro.metrics.collectors import LegacyMetricsCollector, MetricsCollector

__all__ = [
    "TimeSeries",
    "damage_rate_series",
    "damage_recovery_time",
    "Judgment",
    "JudgmentLog",
    "ErrorCounts",
    "ClassTotals",
    "MinuteMetrics",
    "QueryAccounting",
    "MetricsCollector",
    "LegacyMetricsCollector",
]
