"""Evaluation metrics (Sections 3.6-3.7).

* traffic cost, response time, query success rate S(t) -- Figures 9-11;
* damage rate D(t) and damage recovery time -- Figures 12 and 14;
* false negative / false positive / false judgment -- Figure 13 (keeping
  the paper's swapped terminology: *false negative* = good peers wrongly
  disconnected, *false positive* = bad peers not identified).
"""

from repro.metrics.series import TimeSeries
from repro.metrics.damage import damage_rate_series, damage_recovery_time
from repro.metrics.errors import Judgment, JudgmentLog, ErrorCounts
from repro.metrics.collectors import MinuteMetrics, MetricsCollector

__all__ = [
    "TimeSeries",
    "damage_rate_series",
    "damage_recovery_time",
    "Judgment",
    "JudgmentLog",
    "ErrorCounts",
    "MinuteMetrics",
    "MetricsCollector",
]
