"""Damage rate and damage recovery time (Section 3.7.2).

Damage rate::

    D(t) = (S(t) - S'(t)) / S(t) * 100%

where S(t) is the success rate without any compromised peers and S'(t)
the success rate under attack.

Damage recovery time: "the time period from when the system damage rate
D(t) is equal or greater than 20% until when the damage is equal or less
than 15%."
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.metrics.series import TimeSeries


def damage_rate(success_baseline: float, success_attacked: float) -> float:
    """Single-point damage rate in percent; clamped to [0, 100].

    A zero baseline carries no information (nothing succeeded even without
    an attack), so damage is defined as 0 there.
    """
    if not (0.0 <= success_baseline <= 1.0 + 1e-9):
        raise ConfigError(f"success rates are fractions, got {success_baseline}")
    if not (0.0 <= success_attacked <= 1.0 + 1e-9):
        raise ConfigError(f"success rates are fractions, got {success_attacked}")
    if success_baseline <= 0.0:
        return 0.0
    d = (success_baseline - success_attacked) / success_baseline * 100.0
    return min(100.0, max(0.0, d))


def damage_rate_series(baseline: TimeSeries, attacked: TimeSeries) -> TimeSeries:
    """D(t) for every point of ``attacked``, matching baseline by time.

    The baseline value used at time t is the most recent baseline sample
    at or before t (runs are sampled on the same minute grid, so this is
    an exact match in practice).
    """
    out = TimeSeries()
    for t, s_attacked in attacked:
        s_base = baseline.value_at_or_before(t)
        if s_base is None:
            continue
        out.append(t, damage_rate(s_base, s_attacked))
    return out


def damage_recovery_time(
    damage: TimeSeries,
    *,
    onset_pct: float = 20.0,
    recovered_pct: float = 15.0,
) -> Optional[float]:
    """Time from first D >= onset to the next D <= recovered.

    Returns None if the damage never reaches the onset level or never
    recovers afterwards (the paper reports such runs as non-converged).
    """
    if onset_pct <= recovered_pct:
        raise ConfigError(
            f"onset {onset_pct} must exceed recovery level {recovered_pct}"
        )
    onset_time: Optional[float] = None
    for t, d in damage:
        if onset_time is None:
            if d >= onset_pct:
                onset_time = t
        else:
            if d <= recovered_pct:
                return t - onset_time
    return None
