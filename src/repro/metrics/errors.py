"""Judgment accounting: false negative / false positive / false judgment.

Figure 13 terminology (quoted from Section 3.7.2, which swaps the usual
meanings -- we keep the paper's definitions and note the swap):

* **false negative** -- "the number of good peers that are wrongly
  disconnected";
* **false positive** -- "the number of bad peers that are not identified
  and not disconnected";
* **false judgment** -- the sum of the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Set, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class Judgment:
    """One disconnect-or-clear decision by an observer about a suspect."""

    time: float
    observer: Hashable
    suspect: Hashable
    g_value: float
    s_value: float
    disconnected: bool
    reason: str = "ddos"


@dataclass(frozen=True)
class ErrorCounts:
    """Figure 13's three error measures."""

    false_negative: int  # good peers wrongly disconnected (paper's term)
    false_positive: int  # bad peers never caught (paper's term)

    @property
    def false_judgment(self) -> int:
        return self.false_negative + self.false_positive


class JudgmentLog:
    """Collects every DD-POLICE decision across the network."""

    def __init__(self) -> None:
        self.judgments: List[Judgment] = []

    def record(self, judgment: Judgment) -> None:
        self.judgments.append(judgment)

    def disconnect_events(self) -> List[Judgment]:
        return [j for j in self.judgments if j.disconnected]

    def disconnected_suspects(self) -> Set[Hashable]:
        return {j.suspect for j in self.judgments if j.disconnected}

    def first_disconnect_time(self, suspect: Hashable) -> Optional[float]:
        times = [
            j.time for j in self.judgments if j.disconnected and j.suspect == suspect
        ]
        return min(times) if times else None

    # ------------------------------------------------------------------
    def error_counts(self, bad_peers: Set[Hashable]) -> ErrorCounts:
        """Evaluate against ground truth.

        ``false_negative`` counts *distinct good peers* that were ever
        disconnected as suspects; ``false_positive`` counts bad peers that
        were never disconnected by anyone.
        """
        if bad_peers is None:
            raise ConfigError("bad_peers ground truth required")
        cut = self.disconnected_suspects()
        good_cut = len({s for s in cut if s not in bad_peers})
        bad_missed = len([b for b in bad_peers if b not in cut])
        return ErrorCounts(false_negative=good_cut, false_positive=bad_missed)

    def detection_latency(
        self, bad_peers: Set[Hashable], attack_start: float
    ) -> List[Tuple[Hashable, float]]:
        """(bad peer, seconds from attack start to first disconnect)."""
        out = []
        for b in bad_peers:
            t = self.first_disconnect_time(b)
            if t is not None:
                out.append((b, t - attack_start))
        return out
