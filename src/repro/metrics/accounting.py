"""Origin-aware incremental query accounting (the paper-scale metrics path).

The paper's headline metric S(t) (Section 3.6, Figures 10-12) is the
success rate of *users'* queries. Attack agents originate bogus queries
too, and those must never enter the denominator: a flood of unanswerable
queries would otherwise depress measured S(t) mechanically, turning the
"damage" figures into an artifact of the measurement instead of degraded
service. Every issued query is therefore classified at issue time --
``GOOD`` (a regular peer) or ``ATTACK`` (a registered attack origin) --
and every aggregate is kept per class.

Accounting is O(1) per event, not O(records) per minute:

* issue and first-response events update per-window per-class counters
  plus lifetime running totals;
* when a window's grace period elapses, the window is *finalized*: its
  :class:`MinuteMetrics` row is emitted and the queries issued in it are
  retired from the network's live ``query_records`` table (their keys are
  returned to the caller for deletion). Memory for settled queries is
  bounded by ``grace + 1`` windows regardless of run length.

Responses arriving after their window was finalized are counted in
``late_responses`` but change neither the window row nor the lifetime
totals -- exactly the cutoff the legacy full-scan collector applied by
evaluating each window once, ``grace`` minutes after it closed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError

#: Traffic-class indices (list positions in the window buckets).
GOOD = 0
ATTACK = 1
_CLASSES = (GOOD, ATTACK)

#: Accepted ``traffic=`` selector values on the summary accessors.
TRAFFIC_CLASSES = ("good", "attack", "all")


@dataclass(slots=True)
class ClassTotals:
    """Lifetime running aggregates for one traffic class."""

    issued: int = 0
    succeeded: int = 0
    response_time_sum: float = 0.0

    def merged_with(self, other: "ClassTotals") -> "ClassTotals":
        return ClassTotals(
            issued=self.issued + other.issued,
            succeeded=self.succeeded + other.succeeded,
            response_time_sum=self.response_time_sum + other.response_time_sum,
        )

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.issued if self.issued else 0.0

    @property
    def mean_response_time(self) -> Optional[float]:
        if self.succeeded == 0:
            return None
        return self.response_time_sum / self.succeeded


@dataclass
class MinuteMetrics:
    """Derived metrics for one completed minute, split by query origin.

    ``queries_issued`` / ``queries_succeeded`` / ``mean_response_time_s``
    describe **good-origin** traffic -- the paper's default. The
    ``attack_*`` fields carry the same aggregates for agent-originated
    queries, and the ``all_*`` properties recombine both classes for
    diagnostics (the pre-fix behaviour).
    """

    minute: int
    time_s: float
    messages: int
    bytes_transferred: int
    queries_issued: int
    queries_succeeded: int
    mean_response_time_s: Optional[float]
    attack_queries_issued: int = 0
    attack_queries_succeeded: int = 0
    attack_mean_response_time_s: Optional[float] = None

    @property
    def success_rate(self) -> float:
        """S(t) = qs(t)/qw(t) over this minute, good-origin queries only."""
        if self.queries_issued == 0:
            return 0.0
        return self.queries_succeeded / self.queries_issued

    @property
    def all_queries_issued(self) -> int:
        return self.queries_issued + self.attack_queries_issued

    @property
    def all_queries_succeeded(self) -> int:
        return self.queries_succeeded + self.attack_queries_succeeded

    @property
    def all_success_rate(self) -> float:
        """Legacy denominator: every origin, agents included (diagnostic)."""
        if self.all_queries_issued == 0:
            return 0.0
        return self.all_queries_succeeded / self.all_queries_issued


class _WindowBucket:
    """Per-class counters for one minute window, O(1) to update."""

    __slots__ = ("index", "issued", "succeeded", "rt_sum", "record_keys")

    def __init__(self, index: int, track_keys: bool) -> None:
        self.index = index
        self.issued = [0, 0]
        self.succeeded = [0, 0]
        self.rt_sum = [0.0, 0.0]
        self.record_keys: Optional[List[bytes]] = [] if track_keys else None


class QueryAccounting:
    """Streaming per-window / lifetime query aggregates.

    Owned by the overlay network, which feeds it three event streams
    (issue, first response, minute rollover) and applies the retirement
    lists it returns. Collectors read ``rows`` -- they never scan records.
    """

    def __init__(self, *, grace_minutes: int = 1, retire_records: bool = True) -> None:
        if grace_minutes < 0:
            raise ConfigError("grace_minutes must be non-negative")
        self.grace_minutes = grace_minutes
        self.retire_records = retire_records
        self.rows: List[MinuteMetrics] = []
        self.late_responses = 0
        self._totals = [ClassTotals(), ClassTotals()]
        self._buckets: Dict[int, _WindowBucket] = {}
        self._rolls = 0
        self._roll_times: List[float] = [0.0]
        self._last_messages = 0
        self._last_bytes = 0

    # ------------------------------------------------------------------
    def configure_grace(self, grace_minutes: int) -> None:
        """Adjust the grace window; only valid before the first rollover."""
        if grace_minutes < 0:
            raise ConfigError("grace_minutes must be non-negative")
        if grace_minutes == self.grace_minutes:
            return
        if self._rolls > 0:
            raise ConfigError(
                "cannot change grace_minutes after the first minute rollover "
                f"(have {self.grace_minutes}, requested {grace_minutes})"
            )
        self.grace_minutes = grace_minutes

    # ------------------------------------------------------------------
    # event stream
    # ------------------------------------------------------------------
    def on_issued(self, key: bytes, is_attack: bool) -> int:
        """Record one issued query; returns its window index."""
        cls = ATTACK if is_attack else GOOD
        totals = self._totals[cls]
        totals.issued += 1
        window = self._rolls
        bucket = self._buckets.get(window)
        if bucket is None:
            bucket = self._buckets[window] = _WindowBucket(
                window, self.retire_records
            )
        bucket.issued[cls] += 1
        if bucket.record_keys is not None:
            bucket.record_keys.append(key)
        return window

    def on_issued_many(self, count: int, is_attack: bool) -> int:
        """Bulk :meth:`on_issued` for ``count`` keyless queries.

        Used by the batched SoA backend, whose attack generators issue
        whole per-second batches in one call. Requires record retirement
        to be off (there are no per-query keys to track), which keeps the
        retirement contract sound.
        """
        if count < 0:
            raise ConfigError("count must be non-negative")
        if self.retire_records:
            raise ConfigError(
                "on_issued_many requires retire_records=False (bulk issues "
                "carry no record keys to retire)"
            )
        cls = ATTACK if is_attack else GOOD
        self._totals[cls].issued += count
        window = self._rolls
        bucket = self._buckets.get(window)
        if bucket is None:
            bucket = self._buckets[window] = _WindowBucket(
                window, self.retire_records
            )
        bucket.issued[cls] += count
        return window

    def on_first_response(
        self, window: int, is_attack: bool, response_time: float
    ) -> None:
        """Record the first response for a query issued in ``window``."""
        cls = ATTACK if is_attack else GOOD
        bucket = self._buckets.get(window)
        if bucket is None:
            # The window was already finalized (only reachable when record
            # retirement is off and a response straggles past the grace
            # cutoff). The row is immutable history; count and move on.
            self.late_responses += 1
            return
        bucket.succeeded[cls] += 1
        bucket.rt_sum[cls] += response_time
        totals = self._totals[cls]
        totals.succeeded += 1
        totals.response_time_sum += response_time

    def on_minute_rolled(
        self, now: float, messages_delivered: int, bytes_transferred: int
    ) -> Sequence[bytes]:
        """Advance the window clock; finalize the window leaving grace.

        Returns the record keys to retire from the live query table
        (empty when nothing finalized or retirement is off).
        """
        self._rolls += 1
        self._roll_times.append(now)
        target = self._rolls - self.grace_minutes  # 1-based window number
        if target < 1:
            return ()
        bucket = self._buckets.pop(target - 1, None)
        if bucket is None:
            bucket = _WindowBucket(target - 1, track_keys=False)
        g, a = GOOD, ATTACK
        self.rows.append(
            MinuteMetrics(
                minute=target,
                time_s=self._roll_times[target],
                messages=messages_delivered - self._last_messages,
                bytes_transferred=bytes_transferred - self._last_bytes,
                queries_issued=bucket.issued[g],
                queries_succeeded=bucket.succeeded[g],
                mean_response_time_s=(
                    bucket.rt_sum[g] / bucket.succeeded[g]
                    if bucket.succeeded[g]
                    else None
                ),
                attack_queries_issued=bucket.issued[a],
                attack_queries_succeeded=bucket.succeeded[a],
                attack_mean_response_time_s=(
                    bucket.rt_sum[a] / bucket.succeeded[a]
                    if bucket.succeeded[a]
                    else None
                ),
            )
        )
        self._last_messages = messages_delivered
        self._last_bytes = bytes_transferred
        return bucket.record_keys or ()

    # ------------------------------------------------------------------
    # whole-run summaries
    # ------------------------------------------------------------------
    def totals(self, traffic: str = "good") -> ClassTotals:
        """Lifetime aggregates for ``traffic`` in {'good', 'attack', 'all'}."""
        if traffic == "good":
            return self._totals[GOOD]
        if traffic == "attack":
            return self._totals[ATTACK]
        if traffic == "all":
            return self._totals[GOOD].merged_with(self._totals[ATTACK])
        raise ConfigError(
            f"unknown traffic class {traffic!r} (expected one of {TRAFFIC_CLASSES})"
        )

    def success_rate(self, traffic: str = "good") -> float:
        return self.totals(traffic).success_rate

    def mean_response_time(self, traffic: str = "good") -> Optional[float]:
        return self.totals(traffic).mean_response_time

    @property
    def live_window_count(self) -> int:
        """Number of unfinalized window buckets (bounded by grace + 1)."""
        return len(self._buckets)
