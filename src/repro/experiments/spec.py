"""Declarative experiment specs, backend registry, and the shared pipeline.

This module makes experiments *data*. An :class:`ExperimentSpec` is a
frozen, JSON-serializable description of one experiment -- scenario id,
scale, sweep grid, defense (police) layer, workload layer, fault layer,
and table selectors -- decoupled from the engine that executes it. Two
engines implement the :class:`Backend` protocol:

* ``fluid`` -- the per-minute fluid-flow model (:mod:`repro.fluid`),
  used for every paper figure at scale;
* ``des``   -- the message-level discrete-event runner
  (:mod:`repro.experiments.runner`), used for the fault sweep and for
  cross-validating fluid results at small N.

Both consume the backend-neutral :class:`Case` (one simulation run) and
return a :class:`CaseResult`; scenario drivers in
:mod:`repro.experiments.library` expand a spec into a flat case list,
fan it out through :func:`repro.exec.pmap` (``workers=1`` stays
byte-identical), and aggregate.

Specs round-trip through canonical JSON (:func:`spec_to_jsonable` /
:func:`spec_from_jsonable`) and support dotted-path overrides validated
against the dataclass tree (:func:`apply_overrides`) -- unknown keys and
invariant violations raise :class:`~repro.errors.ConfigError` naming the
offending path, *before* any worker process starts.
"""

from __future__ import annotations

import dataclasses
import enum
import typing
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.attack.adaptive import ADAPTIVE_STRATEGIES, AdaptiveConfig
from repro.attack.cheating import CheatStrategy
from repro.baselines.traceback import TracebackConfig
from repro.core.config import DDPoliceConfig
from repro.errors import ConfigError, MetricsError
from repro.exec import ExecStats, pmap
from repro.experiments.scenarios import (
    FaultSweepSpec,
    MatrixSpec,
    Scale,
    bench_scale,
)
from repro.faults.plan import FaultPlan
from repro.live.spec import LiveSpec
from repro.obs.config import ObsConfig
from repro.obs.manifest import config_sha256, jsonable_config
from repro.simkit.rng import derive_seed


# ---------------------------------------------------------------------------
# layer dataclasses
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """Workload layer: how good peers and agents generate traffic.

    The fluid backend reads ``issue_rate_qpm`` / ``attack_nominal_qpm``
    (the paper's 0.3 and 20,000 queries/min); the DES backend reads
    ``queries_per_minute`` / ``attack_rate_qpm`` (scaled-down absolutes
    for small-N message-level runs). ``cheat_strategy`` names a
    :class:`~repro.attack.cheating.CheatStrategy` value.
    """

    issue_rate_qpm: float = 0.3
    attack_nominal_qpm: float = 20_000.0
    queries_per_minute: float = 0.3
    attack_rate_qpm: float = 2_000.0
    cheat_strategy: str = "silent"
    #: Per-peer processing capacity (queries/min); the paper's Section
    #: 2.3 anchor. Both backends honor it, so scaled-down cross-backend
    #: runs can keep the attack/capacity *ratio* instead of the paper's
    #: absolute rates.
    capacity_qpm: float = 10_000.0

    def __post_init__(self) -> None:
        if self.issue_rate_qpm < 0:
            raise ConfigError("issue_rate_qpm must be non-negative")
        if self.capacity_qpm <= 0:
            raise ConfigError("capacity_qpm must be positive")
        if self.attack_nominal_qpm <= 0:
            raise ConfigError("attack_nominal_qpm must be positive")
        if self.queries_per_minute <= 0:
            raise ConfigError("queries_per_minute must be positive")
        if self.attack_rate_qpm <= 0:
            raise ConfigError("attack_rate_qpm must be positive")
        try:
            CheatStrategy(self.cheat_strategy)
        except ValueError:
            valid = ", ".join(s.value for s in CheatStrategy)
            raise ConfigError(
                f"unknown cheat_strategy {self.cheat_strategy!r} (valid: {valid})"
            )

    @property
    def cheat(self) -> CheatStrategy:
        return CheatStrategy(self.cheat_strategy)


@dataclass(frozen=True)
class GridSpec:
    """Sweep grid layer: the x-axes of the figure scenarios.

    The registered specs set their sweep tuples explicitly; an empty
    ``cut_thresholds``/``periods_min`` is taken verbatim (an empty
    sweep), while empty ``agent_counts``, zero ``agents``, and zero
    ``minutes`` mean "derive from the scale" (the historical behaviour
    of the figure functions).
    """

    #: Figures 9-11 agent counts; empty = the paper densities at scale.
    agent_counts: Tuple[int, ...] = ()
    #: Figures 12-14 agent density (the paper's 100/20,000 = 0.5%).
    agent_fraction: float = 0.005
    #: Explicit agent count for the timeline scenarios; 0 = derive the
    #: count from ``agent_fraction`` at the active scale.
    agents: int = 0
    #: Cut thresholds swept by Figures 12-14.
    cut_thresholds: Tuple[float, ...] = ()
    #: Periodic exchange periods in minutes (Section 3.7.1).
    periods_min: Tuple[int, ...] = ()
    #: Fault-sweep evidence profiles; empty = ("paper", "hardened").
    profiles: Tuple[str, ...] = ()
    #: Robustness-matrix adversary strategies; empty = scenario default.
    adversaries: Tuple[str, ...] = ()
    #: Robustness-matrix overlay topology models; empty = scenario default.
    topologies: Tuple[str, ...] = ()
    #: Robustness-matrix defense rows; empty = scenario default.
    defenses: Tuple[str, ...] = ()
    #: Sketch-frontier count-min widths (cells per row) swept against
    #: the exact baseline; empty = scenario default.
    cm_widths: Tuple[int, ...] = ()
    #: Sketch-frontier attack rates (qpm per agent); empty = scenario
    #: default.
    attack_rates_qpm: Tuple[float, ...] = ()
    #: Simulated minutes; 0 = derive from the scale.
    minutes: int = 0

    #: Valid robustness-matrix axis values (checked at spec-parse time so
    #: a typo'd ``--set grid.adversaries=...`` fails before any run).
    _MATRIX_TOPOLOGIES = ("ba", "waxman", "random", "two_tier", "hard_cutoff", "bittorrent")
    _MATRIX_DEFENSES = ("paper", "hardened", "traceback")

    def __post_init__(self) -> None:
        if any(k < 0 for k in self.agent_counts):
            raise ConfigError("agent_counts must be non-negative")
        if not (0.0 < self.agent_fraction <= 1.0):
            raise ConfigError("agent_fraction must be in (0, 1]")
        if self.agents < 0:
            raise ConfigError("agents must be non-negative")
        if any(ct <= 0 for ct in self.cut_thresholds):
            raise ConfigError("cut_thresholds must be positive")
        if any(p < 1 for p in self.periods_min):
            raise ConfigError("periods_min must be >= 1")
        for adv in self.adversaries:
            if adv not in ADAPTIVE_STRATEGIES:
                raise ConfigError(
                    f"adversaries: unknown strategy {adv!r} "
                    f"(valid: {', '.join(ADAPTIVE_STRATEGIES)})"
                )
        for topo in self.topologies:
            if topo not in self._MATRIX_TOPOLOGIES:
                raise ConfigError(
                    f"topologies: unknown model {topo!r} "
                    f"(valid: {', '.join(self._MATRIX_TOPOLOGIES)})"
                )
        for d in self.defenses:
            if d not in self._MATRIX_DEFENSES:
                raise ConfigError(
                    f"defenses: unknown defense {d!r} "
                    f"(valid: {', '.join(self._MATRIX_DEFENSES)})"
                )
        if any(w < 1 for w in self.cm_widths):
            raise ConfigError("cm_widths must be >= 1")
        if any(r <= 0 for r in self.attack_rates_qpm):
            raise ConfigError("attack_rates_qpm must be positive")
        if self.minutes < 0:
            raise ConfigError("minutes must be non-negative")


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: everything but the engine.

    ``scenario`` names a registered scenario driver (see
    :mod:`repro.experiments.library`); ``backend`` names a registered
    :class:`Backend`. ``tables`` selects which of the scenario's output
    tables to render (empty = all). The remaining fields are the
    override layers: ``scale``, ``police`` (defense), ``workload``,
    ``faults``, and the sweep ``grid``.
    """

    name: str
    scenario: str
    title: str = ""
    backend: str = "fluid"
    seed: int = 0
    trials: int = 1
    scale: Scale = field(default_factory=bench_scale)
    police: DDPoliceConfig = DDPoliceConfig()
    workload: WorkloadSpec = WorkloadSpec()
    faults: FaultSweepSpec = FaultSweepSpec(
        name="bench",
        n_peers=40,
        sim_minutes=6,
        attack_start_min=2,
        trials=3,
        loss_fractions=(0.0, 0.1, 0.2, 0.3),
        crash_counts=(0, 2),
        num_agents=2,
        attack_rate_qpm=600.0,
    )
    #: Adaptive-adversary layer (robustness matrix; "static" elsewhere).
    adversary: AdaptiveConfig = AdaptiveConfig()
    #: Robustness-matrix sizing (DES; mirrors the ``faults`` pattern).
    matrix: MatrixSpec = MatrixSpec(
        name="bench",
        n_peers=30,
        sim_minutes=6,
        attack_start_min=2,
        trials=2,
        num_agents=2,
        attack_rate_qpm=600.0,
    )
    #: PPM traceback baseline parameters (the matrix's third defense).
    traceback: TracebackConfig = TracebackConfig()
    #: Real-socket swarm sizing (``live`` backend only; others ignore
    #: it). The default matches the default ``bench`` scale the same
    #: way ``live_grid_for`` does for ``--scale``.
    live: LiveSpec = LiveSpec(
        name="bench", n_nodes=200, minute_s=2.0, drain_timeout_s=20.0
    )
    grid: GridSpec = GridSpec()
    tables: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("spec name must be non-empty")
        if not self.scenario:
            raise ConfigError("spec scenario must be non-empty")
        if self.trials < 1:
            raise ConfigError("trials must be >= 1")
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")
        # k > n is a spec bug, not a runtime surprise: reject it here so
        # a bad --set override dies at parse time, naming the path.
        n = self.scale.n_peers
        if self.grid.agents > n:
            raise ConfigError(
                f"grid.agents: cannot compromise {self.grid.agents} of "
                f"{n} peers (k must not exceed scale.n_peers)"
            )
        for k in self.grid.agent_counts:
            if k > n:
                raise ConfigError(
                    f"grid.agent_counts: cannot compromise {k} of "
                    f"{n} peers (k must not exceed scale.n_peers)"
                )


def spec_sha256(spec: ExperimentSpec) -> str:
    """SHA-256 of the spec's canonical JSON form (the provenance key)."""
    return config_sha256(spec)


def scenario_sha256(spec: ExperimentSpec) -> str:
    """Hash of the spec *minus* presentation fields (name/title/tables).

    Two specs with the same scenario hash run the exact same
    simulations, so scenario results can be shared between them (e.g.
    fig9/fig10/fig11 all project the one agent sweep).
    """
    return config_sha256(replace(spec, name="_", title="", tables=()))


# ---------------------------------------------------------------------------
# spec <-> JSON round-trip
# ---------------------------------------------------------------------------

def spec_to_jsonable(spec: ExperimentSpec) -> Dict[str, Any]:
    """Canonical JSON-able form of a spec (dicts/lists/primitives)."""
    return jsonable_config(spec)


def _convert(value: Any, target: Any, path: str) -> Any:
    """Convert a JSON value into the typed field ``target`` at ``path``."""
    origin = typing.get_origin(target)
    if origin is Union:  # Optional[T]
        args = [a for a in typing.get_args(target) if a is not type(None)]
        if value is None:
            return None
        return _convert(value, args[0], path)
    if origin is tuple:
        item = typing.get_args(target)[0]
        if not isinstance(value, (list, tuple)):
            raise ConfigError(f"{path}: expected a list, got {value!r}")
        return tuple(_convert(v, item, f"{path}[{i}]") for i, v in enumerate(value))
    if isinstance(target, type) and issubclass(target, enum.Enum):
        try:
            return target(value)
        except ValueError:
            valid = ", ".join(repr(m.value) for m in target)
            raise ConfigError(f"{path}: {value!r} is not one of {valid}")
    if dataclasses.is_dataclass(target):
        if not isinstance(value, Mapping):
            raise ConfigError(f"{path}: expected an object, got {value!r}")
        return build_dataclass(target, value, path=path)
    if target is bool:
        if not isinstance(value, bool):
            raise ConfigError(f"{path}: expected a boolean, got {value!r}")
        return value
    if target is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigError(f"{path}: expected an integer, got {value!r}")
        return value
    if target is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigError(f"{path}: expected a number, got {value!r}")
        return float(value)
    if target is str:
        if not isinstance(value, str):
            raise ConfigError(f"{path}: expected a string, got {value!r}")
        return value
    raise ConfigError(f"{path}: unsupported field type {target!r}")


def build_dataclass(cls: type, doc: Mapping[str, Any], *, path: str = "") -> Any:
    """Rebuild dataclass ``cls`` from a JSON mapping, strictly typed.

    Unknown keys raise :class:`ConfigError` listing the valid field
    names; ``__post_init__`` invariant violations are re-raised with the
    offending path prefixed.
    """
    hints = typing.get_type_hints(cls)
    names = [f.name for f in dataclasses.fields(cls)]
    unknown = sorted(set(doc) - set(names))
    if unknown:
        raise ConfigError(
            f"unknown key(s) {', '.join(repr(f'{path}.{k}' if path else k) for k in unknown)}; "
            f"valid keys under {path or cls.__name__!r}: {', '.join(names)}"
        )
    kwargs = {
        name: _convert(doc[name], hints[name], f"{path}.{name}" if path else name)
        for name in names
        if name in doc
    }
    try:
        return cls(**kwargs)
    except ConfigError as exc:
        prefix = f"{path}: " if path else ""
        raise ConfigError(f"{prefix}{exc}") from exc


def spec_from_jsonable(doc: Mapping[str, Any]) -> ExperimentSpec:
    """Inverse of :func:`spec_to_jsonable` (strict: unknown keys raise)."""
    return build_dataclass(ExperimentSpec, doc, path="spec")


# ---------------------------------------------------------------------------
# dotted-path overrides
# ---------------------------------------------------------------------------

def parse_assignments(pairs: Sequence[str]) -> Dict[str, str]:
    """Parse ``["a.b=1", ...]`` CLI assignments into an ordered mapping."""
    out: Dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigError(
                f"bad --set assignment {pair!r} (expected dotted.path=value)"
            )
        out[key] = value.strip()
    return out


def _coerce(text: Any, target: Any, path: str) -> Any:
    """Coerce a CLI string into the typed field ``target``."""
    if not isinstance(text, str):
        # Programmatic override with a real value: strict-convert it.
        return _convert(
            jsonable_config(text) if dataclasses.is_dataclass(text) else text,
            target,
            path,
        )
    origin = typing.get_origin(target)
    if origin is Union:  # Optional[T]
        args = [a for a in typing.get_args(target) if a is not type(None)]
        if text.lower() in ("none", "null"):
            return None
        return _coerce(text, args[0], path)
    if origin is tuple:
        item = typing.get_args(target)[0]
        parts = [p.strip() for p in text.split(",") if p.strip()]
        return tuple(_coerce(p, item, path) for p in parts)
    if isinstance(target, type) and issubclass(target, enum.Enum):
        try:
            return target(text)
        except ValueError:
            valid = ", ".join(repr(m.value) for m in target)
            raise ConfigError(f"{path}: {text!r} is not one of {valid}")
    if dataclasses.is_dataclass(target):
        raise ConfigError(
            f"{path} is a config section, not a value; set one of its "
            f"fields ({', '.join(f.name for f in dataclasses.fields(target))})"
        )
    if target is bool:
        low = text.lower()
        if low in ("true", "1", "yes", "on"):
            return True
        if low in ("false", "0", "no", "off"):
            return False
        raise ConfigError(f"{path}: {text!r} is not a boolean (true/false)")
    if target is int:
        try:
            return int(text)
        except ValueError:
            raise ConfigError(f"{path}: {text!r} is not an integer")
    if target is float:
        try:
            return float(text)
        except ValueError:
            raise ConfigError(f"{path}: {text!r} is not a number")
    if target is str:
        return text
    raise ConfigError(f"{path}: unsupported field type {target!r}")


def _set_path(obj: Any, parts: Sequence[str], value: Any, path: str) -> Any:
    """Rebuild ``obj`` with ``parts`` (a dotted path) replaced by value."""
    name, rest = parts[0], parts[1:]
    hints = typing.get_type_hints(type(obj))
    names = [f.name for f in dataclasses.fields(obj)]
    if name not in names:
        where = path.rsplit(".", len(rest) + 1)[0] if "." in path else "the spec"
        raise ConfigError(
            f"unknown key {path!r}: no field {name!r} under {where}; "
            f"valid keys: {', '.join(names)}"
        )
    if rest:
        child = getattr(obj, name)
        if not dataclasses.is_dataclass(child):
            raise ConfigError(
                f"{path}: {name!r} is a plain value, not a config section"
            )
        new_child = _set_path(child, rest, value, path)
    else:
        new_child = _coerce(value, hints[name], path)
    try:
        return replace(obj, **{name: new_child})
    except ConfigError as exc:
        raise ConfigError(f"invalid --set {path}: {exc}") from exc


def apply_overrides(
    spec: ExperimentSpec, overrides: Mapping[str, Any]
) -> ExperimentSpec:
    """Apply dotted-path overrides to a spec, validating every step.

    Values may be CLI strings (coerced by field type: ``int``/``float``/
    ``bool``/enums; comma-separated lists for tuple fields) or real
    Python values. Unknown paths and dataclass invariant violations
    raise :class:`ConfigError` naming the offending dotted path.
    """
    for key, value in overrides.items():
        parts = [p for p in key.split(".") if p]
        if not parts:
            raise ConfigError(f"empty --set path {key!r}")
        spec = _set_path(spec, parts, value, key)
    return spec


def override_paths(cls: type = ExperimentSpec, prefix: str = "") -> List[str]:
    """Every settable dotted path of a spec (leaves of the tree)."""
    out: List[str] = []
    hints = typing.get_type_hints(cls)
    for f in dataclasses.fields(cls):
        target = hints[f.name]
        dotted = f"{prefix}{f.name}"
        if dataclasses.is_dataclass(target) and isinstance(target, type):
            out.extend(override_paths(target, f"{dotted}."))
        else:
            out.append(dotted)
    return out


# ---------------------------------------------------------------------------
# backend-neutral cases
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Case:
    """One simulation run, described independently of the engine."""

    n: int
    minutes: int
    seed: int
    num_agents: int = 0
    attack_start_min: int = 0
    defense: str = "none"
    police: DDPoliceConfig = DDPoliceConfig()
    exchange_period_min: int = 2
    workload: WorkloadSpec = WorkloadSpec()
    #: Fault schedule (DES backend only; fluid ignores it).
    faults: FaultPlan = FaultPlan()
    #: DES topology attachment parameter override (None = default).
    ba_m: Optional[int] = None
    #: DES topology model override (None = default BA); the fluid
    #: backend is topology-free and rejects any override.
    topology: Optional[str] = None
    #: Adaptive-adversary behaviour (DES backend only).
    adaptive: AdaptiveConfig = AdaptiveConfig()
    #: PPM traceback parameters (used when ``defense == "traceback"``).
    traceback: TracebackConfig = TracebackConfig()
    #: First minute of the steady-state window; None skips steady means.
    settle_min: Optional[int] = None
    obs: Optional[ObsConfig] = None
    #: Real-socket swarm sizing (``live`` backend only; others ignore it).
    live: LiveSpec = LiveSpec()

    def __post_init__(self) -> None:
        if not (0 <= self.num_agents <= self.n):
            raise ConfigError(
                f"num_agents: cannot compromise {self.num_agents} of "
                f"{self.n} peers (k must not exceed n)"
            )


@dataclass(frozen=True)
class CaseResult:
    """What every backend reports back for one case."""

    #: Per-minute (time, success-rate) samples. The fluid backend uses
    #: integer minutes; DES uses the collector's second timestamps.
    rows: Tuple[Tuple[float, float], ...]
    #: (traffic k-msgs/min, response s, success) means over the
    #: steady-state window, when ``settle_min`` was given.
    steady: Optional[Tuple[float, float, float]]
    false_negative: int
    false_positive: int
    #: Mean online population (fluid; the exchange-overhead model).
    online_mean: float
    #: Total churn events (fluid; the event-driven overhead model).
    churn_events: int
    #: Mean seconds from attack start to each attacker's first
    #: disconnection, *censored*: an attacker never caught contributes
    #: the full remaining run (duration - attack_start), so total
    #: evasion reads as the worst possible latency rather than
    #: vanishing from the mean. None when the case had no attackers.
    detection_latency_s: Optional[float] = None
    caught_attackers: int = 0
    total_attackers: int = 0
    #: Bytes of DD-POLICE traffic-evidence state (exact per-edge minute
    #: windows or count-min cells); 0 when the backend does not report it.
    evidence_bytes: int = 0


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------

def steady_means(rows: Sequence[Any], first_minute: int) -> Tuple[float, float, float]:
    """(traffic k-msgs/min, response s, success) averaged from a minute on.

    Raises :class:`~repro.errors.MetricsError` when no row lies at or
    after ``first_minute`` (the steady-state window is empty).
    """
    sel = [r for r in rows if r.minute >= first_minute]
    if not sel:
        last = rows[-1].minute if rows else None
        raise MetricsError(
            f"no steady-state rows at minute >= {first_minute} "
            f"(last simulated minute: {last})"
        )
    k = len(sel)
    return (
        sum(r.traffic_cost_kqpm for r in sel) / k,
        sum(r.response_time_s for r in sel) / k,
        sum(r.success_rate for r in sel) / k,
    )


def fluid_case_result(
    cfg: Any, minutes: int, settle_min: Optional[int] = None
) -> CaseResult:
    """Run one :class:`~repro.fluid.model.FluidConfig` and extract results.

    The shared engine step behind the ``fluid`` backend and the legacy
    figure task shims -- one implementation, one extraction contract.
    """
    from repro.fluid.model import FluidSimulation

    sim = FluidSimulation(cfg)
    sim.run(minutes)
    errors = sim.error_counts()
    steady = steady_means(sim.rows, settle_min) if settle_min is not None else None
    result = CaseResult(
        rows=tuple((r.minute, r.success_rate) for r in sim.rows),
        steady=steady,
        false_negative=errors.false_negative,
        false_positive=errors.false_positive,
        online_mean=sim.mean_over(1, "online") if minutes > 1 else 0.0,
        churn_events=sim.state.joins + sim.state.leaves,
    )
    sim.close_obs()
    return result


def fluid_metrics_task(
    task: Tuple[Any, int, Mapping[str, Callable[[Any], float]]],
) -> Dict[str, float]:
    """One generic sweep trial (pure): ``(cfg, minutes, extractors)``.

    Runs the fluid config and applies every named extractor to the
    finished simulation. The task function behind
    :func:`repro.experiments.sweeps.run_point`/``sweep`` -- module-level
    so it pickles across :func:`repro.exec.pmap` workers.
    """
    from repro.fluid.model import FluidSimulation

    cfg, minutes, metrics = task
    sim = FluidSimulation(cfg)
    sim.run(minutes)
    out = {name: float(extractor(sim)) for name, extractor in metrics.items()}
    sim.close_obs()
    return out


def _fluid_case_task(case: Case) -> CaseResult:
    """One fluid-model case (pure, picklable): build config, run, extract."""
    from repro.fluid.model import FluidConfig

    # The fluid model is topology-free, simulates the *static* flooder,
    # and aggregates Neighbor_Traffic without per-report collusion
    # semantics -- reject matrix-only features loudly rather than run a
    # simulation that silently ignores them.
    if case.adaptive.strategy != "static":
        raise ConfigError(
            f"backend 'fluid' cannot simulate adaptive strategy "
            f"{case.adaptive.strategy!r} (DES only)"
        )
    if case.topology is not None:
        raise ConfigError(
            f"backend 'fluid' is topology-free; cannot honor topology "
            f"{case.topology!r} (DES only)"
        )
    if case.defense == "traceback":
        raise ConfigError("backend 'fluid' has no traceback defense (DES only)")
    if case.workload.cheat is CheatStrategy.COLLUDE:
        raise ConfigError(
            "backend 'fluid' cannot simulate cheat_strategy 'collude' (DES only)"
        )
    kwargs: Dict[str, Any] = dict(
        n=case.n,
        seed=case.seed,
        num_agents=case.num_agents,
        attack_start_min=case.attack_start_min,
        defense=case.defense,
        police=case.police,
        exchange_period_min=case.exchange_period_min,
        issue_rate_qpm=case.workload.issue_rate_qpm,
        attack_nominal_qpm=case.workload.attack_nominal_qpm,
        capacity_qpm=case.workload.capacity_qpm,
        cheat_strategy=case.workload.cheat,
    )
    if case.obs is not None:
        kwargs["obs"] = case.obs
    return fluid_case_result(FluidConfig(**kwargs), case.minutes, case.settle_min)


def des_case_result(cfg: Any, settle_min: Optional[int] = None) -> CaseResult:
    """Run one :class:`~repro.experiments.runner.DESConfig` and extract.

    The shared engine step behind the ``des`` backend and the legacy
    fault-sweep task shim.
    """
    from repro.experiments.runner import run_des_experiment

    return _extract_case_result(run_des_experiment(cfg), cfg, settle_min)


def soa_case_result(cfg: Any, settle_min: Optional[int] = None) -> CaseResult:
    """Run one config on the batched SoA engine and extract.

    Same extraction contract as :func:`des_case_result` -- the two run
    objects expose the same collector/judgment surface by design.
    """
    from repro.overlay.soa_network import run_soa_experiment

    return _extract_case_result(run_soa_experiment(cfg), cfg, settle_min)


def _extract_case_result(
    run: Any, cfg: Any, settle_min: Optional[int] = None
) -> CaseResult:
    """Map a finished message/SoA run to the backend result contract."""
    success = run.collector.success_series()
    if run.judgments is not None:
        errors = run.error_counts()
        fn, fp = errors.false_negative, errors.false_positive
    else:
        fn = fp = 0
    latency: Optional[float] = None
    caught = 0
    if run.bad_peers:
        first_cut: Dict[Any, float] = {}
        if run.judgments is not None:
            for j in run.judgments.judgments:
                if j.disconnected and j.suspect in run.bad_peers:
                    if j.suspect not in first_cut or j.time < first_cut[j.suspect]:
                        first_cut[j.suspect] = j.time
        caught = len(first_cut)
        # Censored mean: an attacker that evades detection for the whole
        # run contributes (duration - attack_start), so "never caught"
        # is numerically worse than any real detection.
        censored = cfg.duration_s - cfg.attack_start_s
        samples = [
            max(0.0, first_cut[b] - cfg.attack_start_s) if b in first_cut else censored
            for b in sorted(run.bad_peers, key=lambda p: p.value)
        ]
        latency = sum(samples) / len(samples)
    steady: Optional[Tuple[float, float, float]] = None
    if settle_min is not None:
        settle_s = settle_min * 60.0
        horizon = cfg.duration_s + 1.0
        traffic = run.collector.traffic_series().window(settle_s, horizon)
        response = run.collector.response_series().window(settle_s, horizon)
        succ = success.window(settle_s, horizon)
        steady = (
            (traffic.mean() / 1000.0) if len(traffic) else 0.0,
            response.mean() if len(response) else 0.0,
            succ.mean() if len(succ) else 0.0,
        )
    return CaseResult(
        rows=tuple(success),
        steady=steady,
        false_negative=fn,
        false_positive=fp,
        online_mean=0.0,
        churn_events=0,
        detection_latency_s=latency,
        caught_attackers=caught,
        total_attackers=len(run.bad_peers),
        evidence_bytes=int(getattr(run, "evidence_bytes", 0)),
    )


def _des_case_task(case: Case) -> CaseResult:
    """One message-level case (pure, picklable): build config, run, extract."""
    from repro.experiments.runner import DESConfig
    from repro.overlay.network import NetworkConfig
    from repro.overlay.topology import TopologyConfig
    from repro.workload.generator import WorkloadConfig

    topo_kwargs: Dict[str, Any] = dict(n=case.n, seed=case.seed)
    if case.ba_m is not None:
        topo_kwargs["ba_m"] = case.ba_m
    if case.topology is not None:
        topo_kwargs["model"] = case.topology
    topology = TopologyConfig(**topo_kwargs)
    kwargs: Dict[str, Any] = dict(
        n=case.n,
        duration_s=case.minutes * 60.0,
        seed=case.seed,
        topology=topology,
        network=NetworkConfig(processing_qpm_good=case.workload.capacity_qpm),
        workload=WorkloadConfig(
            queries_per_minute=case.workload.queries_per_minute, seed=case.seed
        ),
        num_agents=case.num_agents,
        attack_start_s=case.attack_start_min * 60.0,
        attack_rate_qpm=case.workload.attack_rate_qpm,
        cheat_strategy=case.workload.cheat,
        adaptive=case.adaptive,
        defense=case.defense,
        police=case.police,
        traceback=case.traceback,
        faults=case.faults,
    )
    if case.obs is not None:
        kwargs["obs"] = case.obs
    return des_case_result(DESConfig(**kwargs), case.settle_min)


def _soa_case_task(case: Case) -> CaseResult:
    """One batched SoA case (pure, picklable): build config, run, extract.

    Builds the same :class:`DESConfig` as the ``des`` backend except that
    hop-latency jitter is pinned to zero -- the wave-batched engine
    coalesces same-timestamp deliveries, which requires the deterministic
    hop grid. Unsupported feature combinations (churn, faults, traceback,
    non-silent cheats, ...) are rejected loudly by the engine itself.
    """
    from repro.experiments.runner import DESConfig
    from repro.overlay.network import NetworkConfig
    from repro.overlay.topology import TopologyConfig
    from repro.workload.generator import WorkloadConfig

    topo_kwargs: Dict[str, Any] = dict(n=case.n, seed=case.seed)
    if case.ba_m is not None:
        topo_kwargs["ba_m"] = case.ba_m
    if case.topology is not None:
        topo_kwargs["model"] = case.topology
    topology = TopologyConfig(**topo_kwargs)
    kwargs: Dict[str, Any] = dict(
        n=case.n,
        duration_s=case.minutes * 60.0,
        seed=case.seed,
        topology=topology,
        network=NetworkConfig(
            processing_qpm_good=case.workload.capacity_qpm,
            hop_latency_jitter_s=0.0,
        ),
        workload=WorkloadConfig(
            queries_per_minute=case.workload.queries_per_minute, seed=case.seed
        ),
        num_agents=case.num_agents,
        attack_start_s=case.attack_start_min * 60.0,
        attack_rate_qpm=case.workload.attack_rate_qpm,
        cheat_strategy=case.workload.cheat,
        adaptive=case.adaptive,
        defense=case.defense,
        police=case.police,
        traceback=case.traceback,
        faults=case.faults,
    )
    if case.obs is not None:
        kwargs["obs"] = case.obs
    return soa_case_result(DESConfig(**kwargs), case.settle_min)


def _live_case_task(case: Case) -> CaseResult:
    """One real-socket swarm case (pure, picklable): spawn, babysit, extract.

    The heavy import stays lazy so ``pmap`` workers that never run a
    live case don't pay for (or require) the asyncio/socket machinery.
    Unsupported feature combinations (faults, adaptive adversaries,
    traceback, collusion) are rejected loudly by the runner.
    """
    from repro.live.runner import run_live_case

    return run_live_case(case)


@dataclass(frozen=True)
class Backend:
    """A registered execution engine for :class:`Case` lists."""

    name: str
    #: Module-level pure function mapping a case to its result (must be
    #: picklable so :func:`repro.exec.pmap` can ship it to workers).
    task_fn: Callable[[Case], CaseResult]
    description: str = ""


_BACKENDS: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Register (or replace) a backend under ``backend.name``."""
    if not backend.name:
        raise ConfigError("backend name must be non-empty")
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look a backend up by name; unknown names list the valid ones."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigError(
            f"unknown backend {name!r} (registered: "
            f"{', '.join(sorted(_BACKENDS)) or 'none'})"
        )


def list_backends() -> List[Backend]:
    """All registered backends, sorted by name."""
    return [_BACKENDS[k] for k in sorted(_BACKENDS)]


register_backend(
    Backend(
        name="fluid",
        task_fn=_fluid_case_task,
        description="per-minute fluid-flow model (paper figures at scale)",
    )
)
register_backend(
    Backend(
        name="des",
        task_fn=_des_case_task,
        description="message-level discrete-event runner (small N, faults)",
    )
)
register_backend(
    Backend(
        name="des-soa",
        task_fn=_soa_case_task,
        description="batched struct-of-arrays flood engine (100k-1M peers)",
    )
)
register_backend(
    Backend(
        name="live",
        task_fn=_live_case_task,
        description="real-socket UDP testbed (node processes on localhost)",
    )
)


def run_cases(
    cases: Sequence[Case],
    *,
    backend: str = "fluid",
    workers: Optional[int] = None,
    stats: Optional[ExecStats] = None,
) -> List[CaseResult]:
    """Execute cases on a backend through the parallel executor.

    Results are in case order and bit-identical for any worker count
    (the :func:`repro.exec.pmap` contract).
    """
    return pmap(get_backend(backend).task_fn, list(cases), workers=workers, stats=stats)


# ---------------------------------------------------------------------------
# shared trial/grid/aggregation helpers
# ---------------------------------------------------------------------------

def trial_seed(seed0: int, trial: int) -> int:
    """Seed of independent trial ``trial`` under base seed ``seed0``."""
    return derive_seed(seed0, "trial", trial)


def aggregate(values: Sequence[float]) -> Tuple[float, float]:
    """(mean, sample stddev) of a non-empty sample list."""
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, var ** 0.5


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of a named grid, in sorted-key order."""
    names = sorted(grid)
    for name in names:
        if not grid[name]:
            raise ConfigError(f"no values for swept field {name!r}")
    combos: List[Dict[str, Any]] = []

    def product(idx: int, acc: Dict[str, Any]) -> None:
        if idx == len(names):
            combos.append(dict(acc))
            return
        for value in grid[names[idx]]:
            acc[names[idx]] = value
            product(idx + 1, acc)
        acc.pop(names[idx], None)

    product(0, {})
    return combos


# ---------------------------------------------------------------------------
# spec registry
# ---------------------------------------------------------------------------

_SPECS: Dict[str, ExperimentSpec] = {}


def register_spec(spec: ExperimentSpec) -> ExperimentSpec:
    """Register (or replace) a spec under ``spec.name``."""
    _SPECS[spec.name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    """Look a registered spec up by name (loading the default library)."""
    _ensure_library()
    try:
        return _SPECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown spec {name!r} (registered: "
            f"{', '.join(sorted(_SPECS)) or 'none'})"
        )


def list_specs() -> List[ExperimentSpec]:
    """All registered specs, sorted by name."""
    _ensure_library()
    return [_SPECS[k] for k in sorted(_SPECS)]


def _ensure_library() -> None:
    # The default spec library lives in repro.experiments.library, which
    # imports this module; import lazily to register its specs on first
    # lookup without a circular import at module load.
    import repro.experiments.library  # noqa: F401
