"""Generic parameter-sweep utilities with multi-trial aggregation.

The figure functions in :mod:`repro.experiments.figures` are specialized;
this module provides the general tool a downstream user wants: sweep any
:class:`FluidConfig` field(s) over a grid, run ``trials`` independent
seeds per point, and aggregate any row metric.

Every sweep is a flat list of *pure* (config -> metrics) tasks executed
through :func:`repro.exec.pmap`, so ``workers > 1`` (or
``REPRO_WORKERS``) fans the grid out over a process pool with results
bit-identical to the serial run. Per-trial seeds come from
:func:`repro.simkit.rng.derive_seed` -- ``derive_seed(seed0, "trial",
t)`` -- which, unlike the old ``seed0 + 1000 * trial`` convention,
cannot alias trials across base seeds that differ by multiples of 1000.
With ``workers > 1`` metric extractors must be picklable: module-level
functions or the :class:`RowMean` helpers, not lambdas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.exec import pmap
from repro.fluid.model import FluidConfig, FluidSimulation
from repro.obs.config import ObsConfig
from repro.simkit.rng import derive_seed


def trial_seed(seed0: int, trial: int) -> int:
    """Seed of independent trial ``trial`` under base seed ``seed0``."""
    return derive_seed(seed0, "trial", trial)


@dataclass(frozen=True)
class RowMean:
    """Picklable metric extractor: ``sim.mean_over(first_minute, attr)``.

    The lambda-based equivalents cannot cross a process boundary; this
    frozen dataclass can, so sweeps built from it parallelize.
    """

    first_minute: int
    attr: str

    def __call__(self, sim: FluidSimulation) -> float:
        return sim.mean_over(self.first_minute, self.attr)


def _metrics_task(
    task: Tuple[FluidConfig, int, Mapping[str, Callable[[FluidSimulation], float]]],
) -> Dict[str, float]:
    """One sweep trial: run the config, apply every extractor (pure)."""
    cfg, minutes, metrics = task
    sim = FluidSimulation(cfg)
    sim.run(minutes)
    out = {name: float(extractor(sim)) for name, extractor in metrics.items()}
    sim.close_obs()
    return out


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's aggregated results."""

    overrides: Mapping[str, Any]
    metrics: Mapping[str, float]
    stddevs: Mapping[str, float]
    trials: int

    def __getitem__(self, metric: str) -> float:
        return self.metrics[metric]


def _aggregate(values: Sequence[float]) -> Tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


def _point_from_samples(
    overrides: Mapping[str, Any],
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    sample_dicts: Sequence[Mapping[str, float]],
) -> SweepPoint:
    samples: Dict[str, List[float]] = {
        name: [d[name] for d in sample_dicts] for name in metrics
    }
    agg = {name: _aggregate(vals) for name, vals in samples.items()}
    return SweepPoint(
        overrides=dict(overrides),
        metrics={name: a[0] for name, a in agg.items()},
        stddevs={name: a[1] for name, a in agg.items()},
        trials=len(sample_dicts),
    )


def _trial_tasks(
    base: FluidConfig,
    overrides: Mapping[str, Any],
    minutes: int,
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    trials: int,
    seed0: int,
) -> List[Tuple[FluidConfig, int, Mapping[str, Callable[[FluidSimulation], float]]]]:
    return [
        (replace(base, seed=trial_seed(seed0, trial), **dict(overrides)), minutes, metrics)
        for trial in range(trials)
    ]


def run_point(
    base: FluidConfig,
    overrides: Mapping[str, Any],
    *,
    minutes: int,
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    trials: int = 1,
    seed0: int = 0,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> SweepPoint:
    """Run one configuration ``trials`` times and aggregate metrics.

    ``metrics`` maps a name to an extractor over the finished simulation
    (e.g. ``RowMean(10, "success_rate")``; lambdas work too but only
    serially). Trial ``t`` runs with seed ``derive_seed(seed0, "trial",
    t)``; trials execute through :func:`repro.exec.pmap` with the given
    ``workers`` (default: serial / ``$REPRO_WORKERS``). ``obs`` (if
    given) replaces the base config's observability settings for every
    trial.
    """
    if trials < 1:
        raise ConfigError("trials must be >= 1")
    if not metrics:
        raise ConfigError("at least one metric extractor required")
    if obs is not None:
        base = replace(base, obs=obs)
    tasks = _trial_tasks(base, overrides, minutes, metrics, trials, seed0)
    sample_dicts = pmap(_metrics_task, tasks, workers=workers)
    return _point_from_samples(overrides, metrics, sample_dicts)


def sweep(
    base: FluidConfig,
    grid: Mapping[str, Sequence[Any]],
    *,
    minutes: int,
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    trials: int = 1,
    seed0: int = 0,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[SweepPoint]:
    """Full-factorial sweep over ``grid`` (cartesian product of values).

    The whole (combos x trials) task list is dispatched through one
    :func:`repro.exec.pmap` call, so parallelism is available across the
    entire grid, not just within one point's trials.

    >>> from repro.fluid.model import FluidConfig
    >>> pts = sweep(
    ...     FluidConfig(n=300, churn_warmup_min=2),
    ...     {"num_agents": [0, 2]},
    ...     minutes=4,
    ...     metrics={"succ": lambda s: s.rows[-1].success_rate},
    ... )
    >>> len(pts)
    2
    """
    if not grid:
        raise ConfigError("empty sweep grid")
    if trials < 1:
        raise ConfigError("trials must be >= 1")
    if not metrics:
        raise ConfigError("at least one metric extractor required")
    if obs is not None:
        base = replace(base, obs=obs)
    names = sorted(grid)
    for name in names:
        if not grid[name]:
            raise ConfigError(f"no values for swept field {name!r}")

    def product(idx: int, acc: Dict[str, Any], out: List[Dict[str, Any]]) -> None:
        if idx == len(names):
            out.append(dict(acc))
            return
        for value in grid[names[idx]]:
            acc[names[idx]] = value
            product(idx + 1, acc, out)
        acc.pop(names[idx], None)

    combos: List[Dict[str, Any]] = []
    product(0, {}, combos)
    tasks = []
    for combo in combos:
        tasks.extend(_trial_tasks(base, combo, minutes, metrics, trials, seed0))
    sample_dicts = pmap(_metrics_task, tasks, workers=workers)
    return [
        _point_from_samples(
            combo, metrics, sample_dicts[i * trials:(i + 1) * trials]
        )
        for i, combo in enumerate(combos)
    ]


# Common extractors (all picklable, so sweeps built from them can run
# on worker processes) --------------------------------------------------

def steady_success(first_minute: int) -> Callable[[FluidSimulation], float]:
    """Mean success rate from ``first_minute`` on."""
    return RowMean(first_minute, "success_rate")


def steady_traffic_k(first_minute: int) -> Callable[[FluidSimulation], float]:
    """Mean traffic (thousands of messages/min) from ``first_minute`` on."""
    return RowMean(first_minute, "traffic_cost_kqpm")


def final_false_negative(sim: FluidSimulation) -> float:
    """Good peers wrongly disconnected over the whole run."""
    return float(sim.error_counts().false_negative)


def final_false_positive(sim: FluidSimulation) -> float:
    """Bad peers never identified over the whole run."""
    return float(sim.error_counts().false_positive)


# ----------------------------------------------------------------------
# fault-robustness sweep (message-level)
# ----------------------------------------------------------------------

#: Evidence-collection profiles compared by the fault sweep.
FAULT_PROFILES: Tuple[str, ...] = ("paper", "hardened")


@dataclass(frozen=True)
class FaultPoint:
    """Aggregated outcome of one (loss, crashes, profile) grid point."""

    loss: float
    crashes: int
    profile: str
    false_negative: float
    false_positive: float
    false_judgment: float
    #: Mean damage-recovery time over the trials where it was defined.
    recovery_time_s: Optional[float]
    #: Trials where the damage both crossed 20% and recovered to 15%.
    recovered_trials: int
    trials: int


def _fault_plan(spec: "FaultSweepSpec", loss: float, crashes: int) -> "FaultPlan":
    from repro.faults.plan import CrashRule, FaultPlan

    plan = FaultPlan()
    if loss > 0.0:
        plan = plan.merged(FaultPlan.control_loss(loss))
    if crashes > 0:
        # Crash good peers one minute into the attack: silent buddies at
        # exactly the moment their reports are needed.
        plan = plan.merged(
            FaultPlan(
                crashes=(
                    CrashRule(
                        at_s=(spec.attack_start_min + 1) * 60.0, count=crashes
                    ),
                )
            )
        )
    return plan


def _fault_des_config(
    spec: "FaultSweepSpec",
    *,
    loss: float,
    crashes: int,
    seed: int,
    num_agents: int,
    police: "DDPoliceConfig",
):
    from repro.attack.cheating import CheatStrategy
    from repro.experiments.runner import DESConfig
    from repro.overlay.topology import TopologyConfig
    from repro.workload.generator import WorkloadConfig

    return DESConfig(
        n=spec.n_peers,
        duration_s=spec.sim_minutes * 60.0,
        seed=seed,
        # Tree overlay: flooding is duplicate-free, so the Definition 2.1
        # send/receive balance is exact and indicator noise comes only
        # from the injected faults (same reasoning as the end-to-end
        # integration scenario).
        topology=TopologyConfig(n=spec.n_peers, ba_m=1, seed=seed),
        workload=WorkloadConfig(queries_per_minute=2.0, seed=seed),
        num_agents=num_agents,
        attack_start_s=spec.attack_start_min * 60.0,
        attack_rate_qpm=spec.attack_rate_qpm,
        # Agents flood but *report honestly*: every false negative is a
        # network/evidence artifact, not Section 3.4 cheating.
        cheat_strategy=CheatStrategy.HONEST,
        defense="ddpolice",
        police=police,
        faults=_fault_plan(spec, loss, crashes),
    )


def _des_case_task(cfg: Any) -> Tuple[Any, Any]:
    """One DES run (pure): returns (error counts, success series)."""
    from repro.experiments.runner import run_des_experiment

    run = run_des_experiment(cfg)
    return run.error_counts(), run.collector.success_series()


def fault_sweep(
    spec: "FaultSweepSpec",
    *,
    seed0: int = 0,
    profiles: Sequence[str] = FAULT_PROFILES,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[FaultPoint]:
    """Sweep control-plane loss x fail-stop crashes, per evidence profile.

    ``paper`` is the literal Section 3.3 collection rule (missing report
    => assume 0); ``hardened`` adds bounded retries, the report quorum
    with one window extension, and exchange retransmission
    (:meth:`DDPoliceConfig.with_hardening`). Both see the exact same
    fault schedule per (grid point, trial): fault draws come from
    dedicated RNG streams, so the profile never perturbs the faults.

    Every run on the grid -- clean baselines and attacked runs alike --
    is an independent task over its own :class:`DESConfig`, so the whole
    sweep fans out through :func:`repro.exec.pmap`.
    """
    from repro.core.config import DDPoliceConfig
    from repro.metrics.damage import damage_rate_series, damage_recovery_time

    base_police = DDPoliceConfig(exchange_period_s=30.0)
    police_by_profile = {
        "paper": base_police,
        "hardened": base_police.with_hardening(),
    }
    for profile in profiles:
        if profile not in police_by_profile:
            raise ConfigError(f"unknown fault profile {profile!r}")

    # One clean-run baseline per (loss, crashes, trial), shared by the
    # profiles: with no attackers there are no investigations, so the
    # evidence profile cannot matter there.
    baseline_keys: List[Tuple[float, int, int]] = []
    run_keys: List[Tuple[float, int, str, int]] = []
    tasks: List[Any] = []
    for loss in spec.loss_fractions:
        for crashes in spec.crash_counts:
            for trial in range(spec.trials):
                baseline_keys.append((loss, crashes, trial))
                tasks.append(
                    _fault_des_config(
                        spec,
                        loss=loss,
                        crashes=crashes,
                        seed=trial_seed(seed0, trial),
                        num_agents=0,
                        police=base_police,
                    )
                )
    for loss in spec.loss_fractions:
        for crashes in spec.crash_counts:
            for profile in profiles:
                for trial in range(spec.trials):
                    run_keys.append((loss, crashes, profile, trial))
                    tasks.append(
                        _fault_des_config(
                            spec,
                            loss=loss,
                            crashes=crashes,
                            seed=trial_seed(seed0, trial),
                            num_agents=spec.num_agents,
                            police=police_by_profile[profile],
                        )
                    )

    if obs is not None:
        tasks = [replace(cfg, obs=obs) for cfg in tasks]
    results = pmap(_des_case_task, tasks, workers=workers)
    baseline_series = {
        key: series
        for key, (_, series) in zip(baseline_keys, results[: len(baseline_keys)])
    }
    run_results = dict(zip(run_keys, results[len(baseline_keys):]))

    points: List[FaultPoint] = []
    for loss in spec.loss_fractions:
        for crashes in spec.crash_counts:
            for profile in profiles:
                fns: List[float] = []
                fps: List[float] = []
                recoveries: List[float] = []
                for trial in range(spec.trials):
                    errors, series = run_results[(loss, crashes, profile, trial)]
                    fns.append(float(errors.false_negative))
                    fps.append(float(errors.false_positive))
                    damage = damage_rate_series(
                        baseline_series[(loss, crashes, trial)], series
                    )
                    rec = damage_recovery_time(damage)
                    if rec is not None:
                        recoveries.append(rec)
                fn, _ = _aggregate(fns)
                fp, _ = _aggregate(fps)
                points.append(
                    FaultPoint(
                        loss=loss,
                        crashes=crashes,
                        profile=profile,
                        false_negative=fn,
                        false_positive=fp,
                        false_judgment=fn + fp,
                        recovery_time_s=(
                            _aggregate(recoveries)[0] if recoveries else None
                        ),
                        recovered_trials=len(recoveries),
                        trials=spec.trials,
                    )
                )
    return points


def format_fault_sweep(spec: "FaultSweepSpec", points: Sequence[FaultPoint]) -> str:
    """Fixed-width table of a fault sweep, ready for ``results/``."""
    lines = [
        "Fault-robustness sweep: control-plane loss x fail-stop crashes",
        f"scale={spec.name}  n={spec.n_peers}  agents={spec.num_agents} "
        f"(honest reporters)  attack={spec.attack_rate_qpm:g} qpm "
        f"from minute {spec.attack_start_min}  "
        f"duration={spec.sim_minutes} min  trials={spec.trials}",
        "profiles: paper = assume-0 on missing reports (Section 3.3); "
        "hardened = retries + quorum 0.5 + window extension + "
        "list retransmit",
        "FN = good peers wrongly cut, FP = bad peers never caught "
        "(paper's Figure 13 terms), means over trials",
        "",
        f"{'loss':>5} {'crashes':>7} {'profile':>9} {'FN':>6} {'FP':>6} "
        f"{'FJ':>6} {'recovery_s':>11} {'recovered':>9}",
    ]
    for p in points:
        rec = f"{p.recovery_time_s:.0f}" if p.recovery_time_s is not None else "n/c"
        recovered = f"{p.recovered_trials}/{p.trials}"
        lines.append(
            f"{p.loss:>5.2f} {p.crashes:>7d} {p.profile:>9} "
            f"{p.false_negative:>6.2f} {p.false_positive:>6.2f} "
            f"{p.false_judgment:>6.2f} {rec:>11} {recovered:>9}"
        )
    return "\n".join(lines)
