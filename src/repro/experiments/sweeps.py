"""Generic parameter-sweep utilities with multi-trial aggregation.

The figure functions in :mod:`repro.experiments.figures` are specialized;
this module provides the general tool a downstream user wants: sweep any
:class:`FluidConfig` field(s) over a grid, run ``trials`` independent
seeds per point, and aggregate any row metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ConfigError
from repro.fluid.model import FluidConfig, FluidSimulation


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's aggregated results."""

    overrides: Mapping[str, Any]
    metrics: Mapping[str, float]
    stddevs: Mapping[str, float]
    trials: int

    def __getitem__(self, metric: str) -> float:
        return self.metrics[metric]


def _aggregate(values: Sequence[float]) -> Tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


def run_point(
    base: FluidConfig,
    overrides: Mapping[str, Any],
    *,
    minutes: int,
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    trials: int = 1,
    seed0: int = 0,
) -> SweepPoint:
    """Run one configuration ``trials`` times and aggregate metrics.

    ``metrics`` maps a name to an extractor over the finished simulation
    (e.g. ``lambda sim: sim.mean_over(10, "success_rate")``).
    """
    if trials < 1:
        raise ConfigError("trials must be >= 1")
    if not metrics:
        raise ConfigError("at least one metric extractor required")
    samples: Dict[str, List[float]] = {name: [] for name in metrics}
    for trial in range(trials):
        cfg = replace(base, seed=seed0 + 1000 * trial, **dict(overrides))
        sim = FluidSimulation(cfg)
        sim.run(minutes)
        for name, extractor in metrics.items():
            samples[name].append(float(extractor(sim)))
    agg = {name: _aggregate(vals) for name, vals in samples.items()}
    return SweepPoint(
        overrides=dict(overrides),
        metrics={name: a[0] for name, a in agg.items()},
        stddevs={name: a[1] for name, a in agg.items()},
        trials=trials,
    )


def sweep(
    base: FluidConfig,
    grid: Mapping[str, Sequence[Any]],
    *,
    minutes: int,
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    trials: int = 1,
    seed0: int = 0,
) -> List[SweepPoint]:
    """Full-factorial sweep over ``grid`` (cartesian product of values).

    >>> from repro.fluid.model import FluidConfig
    >>> pts = sweep(
    ...     FluidConfig(n=300, churn_warmup_min=2),
    ...     {"num_agents": [0, 2]},
    ...     minutes=4,
    ...     metrics={"succ": lambda s: s.rows[-1].success_rate},
    ... )
    >>> len(pts)
    2
    """
    if not grid:
        raise ConfigError("empty sweep grid")
    names = sorted(grid)
    for name in names:
        if not grid[name]:
            raise ConfigError(f"no values for swept field {name!r}")

    def product(idx: int, acc: Dict[str, Any], out: List[Dict[str, Any]]) -> None:
        if idx == len(names):
            out.append(dict(acc))
            return
        for value in grid[names[idx]]:
            acc[names[idx]] = value
            product(idx + 1, acc, out)
        acc.pop(names[idx], None)

    combos: List[Dict[str, Any]] = []
    product(0, {}, combos)
    return [
        run_point(
            base, combo, minutes=minutes, metrics=metrics, trials=trials, seed0=seed0
        )
        for combo in combos
    ]


# Common extractors -----------------------------------------------------

def steady_success(first_minute: int) -> Callable[[FluidSimulation], float]:
    """Mean success rate from ``first_minute`` on."""
    return lambda sim: sim.mean_over(first_minute, "success_rate")


def steady_traffic_k(first_minute: int) -> Callable[[FluidSimulation], float]:
    """Mean traffic (thousands of messages/min) from ``first_minute`` on."""
    return lambda sim: sim.mean_over(first_minute, "traffic_cost_kqpm")


def final_false_negative(sim: FluidSimulation) -> float:
    """Good peers wrongly disconnected over the whole run."""
    return float(sim.error_counts().false_negative)


def final_false_positive(sim: FluidSimulation) -> float:
    """Bad peers never identified over the whole run."""
    return float(sim.error_counts().false_positive)
