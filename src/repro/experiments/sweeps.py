"""Generic parameter-sweep utilities with multi-trial aggregation.

The figure functions in :mod:`repro.experiments.figures` are specialized;
this module provides the general tool a downstream user wants: sweep any
:class:`FluidConfig` field(s) over a grid, run ``trials`` independent
seeds per point, and aggregate any row metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.fluid.model import FluidConfig, FluidSimulation


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's aggregated results."""

    overrides: Mapping[str, Any]
    metrics: Mapping[str, float]
    stddevs: Mapping[str, float]
    trials: int

    def __getitem__(self, metric: str) -> float:
        return self.metrics[metric]


def _aggregate(values: Sequence[float]) -> Tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


def run_point(
    base: FluidConfig,
    overrides: Mapping[str, Any],
    *,
    minutes: int,
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    trials: int = 1,
    seed0: int = 0,
) -> SweepPoint:
    """Run one configuration ``trials`` times and aggregate metrics.

    ``metrics`` maps a name to an extractor over the finished simulation
    (e.g. ``lambda sim: sim.mean_over(10, "success_rate")``).
    """
    if trials < 1:
        raise ConfigError("trials must be >= 1")
    if not metrics:
        raise ConfigError("at least one metric extractor required")
    samples: Dict[str, List[float]] = {name: [] for name in metrics}
    for trial in range(trials):
        cfg = replace(base, seed=seed0 + 1000 * trial, **dict(overrides))
        sim = FluidSimulation(cfg)
        sim.run(minutes)
        for name, extractor in metrics.items():
            samples[name].append(float(extractor(sim)))
    agg = {name: _aggregate(vals) for name, vals in samples.items()}
    return SweepPoint(
        overrides=dict(overrides),
        metrics={name: a[0] for name, a in agg.items()},
        stddevs={name: a[1] for name, a in agg.items()},
        trials=trials,
    )


def sweep(
    base: FluidConfig,
    grid: Mapping[str, Sequence[Any]],
    *,
    minutes: int,
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    trials: int = 1,
    seed0: int = 0,
) -> List[SweepPoint]:
    """Full-factorial sweep over ``grid`` (cartesian product of values).

    >>> from repro.fluid.model import FluidConfig
    >>> pts = sweep(
    ...     FluidConfig(n=300, churn_warmup_min=2),
    ...     {"num_agents": [0, 2]},
    ...     minutes=4,
    ...     metrics={"succ": lambda s: s.rows[-1].success_rate},
    ... )
    >>> len(pts)
    2
    """
    if not grid:
        raise ConfigError("empty sweep grid")
    names = sorted(grid)
    for name in names:
        if not grid[name]:
            raise ConfigError(f"no values for swept field {name!r}")

    def product(idx: int, acc: Dict[str, Any], out: List[Dict[str, Any]]) -> None:
        if idx == len(names):
            out.append(dict(acc))
            return
        for value in grid[names[idx]]:
            acc[names[idx]] = value
            product(idx + 1, acc, out)
        acc.pop(names[idx], None)

    combos: List[Dict[str, Any]] = []
    product(0, {}, combos)
    return [
        run_point(
            base, combo, minutes=minutes, metrics=metrics, trials=trials, seed0=seed0
        )
        for combo in combos
    ]


# Common extractors -----------------------------------------------------

def steady_success(first_minute: int) -> Callable[[FluidSimulation], float]:
    """Mean success rate from ``first_minute`` on."""
    return lambda sim: sim.mean_over(first_minute, "success_rate")


def steady_traffic_k(first_minute: int) -> Callable[[FluidSimulation], float]:
    """Mean traffic (thousands of messages/min) from ``first_minute`` on."""
    return lambda sim: sim.mean_over(first_minute, "traffic_cost_kqpm")


def final_false_negative(sim: FluidSimulation) -> float:
    """Good peers wrongly disconnected over the whole run."""
    return float(sim.error_counts().false_negative)


def final_false_positive(sim: FluidSimulation) -> float:
    """Bad peers never identified over the whole run."""
    return float(sim.error_counts().false_positive)


# ----------------------------------------------------------------------
# fault-robustness sweep (message-level)
# ----------------------------------------------------------------------

#: Evidence-collection profiles compared by the fault sweep.
FAULT_PROFILES: Tuple[str, ...] = ("paper", "hardened")


@dataclass(frozen=True)
class FaultPoint:
    """Aggregated outcome of one (loss, crashes, profile) grid point."""

    loss: float
    crashes: int
    profile: str
    false_negative: float
    false_positive: float
    false_judgment: float
    #: Mean damage-recovery time over the trials where it was defined.
    recovery_time_s: Optional[float]
    #: Trials where the damage both crossed 20% and recovered to 15%.
    recovered_trials: int
    trials: int


def _fault_plan(spec: "FaultSweepSpec", loss: float, crashes: int) -> "FaultPlan":
    from repro.faults.plan import CrashRule, FaultPlan

    plan = FaultPlan()
    if loss > 0.0:
        plan = plan.merged(FaultPlan.control_loss(loss))
    if crashes > 0:
        # Crash good peers one minute into the attack: silent buddies at
        # exactly the moment their reports are needed.
        plan = plan.merged(
            FaultPlan(
                crashes=(
                    CrashRule(
                        at_s=(spec.attack_start_min + 1) * 60.0, count=crashes
                    ),
                )
            )
        )
    return plan


def _fault_des_config(
    spec: "FaultSweepSpec",
    *,
    loss: float,
    crashes: int,
    seed: int,
    num_agents: int,
    police: "DDPoliceConfig",
):
    from repro.attack.cheating import CheatStrategy
    from repro.experiments.runner import DESConfig
    from repro.overlay.topology import TopologyConfig
    from repro.workload.generator import WorkloadConfig

    return DESConfig(
        n=spec.n_peers,
        duration_s=spec.sim_minutes * 60.0,
        seed=seed,
        # Tree overlay: flooding is duplicate-free, so the Definition 2.1
        # send/receive balance is exact and indicator noise comes only
        # from the injected faults (same reasoning as the end-to-end
        # integration scenario).
        topology=TopologyConfig(n=spec.n_peers, ba_m=1, seed=seed),
        workload=WorkloadConfig(queries_per_minute=2.0, seed=seed),
        num_agents=num_agents,
        attack_start_s=spec.attack_start_min * 60.0,
        attack_rate_qpm=spec.attack_rate_qpm,
        # Agents flood but *report honestly*: every false negative is a
        # network/evidence artifact, not Section 3.4 cheating.
        cheat_strategy=CheatStrategy.HONEST,
        defense="ddpolice",
        police=police,
        faults=_fault_plan(spec, loss, crashes),
    )


def fault_sweep(
    spec: "FaultSweepSpec",
    *,
    seed0: int = 0,
    profiles: Sequence[str] = FAULT_PROFILES,
) -> List[FaultPoint]:
    """Sweep control-plane loss x fail-stop crashes, per evidence profile.

    ``paper`` is the literal Section 3.3 collection rule (missing report
    => assume 0); ``hardened`` adds bounded retries, the report quorum
    with one window extension, and exchange retransmission
    (:meth:`DDPoliceConfig.with_hardening`). Both see the exact same
    fault schedule per (grid point, trial): fault draws come from
    dedicated RNG streams, so the profile never perturbs the faults.
    """
    from repro.core.config import DDPoliceConfig
    from repro.experiments.runner import run_des_experiment
    from repro.metrics.damage import damage_rate_series, damage_recovery_time

    base_police = DDPoliceConfig(exchange_period_s=30.0)
    police_by_profile = {
        "paper": base_police,
        "hardened": base_police.with_hardening(),
    }
    for profile in profiles:
        if profile not in police_by_profile:
            raise ConfigError(f"unknown fault profile {profile!r}")

    # One clean-run baseline per (loss, crashes, trial), shared by the
    # profiles: with no attackers there are no investigations, so the
    # evidence profile cannot matter there.
    baselines: Dict[Tuple[float, int, int], Any] = {}

    def baseline_series(loss: float, crashes: int, trial: int):
        key = (loss, crashes, trial)
        if key not in baselines:
            cfg = _fault_des_config(
                spec,
                loss=loss,
                crashes=crashes,
                seed=seed0 + 1000 * trial,
                num_agents=0,
                police=base_police,
            )
            baselines[key] = run_des_experiment(cfg).collector.success_series()
        return baselines[key]

    points: List[FaultPoint] = []
    for loss in spec.loss_fractions:
        for crashes in spec.crash_counts:
            for profile in profiles:
                fns: List[float] = []
                fps: List[float] = []
                recoveries: List[float] = []
                for trial in range(spec.trials):
                    cfg = _fault_des_config(
                        spec,
                        loss=loss,
                        crashes=crashes,
                        seed=seed0 + 1000 * trial,
                        num_agents=spec.num_agents,
                        police=police_by_profile[profile],
                    )
                    run = run_des_experiment(cfg)
                    errors = run.error_counts()
                    fns.append(float(errors.false_negative))
                    fps.append(float(errors.false_positive))
                    damage = damage_rate_series(
                        baseline_series(loss, crashes, trial),
                        run.collector.success_series(),
                    )
                    rec = damage_recovery_time(damage)
                    if rec is not None:
                        recoveries.append(rec)
                fn, _ = _aggregate(fns)
                fp, _ = _aggregate(fps)
                points.append(
                    FaultPoint(
                        loss=loss,
                        crashes=crashes,
                        profile=profile,
                        false_negative=fn,
                        false_positive=fp,
                        false_judgment=fn + fp,
                        recovery_time_s=(
                            _aggregate(recoveries)[0] if recoveries else None
                        ),
                        recovered_trials=len(recoveries),
                        trials=spec.trials,
                    )
                )
    return points


def format_fault_sweep(spec: "FaultSweepSpec", points: Sequence[FaultPoint]) -> str:
    """Fixed-width table of a fault sweep, ready for ``results/``."""
    lines = [
        "Fault-robustness sweep: control-plane loss x fail-stop crashes",
        f"scale={spec.name}  n={spec.n_peers}  agents={spec.num_agents} "
        f"(honest reporters)  attack={spec.attack_rate_qpm:g} qpm "
        f"from minute {spec.attack_start_min}  "
        f"duration={spec.sim_minutes} min  trials={spec.trials}",
        "profiles: paper = assume-0 on missing reports (Section 3.3); "
        "hardened = retries + quorum 0.5 + window extension + "
        "list retransmit",
        "FN = good peers wrongly cut, FP = bad peers never caught "
        "(paper's Figure 13 terms), means over trials",
        "",
        f"{'loss':>5} {'crashes':>7} {'profile':>9} {'FN':>6} {'FP':>6} "
        f"{'FJ':>6} {'recovery_s':>11} {'recovered':>9}",
    ]
    for p in points:
        rec = f"{p.recovery_time_s:.0f}" if p.recovery_time_s is not None else "n/c"
        recovered = f"{p.recovered_trials}/{p.trials}"
        lines.append(
            f"{p.loss:>5.2f} {p.crashes:>7d} {p.profile:>9} "
            f"{p.false_negative:>6.2f} {p.false_positive:>6.2f} "
            f"{p.false_judgment:>6.2f} {rec:>11} {recovered:>9}"
        )
    return "\n".join(lines)
