"""Generic parameter-sweep utilities with multi-trial aggregation.

The figure functions in :mod:`repro.experiments.figures` are specialized;
this module provides the general tool a downstream user wants: sweep any
:class:`FluidConfig` field(s) over a grid, run ``trials`` independent
seeds per point, and aggregate any row metric.

Every sweep is a flat list of *pure* (config -> metrics) tasks executed
through :func:`repro.exec.pmap`, so ``workers > 1`` (or
``REPRO_WORKERS``) fans the grid out over a process pool with results
bit-identical to the serial run. Per-trial seeds come from
:func:`repro.simkit.rng.derive_seed` -- ``derive_seed(seed0, "trial",
t)`` -- which, unlike the old ``seed0 + 1000 * trial`` convention,
cannot alias trials across base seeds that differ by multiples of 1000.
With ``workers > 1`` metric extractors must be picklable: module-level
functions or the :class:`RowMean` helpers, not lambdas.

The grid expansion, trial seeding, and (mean, stddev) aggregation are
the shared spec-layer helpers (:mod:`repro.experiments.spec`); the
fault sweep itself is the registered ``fault-sweep`` scenario in
:mod:`repro.experiments.library`, kept here as a thin shim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import DDPoliceConfig
from repro.errors import ConfigError
from repro.exec import pmap
from repro.experiments.library import (  # noqa: F401  (canonical re-exports)
    FAULT_PROFILES,
    FaultPoint,
    _fault_plan,
    format_fault_sweep,
    run_spec,
)
from repro.experiments.scenarios import FaultSweepSpec
from repro.experiments.spec import (
    ExperimentSpec,
    GridSpec,
    WorkloadSpec,
    aggregate,
    des_case_result,
    expand_grid,
    fluid_metrics_task,
    trial_seed,  # noqa: F401  (re-export; canonical in spec)
)
from repro.fluid.model import FluidConfig, FluidSimulation
from repro.metrics.errors import ErrorCounts
from repro.metrics.series import TimeSeries
from repro.obs.config import ObsConfig

#: Legacy aliases; the canonical implementations live in the spec layer.
_aggregate = aggregate
_metrics_task = fluid_metrics_task


@dataclass(frozen=True)
class RowMean:
    """Picklable metric extractor: ``sim.mean_over(first_minute, attr)``.

    The lambda-based equivalents cannot cross a process boundary; this
    frozen dataclass can, so sweeps built from it parallelize.
    """

    first_minute: int
    attr: str

    def __call__(self, sim: FluidSimulation) -> float:
        return sim.mean_over(self.first_minute, self.attr)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's aggregated results."""

    overrides: Mapping[str, Any]
    metrics: Mapping[str, float]
    stddevs: Mapping[str, float]
    trials: int

    def __getitem__(self, metric: str) -> float:
        return self.metrics[metric]


def _point_from_samples(
    overrides: Mapping[str, Any],
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    sample_dicts: Sequence[Mapping[str, float]],
) -> SweepPoint:
    samples: Dict[str, List[float]] = {
        name: [d[name] for d in sample_dicts] for name in metrics
    }
    agg = {name: aggregate(vals) for name, vals in samples.items()}
    return SweepPoint(
        overrides=dict(overrides),
        metrics={name: a[0] for name, a in agg.items()},
        stddevs={name: a[1] for name, a in agg.items()},
        trials=len(sample_dicts),
    )


def _trial_tasks(
    base: FluidConfig,
    overrides: Mapping[str, Any],
    minutes: int,
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    trials: int,
    seed0: int,
) -> List[Tuple[FluidConfig, int, Mapping[str, Callable[[FluidSimulation], float]]]]:
    return [
        (replace(base, seed=trial_seed(seed0, trial), **dict(overrides)), minutes, metrics)
        for trial in range(trials)
    ]


def run_point(
    base: FluidConfig,
    overrides: Mapping[str, Any],
    *,
    minutes: int,
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    trials: int = 1,
    seed0: int = 0,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> SweepPoint:
    """Run one configuration ``trials`` times and aggregate metrics.

    ``metrics`` maps a name to an extractor over the finished simulation
    (e.g. ``RowMean(10, "success_rate")``; lambdas work too but only
    serially). Trial ``t`` runs with seed ``derive_seed(seed0, "trial",
    t)``; trials execute through :func:`repro.exec.pmap` with the given
    ``workers`` (default: serial / ``$REPRO_WORKERS``). ``obs`` (if
    given) replaces the base config's observability settings for every
    trial.
    """
    if trials < 1:
        raise ConfigError("trials must be >= 1")
    if not metrics:
        raise ConfigError("at least one metric extractor required")
    if obs is not None:
        base = replace(base, obs=obs)
    tasks = _trial_tasks(base, overrides, minutes, metrics, trials, seed0)
    sample_dicts = pmap(fluid_metrics_task, tasks, workers=workers)
    return _point_from_samples(overrides, metrics, sample_dicts)


def sweep(
    base: FluidConfig,
    grid: Mapping[str, Sequence[Any]],
    *,
    minutes: int,
    metrics: Mapping[str, Callable[[FluidSimulation], float]],
    trials: int = 1,
    seed0: int = 0,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[SweepPoint]:
    """Full-factorial sweep over ``grid`` (cartesian product of values).

    The whole (combos x trials) task list is dispatched through one
    :func:`repro.exec.pmap` call, so parallelism is available across the
    entire grid, not just within one point's trials.

    >>> from repro.fluid.model import FluidConfig
    >>> pts = sweep(
    ...     FluidConfig(n=300, churn_warmup_min=2),
    ...     {"num_agents": [0, 2]},
    ...     minutes=4,
    ...     metrics={"succ": lambda s: s.rows[-1].success_rate},
    ... )
    >>> len(pts)
    2
    """
    if not grid:
        raise ConfigError("empty sweep grid")
    if trials < 1:
        raise ConfigError("trials must be >= 1")
    if not metrics:
        raise ConfigError("at least one metric extractor required")
    if obs is not None:
        base = replace(base, obs=obs)
    combos = expand_grid(grid)
    tasks = []
    for combo in combos:
        tasks.extend(_trial_tasks(base, combo, minutes, metrics, trials, seed0))
    sample_dicts = pmap(fluid_metrics_task, tasks, workers=workers)
    return [
        _point_from_samples(
            combo, metrics, sample_dicts[i * trials:(i + 1) * trials]
        )
        for i, combo in enumerate(combos)
    ]


# Common extractors (all picklable, so sweeps built from them can run
# on worker processes) --------------------------------------------------

def steady_success(first_minute: int) -> Callable[[FluidSimulation], float]:
    """Mean success rate from ``first_minute`` on."""
    return RowMean(first_minute, "success_rate")


def steady_traffic_k(first_minute: int) -> Callable[[FluidSimulation], float]:
    """Mean traffic (thousands of messages/min) from ``first_minute`` on."""
    return RowMean(first_minute, "traffic_cost_kqpm")


def final_false_negative(sim: FluidSimulation) -> float:
    """Good peers wrongly disconnected over the whole run."""
    return float(sim.error_counts().false_negative)


def final_false_positive(sim: FluidSimulation) -> float:
    """Bad peers never identified over the whole run."""
    return float(sim.error_counts().false_positive)


# ----------------------------------------------------------------------
# fault-robustness sweep (message-level) -- shim over the registered
# "fault-sweep" scenario in repro.experiments.library
# ----------------------------------------------------------------------

def _des_case_task(cfg: Any) -> Tuple[ErrorCounts, TimeSeries]:
    """One DES run (pure): returns (error counts, success series)."""
    res = des_case_result(cfg)
    return (
        ErrorCounts(
            false_negative=res.false_negative, false_positive=res.false_positive
        ),
        TimeSeries(res.rows),
    )


def fault_sweep(
    spec: FaultSweepSpec,
    *,
    seed0: int = 0,
    profiles: Sequence[str] = FAULT_PROFILES,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[FaultPoint]:
    """Sweep control-plane loss x fail-stop crashes, per evidence profile.

    ``paper`` is the literal Section 3.3 collection rule (missing report
    => assume 0); ``hardened`` adds bounded retries, the report quorum
    with one window extension, and exchange retransmission
    (:meth:`DDPoliceConfig.with_hardening`). Both see the exact same
    fault schedule per (grid point, trial): fault draws come from
    dedicated RNG streams, so the profile never perturbs the faults.

    Every run on the grid -- clean baselines and attacked runs alike --
    is an independent :class:`~repro.experiments.spec.Case` on the
    ``des`` backend, so the whole sweep fans out through
    :func:`repro.exec.pmap`.
    """
    run = run_spec(
        ExperimentSpec(
            name="fault-sweep",
            scenario="fault-sweep",
            backend="des",
            seed=seed0,
            police=DDPoliceConfig(exchange_period_s=30.0),
            workload=WorkloadSpec(queries_per_minute=2.0, cheat_strategy="honest"),
            faults=spec,
            grid=GridSpec(profiles=tuple(profiles)),
            tables=("fault_sweep",),
        ),
        workers=workers,
        obs=obs,
        cache=False,
    )
    return run.data
