"""Plain-text rendering of experiment tables and series."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import ConfigError


def _format_cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:,.3f}" if abs(value) < 1000 else f"{value:,.1f}"
    else:
        text = str(value)
    return text.rjust(width)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Fixed-width table; every row must match the header arity."""
    rows = [list(r) for r in rows]
    for r in rows:
        if len(r) != len(headers):
            raise ConfigError(
                f"row arity {len(r)} != header arity {len(headers)}: {r!r}"
            )
    rendered = [[str(h) for h in headers]] + [
        [_format_cell(c, 0).strip() for c in r] for r in rows
    ]
    widths = [max(len(row[i]) for row in rendered) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(rendered[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    xlabel: str,
    ylabel: str,
    points: Sequence[Sequence[float]],
    *,
    title: Optional[str] = None,
) -> str:
    """Two-column series rendering for figure data."""
    return render_table([xlabel, ylabel], points, title=title)


_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], *, lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render a series as a one-line ASCII sparkline.

    Values are scaled to ``[lo, hi]`` (defaulting to the data range);
    useful for eyeballing Figure 12-style timelines in terminal output.
    """
    vals = [float(v) for v in values]
    if not vals:
        raise ConfigError("cannot sparkline an empty series")
    lo = min(vals) if lo is None else float(lo)
    hi = max(vals) if hi is None else float(hi)
    if hi < lo:
        raise ConfigError(f"hi {hi} < lo {lo}")
    span = hi - lo
    chars = []
    for v in vals:
        if span <= 0:
            idx = 0
        else:
            frac = min(1.0, max(0.0, (v - lo) / span))
            idx = round(frac * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[idx])
    return "".join(chars)


def render_timelines(
    labels: Sequence[str],
    series: Sequence[Sequence[float]],
    *,
    title: Optional[str] = None,
    lo: float = 0.0,
    hi: Optional[float] = None,
) -> str:
    """Aligned sparklines for several same-length series.

    >>> print(render_timelines(["a"], [[10.0, 5.0, 10.0]], hi=10.0))
    a | @=@  [min 5.0, max 10.0]
    """
    if len(labels) != len(series):
        raise ConfigError("labels/series arity mismatch")
    if not labels:
        raise ConfigError("nothing to render")
    common_hi = hi if hi is not None else max(max(s) for s in series if s)
    width = max(len(str(l)) for l in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, vals in zip(labels, series):
        spark = sparkline(vals, lo=lo, hi=common_hi)
        lines.append(
            f"{str(label).ljust(width)} | {spark}  "
            f"[min {min(vals):.1f}, max {max(vals):.1f}]"
        )
    return "\n".join(lines)
