"""Persistence of experiment results (JSON).

Long sweeps are expensive; this module saves/loads their outputs so
analysis and re-rendering never require re-simulation:

* :func:`save_rows` / :func:`load_rows` -- per-minute
  :class:`~repro.fluid.model.MinuteRow` series;
* :func:`save_records` / :func:`load_records` -- any list of flat
  dataclass records (the figure functions' row types).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Type, TypeVar, Union

from repro.errors import ConfigError
from repro.fluid.model import MinuteRow
from repro.obs.manifest import atomic_write_text, write_manifest

T = TypeVar("T")

_FORMAT_VERSION = 1


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    raise ConfigError(f"cannot serialize value of type {type(value).__name__}")


def save_records(
    path: Union[str, Path],
    records: Sequence[Any],
    *,
    kind: str,
    manifest: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write a list of flat dataclass instances as JSON.

    With ``manifest`` given (build it via
    :func:`repro.obs.manifest.build_manifest`), a ``.manifest.json``
    provenance sidecar is written next to the artifact.
    """
    rows: List[Dict[str, Any]] = []
    for rec in records:
        if not dataclasses.is_dataclass(rec):
            raise ConfigError(f"record {rec!r} is not a dataclass")
        rows.append(_to_jsonable(dataclasses.asdict(rec)))
    payload = {"format": _FORMAT_VERSION, "kind": kind, "records": rows}
    # Atomic (temp file + rename): a sweep killed mid-save can never
    # leave a truncated JSON behind.
    out = atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True))
    if manifest is not None:
        write_manifest(out, manifest)
    return out


def load_records(path: Union[str, Path], cls: Type[T], *, kind: str) -> List[T]:
    """Read records saved by :func:`save_records` back into ``cls``."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != _FORMAT_VERSION:
        raise ConfigError(f"unsupported results format {payload.get('format')!r}")
    if payload.get("kind") != kind:
        raise ConfigError(
            f"file holds {payload.get('kind')!r} records, expected {kind!r}"
        )
    return [cls(**rec) for rec in payload["records"]]


def save_rows(
    path: Union[str, Path],
    rows: Sequence[MinuteRow],
    *,
    manifest: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Persist a fluid run's per-minute rows."""
    return save_records(path, rows, kind="minute-rows", manifest=manifest)


def load_rows(path: Union[str, Path]) -> List[MinuteRow]:
    """Load per-minute rows saved by :func:`save_rows`."""
    return load_records(path, MinuteRow, kind="minute-rows")
