"""Persistence of experiment results (JSON).

Long sweeps are expensive; this module saves/loads their outputs so
analysis and re-rendering never require re-simulation:

* :func:`save_rows` / :func:`load_rows` -- per-minute
  :class:`~repro.fluid.model.MinuteRow` series;
* :func:`save_records` / :func:`load_records` -- any list of flat
  dataclass records (the figure functions' row types).

Format version 2 embeds the generating
:class:`~repro.experiments.spec.ExperimentSpec` (and its SHA-256) in
the payload when one is supplied, so a results file carries its own
provenance; :func:`load_spec` reads it back. Version-1 files (no spec
field) are rejected on load with a clear error -- re-run the sweep to
regenerate them.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Type, TypeVar, Union

from repro.errors import ConfigError
from repro.experiments.spec import (
    ExperimentSpec,
    spec_from_jsonable,
    spec_sha256,
    spec_to_jsonable,
)
from repro.fluid.model import MinuteRow
from repro.obs.manifest import atomic_write_text, write_manifest

T = TypeVar("T")

_FORMAT_VERSION = 2


def _to_jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _to_jsonable(v) for k, v in value.items()}
    raise ConfigError(f"cannot serialize value of type {type(value).__name__}")


def save_records(
    path: Union[str, Path],
    records: Sequence[Any],
    *,
    kind: str,
    manifest: Optional[Mapping[str, Any]] = None,
    spec: Optional[ExperimentSpec] = None,
) -> Path:
    """Write a list of flat dataclass instances as JSON.

    With ``spec`` given, the canonical spec JSON and its SHA-256 are
    embedded in the payload (provenance travels with the data). With
    ``manifest`` given (build it via
    :func:`repro.obs.manifest.build_manifest`), a ``.manifest.json``
    provenance sidecar is written next to the artifact.
    """
    rows: List[Dict[str, Any]] = []
    for rec in records:
        if not dataclasses.is_dataclass(rec):
            raise ConfigError(f"record {rec!r} is not a dataclass")
        rows.append(_to_jsonable(dataclasses.asdict(rec)))
    payload: Dict[str, Any] = {
        "format": _FORMAT_VERSION,
        "kind": kind,
        "records": rows,
    }
    if spec is not None:
        payload["spec"] = spec_to_jsonable(spec)
        payload["spec_sha256"] = spec_sha256(spec)
    # Atomic (temp file + rename): a sweep killed mid-save can never
    # leave a truncated JSON behind.
    out = atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True))
    if manifest is not None:
        write_manifest(out, manifest)
    return out


def _load_payload(path: Union[str, Path]) -> Dict[str, Any]:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigError(
            f"{path}: expected a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("format")
    if version != _FORMAT_VERSION:
        raise ConfigError(
            f"{path}: unsupported results format {version!r} "
            f"(this build reads format {_FORMAT_VERSION}; "
            "re-run the experiment to regenerate the file)"
        )
    return payload


def load_records(path: Union[str, Path], cls: Type[T], *, kind: str) -> List[T]:
    """Read records saved by :func:`save_records` back into ``cls``.

    Rejects files with a different format version, a different
    ``kind``, or records whose fields do not match ``cls`` -- a clear
    :class:`ConfigError` instead of garbage rows.
    """
    payload = _load_payload(path)
    if payload.get("kind") != kind:
        raise ConfigError(
            f"file holds {payload.get('kind')!r} records, expected {kind!r}"
        )
    records = payload.get("records")
    if not isinstance(records, list):
        raise ConfigError(f"{path}: 'records' must be a list")
    expected = [f.name for f in dataclasses.fields(cls)]
    out: List[T] = []
    for i, rec in enumerate(records):
        if not isinstance(rec, dict):
            raise ConfigError(f"{path}: record {i} is not an object")
        try:
            out.append(cls(**rec))
        except TypeError as exc:
            raise ConfigError(
                f"{path}: record {i} does not match {cls.__name__} "
                f"(expected fields: {', '.join(expected)}): {exc}"
            ) from exc
    return out


def load_spec(path: Union[str, Path]) -> Optional[ExperimentSpec]:
    """Read the embedded generating spec back from a results file.

    Returns ``None`` when the file was saved without one. Verifies the
    embedded ``spec_sha256`` against the re-serialized spec, so a
    tampered or hand-edited spec block is rejected.
    """
    payload = _load_payload(path)
    doc = payload.get("spec")
    if doc is None:
        return None
    if not isinstance(doc, dict):
        raise ConfigError(f"{path}: 'spec' must be an object")
    spec = spec_from_jsonable(doc)
    stored = payload.get("spec_sha256")
    actual = spec_sha256(spec)
    if stored != actual:
        raise ConfigError(
            f"{path}: embedded spec_sha256 {stored!r} does not match the "
            f"spec it accompanies ({actual}); file was modified"
        )
    return spec


def save_rows(
    path: Union[str, Path],
    rows: Sequence[MinuteRow],
    *,
    manifest: Optional[Mapping[str, Any]] = None,
    spec: Optional[ExperimentSpec] = None,
) -> Path:
    """Persist a fluid run's per-minute rows."""
    return save_records(
        path, rows, kind="minute-rows", manifest=manifest, spec=spec
    )


def load_rows(path: Union[str, Path]) -> List[MinuteRow]:
    """Load per-minute rows saved by :func:`save_rows`."""
    return load_records(path, MinuteRow, kind="minute-rows")
