"""Experiment scales: paper-faithful vs laptop-friendly.

The paper simulates 20,000 peers with 10..200 DDoS agents
(0.05%..1% of the population) and 1,000,000 search operations. The bench
default scales the population down 10x while preserving every *density*:
agents/peer, queries/peer/minute, attack rate, capacities, churn rates.
Set ``REPRO_SCALE=paper`` to run full scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigError

#: Agent fractions matching the paper's 10..200 agents over 20,000 peers.
PAPER_AGENT_FRACTIONS: Tuple[float, ...] = (
    0.0005,  # 10 agents @ 20k
    0.001,   # 20
    0.0025,  # 50
    0.005,   # 100
    0.01,    # 200
)


@dataclass(frozen=True)
class Scale:
    """One experiment scale."""

    name: str
    n_peers: int
    sim_minutes: int
    attack_start_min: int
    trials: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scale name must be non-empty")
        if self.n_peers < 100:
            raise ConfigError("n_peers must be >= 100")
        if self.attack_start_min < 0:
            raise ConfigError("attack_start_min must be non-negative")
        if self.sim_minutes <= self.attack_start_min:
            raise ConfigError("sim_minutes must exceed attack_start_min")
        if self.trials < 1:
            raise ConfigError("trials must be >= 1")

    def agent_counts(self) -> List[int]:
        """Agent counts realizing the paper's densities at this scale."""
        return [max(1, round(f * self.n_peers)) for f in PAPER_AGENT_FRACTIONS]

    def paper_equivalent_agents(self, agents: int) -> int:
        """The agent count the paper would use for the same density."""
        return round(agents / self.n_peers * 20_000)


def paper_scale() -> Scale:
    """Full paper scale (20,000 peers)."""
    return Scale(
        name="paper", n_peers=20_000, sim_minutes=40, attack_start_min=10, trials=1
    )


def bench_scale() -> Scale:
    """Default laptop scale: 10x smaller population, same densities."""
    return Scale(
        name="bench", n_peers=2_000, sim_minutes=30, attack_start_min=8, trials=1
    )


def smoke_scale() -> Scale:
    """Tiny scale for tests."""
    return Scale(
        name="smoke", n_peers=300, sim_minutes=12, attack_start_min=4, trials=1
    )


def active_scale() -> Scale:
    """Scale selected by the REPRO_SCALE environment variable."""
    name = os.environ.get("REPRO_SCALE", "bench").lower()
    if name == "paper":
        return paper_scale()
    if name == "smoke":
        return smoke_scale()
    if name == "bench":
        return bench_scale()
    raise ConfigError(f"unknown REPRO_SCALE {name!r} (bench|paper|smoke)")


# ----------------------------------------------------------------------
# fault-robustness sweep (message-level; not a paper figure)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FaultSweepSpec:
    """Grid for the loss x crash robustness sweep.

    Message-level (DES) runs, so the populations are much smaller than
    the fluid-model scales above: every Neighbor_Traffic message is
    real, which is precisely what the fault layer perturbs. Attackers
    flood but *report honestly*, so any false negative at loss 0 is a
    protocol artifact and every additional one under loss is
    attributable to injected faults.
    """

    name: str
    n_peers: int
    sim_minutes: int
    attack_start_min: int
    trials: int
    loss_fractions: Tuple[float, ...]
    crash_counts: Tuple[int, ...]
    num_agents: int
    attack_rate_qpm: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("name must be non-empty")
        if self.n_peers < 10:
            raise ConfigError("n_peers must be >= 10")
        if self.attack_start_min < 0:
            raise ConfigError("attack_start_min must be non-negative")
        if self.sim_minutes <= self.attack_start_min:
            raise ConfigError("sim_minutes must exceed attack_start_min")
        if self.trials < 1:
            raise ConfigError("trials must be >= 1")
        if not self.loss_fractions or not self.crash_counts:
            raise ConfigError("loss_fractions and crash_counts must be non-empty")
        if any(not (0.0 <= p <= 1.0) for p in self.loss_fractions):
            raise ConfigError("loss fractions must be in [0, 1]")
        if any(c < 0 for c in self.crash_counts):
            raise ConfigError("crash counts must be non-negative")
        if not (0 < self.num_agents < self.n_peers):
            raise ConfigError("num_agents out of range")
        if self.attack_rate_qpm <= 0:
            raise ConfigError("attack_rate_qpm must be positive")


def fault_grid_for(name: str) -> FaultSweepSpec:
    """Fault-sweep grid for a named scale (smoke shrinks the grid)."""
    if name == "smoke":
        return FaultSweepSpec(
            name="smoke",
            n_peers=40,
            sim_minutes=5,
            attack_start_min=1,
            trials=1,
            loss_fractions=(0.0, 0.3),
            crash_counts=(0,),
            num_agents=2,
            attack_rate_qpm=600.0,
        )
    return FaultSweepSpec(
        name=name,
        n_peers=40,
        sim_minutes=6,
        attack_start_min=2,
        trials=3,
        loss_fractions=(0.0, 0.1, 0.2, 0.3),
        crash_counts=(0, 2),
        num_agents=2,
        attack_rate_qpm=600.0,
    )


def fault_sweep_spec() -> FaultSweepSpec:
    """Fault-sweep grid for the active ``REPRO_SCALE``."""
    return fault_grid_for(os.environ.get("REPRO_SCALE", "bench").lower())


# ----------------------------------------------------------------------
# robustness matrix: defense x adversary x topology (message-level)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MatrixSpec:
    """Sizing of the robustness-matrix runs (DES, like the fault sweep).

    The matrix crosses defenses with adaptive adversaries and overlay
    topologies, so a full grid is dozens of message-level runs; the
    populations here are deliberately small (every Neighbor_Traffic
    message is simulated). ``k > n`` and degenerate attack windows are
    rejected at construction -- spec-parse time under the dotted-path
    override machinery.
    """

    name: str
    n_peers: int
    sim_minutes: int
    attack_start_min: int
    trials: int
    num_agents: int
    attack_rate_qpm: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("name must be non-empty")
        if self.n_peers < 10:
            raise ConfigError("n_peers must be >= 10")
        if self.attack_start_min < 0:
            raise ConfigError("attack_start_min must be non-negative")
        if self.sim_minutes <= self.attack_start_min:
            raise ConfigError("sim_minutes must exceed attack_start_min")
        if self.trials < 1:
            raise ConfigError("trials must be >= 1")
        if not (0 < self.num_agents < self.n_peers):
            raise ConfigError(
                f"num_agents out of range (need 0 < k < n, got "
                f"k={self.num_agents}, n={self.n_peers})"
            )
        if self.attack_rate_qpm <= 0:
            raise ConfigError("attack_rate_qpm must be positive")


def matrix_grid_for(name: str) -> MatrixSpec:
    """Robustness-matrix sizing for a named scale (smoke shrinks runs)."""
    if name == "smoke":
        return MatrixSpec(
            name="smoke",
            n_peers=30,
            sim_minutes=5,
            attack_start_min=2,
            trials=1,
            num_agents=2,
            attack_rate_qpm=600.0,
        )
    return MatrixSpec(
        name=name,
        n_peers=30,
        sim_minutes=6,
        attack_start_min=2,
        trials=2,
        num_agents=2,
        attack_rate_qpm=600.0,
    )
