"""Experiment scales: paper-faithful vs laptop-friendly.

The paper simulates 20,000 peers with 10..200 DDoS agents
(0.05%..1% of the population) and 1,000,000 search operations. The bench
default scales the population down 10x while preserving every *density*:
agents/peer, queries/peer/minute, attack rate, capacities, churn rates.
Set ``REPRO_SCALE=paper`` to run full scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigError

#: Agent fractions matching the paper's 10..200 agents over 20,000 peers.
PAPER_AGENT_FRACTIONS: Tuple[float, ...] = (
    0.0005,  # 10 agents @ 20k
    0.001,   # 20
    0.0025,  # 50
    0.005,   # 100
    0.01,    # 200
)


@dataclass(frozen=True)
class Scale:
    """One experiment scale."""

    name: str
    n_peers: int
    sim_minutes: int
    attack_start_min: int
    trials: int

    def __post_init__(self) -> None:
        if self.n_peers < 100:
            raise ConfigError("n_peers must be >= 100")
        if self.sim_minutes <= self.attack_start_min:
            raise ConfigError("sim_minutes must exceed attack_start_min")
        if self.trials < 1:
            raise ConfigError("trials must be >= 1")

    def agent_counts(self) -> List[int]:
        """Agent counts realizing the paper's densities at this scale."""
        return [max(1, round(f * self.n_peers)) for f in PAPER_AGENT_FRACTIONS]

    def paper_equivalent_agents(self, agents: int) -> int:
        """The agent count the paper would use for the same density."""
        return round(agents / self.n_peers * 20_000)


def paper_scale() -> Scale:
    """Full paper scale (20,000 peers)."""
    return Scale(
        name="paper", n_peers=20_000, sim_minutes=40, attack_start_min=10, trials=1
    )


def bench_scale() -> Scale:
    """Default laptop scale: 10x smaller population, same densities."""
    return Scale(
        name="bench", n_peers=2_000, sim_minutes=30, attack_start_min=8, trials=1
    )


def smoke_scale() -> Scale:
    """Tiny scale for tests."""
    return Scale(
        name="smoke", n_peers=300, sim_minutes=12, attack_start_min=4, trials=1
    )


def active_scale() -> Scale:
    """Scale selected by the REPRO_SCALE environment variable."""
    name = os.environ.get("REPRO_SCALE", "bench").lower()
    if name == "paper":
        return paper_scale()
    if name == "smoke":
        return smoke_scale()
    if name == "bench":
        return bench_scale()
    raise ConfigError(f"unknown REPRO_SCALE {name!r} (bench|paper|smoke)")
