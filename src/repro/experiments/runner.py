"""Message-level (DES) experiment runner.

Small-scale end-to-end runs of the full protocol stack: real messages,
real Neighbor_Traffic exchanges, churn, attack agents, and a pluggable
defense. Used by the integration tests, the examples, and the
fluid-vs-DES cross-validation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Set, Union

from repro.attack.adaptive import AdaptiveConfig
from repro.attack.cheating import CheatStrategy
from repro.attack.scenario import AttackScenario, ScenarioConfig
from repro.baselines.naive import NaiveCutoffConfig, deploy_naive
from repro.baselines.traceback import TracebackConfig, deploy_traceback
from repro.churn.process import ChurnConfig, ChurnProcess
from repro.core.config import DDPoliceConfig
from repro.core.police import deploy_ddpolice
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.metrics.collectors import LegacyMetricsCollector, MetricsCollector
from repro.metrics.errors import ErrorCounts, JudgmentLog
from repro.obs.config import Observability, ObsConfig
from repro.overlay.content import ContentCatalog, ContentConfig
from repro.overlay.ids import PeerId
from repro.overlay.network import NetworkConfig, OverlayNetwork
from repro.overlay.topology import TopologyConfig, generate_topology
from repro.simkit.engine import Simulator
from repro.simkit.rng import RngRegistry
from repro.workload.generator import QueryWorkload, WorkloadConfig


@dataclass(frozen=True)
class DESConfig:
    """Configuration of one message-level run."""

    n: int = 100
    duration_s: float = 600.0
    seed: int = 0
    topology: Optional[TopologyConfig] = None
    network: NetworkConfig = NetworkConfig()
    content: ContentConfig = ContentConfig(num_objects=100)
    workload: WorkloadConfig = WorkloadConfig()
    churn: ChurnConfig = ChurnConfig(enabled=False)
    #: Attack: 0 agents = clean run. Rates here are usually scaled down
    #: (DES is for small N, so keep ratios, not absolutes).
    num_agents: int = 0
    attack_start_s: float = 0.0
    attack_rate_qpm: float = 2000.0
    cheat_strategy: CheatStrategy = CheatStrategy.SILENT
    #: Adaptive-adversary strategy ("static" = the paper's flooder; see
    #: :mod:`repro.attack.adaptive` for throttle/collude/churn/pulse).
    adaptive: AdaptiveConfig = AdaptiveConfig()
    #: Defense: "none" | "ddpolice" | "naive" | "traceback".
    defense: str = "none"
    police: DDPoliceConfig = DDPoliceConfig()
    naive_cutoff_qpm: float = 500.0
    traceback: TracebackConfig = TracebackConfig()
    #: Metrics path: "incremental" (default, O(1) per event, bounded
    #: memory) or "legacy" (full per-minute record scan; forces record
    #: retention). Legacy exists only as the oracle for the equivalence
    #: property test.
    metrics_mode: str = "incremental"
    #: Fault schedule executed against the run (empty plan = no injector
    #: attached, transmit path untouched). Random crash / fail-slow
    #: victims are drawn from the *good* population so the ground-truth
    #: error accounting stays meaningful; explicit peer lists override.
    faults: FaultPlan = FaultPlan()
    #: Observability (tracing / metrics / profiling). Fully disabled by
    #: default: every instrumentation site reduces to one falsy branch
    #: and the run is bit-identical to pre-obs builds.
    obs: ObsConfig = ObsConfig()

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigError("n must be >= 2")
        if self.duration_s <= 0:
            raise ConfigError("duration_s must be positive")
        if not (0 <= self.num_agents <= self.n):
            raise ConfigError("num_agents out of range")
        if self.attack_start_s < 0:
            raise ConfigError("attack_start_s must be non-negative")
        if self.attack_rate_qpm <= 0:
            raise ConfigError("attack_rate_qpm must be positive")
        if self.defense not in ("none", "ddpolice", "naive", "traceback"):
            raise ConfigError(f"unknown defense {self.defense!r}")
        if self.adaptive.strategy == "collude" and self.num_agents > 0 and (
            self.cheat_strategy is not CheatStrategy.COLLUDE
        ):
            raise ConfigError(
                "adaptive strategy 'collude' requires cheat_strategy 'collude'"
            )
        if self.naive_cutoff_qpm <= 0:
            raise ConfigError("naive_cutoff_qpm must be positive")
        if self.metrics_mode not in ("incremental", "legacy"):
            raise ConfigError(f"unknown metrics_mode {self.metrics_mode!r}")
        if self.seed < 0:
            raise ConfigError("seed must be non-negative")


@dataclass
class DESRun:
    """A finished run with everything inspectable."""

    config: DESConfig
    sim: Simulator
    network: OverlayNetwork
    collector: Union[MetricsCollector, LegacyMetricsCollector]
    churn: Optional[ChurnProcess]
    scenario: Optional[AttackScenario]
    judgments: Optional[JudgmentLog]
    bad_peers: Set[PeerId] = field(default_factory=set)
    injector: Optional[FaultInjector] = None
    #: Observability bundle of the run (None when disabled); trace ring
    #: buffer, metrics registry, and profiler reports stay inspectable
    #: after the run even though file sinks are already flushed/closed.
    obs: Optional[Observability] = None
    #: Wall-clock duration of the event loop (seconds).
    wall_s: float = 0.0
    #: Bytes of DD-POLICE evidence state summed over all engines
    #: (traffic stores + report-dedup windows); 0 without the defense.
    evidence_bytes: int = 0

    @property
    def success_rate(self) -> float:
        """Whole-run S of good-origin (user) queries -- the paper's metric."""
        return self.network.success_rate()

    @property
    def success_rate_all_traffic(self) -> float:
        """Diagnostic: pre-fix S with attack queries in the denominator."""
        return self.network.success_rate("all")

    @property
    def mean_response_time(self) -> Optional[float]:
        return self.network.mean_response_time()

    @property
    def total_messages(self) -> int:
        return self.network.stats.messages_delivered

    def error_counts(self) -> ErrorCounts:
        if self.judgments is None:
            raise ConfigError("run had no defense; no judgments recorded")
        return self.judgments.error_counts(set(self.bad_peers))


def run_des_experiment(config: DESConfig) -> DESRun:
    """Build and run one message-level experiment end to end."""
    rngs = RngRegistry(config.seed)
    obs = Observability.from_config(config.obs, run=f"des-seed{config.seed}")
    sim = Simulator(tracer=obs.tracer if obs is not None else None)
    topo_cfg = config.topology or TopologyConfig(n=config.n, seed=config.seed)
    if topo_cfg.n != config.n:
        raise ConfigError("topology n must match config n")
    topo = generate_topology(topo_cfg)
    content = ContentCatalog(config.content, config.n)
    net_cfg = config.network
    if config.metrics_mode == "legacy" and net_cfg.retire_settled_records:
        net_cfg = replace(net_cfg, retire_settled_records=False)
    network = OverlayNetwork(
        sim, topo, config=net_cfg, content=content, rng_registry=rngs, obs=obs
    )
    collector: Union[MetricsCollector, LegacyMetricsCollector]
    if config.metrics_mode == "legacy":
        collector = LegacyMetricsCollector(network)
    else:
        collector = MetricsCollector(network)

    # Churn-assisted evasion drives a ChurnProcess even when natural
    # churn is disabled: the evading agents need the leave/rejoin
    # machinery (host cache, content relocation, listeners) to flee
    # through. The stream name stays "churn" either way, so enabling
    # evasion never perturbs a natural-churn run's draws.
    evading = config.num_agents > 0 and config.adaptive.strategy == "churn"
    churn: Optional[ChurnProcess] = None
    if config.churn.enabled or evading:
        churn = ChurnProcess(
            sim, network, config.churn, rng=rngs.stream("churn")
        )

    scenario: Optional[AttackScenario] = None
    bad_peers: Set[PeerId] = set()
    if config.num_agents > 0:
        scenario = AttackScenario(
            sim,
            network,
            ScenarioConfig(
                num_agents=config.num_agents,
                start_time_s=config.attack_start_s,
                nominal_rate_qpm=config.attack_rate_qpm,
                cheat_strategy=config.cheat_strategy,
                seed=config.seed,
            ),
            rng=rngs.stream("attack"),
            adaptive=config.adaptive,
            churn=churn,
        )
        bad_peers = set(scenario.compromised)
        if evading and churn is not None:
            # The agents time their own leave/rejoin cycle; pin them so
            # the sampled churn cycle cannot double-drive them.
            churn.pinned.update(bad_peers)

    injector: Optional[FaultInjector] = None
    if config.faults.enabled:
        injector = FaultInjector(config.faults, rngs)
        injector.attach(network, churn=churn, protected=tuple(sorted(bad_peers)))

    judgments: Optional[JudgmentLog] = None
    engines: Dict[PeerId, Any] = {}
    if config.defense == "ddpolice":
        collusion = None
        if config.cheat_strategy is CheatStrategy.COLLUDE and bad_peers:
            from repro.attack.adaptive import CollusionRing

            collusion = CollusionRing(
                members=frozenset(bad_peers),
                excuse_qpm=config.adaptive.collude_excuse_qpm,
            )
        engines = deploy_ddpolice(
            network,
            config.police,
            bad_peers=bad_peers,
            bad_strategy=config.cheat_strategy,
            collusion=collusion,
            rng=rngs.stream("police"),
        )
        judgments = next(iter(engines.values())).judgments if engines else None
    elif config.defense == "naive":
        defenses = deploy_naive(network, NaiveCutoffConfig(config.naive_cutoff_qpm))
        judgments = next(iter(defenses.values())).judgments if defenses else None
    elif config.defense == "traceback":
        tracebacks = deploy_traceback(
            network, config.traceback, rng=rngs.stream("traceback")
        )
        judgments = next(iter(tracebacks.values())).judgments if tracebacks else None

    workload = QueryWorkload(
        sim, network, config.workload, rng=rngs.stream("workload"), exclude=set()
    )
    workload.start()
    if churn is not None:
        churn.start()
    if scenario is not None:
        scenario.launch()

    import time as _time

    started = _time.perf_counter()
    if obs is not None and obs.profiler is not None:
        with obs.profiler.scope("des.run", n=config.n, seed=config.seed):
            sim.run(until=config.duration_s)
    else:
        sim.run(until=config.duration_s)
    wall_s = _time.perf_counter() - started
    if obs is not None:
        # Flush/close file sinks now; the ring buffer, metrics registry
        # and profiler reports remain readable on the returned run.
        obs.close()
    return DESRun(
        config=config,
        sim=sim,
        network=network,
        collector=collector,
        churn=churn,
        scenario=scenario,
        judgments=judgments,
        bad_peers=bad_peers,
        injector=injector,
        obs=obs,
        wall_s=wall_s,
        evidence_bytes=sum(
            e.monitor.evidence_bytes() + e._report_dedup.evidence_bytes()
            for e in engines.values()
        ),
    )
