"""Per-figure reproduction functions.

Each ``figN_*`` function regenerates the data behind one figure of the
paper's evaluation and returns structured rows; the benchmarks print them
as tables. See DESIGN.md section 2 for the full index.

The multi-run sweeps (``agent_sweep``, ``damage_timelines``,
``cut_threshold_sweep``) express their runs as pure tasks over
:func:`repro.exec.pmap`; pass ``workers`` (or set ``REPRO_WORKERS``) to
fan them out with bit-identical results. Multi-trial seeds use
:func:`repro.experiments.sweeps.trial_seed` (see docs/PERF.md for the
derivation contract).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.config import DDPoliceConfig
from repro.errors import MetricsError
from repro.exec import pmap
from repro.fluid.model import FluidConfig, FluidSimulation, MinuteRow
from repro.experiments.scenarios import Scale, bench_scale
from repro.experiments.sweeps import trial_seed
from repro.metrics.damage import damage_rate, damage_recovery_time
from repro.metrics.errors import ErrorCounts
from repro.metrics.series import TimeSeries
from repro.obs.config import ObsConfig
from repro.testbed.pipeline import run_rate_sweep


# ---------------------------------------------------------------------------
# Figures 5 & 6: testbed capacity sweep
# ---------------------------------------------------------------------------

def fig5_processed_vs_sent() -> List[Tuple[float, float]]:
    """Figure 5: queries sent/min vs processed/min at peer B."""
    return [(p.sent_qpm, p.processed_qpm) for p in run_rate_sweep()]


def fig6_drop_rate_vs_density() -> List[Tuple[float, float]]:
    """Figure 6: query drop rate (%) at peer B vs received query density."""
    return [(p.sent_qpm, p.drop_rate_pct) for p in run_rate_sweep()]


# ---------------------------------------------------------------------------
# Figures 9-11: service quality vs number of DDoS agents
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AgentSweepRow:
    """One x-axis point of Figures 9-11 (all three curves)."""

    agents: int
    paper_equivalent_agents: int
    traffic_no_ddos_k: float
    traffic_attack_k: float
    traffic_defended_k: float
    response_no_ddos_s: float
    response_attack_s: float
    response_defended_s: float
    success_no_ddos: float
    success_attack: float
    success_defended: float


def _base_config(
    scale: Scale, seed: int, obs: Optional[ObsConfig] = None
) -> FluidConfig:
    if obs is None:
        return FluidConfig(n=scale.n_peers, seed=seed)
    return FluidConfig(n=scale.n_peers, seed=seed, obs=obs)


def _steady_means(
    rows: Sequence[MinuteRow], first_minute: int
) -> Tuple[float, float, float]:
    """(traffic k-msgs/min, response s, success) averaged from a minute on.

    Raises :class:`~repro.errors.MetricsError` when no row lies at or
    after ``first_minute`` (the steady-state window is empty).
    """
    sel = [r for r in rows if r.minute >= first_minute]
    if not sel:
        last = rows[-1].minute if rows else None
        raise MetricsError(
            f"no steady-state rows at minute >= {first_minute} "
            f"(last simulated minute: {last})"
        )
    k = len(sel)
    return (
        sum(r.traffic_cost_kqpm for r in sel) / k,
        sum(r.response_time_s for r in sel) / k,
        sum(r.success_rate for r in sel) / k,
    )


def _steady_case_task(
    task: Tuple[FluidConfig, int, int],
) -> Tuple[float, float, float]:
    """One agent-sweep run (pure): ``(cfg, minutes, settle)`` -> means."""
    cfg, minutes, settle = task
    sim = FluidSimulation(cfg)
    sim.run(minutes)
    out = _steady_means(sim.rows, settle)
    sim.close_obs()
    return out


def _success_rows_task(
    task: Tuple[FluidConfig, int],
) -> Tuple[List[Tuple[int, float]], ErrorCounts]:
    """One timeline run (pure): per-minute success rates + error counts."""
    cfg, minutes = task
    sim = FluidSimulation(cfg)
    sim.run(minutes)
    out = [(r.minute, r.success_rate) for r in sim.rows], sim.error_counts()
    sim.close_obs()
    return out


def agent_sweep(
    scale: Optional[Scale] = None,
    *,
    seed: int = 7,
    agent_counts: Optional[Sequence[int]] = None,
    police: Optional[DDPoliceConfig] = None,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[AgentSweepRow]:
    """Shared sweep behind Figures 9, 10, and 11.

    For each agent count, three runs: no attack, attack without
    DD-POLICE, attack with DD-POLICE (CT=5, 2-minute exchange). The
    baseline plus the 2 x len(agent_counts) attack/defense runs execute
    through :func:`repro.exec.pmap`.
    """
    scale = scale or bench_scale()
    agent_counts = list(agent_counts or scale.agent_counts())
    police = police or DDPoliceConfig()
    base = _base_config(scale, seed, obs)
    settle = scale.attack_start_min + 4  # measure after detection settles

    tasks: List[Tuple[FluidConfig, int, int]] = [(base, scale.sim_minutes, settle)]
    for k in agent_counts:
        attack_cfg = replace(
            base, num_agents=k, attack_start_min=scale.attack_start_min
        )
        defended_cfg = replace(attack_cfg, defense="ddpolice", police=police)
        tasks.append((attack_cfg, scale.sim_minutes, settle))
        tasks.append((defended_cfg, scale.sim_minutes, settle))
    means = pmap(_steady_case_task, tasks, workers=workers)

    t0, r0, s0 = means[0]
    rows: List[AgentSweepRow] = []
    for i, k in enumerate(agent_counts):
        t1, r1, s1 = means[1 + 2 * i]
        t2, r2, s2 = means[2 + 2 * i]
        rows.append(
            AgentSweepRow(
                agents=k,
                paper_equivalent_agents=scale.paper_equivalent_agents(k),
                traffic_no_ddos_k=t0,
                traffic_attack_k=t1,
                traffic_defended_k=t2,
                response_no_ddos_s=r0,
                response_attack_s=r1,
                response_defended_s=r2,
                success_no_ddos=s0,
                success_attack=s1,
                success_defended=s2,
            )
        )
    return rows


def fig9_traffic_cost(rows: Sequence[AgentSweepRow]) -> List[Tuple[int, float, float, float]]:
    """Figure 9: average traffic cost (10^3 messages/min), three curves."""
    return [
        (r.paper_equivalent_agents, r.traffic_attack_k, r.traffic_defended_k, r.traffic_no_ddos_k)
        for r in rows
    ]


def fig10_response_time(rows: Sequence[AgentSweepRow]) -> List[Tuple[int, float, float, float]]:
    """Figure 10: average response time (s), three curves."""
    return [
        (
            r.paper_equivalent_agents,
            r.response_attack_s,
            r.response_defended_s,
            r.response_no_ddos_s,
        )
        for r in rows
    ]


def fig11_success_rate(rows: Sequence[AgentSweepRow]) -> List[Tuple[int, float, float, float]]:
    """Figure 11: average success rate (%), three curves."""
    return [
        (
            r.paper_equivalent_agents,
            100.0 * r.success_attack,
            100.0 * r.success_defended,
            100.0 * r.success_no_ddos,
        )
        for r in rows
    ]


# ---------------------------------------------------------------------------
# Figure 12: damage rate over time for different cut thresholds
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DamageTimeline:
    """One defense variant's damage-rate trajectory."""

    label: str
    cut_threshold: Optional[float]
    minutes: List[int]
    damage_pct: List[float]

    def series(self) -> TimeSeries:
        return TimeSeries(zip((float(m) for m in self.minutes), self.damage_pct))


def damage_timelines(
    scale: Optional[Scale] = None,
    *,
    cut_thresholds: Sequence[float] = (3.0, 7.0, 10.0),
    agents: Optional[int] = None,
    minutes: Optional[int] = None,
    seed: int = 11,
    trials: int = 1,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[DamageTimeline]:
    """Figure 12: no-defense + DD-POLICE-CT damage trajectories.

    The paper uses 100 agents in the 20,000-peer system (0.5%); the
    default agent count realizes the same density at the active scale.
    With ``trials > 1`` the per-minute damage is averaged over
    independent seeds (single runs sawtooth with attacker rejoins); trial
    ``t`` runs with ``trial_seed(seed, t)``. All (trials x variants) runs
    dispatch through one :func:`repro.exec.pmap` call.
    """
    scale = scale or bench_scale()
    minutes = minutes or max(scale.sim_minutes, scale.attack_start_min + 20)
    agents = agents if agents is not None else max(1, round(0.005 * scale.n_peers))

    n_trials = max(1, trials)
    cases_per_trial = 2 + len(cut_thresholds)  # baseline, no-defense, CTs
    tasks: List[Tuple[FluidConfig, int]] = []
    for t in range(n_trials):
        base = _base_config(scale, trial_seed(seed, t), obs)
        attack_cfg = replace(
            base, num_agents=agents, attack_start_min=scale.attack_start_min
        )
        tasks.append((base, minutes))
        tasks.append((attack_cfg, minutes))
        for ct in cut_thresholds:
            tasks.append(
                (
                    replace(
                        attack_cfg,
                        defense="ddpolice",
                        police=DDPoliceConfig().with_cut_threshold(ct),
                    ),
                    minutes,
                )
            )
    results = pmap(_success_rows_task, tasks, workers=workers)

    def one_trial(t: int) -> List[DamageTimeline]:
        chunk = results[t * cases_per_trial:(t + 1) * cases_per_trial]
        base_success = dict(chunk[0][0])

        def timeline(
            label: str, rows: List[Tuple[int, float]], ct: Optional[float]
        ) -> DamageTimeline:
            mins, dmg = [], []
            for minute, success in rows:
                s0 = base_success.get(minute)
                if s0 is None:
                    continue
                mins.append(minute)
                if minute < scale.attack_start_min:
                    # before the attack the runs differ only by seed noise
                    dmg.append(0.0)
                else:
                    dmg.append(damage_rate(s0, min(success, s0)))
            return DamageTimeline(
                label=label, cut_threshold=ct, minutes=mins, damage_pct=dmg
            )

        out = [timeline("no DD-POLICE", chunk[1][0], None)]
        for i, ct in enumerate(cut_thresholds):
            out.append(timeline(f"DD-POLICE-{ct:g}", chunk[2 + i][0], ct))
        return out

    runs = [one_trial(t) for t in range(n_trials)]
    if len(runs) == 1:
        return runs[0]
    merged: List[DamageTimeline] = []
    for idx, first in enumerate(runs[0]):
        series = [run[idx].damage_pct for run in runs]
        length = min(len(s) for s in series)
        averaged = [
            sum(s[i] for s in series) / len(series) for i in range(length)
        ]
        merged.append(
            DamageTimeline(
                label=first.label,
                cut_threshold=first.cut_threshold,
                minutes=first.minutes[:length],
                damage_pct=averaged,
            )
        )
    return merged


# ---------------------------------------------------------------------------
# Figures 13 & 14: errors and recovery time vs cut threshold
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CutThresholdRow:
    """One CT point of Figures 13/14."""

    cut_threshold: float
    false_negative: int  # good peers wrongly disconnected (paper's term)
    false_positive: int  # bad peers not identified (paper's term)
    false_judgment: int
    damage_recovery_min: Optional[float]
    stabilized_damage_pct: float


def cut_threshold_sweep(
    scale: Optional[Scale] = None,
    *,
    cut_thresholds: Sequence[float] = (2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0),
    agents: Optional[int] = None,
    minutes: Optional[int] = None,
    seed: int = 13,
    trials: int = 1,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[CutThresholdRow]:
    """Shared sweep behind Figures 13 and 14.

    With ``trials > 1`` error counts are summed and damage/recovery
    averaged over independent seeds -- the false-positive counts are
    small (a handful of slow-link agents per run), so single runs are
    0/1-noisy. Trial ``t`` runs with ``trial_seed(seed, t)``; all
    (trials x (1 + len(cut_thresholds))) runs dispatch through one
    :func:`repro.exec.pmap` call.
    """
    scale = scale or bench_scale()
    minutes = minutes or max(scale.sim_minutes, scale.attack_start_min + 20)
    agents = agents if agents is not None else max(1, round(0.005 * scale.n_peers))

    n_trials = max(1, trials)
    cases_per_trial = 1 + len(cut_thresholds)
    tasks: List[Tuple[FluidConfig, int]] = []
    for trial in range(n_trials):
        base = _base_config(scale, trial_seed(seed, trial), obs)
        tasks.append((base, minutes))
        for ct in cut_thresholds:
            tasks.append(
                (
                    replace(
                        base,
                        num_agents=agents,
                        attack_start_min=scale.attack_start_min,
                        defense="ddpolice",
                        police=DDPoliceConfig().with_cut_threshold(ct),
                    ),
                    minutes,
                )
            )
    results = pmap(_success_rows_task, tasks, workers=workers)

    per_trial: List[List[CutThresholdRow]] = []
    for trial in range(n_trials):
        chunk = results[trial * cases_per_trial:(trial + 1) * cases_per_trial]
        base_success = dict(chunk[0][0])

        rows: List[CutThresholdRow] = []
        for i, ct in enumerate(cut_thresholds):
            run_rows, errors = chunk[1 + i]
            damage = TimeSeries()
            for minute, success in run_rows:
                s0 = base_success.get(minute)
                if s0 is None:
                    continue
                if minute < scale.attack_start_min:
                    damage.append(float(minute), 0.0)
                else:
                    damage.append(float(minute), damage_rate(s0, min(success, s0)))
            tail = damage.window(minutes - 5, minutes + 1)
            rows.append(
                CutThresholdRow(
                    cut_threshold=ct,
                    false_negative=errors.false_negative,
                    false_positive=errors.false_positive,
                    false_judgment=errors.false_judgment,
                    damage_recovery_min=damage_recovery_time(damage),
                    stabilized_damage_pct=tail.mean() if len(tail) else 0.0,
                )
            )
        per_trial.append(rows)

    if len(per_trial) == 1:
        return per_trial[0]
    merged: List[CutThresholdRow] = []
    for idx, ct in enumerate(cut_thresholds):
        cells = [t[idx] for t in per_trial]
        recoveries = [c.damage_recovery_min for c in cells if c.damage_recovery_min is not None]
        fn = sum(c.false_negative for c in cells)
        fp = sum(c.false_positive for c in cells)
        merged.append(
            CutThresholdRow(
                cut_threshold=ct,
                false_negative=fn,
                false_positive=fp,
                false_judgment=fn + fp,
                damage_recovery_min=(
                    sum(recoveries) / len(recoveries) if recoveries else None
                ),
                stabilized_damage_pct=sum(c.stabilized_damage_pct for c in cells)
                / len(cells),
            )
        )
    return merged


def fig13_errors(rows: Sequence[CutThresholdRow]) -> List[Tuple[float, int, int, int]]:
    """Figure 13: (CT, false judgment, false positive, false negative)."""
    return [
        (r.cut_threshold, r.false_judgment, r.false_positive, r.false_negative)
        for r in rows
    ]


def fig14_recovery(rows: Sequence[CutThresholdRow]) -> List[Tuple[float, float]]:
    """Figure 14: (CT, damage recovery time in minutes).

    Non-recovered runs are reported as the simulation horizon (the paper
    plots them at the top of the axis).
    """
    out = []
    for r in rows:
        value = r.damage_recovery_min
        out.append((r.cut_threshold, float("nan") if value is None else value))
    return out


# ---------------------------------------------------------------------------
# Section 3.7.1: neighbor-list exchange frequency study
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExchangeFrequencyRow:
    """One policy point of the Section 3.7.1 study."""

    policy: str
    period_min: Optional[int]
    false_judgment: int
    control_overhead_kqpm: float
    stabilized_damage_pct: float


def exchange_frequency_study(
    scale: Optional[Scale] = None,
    *,
    periods_min: Sequence[int] = (1, 2, 4, 5, 10),
    agents: Optional[int] = None,
    minutes: Optional[int] = None,
    seed: int = 17,
    obs: Optional[ObsConfig] = None,
) -> List[ExchangeFrequencyRow]:
    """Periodic policy at several periods; the paper's conclusion is that
    s <= 2 min performs well, s >= 4 min degrades accuracy, and the
    event-driven policy costs more overhead in dynamic networks.

    Event-driven is approximated at fluid granularity by a 1-minute
    period with per-change message accounting (every join/leave triggers
    a republication).
    """
    scale = scale or bench_scale()
    minutes = minutes or scale.sim_minutes
    agents = agents if agents is not None else max(1, round(0.005 * scale.n_peers))
    base = _base_config(scale, seed, obs)

    baseline = FluidSimulation(base)
    baseline.run(minutes)
    baseline.close_obs()
    base_success = {r.minute: r.success_rate for r in baseline.rows}

    def run_one(label: str, period: int, event_driven: bool) -> ExchangeFrequencyRow:
        cfg = replace(
            base,
            num_agents=agents,
            attack_start_min=scale.attack_start_min,
            defense="ddpolice",
            exchange_period_min=period,
        )
        sim = FluidSimulation(cfg)
        sim.run(minutes)
        sim.close_obs()
        errors = sim.error_counts()
        online_mean = sim.mean_over(1, "online")
        mean_deg = 6.0
        if event_driven:
            # "a peer informs all its neighbors whenever its neighboring
            # peer is leaving or a new peer is joining": every churn event
            # touches ~deg neighbors, each republishing to ~deg peers.
            churn_events = sim.state.joins + sim.state.leaves
            overhead = churn_events / max(1, minutes) * mean_deg * mean_deg
        else:
            # each online peer republishes to all neighbors every period
            overhead = online_mean * mean_deg / period
        tail_damage = []
        for r in sim.rows:
            if r.minute >= minutes - 5:
                s0 = base_success.get(r.minute)
                if s0 is not None:
                    tail_damage.append(damage_rate(s0, min(r.success_rate, s0)))
        return ExchangeFrequencyRow(
            policy=label,
            period_min=None if event_driven else period,
            false_judgment=errors.false_judgment,
            control_overhead_kqpm=overhead / 1000.0,
            stabilized_damage_pct=(
                sum(tail_damage) / len(tail_damage) if tail_damage else 0.0
            ),
        )

    rows = [run_one(f"periodic-{p}min", p, event_driven=False) for p in periods_min]
    rows.append(run_one("event-driven", 1, event_driven=True))
    return rows
