"""Per-figure reproduction functions (thin shims over the spec layer).

Each ``figN_*`` function regenerates the data behind one figure of the
paper's evaluation and returns structured rows; the benchmarks print
them as tables. See DESIGN.md section 2 for the full index.

The sweeps behind the figures live in
:mod:`repro.experiments.library` as registered scenarios driven by
:class:`~repro.experiments.spec.ExperimentSpec`; the functions here
keep the historical signatures and build the equivalent spec, so
``agent_sweep(scale, seed=7)`` and ``run_spec("fig9")`` execute the
same cases and share the scenario cache. Pass ``workers`` (or set
``REPRO_WORKERS``) to fan out with bit-identical results; multi-trial
seeds use :func:`repro.experiments.spec.trial_seed` (see docs/PERF.md
for the derivation contract).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import DDPoliceConfig
from repro.fluid.model import FluidConfig
from repro.experiments.library import (  # noqa: F401  (canonical re-exports)
    AgentSweepRow,
    CutThresholdRow,
    DamageTimeline,
    ExchangeFrequencyRow,
    run_spec,
)
from repro.experiments.scenarios import Scale, bench_scale
from repro.experiments.spec import (
    ExperimentSpec,
    GridSpec,
    fluid_case_result,
    steady_means,
)
from repro.metrics.errors import ErrorCounts
from repro.obs.config import ObsConfig
from repro.testbed.pipeline import run_rate_sweep

#: Legacy alias; the canonical implementation is spec.steady_means.
_steady_means = steady_means


# ---------------------------------------------------------------------------
# Figures 5 & 6: testbed capacity sweep
# ---------------------------------------------------------------------------

def fig5_processed_vs_sent() -> List[Tuple[float, float]]:
    """Figure 5: queries sent/min vs processed/min at peer B."""
    return [(p.sent_qpm, p.processed_qpm) for p in run_rate_sweep()]


def fig6_drop_rate_vs_density() -> List[Tuple[float, float]]:
    """Figure 6: query drop rate (%) at peer B vs received query density."""
    return [(p.sent_qpm, p.drop_rate_pct) for p in run_rate_sweep()]


# ---------------------------------------------------------------------------
# Figures 9-11: service quality vs number of DDoS agents
# ---------------------------------------------------------------------------

def _base_config(
    scale: Scale, seed: int, obs: Optional[ObsConfig] = None
) -> FluidConfig:
    if obs is None:
        return FluidConfig(n=scale.n_peers, seed=seed)
    return FluidConfig(n=scale.n_peers, seed=seed, obs=obs)


def _steady_case_task(
    task: Tuple[FluidConfig, int, int],
) -> Tuple[float, float, float]:
    """One agent-sweep run (pure): ``(cfg, minutes, settle)`` -> means."""
    cfg, minutes, settle = task
    return fluid_case_result(cfg, minutes, settle_min=settle).steady


def _success_rows_task(
    task: Tuple[FluidConfig, int],
) -> Tuple[List[Tuple[int, float]], ErrorCounts]:
    """One timeline run (pure): per-minute success rates + error counts."""
    cfg, minutes = task
    res = fluid_case_result(cfg, minutes)
    return list(res.rows), ErrorCounts(
        false_negative=res.false_negative, false_positive=res.false_positive
    )


def agent_sweep(
    scale: Optional[Scale] = None,
    *,
    seed: int = 7,
    agent_counts: Optional[Sequence[int]] = None,
    police: Optional[DDPoliceConfig] = None,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[AgentSweepRow]:
    """Shared sweep behind Figures 9, 10, and 11.

    For each agent count, three runs: no attack, attack without
    DD-POLICE, attack with DD-POLICE (CT=5, 2-minute exchange). The
    baseline plus the 2 x len(agent_counts) attack/defense runs execute
    through :func:`repro.exec.pmap`.
    """
    spec = ExperimentSpec(
        name="agent-sweep",
        scenario="agent-sweep",
        seed=seed,
        scale=scale or bench_scale(),
        police=police or DDPoliceConfig(),
        grid=GridSpec(agent_counts=tuple(agent_counts or ())),
    )
    return run_spec(spec, workers=workers, obs=obs, cache=False).data


def fig9_traffic_cost(rows: Sequence[AgentSweepRow]) -> List[Tuple[int, float, float, float]]:
    """Figure 9: average traffic cost (10^3 messages/min), three curves."""
    return [
        (r.paper_equivalent_agents, r.traffic_attack_k, r.traffic_defended_k, r.traffic_no_ddos_k)
        for r in rows
    ]


def fig10_response_time(rows: Sequence[AgentSweepRow]) -> List[Tuple[int, float, float, float]]:
    """Figure 10: average response time (s), three curves."""
    return [
        (
            r.paper_equivalent_agents,
            r.response_attack_s,
            r.response_defended_s,
            r.response_no_ddos_s,
        )
        for r in rows
    ]


def fig11_success_rate(rows: Sequence[AgentSweepRow]) -> List[Tuple[int, float, float, float]]:
    """Figure 11: average success rate (%), three curves."""
    return [
        (
            r.paper_equivalent_agents,
            100.0 * r.success_attack,
            100.0 * r.success_defended,
            100.0 * r.success_no_ddos,
        )
        for r in rows
    ]


# ---------------------------------------------------------------------------
# Figure 12: damage rate over time for different cut thresholds
# ---------------------------------------------------------------------------

def damage_timelines(
    scale: Optional[Scale] = None,
    *,
    cut_thresholds: Sequence[float] = (3.0, 7.0, 10.0),
    agents: Optional[int] = None,
    minutes: Optional[int] = None,
    seed: int = 11,
    trials: int = 1,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[DamageTimeline]:
    """Figure 12: no-defense + DD-POLICE-CT damage trajectories.

    The paper uses 100 agents in the 20,000-peer system (0.5%); the
    default agent count realizes the same density at the active scale.
    With ``trials > 1`` the per-minute damage is averaged over
    independent seeds (single runs sawtooth with attacker rejoins); trial
    ``t`` runs with ``trial_seed(seed, t)``. All (trials x variants) runs
    dispatch through one :func:`repro.exec.pmap` call.
    """
    spec = ExperimentSpec(
        name="damage-timelines",
        scenario="damage-timelines",
        seed=seed,
        trials=max(1, trials),
        scale=scale or bench_scale(),
        grid=GridSpec(
            cut_thresholds=tuple(cut_thresholds),
            agents=agents if agents is not None else 0,
            minutes=minutes or 0,
        ),
    )
    return run_spec(spec, workers=workers, obs=obs, cache=False).data


# ---------------------------------------------------------------------------
# Figures 13 & 14: errors and recovery time vs cut threshold
# ---------------------------------------------------------------------------

def cut_threshold_sweep(
    scale: Optional[Scale] = None,
    *,
    cut_thresholds: Sequence[float] = (2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0),
    agents: Optional[int] = None,
    minutes: Optional[int] = None,
    seed: int = 13,
    trials: int = 1,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[CutThresholdRow]:
    """Shared sweep behind Figures 13 and 14.

    With ``trials > 1`` error counts are summed and damage/recovery
    averaged over independent seeds -- the false-positive counts are
    small (a handful of slow-link agents per run), so single runs are
    0/1-noisy. Trial ``t`` runs with ``trial_seed(seed, t)``; all
    (trials x (1 + len(cut_thresholds))) runs dispatch through one
    :func:`repro.exec.pmap` call.
    """
    spec = ExperimentSpec(
        name="cut-threshold-sweep",
        scenario="cut-threshold-sweep",
        seed=seed,
        trials=max(1, trials),
        scale=scale or bench_scale(),
        grid=GridSpec(
            cut_thresholds=tuple(cut_thresholds),
            agents=agents if agents is not None else 0,
            minutes=minutes or 0,
        ),
    )
    return run_spec(spec, workers=workers, obs=obs, cache=False).data


def fig13_errors(rows: Sequence[CutThresholdRow]) -> List[Tuple[float, int, int, int]]:
    """Figure 13: (CT, false judgment, false positive, false negative)."""
    return [
        (r.cut_threshold, r.false_judgment, r.false_positive, r.false_negative)
        for r in rows
    ]


def fig14_recovery(rows: Sequence[CutThresholdRow]) -> List[Tuple[float, float]]:
    """Figure 14: (CT, damage recovery time in minutes).

    Non-recovered runs are reported as the simulation horizon (the paper
    plots them at the top of the axis).
    """
    out = []
    for r in rows:
        value = r.damage_recovery_min
        out.append((r.cut_threshold, float("nan") if value is None else value))
    return out


# ---------------------------------------------------------------------------
# Section 3.7.1: neighbor-list exchange frequency study
# ---------------------------------------------------------------------------

def exchange_frequency_study(
    scale: Optional[Scale] = None,
    *,
    periods_min: Sequence[int] = (1, 2, 4, 5, 10),
    agents: Optional[int] = None,
    minutes: Optional[int] = None,
    seed: int = 17,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> List[ExchangeFrequencyRow]:
    """Periodic policy at several periods; the paper's conclusion is that
    s <= 2 min performs well, s >= 4 min degrades accuracy, and the
    event-driven policy costs more overhead in dynamic networks.

    Event-driven is approximated at fluid granularity by a 1-minute
    period with per-change message accounting (every join/leave triggers
    a republication).
    """
    spec = ExperimentSpec(
        name="exchange-frequency",
        scenario="exchange-frequency",
        seed=seed,
        scale=scale or bench_scale(),
        grid=GridSpec(
            periods_min=tuple(periods_min),
            agents=agents if agents is not None else 0,
            minutes=minutes or 0,
        ),
    )
    return run_spec(spec, workers=workers, obs=obs, cache=False).data


__all__ = [
    "AgentSweepRow",
    "CutThresholdRow",
    "DamageTimeline",
    "ExchangeFrequencyRow",
    "agent_sweep",
    "cut_threshold_sweep",
    "damage_timelines",
    "exchange_frequency_study",
    "fig5_processed_vs_sent",
    "fig6_drop_rate_vs_density",
    "fig9_traffic_cost",
    "fig10_response_time",
    "fig11_success_rate",
    "fig13_errors",
    "fig14_recovery",
    "run_spec",
]
