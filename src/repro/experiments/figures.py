"""Per-figure reproduction functions.

Each ``figN_*`` function regenerates the data behind one figure of the
paper's evaluation and returns structured rows; the benchmarks print them
as tables. See DESIGN.md section 2 for the full index.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.core.config import DDPoliceConfig
from repro.errors import ConfigError
from repro.fluid.model import FluidConfig, FluidSimulation, MinuteRow
from repro.experiments.scenarios import Scale, bench_scale
from repro.metrics.damage import damage_rate, damage_recovery_time
from repro.metrics.series import TimeSeries
from repro.testbed.pipeline import run_rate_sweep


# ---------------------------------------------------------------------------
# Figures 5 & 6: testbed capacity sweep
# ---------------------------------------------------------------------------

def fig5_processed_vs_sent() -> List[Tuple[float, float]]:
    """Figure 5: queries sent/min vs processed/min at peer B."""
    return [(p.sent_qpm, p.processed_qpm) for p in run_rate_sweep()]


def fig6_drop_rate_vs_density() -> List[Tuple[float, float]]:
    """Figure 6: query drop rate (%) at peer B vs received query density."""
    return [(p.sent_qpm, p.drop_rate_pct) for p in run_rate_sweep()]


# ---------------------------------------------------------------------------
# Figures 9-11: service quality vs number of DDoS agents
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AgentSweepRow:
    """One x-axis point of Figures 9-11 (all three curves)."""

    agents: int
    paper_equivalent_agents: int
    traffic_no_ddos_k: float
    traffic_attack_k: float
    traffic_defended_k: float
    response_no_ddos_s: float
    response_attack_s: float
    response_defended_s: float
    success_no_ddos: float
    success_attack: float
    success_defended: float


def _base_config(scale: Scale, seed: int) -> FluidConfig:
    return FluidConfig(n=scale.n_peers, seed=seed)


def _steady_means(
    rows: Sequence[MinuteRow], first_minute: int
) -> Tuple[float, float, float]:
    """(traffic k-msgs/min, response s, success) averaged from a minute on."""
    sel = [r for r in rows if r.minute >= first_minute]
    if not sel:
        raise ConfigError("no steady-state rows")
    k = len(sel)
    return (
        sum(r.traffic_cost_kqpm for r in sel) / k,
        sum(r.response_time_s for r in sel) / k,
        sum(r.success_rate for r in sel) / k,
    )


def agent_sweep(
    scale: Optional[Scale] = None,
    *,
    seed: int = 7,
    agent_counts: Optional[Sequence[int]] = None,
    police: Optional[DDPoliceConfig] = None,
) -> List[AgentSweepRow]:
    """Shared sweep behind Figures 9, 10, and 11.

    For each agent count, three runs: no attack, attack without
    DD-POLICE, attack with DD-POLICE (CT=5, 2-minute exchange).
    """
    scale = scale or bench_scale()
    agent_counts = list(agent_counts or scale.agent_counts())
    police = police or DDPoliceConfig()
    base = _base_config(scale, seed)
    settle = scale.attack_start_min + 4  # measure after detection settles

    baseline = FluidSimulation(base)
    baseline.run(scale.sim_minutes)
    t0, r0, s0 = _steady_means(baseline.rows, settle)

    rows: List[AgentSweepRow] = []
    for k in agent_counts:
        attack_cfg = replace(
            base, num_agents=k, attack_start_min=scale.attack_start_min
        )
        attacked = FluidSimulation(attack_cfg)
        attacked.run(scale.sim_minutes)
        t1, r1, s1 = _steady_means(attacked.rows, settle)

        defended_cfg = replace(attack_cfg, defense="ddpolice", police=police)
        defended = FluidSimulation(defended_cfg)
        defended.run(scale.sim_minutes)
        t2, r2, s2 = _steady_means(defended.rows, settle)

        rows.append(
            AgentSweepRow(
                agents=k,
                paper_equivalent_agents=scale.paper_equivalent_agents(k),
                traffic_no_ddos_k=t0,
                traffic_attack_k=t1,
                traffic_defended_k=t2,
                response_no_ddos_s=r0,
                response_attack_s=r1,
                response_defended_s=r2,
                success_no_ddos=s0,
                success_attack=s1,
                success_defended=s2,
            )
        )
    return rows


def fig9_traffic_cost(rows: Sequence[AgentSweepRow]) -> List[Tuple[int, float, float, float]]:
    """Figure 9: average traffic cost (10^3 messages/min), three curves."""
    return [
        (r.paper_equivalent_agents, r.traffic_attack_k, r.traffic_defended_k, r.traffic_no_ddos_k)
        for r in rows
    ]


def fig10_response_time(rows: Sequence[AgentSweepRow]) -> List[Tuple[int, float, float, float]]:
    """Figure 10: average response time (s), three curves."""
    return [
        (
            r.paper_equivalent_agents,
            r.response_attack_s,
            r.response_defended_s,
            r.response_no_ddos_s,
        )
        for r in rows
    ]


def fig11_success_rate(rows: Sequence[AgentSweepRow]) -> List[Tuple[int, float, float, float]]:
    """Figure 11: average success rate (%), three curves."""
    return [
        (
            r.paper_equivalent_agents,
            100.0 * r.success_attack,
            100.0 * r.success_defended,
            100.0 * r.success_no_ddos,
        )
        for r in rows
    ]


# ---------------------------------------------------------------------------
# Figure 12: damage rate over time for different cut thresholds
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DamageTimeline:
    """One defense variant's damage-rate trajectory."""

    label: str
    cut_threshold: Optional[float]
    minutes: List[int]
    damage_pct: List[float]

    def series(self) -> TimeSeries:
        return TimeSeries(zip((float(m) for m in self.minutes), self.damage_pct))


def damage_timelines(
    scale: Optional[Scale] = None,
    *,
    cut_thresholds: Sequence[float] = (3.0, 7.0, 10.0),
    agents: Optional[int] = None,
    minutes: Optional[int] = None,
    seed: int = 11,
    trials: int = 1,
) -> List[DamageTimeline]:
    """Figure 12: no-defense + DD-POLICE-CT damage trajectories.

    The paper uses 100 agents in the 20,000-peer system (0.5%); the
    default agent count realizes the same density at the active scale.
    With ``trials > 1`` the per-minute damage is averaged over
    independent seeds (single runs sawtooth with attacker rejoins).
    """
    scale = scale or bench_scale()
    minutes = minutes or max(scale.sim_minutes, scale.attack_start_min + 20)
    agents = agents if agents is not None else max(1, round(0.005 * scale.n_peers))

    def one_trial(trial_seed: int) -> List[DamageTimeline]:
        base = _base_config(scale, trial_seed)
        baseline = FluidSimulation(base)
        baseline.run(minutes)
        base_success = {r.minute: r.success_rate for r in baseline.rows}

        def timeline(label: str, cfg: FluidConfig, ct: Optional[float]) -> DamageTimeline:
            sim = FluidSimulation(cfg)
            sim.run(minutes)
            mins, dmg = [], []
            for r in sim.rows:
                s0 = base_success.get(r.minute)
                if s0 is None:
                    continue
                mins.append(r.minute)
                if r.minute < scale.attack_start_min:
                    # before the attack the runs differ only by seed noise
                    dmg.append(0.0)
                else:
                    dmg.append(damage_rate(s0, min(r.success_rate, s0)))
            return DamageTimeline(
                label=label, cut_threshold=ct, minutes=mins, damage_pct=dmg
            )

        attack_cfg = replace(
            base, num_agents=agents, attack_start_min=scale.attack_start_min
        )
        out = [timeline("no DD-POLICE", attack_cfg, None)]
        for ct in cut_thresholds:
            cfg = replace(
                attack_cfg,
                defense="ddpolice",
                police=DDPoliceConfig().with_cut_threshold(ct),
            )
            out.append(timeline(f"DD-POLICE-{ct:g}", cfg, ct))
        return out

    runs = [one_trial(seed + 1000 * t) for t in range(max(1, trials))]
    if len(runs) == 1:
        return runs[0]
    merged: List[DamageTimeline] = []
    for idx, first in enumerate(runs[0]):
        series = [run[idx].damage_pct for run in runs]
        length = min(len(s) for s in series)
        averaged = [
            sum(s[i] for s in series) / len(series) for i in range(length)
        ]
        merged.append(
            DamageTimeline(
                label=first.label,
                cut_threshold=first.cut_threshold,
                minutes=first.minutes[:length],
                damage_pct=averaged,
            )
        )
    return merged


# ---------------------------------------------------------------------------
# Figures 13 & 14: errors and recovery time vs cut threshold
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CutThresholdRow:
    """One CT point of Figures 13/14."""

    cut_threshold: float
    false_negative: int  # good peers wrongly disconnected (paper's term)
    false_positive: int  # bad peers not identified (paper's term)
    false_judgment: int
    damage_recovery_min: Optional[float]
    stabilized_damage_pct: float


def cut_threshold_sweep(
    scale: Optional[Scale] = None,
    *,
    cut_thresholds: Sequence[float] = (2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0),
    agents: Optional[int] = None,
    minutes: Optional[int] = None,
    seed: int = 13,
    trials: int = 1,
) -> List[CutThresholdRow]:
    """Shared sweep behind Figures 13 and 14.

    With ``trials > 1`` error counts are summed and damage/recovery
    averaged over independent seeds -- the false-positive counts are
    small (a handful of slow-link agents per run), so single runs are
    0/1-noisy.
    """
    scale = scale or bench_scale()
    minutes = minutes or max(scale.sim_minutes, scale.attack_start_min + 20)
    agents = agents if agents is not None else max(1, round(0.005 * scale.n_peers))

    per_trial: List[List[CutThresholdRow]] = []
    for trial in range(max(1, trials)):
        base = _base_config(scale, seed + 1000 * trial)
        baseline = FluidSimulation(base)
        baseline.run(minutes)
        base_success = {r.minute: r.success_rate for r in baseline.rows}

        rows: List[CutThresholdRow] = []
        for ct in cut_thresholds:
            cfg = replace(
                base,
                num_agents=agents,
                attack_start_min=scale.attack_start_min,
                defense="ddpolice",
                police=DDPoliceConfig().with_cut_threshold(ct),
            )
            sim = FluidSimulation(cfg)
            sim.run(minutes)
            damage = TimeSeries()
            for r in sim.rows:
                s0 = base_success.get(r.minute)
                if s0 is None:
                    continue
                if r.minute < scale.attack_start_min:
                    damage.append(float(r.minute), 0.0)
                else:
                    damage.append(
                        float(r.minute), damage_rate(s0, min(r.success_rate, s0))
                    )
            errors = sim.error_counts()
            tail = damage.window(minutes - 5, minutes + 1)
            rows.append(
                CutThresholdRow(
                    cut_threshold=ct,
                    false_negative=errors.false_negative,
                    false_positive=errors.false_positive,
                    false_judgment=errors.false_judgment,
                    damage_recovery_min=damage_recovery_time(damage),
                    stabilized_damage_pct=tail.mean() if len(tail) else 0.0,
                )
            )
        per_trial.append(rows)

    if len(per_trial) == 1:
        return per_trial[0]
    merged: List[CutThresholdRow] = []
    for idx, ct in enumerate(cut_thresholds):
        cells = [t[idx] for t in per_trial]
        recoveries = [c.damage_recovery_min for c in cells if c.damage_recovery_min is not None]
        fn = sum(c.false_negative for c in cells)
        fp = sum(c.false_positive for c in cells)
        merged.append(
            CutThresholdRow(
                cut_threshold=ct,
                false_negative=fn,
                false_positive=fp,
                false_judgment=fn + fp,
                damage_recovery_min=(
                    sum(recoveries) / len(recoveries) if recoveries else None
                ),
                stabilized_damage_pct=sum(c.stabilized_damage_pct for c in cells)
                / len(cells),
            )
        )
    return merged


def fig13_errors(rows: Sequence[CutThresholdRow]) -> List[Tuple[float, int, int, int]]:
    """Figure 13: (CT, false judgment, false positive, false negative)."""
    return [
        (r.cut_threshold, r.false_judgment, r.false_positive, r.false_negative)
        for r in rows
    ]


def fig14_recovery(rows: Sequence[CutThresholdRow]) -> List[Tuple[float, float]]:
    """Figure 14: (CT, damage recovery time in minutes).

    Non-recovered runs are reported as the simulation horizon (the paper
    plots them at the top of the axis).
    """
    out = []
    for r in rows:
        value = r.damage_recovery_min
        out.append((r.cut_threshold, float("nan") if value is None else value))
    return out


# ---------------------------------------------------------------------------
# Section 3.7.1: neighbor-list exchange frequency study
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExchangeFrequencyRow:
    """One policy point of the Section 3.7.1 study."""

    policy: str
    period_min: Optional[int]
    false_judgment: int
    control_overhead_kqpm: float
    stabilized_damage_pct: float


def exchange_frequency_study(
    scale: Optional[Scale] = None,
    *,
    periods_min: Sequence[int] = (1, 2, 4, 5, 10),
    agents: Optional[int] = None,
    minutes: Optional[int] = None,
    seed: int = 17,
) -> List[ExchangeFrequencyRow]:
    """Periodic policy at several periods; the paper's conclusion is that
    s <= 2 min performs well, s >= 4 min degrades accuracy, and the
    event-driven policy costs more overhead in dynamic networks.

    Event-driven is approximated at fluid granularity by a 1-minute
    period with per-change message accounting (every join/leave triggers
    a republication).
    """
    scale = scale or bench_scale()
    minutes = minutes or scale.sim_minutes
    agents = agents if agents is not None else max(1, round(0.005 * scale.n_peers))
    base = _base_config(scale, seed)

    baseline = FluidSimulation(base)
    baseline.run(minutes)
    base_success = {r.minute: r.success_rate for r in baseline.rows}

    def run_one(label: str, period: int, event_driven: bool) -> ExchangeFrequencyRow:
        cfg = replace(
            base,
            num_agents=agents,
            attack_start_min=scale.attack_start_min,
            defense="ddpolice",
            exchange_period_min=period,
        )
        sim = FluidSimulation(cfg)
        sim.run(minutes)
        errors = sim.error_counts()
        online_mean = sim.mean_over(1, "online")
        mean_deg = 6.0
        if event_driven:
            # "a peer informs all its neighbors whenever its neighboring
            # peer is leaving or a new peer is joining": every churn event
            # touches ~deg neighbors, each republishing to ~deg peers.
            churn_events = sim.state.joins + sim.state.leaves
            overhead = churn_events / max(1, minutes) * mean_deg * mean_deg
        else:
            # each online peer republishes to all neighbors every period
            overhead = online_mean * mean_deg / period
        tail_damage = []
        for r in sim.rows:
            if r.minute >= minutes - 5:
                s0 = base_success.get(r.minute)
                if s0 is not None:
                    tail_damage.append(damage_rate(s0, min(r.success_rate, s0)))
        return ExchangeFrequencyRow(
            policy=label,
            period_min=None if event_driven else period,
            false_judgment=errors.false_judgment,
            control_overhead_kqpm=overhead / 1000.0,
            stabilized_damage_pct=(
                sum(tail_damage) / len(tail_damage) if tail_damage else 0.0
            ),
        )

    rows = [run_one(f"periodic-{p}min", p, event_driven=False) for p in periods_min]
    rows.append(run_one("event-driven", 1, event_driven=True))
    return rows
