"""The registered experiment library: scenario drivers + default specs.

Every figure of the paper's evaluation (and the robustness studies that
grew around it) is an :class:`~repro.experiments.spec.ExperimentSpec`
registered here and resolved by name -- ``repro-experiments run fig12``
-- over a registered scenario driver:

========================  ====================================================
scenario                  produces
========================  ====================================================
``testbed-rate``          Figures 5 & 6 (A->B->C capacity sweep, closed form)
``agent-sweep``           Figures 9-11 (service quality vs #agents)
``damage-timelines``      Figure 12 (damage over time per cut threshold)
``cut-threshold-sweep``   Figures 13/14 + stabilized damage vs CT
``exchange-frequency``    Section 3.7.1 (neighbor-list exchange policies)
``fault-sweep``           loss x crash robustness grid (DES, message level)
``robustness-matrix``     defense x adaptive adversary x topology grid (DES)
``sketch-frontier``       count-min evidence memory x attack rate (des-soa)
========================  ====================================================

A scenario driver expands the spec into backend-neutral
:class:`~repro.experiments.spec.Case` lists, executes them through
:func:`~repro.experiments.spec.run_cases` (one pmap over the whole
grid; ``workers=1`` byte-identical), aggregates, and renders the exact
tables published under ``results/`` -- the benchmarks, the legacy
figure functions, and the CLI all call :func:`run_spec`, so there is
one implementation to keep byte-identical, not three.

Scenario results are cached per ``(scenario_sha256, obs)``: fig9/10/11
share one agent sweep, and fig13/fig14/fig12-stabilized share one cut-
threshold sweep, exactly like the old per-figure caches but now keyed
by the full spec content rather than the scale name.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.attack.adaptive import ADAPTIVE_STRATEGIES, AdaptiveConfig
from repro.core.config import DDPoliceConfig
from repro.errors import ConfigError
from repro.evidence import EvidenceConfig
from repro.exec import resolve_workers
from repro.experiments.reporting import render_table
from repro.experiments.scenarios import (
    FaultSweepSpec,
    MatrixSpec,
    Scale,
    bench_scale,
    fault_grid_for,
    matrix_grid_for,
    paper_scale,
    smoke_scale,
)
from repro.experiments.spec import (
    Case,
    CaseResult,
    ExperimentSpec,
    GridSpec,
    WorkloadSpec,
    aggregate,
    apply_overrides,
    get_backend,
    get_spec,
    register_spec,
    run_cases,
    scenario_sha256,
    spec_sha256,
    trial_seed,
)
from repro.faults.plan import CrashRule, FaultPlan
from repro.live.spec import live_grid_for
from repro.metrics.damage import damage_rate, damage_rate_series, damage_recovery_time
from repro.metrics.series import TimeSeries
from repro.obs.config import ObsConfig
from repro.obs.manifest import build_manifest
from repro.testbed.pipeline import run_rate_sweep


# ---------------------------------------------------------------------------
# scenario row types (canonical here; figures/sweeps re-export them)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AgentSweepRow:
    """One x-axis point of Figures 9-11 (all three curves)."""

    agents: int
    paper_equivalent_agents: int
    traffic_no_ddos_k: float
    traffic_attack_k: float
    traffic_defended_k: float
    response_no_ddos_s: float
    response_attack_s: float
    response_defended_s: float
    success_no_ddos: float
    success_attack: float
    success_defended: float


@dataclass(frozen=True)
class DamageTimeline:
    """One defense variant's damage-rate trajectory."""

    label: str
    cut_threshold: Optional[float]
    minutes: List[int]
    damage_pct: List[float]

    def series(self) -> TimeSeries:
        return TimeSeries(zip((float(m) for m in self.minutes), self.damage_pct))


@dataclass(frozen=True)
class CutThresholdRow:
    """One CT point of Figures 13/14."""

    cut_threshold: float
    false_negative: int  # good peers wrongly disconnected (paper's term)
    false_positive: int  # bad peers not identified (paper's term)
    false_judgment: int
    damage_recovery_min: Optional[float]
    stabilized_damage_pct: float


@dataclass(frozen=True)
class ExchangeFrequencyRow:
    """One policy point of the Section 3.7.1 study."""

    policy: str
    period_min: Optional[int]
    false_judgment: int
    control_overhead_kqpm: float
    stabilized_damage_pct: float


#: Evidence-collection profiles compared by the fault sweep.
FAULT_PROFILES: Tuple[str, ...] = ("paper", "hardened")


@dataclass(frozen=True)
class FaultPoint:
    """Aggregated outcome of one (loss, crashes, profile) grid point."""

    loss: float
    crashes: int
    profile: str
    false_negative: float
    false_positive: float
    false_judgment: float
    #: Mean damage-recovery time over the trials where it was defined.
    recovery_time_s: Optional[float]
    #: Trials where the damage both crossed 20% and recovered to 15%.
    recovered_trials: int
    trials: int


#: Robustness-matrix default axes (bench scale; smoke shrinks them).
MATRIX_DEFENSES: Tuple[str, ...] = ("paper", "hardened", "traceback")
MATRIX_ADVERSARIES: Tuple[str, ...] = ADAPTIVE_STRATEGIES
MATRIX_TOPOLOGIES: Tuple[str, ...] = ("ba", "hard_cutoff", "bittorrent")


@dataclass(frozen=True)
class MatrixRow:
    """Aggregated outcome of one (defense, adversary, topology) cell."""

    defense: str
    adversary: str
    topology: str
    #: Mean censored detection latency (s from attack start; uncaught
    #: attackers contribute the full remaining run).
    detection_latency_s: float
    #: Mean attackers caught per trial (out of ``total_attackers``).
    caught_attackers: float
    total_attackers: int
    #: Mean good peers wrongly disconnected (false suspects).
    false_negative: float
    #: Mean damage rate (%) over the post-attack window.
    damage_pct: float
    trials: int


# ---------------------------------------------------------------------------
# scenario machinery
# ---------------------------------------------------------------------------

@dataclass
class ScenarioOutput:
    """What a scenario driver hands back to :func:`run_spec`."""

    #: Scenario-native rows (AgentSweepRow / DamageTimeline / ... lists).
    data: Any
    #: Every table the scenario can render, keyed by artifact name.
    tables: Dict[str, str]
    #: Number of simulation cases executed.
    cases: int
    #: Seed-derivation labels for the run manifest (empty = raw seed).
    seed_derivation: Tuple[str, ...] = ()


#: Driver signature: (spec, *, workers, obs) -> ScenarioOutput.
Driver = Callable[..., ScenarioOutput]


@dataclass(frozen=True)
class Scenario:
    """A registered scenario driver and the tables it renders."""

    name: str
    driver: Driver
    tables: Tuple[str, ...]
    description: str = ""


_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Register (or replace) a scenario driver under ``scenario.name``."""
    if not scenario.name:
        raise ConfigError("scenario name must be non-empty")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name; unknown names list the valid ones."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r} (registered: "
            f"{', '.join(sorted(_SCENARIOS)) or 'none'})"
        )


def list_scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_SCENARIOS[k] for k in sorted(_SCENARIOS)]


def _execute(
    spec: ExperimentSpec,
    cases: Sequence[Case],
    workers: Optional[int],
    obs: Optional[ObsConfig],
) -> List[CaseResult]:
    if obs is not None:
        cases = [replace(c, obs=obs) for c in cases]
    if spec.backend == "live":
        cases = [replace(c, live=spec.live) for c in cases]
    return run_cases(cases, backend=spec.backend, workers=workers)


def _case_rows(res: CaseResult, backend: str) -> List[Tuple[float, float]]:
    """Per-minute (minute, success) samples, backend-normalized.

    The fluid backend reports integer minutes; DES and the live testbed
    report second timestamps, converted here so the timeline scenarios
    aggregate all of them on the same axis.
    """
    if backend in ("des", "live"):
        return [(t / 60.0, v) for t, v in res.rows]
    return list(res.rows)


def _derived_agents(spec: ExperimentSpec) -> int:
    """Timeline-scenario agent count: explicit or density at scale."""
    if spec.grid.agents:
        return spec.grid.agents
    return max(1, round(spec.grid.agent_fraction * spec.scale.n_peers))


# ---------------------------------------------------------------------------
# scenario: testbed-rate (Figures 5 & 6)
# ---------------------------------------------------------------------------

def _scn_testbed_rate(
    spec: ExperimentSpec,
    *,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> ScenarioOutput:
    """A->B->C capacity sweep (closed form; scale/backend-independent)."""
    pts = list(run_rate_sweep())
    tables = {
        "fig05_processed": render_table(
            ["sent (q/min)", "processed (q/min)"],
            [[int(p.sent_qpm), int(p.processed_qpm)] for p in pts],
            title="Figure 5: queries sent vs processed at peer B",
        ),
        "fig06_droprate": render_table(
            ["received (q/min)", "drop rate (%)"],
            [[int(p.sent_qpm), round(p.drop_rate_pct, 1)] for p in pts],
            title="Figure 6: query drop rate vs query density at peer B",
        ),
    }
    return ScenarioOutput(data=pts, tables=tables, cases=0)


# ---------------------------------------------------------------------------
# scenario: agent-sweep (Figures 9-11)
# ---------------------------------------------------------------------------

def _scn_agent_sweep(
    spec: ExperimentSpec,
    *,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> ScenarioOutput:
    """For each agent density: no attack, attack, attack + DD-POLICE."""
    scale = spec.scale
    agent_counts = list(spec.grid.agent_counts) or scale.agent_counts()
    settle = scale.attack_start_min + 4  # measure after detection settles

    # ba_m is fluid-invisible; on the DES backend it pins the m=1
    # attachment the fault sweep uses, so message-level cross-backend
    # runs pay O(n) per flooded query instead of O(n * degree).
    base = Case(
        n=scale.n_peers,
        minutes=scale.sim_minutes,
        seed=spec.seed,
        workload=spec.workload,
        settle_min=settle,
        ba_m=1,
    )
    cases: List[Case] = [base]
    for k in agent_counts:
        attack = replace(
            base, num_agents=k, attack_start_min=scale.attack_start_min
        )
        cases.append(attack)
        cases.append(replace(attack, defense="ddpolice", police=spec.police))
    results = _execute(spec, cases, workers, obs)

    t0, r0, s0 = results[0].steady
    rows: List[AgentSweepRow] = []
    for i, k in enumerate(agent_counts):
        t1, r1, s1 = results[1 + 2 * i].steady
        t2, r2, s2 = results[2 + 2 * i].steady
        rows.append(
            AgentSweepRow(
                agents=k,
                paper_equivalent_agents=scale.paper_equivalent_agents(k),
                traffic_no_ddos_k=t0,
                traffic_attack_k=t1,
                traffic_defended_k=t2,
                response_no_ddos_s=r0,
                response_attack_s=r1,
                response_defended_s=r2,
                success_no_ddos=s0,
                success_attack=s1,
                success_defended=s2,
            )
        )

    header = ["agents (paper-equiv)", "under DDoS", "DDoS + DD-POLICE", "no DDoS"]
    tables = {
        "fig09_traffic": render_table(
            header,
            [
                [
                    r.paper_equivalent_agents,
                    round(r.traffic_attack_k, 1),
                    round(r.traffic_defended_k, 1),
                    round(r.traffic_no_ddos_k, 1),
                ]
                for r in rows
            ],
            title="Figure 9: average traffic cost (10^3 messages/min)",
        ),
        "fig10_response": render_table(
            header,
            [
                [
                    r.paper_equivalent_agents,
                    round(r.response_attack_s, 3),
                    round(r.response_defended_s, 3),
                    round(r.response_no_ddos_s, 3),
                ]
                for r in rows
            ],
            title="Figure 10: average response time (s)",
        ),
        "fig11_success": render_table(
            header,
            [
                [
                    r.paper_equivalent_agents,
                    round(100.0 * r.success_attack, 1),
                    round(100.0 * r.success_defended, 1),
                    round(100.0 * r.success_no_ddos, 1),
                ]
                for r in rows
            ],
            title="Figure 11: average success rate (%)",
        ),
    }
    return ScenarioOutput(data=rows, tables=tables, cases=len(cases))


# ---------------------------------------------------------------------------
# scenario: damage-timelines (Figure 12)
# ---------------------------------------------------------------------------

def _scn_damage_timelines(
    spec: ExperimentSpec,
    *,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> ScenarioOutput:
    """No-defense + DD-POLICE-CT damage trajectories, trial-averaged."""
    scale = spec.scale
    cut_thresholds = spec.grid.cut_thresholds
    minutes = spec.grid.minutes or max(
        scale.sim_minutes, scale.attack_start_min + 20
    )
    agents = _derived_agents(spec)

    n_trials = max(1, spec.trials)
    cases_per_trial = 2 + len(cut_thresholds)  # baseline, no-defense, CTs
    cases: List[Case] = []
    for t in range(n_trials):
        base = Case(
            n=scale.n_peers,
            minutes=minutes,
            seed=trial_seed(spec.seed, t),
            workload=spec.workload,
        )
        attack = replace(
            base, num_agents=agents, attack_start_min=scale.attack_start_min
        )
        cases.append(base)
        cases.append(attack)
        for ct in cut_thresholds:
            cases.append(
                replace(
                    attack,
                    defense="ddpolice",
                    police=spec.police.with_cut_threshold(ct),
                )
            )
    results = _execute(spec, cases, workers, obs)

    def one_trial(t: int) -> List[DamageTimeline]:
        chunk = results[t * cases_per_trial:(t + 1) * cases_per_trial]
        base_success = dict(_case_rows(chunk[0], spec.backend))

        def timeline(
            label: str, res: CaseResult, ct: Optional[float]
        ) -> DamageTimeline:
            mins, dmg = [], []
            for minute, success in _case_rows(res, spec.backend):
                s0 = base_success.get(minute)
                if s0 is None:
                    continue
                mins.append(minute)
                if minute < scale.attack_start_min:
                    # before the attack the runs differ only by seed noise
                    dmg.append(0.0)
                else:
                    dmg.append(damage_rate(s0, min(success, s0)))
            return DamageTimeline(
                label=label, cut_threshold=ct, minutes=mins, damage_pct=dmg
            )

        out = [timeline("no DD-POLICE", chunk[1], None)]
        for i, ct in enumerate(cut_thresholds):
            out.append(timeline(f"DD-POLICE-{ct:g}", chunk[2 + i], ct))
        return out

    runs = [one_trial(t) for t in range(n_trials)]
    if len(runs) == 1:
        timelines = runs[0]
    else:
        timelines = []
        for idx, first in enumerate(runs[0]):
            series = [run[idx].damage_pct for run in runs]
            length = min(len(s) for s in series)
            averaged = [
                sum(s[i] for s in series) / len(series) for i in range(length)
            ]
            timelines.append(
                DamageTimeline(
                    label=first.label,
                    cut_threshold=first.cut_threshold,
                    minutes=first.minutes[:length],
                    damage_pct=averaged,
                )
            )

    header = ["minute"] + [t.label for t in timelines]
    table_rows = []
    for i, minute in enumerate(timelines[0].minutes):
        table_rows.append(
            [minute] + [round(t.damage_pct[i], 1) for t in timelines]
        )
    tables = {
        "fig12_damage": render_table(
            header,
            table_rows,
            title="Figure 12: damage rate (%) over time, 0.5% agents",
        ),
    }
    return ScenarioOutput(
        data=timelines,
        tables=tables,
        cases=len(cases),
        seed_derivation=("trial", "<t>"),
    )


# ---------------------------------------------------------------------------
# scenario: cut-threshold-sweep (Figures 13 & 14 + stabilized damage)
# ---------------------------------------------------------------------------

def _scn_cut_threshold_sweep(
    spec: ExperimentSpec,
    *,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> ScenarioOutput:
    """Errors / recovery / stabilized damage per cut threshold."""
    scale = spec.scale
    cut_thresholds = spec.grid.cut_thresholds
    minutes = spec.grid.minutes or max(
        scale.sim_minutes, scale.attack_start_min + 20
    )
    agents = _derived_agents(spec)

    n_trials = max(1, spec.trials)
    cases_per_trial = 1 + len(cut_thresholds)
    cases: List[Case] = []
    for trial in range(n_trials):
        base = Case(
            n=scale.n_peers,
            minutes=minutes,
            seed=trial_seed(spec.seed, trial),
            workload=spec.workload,
        )
        cases.append(base)
        for ct in cut_thresholds:
            cases.append(
                replace(
                    base,
                    num_agents=agents,
                    attack_start_min=scale.attack_start_min,
                    defense="ddpolice",
                    police=spec.police.with_cut_threshold(ct),
                )
            )
    results = _execute(spec, cases, workers, obs)

    per_trial: List[List[CutThresholdRow]] = []
    for trial in range(n_trials):
        chunk = results[trial * cases_per_trial:(trial + 1) * cases_per_trial]
        base_success = dict(_case_rows(chunk[0], spec.backend))

        rows: List[CutThresholdRow] = []
        for i, ct in enumerate(cut_thresholds):
            res = chunk[1 + i]
            damage = TimeSeries()
            for minute, success in _case_rows(res, spec.backend):
                s0 = base_success.get(minute)
                if s0 is None:
                    continue
                if minute < scale.attack_start_min:
                    damage.append(float(minute), 0.0)
                else:
                    damage.append(float(minute), damage_rate(s0, min(success, s0)))
            tail = damage.window(minutes - 5, minutes + 1)
            rows.append(
                CutThresholdRow(
                    cut_threshold=ct,
                    false_negative=res.false_negative,
                    false_positive=res.false_positive,
                    false_judgment=res.false_negative + res.false_positive,
                    damage_recovery_min=damage_recovery_time(damage),
                    stabilized_damage_pct=tail.mean() if len(tail) else 0.0,
                )
            )
        per_trial.append(rows)

    if len(per_trial) == 1:
        ct_rows = per_trial[0]
    else:
        ct_rows = []
        for idx, ct in enumerate(cut_thresholds):
            cells = [t[idx] for t in per_trial]
            recoveries = [
                c.damage_recovery_min
                for c in cells
                if c.damage_recovery_min is not None
            ]
            fn = sum(c.false_negative for c in cells)
            fp = sum(c.false_positive for c in cells)
            ct_rows.append(
                CutThresholdRow(
                    cut_threshold=ct,
                    false_negative=fn,
                    false_positive=fp,
                    false_judgment=fn + fp,
                    damage_recovery_min=(
                        sum(recoveries) / len(recoveries) if recoveries else None
                    ),
                    stabilized_damage_pct=sum(
                        c.stabilized_damage_pct for c in cells
                    )
                    / len(cells),
                )
            )

    tables = {
        "fig13_errors": render_table(
            ["cut threshold", "false judgment", "false positive", "false negative"],
            [
                [r.cut_threshold, r.false_judgment, r.false_positive, r.false_negative]
                for r in ct_rows
            ],
            title="Figure 13: errors vs cut threshold (paper terminology: "
            "FN = good peers wrongly cut, FP = bad peers missed)",
        ),
        "fig14_recovery": render_table(
            ["cut threshold", "damage recovery time (min)"],
            [
                [
                    r.cut_threshold,
                    (
                        "n/a"
                        if r.damage_recovery_min is None
                        else round(r.damage_recovery_min, 1)
                    ),
                ]
                for r in ct_rows
            ],
            title="Figure 14: damage recovery time vs cut threshold",
        ),
        "fig12_stabilized_damage": render_table(
            ["cut threshold", "stabilized damage (%)"],
            [[r.cut_threshold, round(r.stabilized_damage_pct, 1)] for r in ct_rows],
            title="Figure 12 companion: stabilized damage by cut threshold",
        ),
    }
    return ScenarioOutput(
        data=ct_rows,
        tables=tables,
        cases=len(cases),
        seed_derivation=("trial", "<t>"),
    )


# ---------------------------------------------------------------------------
# scenario: exchange-frequency (Section 3.7.1)
# ---------------------------------------------------------------------------

def _scn_exchange_frequency(
    spec: ExperimentSpec,
    *,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> ScenarioOutput:
    """Periodic exchange at several periods + the event-driven policy.

    Event-driven is approximated at fluid granularity by a 1-minute
    period with per-change message accounting (every join/leave triggers
    a republication).
    """
    scale = spec.scale
    periods = spec.grid.periods_min
    minutes = spec.grid.minutes or scale.sim_minutes
    agents = _derived_agents(spec)

    base = Case(
        n=scale.n_peers,
        minutes=minutes,
        seed=spec.seed,
        workload=spec.workload,
    )

    def attack_case(period: int) -> Case:
        return replace(
            base,
            num_agents=agents,
            attack_start_min=scale.attack_start_min,
            defense="ddpolice",
            police=spec.police,
            exchange_period_min=period,
        )

    cases = [base] + [attack_case(p) for p in periods] + [attack_case(1)]
    results = _execute(spec, cases, workers, obs)
    base_success = dict(_case_rows(results[0], spec.backend))
    mean_deg = 6.0

    def row(
        res: CaseResult, label: str, period: int, event_driven: bool
    ) -> ExchangeFrequencyRow:
        if event_driven:
            # "a peer informs all its neighbors whenever its neighboring
            # peer is leaving or a new peer is joining": every churn event
            # touches ~deg neighbors, each republishing to ~deg peers.
            overhead = res.churn_events / max(1, minutes) * mean_deg * mean_deg
        else:
            # each online peer republishes to all neighbors every period
            overhead = res.online_mean * mean_deg / period
        tail_damage = []
        for minute, success in _case_rows(res, spec.backend):
            if minute >= minutes - 5:
                s0 = base_success.get(minute)
                if s0 is not None:
                    tail_damage.append(damage_rate(s0, min(success, s0)))
        return ExchangeFrequencyRow(
            policy=label,
            period_min=None if event_driven else period,
            false_judgment=res.false_negative + res.false_positive,
            control_overhead_kqpm=overhead / 1000.0,
            stabilized_damage_pct=(
                sum(tail_damage) / len(tail_damage) if tail_damage else 0.0
            ),
        )

    rows = [
        row(results[1 + i], f"periodic-{p}min", p, event_driven=False)
        for i, p in enumerate(periods)
    ]
    rows.append(row(results[-1], "event-driven", 1, event_driven=True))

    tables = {
        "exchange_frequency": render_table(
            ["policy", "false judgment", "control overhead (k msgs/min)",
             "stabilized damage (%)"],
            [
                [r.policy, r.false_judgment, round(r.control_overhead_kqpm, 2),
                 round(r.stabilized_damage_pct, 1)]
                for r in rows
            ],
            title="Section 3.7.1: neighbor-list exchange policy comparison",
        ),
    }
    return ScenarioOutput(data=rows, tables=tables, cases=len(cases))


# ---------------------------------------------------------------------------
# scenario: fault-sweep (loss x crashes, DES)
# ---------------------------------------------------------------------------

def _fault_plan(spec: FaultSweepSpec, loss: float, crashes: int) -> FaultPlan:
    plan = FaultPlan()
    if loss > 0.0:
        plan = plan.merged(FaultPlan.control_loss(loss))
    if crashes > 0:
        # Crash good peers one minute into the attack: silent buddies at
        # exactly the moment their reports are needed.
        plan = plan.merged(
            FaultPlan(
                crashes=(
                    CrashRule(
                        at_s=(spec.attack_start_min + 1) * 60.0, count=crashes
                    ),
                )
            )
        )
    return plan


def _scn_fault_sweep(
    spec: ExperimentSpec,
    *,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> ScenarioOutput:
    """Control-plane loss x fail-stop crashes, per evidence profile.

    ``paper`` is the literal Section 3.3 collection rule (missing report
    => assume 0); ``hardened`` adds bounded retries, the report quorum
    with one window extension, and exchange retransmission
    (:meth:`DDPoliceConfig.with_hardening`). Both see the exact same
    fault schedule per (grid point, trial). The grid comes from
    ``spec.faults``; agents flood but *report honestly*, so every false
    negative is a network/evidence artifact, not Section 3.4 cheating.
    """
    fs = spec.faults
    profiles = spec.grid.profiles or FAULT_PROFILES
    base_police = spec.police
    police_by_profile = {
        "paper": base_police,
        "hardened": base_police.with_hardening(),
    }
    for profile in profiles:
        if profile not in police_by_profile:
            raise ConfigError(f"unknown fault profile {profile!r}")

    workload = replace(spec.workload, attack_rate_qpm=fs.attack_rate_qpm)

    def fault_case(
        *, loss: float, crashes: int, seed: int, num_agents: int,
        police: DDPoliceConfig,
    ) -> Case:
        # Tree overlay (ba_m=1): flooding is duplicate-free, so the
        # Definition 2.1 send/receive balance is exact and indicator
        # noise comes only from the injected faults.
        return Case(
            n=fs.n_peers,
            minutes=fs.sim_minutes,
            seed=seed,
            num_agents=num_agents,
            attack_start_min=fs.attack_start_min,
            defense="ddpolice",
            police=police,
            workload=workload,
            faults=_fault_plan(fs, loss, crashes),
            ba_m=1,
        )

    # One clean-run baseline per (loss, crashes, trial), shared by the
    # profiles: with no attackers there are no investigations, so the
    # evidence profile cannot matter there.
    baseline_keys: List[Tuple[float, int, int]] = []
    run_keys: List[Tuple[float, int, str, int]] = []
    cases: List[Case] = []
    for loss in fs.loss_fractions:
        for crashes in fs.crash_counts:
            for trial in range(fs.trials):
                baseline_keys.append((loss, crashes, trial))
                cases.append(
                    fault_case(
                        loss=loss,
                        crashes=crashes,
                        seed=trial_seed(spec.seed, trial),
                        num_agents=0,
                        police=base_police,
                    )
                )
    for loss in fs.loss_fractions:
        for crashes in fs.crash_counts:
            for profile in profiles:
                for trial in range(fs.trials):
                    run_keys.append((loss, crashes, profile, trial))
                    cases.append(
                        fault_case(
                            loss=loss,
                            crashes=crashes,
                            seed=trial_seed(spec.seed, trial),
                            num_agents=fs.num_agents,
                            police=police_by_profile[profile],
                        )
                    )

    results = _execute(spec, cases, workers, obs)
    baseline_series = {
        key: TimeSeries(res.rows)
        for key, res in zip(baseline_keys, results[: len(baseline_keys)])
    }
    run_results = dict(zip(run_keys, results[len(baseline_keys):]))

    points: List[FaultPoint] = []
    for loss in fs.loss_fractions:
        for crashes in fs.crash_counts:
            for profile in profiles:
                fns: List[float] = []
                fps: List[float] = []
                recoveries: List[float] = []
                for trial in range(fs.trials):
                    res = run_results[(loss, crashes, profile, trial)]
                    fns.append(float(res.false_negative))
                    fps.append(float(res.false_positive))
                    damage = damage_rate_series(
                        baseline_series[(loss, crashes, trial)],
                        TimeSeries(res.rows),
                    )
                    rec = damage_recovery_time(damage)
                    if rec is not None:
                        recoveries.append(rec)
                fn, _ = aggregate(fns)
                fp, _ = aggregate(fps)
                points.append(
                    FaultPoint(
                        loss=loss,
                        crashes=crashes,
                        profile=profile,
                        false_negative=fn,
                        false_positive=fp,
                        false_judgment=fn + fp,
                        recovery_time_s=(
                            aggregate(recoveries)[0] if recoveries else None
                        ),
                        recovered_trials=len(recoveries),
                        trials=fs.trials,
                    )
                )

    tables = {"fault_sweep": format_fault_sweep(fs, points)}
    return ScenarioOutput(
        data=points,
        tables=tables,
        cases=len(cases),
        seed_derivation=("trial", "<t>"),
    )


def format_fault_sweep(spec: FaultSweepSpec, points: Sequence[FaultPoint]) -> str:
    """Fixed-width table of a fault sweep, ready for ``results/``."""
    lines = [
        "Fault-robustness sweep: control-plane loss x fail-stop crashes",
        f"scale={spec.name}  n={spec.n_peers}  agents={spec.num_agents} "
        f"(honest reporters)  attack={spec.attack_rate_qpm:g} qpm "
        f"from minute {spec.attack_start_min}  "
        f"duration={spec.sim_minutes} min  trials={spec.trials}",
        "profiles: paper = assume-0 on missing reports (Section 3.3); "
        "hardened = retries + quorum 0.5 + window extension + "
        "list retransmit",
        "FN = good peers wrongly cut, FP = bad peers never caught "
        "(paper's Figure 13 terms), means over trials",
        "",
        f"{'loss':>5} {'crashes':>7} {'profile':>9} {'FN':>6} {'FP':>6} "
        f"{'FJ':>6} {'recovery_s':>11} {'recovered':>9}",
    ]
    for p in points:
        rec = f"{p.recovery_time_s:.0f}" if p.recovery_time_s is not None else "n/c"
        recovered = f"{p.recovered_trials}/{p.trials}"
        lines.append(
            f"{p.loss:>5.2f} {p.crashes:>7d} {p.profile:>9} "
            f"{p.false_negative:>6.2f} {p.false_positive:>6.2f} "
            f"{p.false_judgment:>6.2f} {rec:>11} {recovered:>9}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# scenario: robustness-matrix (defense x adversary x topology, DES)
# ---------------------------------------------------------------------------

def _matrix_axes(
    spec: ExperimentSpec,
) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]:
    """(defenses, adversaries, topologies) with smoke-shrunk defaults.

    Explicit ``grid`` tuples win; empty tuples fall back to defaults
    sized by the matrix scale (smoke keeps CI under a handful of runs
    while still containing a paper-literal row and an evading
    adversary, so degradation stays observable).
    """
    if spec.matrix.name == "smoke":
        defaults = (("paper", "traceback"), ("static", "throttle", "pulse"), ("ba",))
    else:
        defaults = (MATRIX_DEFENSES, MATRIX_ADVERSARIES, MATRIX_TOPOLOGIES)
    return (
        spec.grid.defenses or defaults[0],
        spec.grid.adversaries or defaults[1],
        spec.grid.topologies or defaults[2],
    )


def _scn_robustness_matrix(
    spec: ExperimentSpec,
    *,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> ScenarioOutput:
    """DD-POLICE variants and the PPM baseline vs adversaries that adapt.

    Every cell runs the same flooding attack through a different
    (defense, adversary behaviour, overlay topology) combination and
    reports censored detection latency, attackers caught, false
    suspects, and post-attack damage. ``paper`` is the literal Section
    3.3 evidence rule, ``hardened`` is
    :meth:`DDPoliceConfig.with_hardening`, ``traceback`` is the PPM
    last-hop marking baseline. The ``collude`` adversary forces the
    matching Neighbor_Traffic cheat so colluders actually corroborate
    each other's excuse reports.
    """
    ms = spec.matrix
    defenses, adversaries, topologies = _matrix_axes(spec)
    police_by_defense = {
        "paper": spec.police,
        "hardened": spec.police.with_hardening(),
    }

    workload = replace(spec.workload, attack_rate_qpm=ms.attack_rate_qpm)
    collude_workload = replace(workload, cheat_strategy="collude")

    # ba_m=1 keeps the preferential-attachment topologies duplicate-free
    # (the fault-sweep convention): the flood visits every edge once, so
    # a message-level run stays tractable and the indicator signal is
    # structural, not duplicate noise. The bittorrent generator ignores
    # ba_m -- its dense swarm graph, duplicates and all, is the point of
    # that column.
    def matrix_case(defense: str, adversary: str, topo: str, trial: int) -> Case:
        return Case(
            n=ms.n_peers,
            minutes=ms.sim_minutes,
            seed=trial_seed(spec.seed, trial),
            num_agents=ms.num_agents,
            attack_start_min=ms.attack_start_min,
            defense="traceback" if defense == "traceback" else "ddpolice",
            police=police_by_defense.get(defense, spec.police),
            workload=collude_workload if adversary == "collude" else workload,
            adaptive=replace(spec.adversary, strategy=adversary),
            traceback=spec.traceback,
            topology=topo,
            ba_m=1,
        )

    # One clean baseline per (topology, trial) -- shared by every
    # defense/adversary cell on that topology, since with no attackers
    # neither the defense nor the adversary behaviour can matter.
    baseline_keys: List[Tuple[str, int]] = []
    cases: List[Case] = []
    for topo in topologies:
        for trial in range(ms.trials):
            baseline_keys.append((topo, trial))
            cases.append(
                Case(
                    n=ms.n_peers,
                    minutes=ms.sim_minutes,
                    seed=trial_seed(spec.seed, trial),
                    workload=workload,
                    topology=topo,
                    ba_m=1,
                )
            )
    run_keys: List[Tuple[str, str, str, int]] = []
    for defense in defenses:
        for adversary in adversaries:
            for topo in topologies:
                for trial in range(ms.trials):
                    run_keys.append((defense, adversary, topo, trial))
                    cases.append(matrix_case(defense, adversary, topo, trial))

    results = _execute(spec, cases, workers, obs)
    baseline_success = {
        key: dict(_case_rows(res, spec.backend))
        for key, res in zip(baseline_keys, results[: len(baseline_keys)])
    }
    run_results = dict(zip(run_keys, results[len(baseline_keys):]))

    def post_attack_damage(res: CaseResult, topo: str, trial: int) -> float:
        base = baseline_success[(topo, trial)]
        samples = []
        for minute, success in _case_rows(res, spec.backend):
            s0 = base.get(minute)
            if s0 is not None and minute >= ms.attack_start_min:
                samples.append(damage_rate(s0, min(success, s0)))
        return sum(samples) / len(samples) if samples else 0.0

    rows: List[MatrixRow] = []
    for defense in defenses:
        for adversary in adversaries:
            for topo in topologies:
                latencies: List[float] = []
                caught: List[float] = []
                fns: List[float] = []
                damages: List[float] = []
                for trial in range(ms.trials):
                    res = run_results[(defense, adversary, topo, trial)]
                    latencies.append(res.detection_latency_s or 0.0)
                    caught.append(float(res.caught_attackers))
                    fns.append(float(res.false_negative))
                    damages.append(post_attack_damage(res, topo, trial))
                rows.append(
                    MatrixRow(
                        defense=defense,
                        adversary=adversary,
                        topology=topo,
                        detection_latency_s=aggregate(latencies)[0],
                        caught_attackers=aggregate(caught)[0],
                        total_attackers=ms.num_agents,
                        false_negative=aggregate(fns)[0],
                        damage_pct=aggregate(damages)[0],
                        trials=ms.trials,
                    )
                )

    tables = {"robustness_matrix": format_robustness_matrix(ms, rows)}
    return ScenarioOutput(
        data=rows,
        tables=tables,
        cases=len(cases),
        seed_derivation=("trial", "<t>"),
    )


def format_robustness_matrix(ms: MatrixSpec, rows: Sequence[MatrixRow]) -> str:
    """Fixed-width robustness-matrix table, ready for ``results/``."""
    lines = [
        "Robustness matrix: defense x adaptive adversary x overlay topology (DES)",
        f"scale={ms.name}  n={ms.n_peers}  agents={ms.num_agents}  "
        f"attack={ms.attack_rate_qpm:g} qpm from minute {ms.attack_start_min}  "
        f"duration={ms.sim_minutes} min  trials={ms.trials}",
        "defenses: paper = literal Section 3.3 evidence; hardened = retries + "
        "quorum + window extension; traceback = PPM last-hop marking",
        "latency_s = mean seconds from attack start to first disconnection, "
        "censored at run end for attackers never caught",
        "FN = good peers wrongly cut (false suspects); damage% = mean damage "
        "rate after attack start; means over trials",
        "",
        f"{'defense':>9} {'adversary':>9} {'topology':>11} {'latency_s':>9} "
        f"{'caught':>7} {'FN':>6} {'damage%':>8}",
    ]
    for r in rows:
        caught = f"{r.caught_attackers:.1f}/{r.total_attackers}"
        lines.append(
            f"{r.defense:>9} {r.adversary:>9} {r.topology:>11} "
            f"{r.detection_latency_s:>9.0f} {caught:>7} "
            f"{r.false_negative:>6.1f} {r.damage_pct:>8.1f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# scenario: sketch-frontier (evidence memory budget x attack rate, des-soa)
# ---------------------------------------------------------------------------

@dataclass
class FrontierRow:
    """Aggregated outcome of one (evidence backend, width, rate) cell."""

    #: "exact" or "sketch" (the :class:`EvidenceConfig` backend).
    backend: str
    #: Count-min cells per row; 0 for the exact baseline.
    cm_width: int
    attack_rate_qpm: float
    #: Mean censored detection latency (s from attack start).
    detection_latency_s: float
    caught_attackers: float
    total_attackers: int
    #: Mean good peers wrongly cut (false suspects; the price of
    #: count-min collisions at small widths).
    false_suspects: float
    #: Bytes of per-minute traffic-evidence state (identical across
    #: trials: BA m=1 always has 2(n-1) directed edges).
    evidence_bytes: int
    #: Evidence-memory reduction vs the exact baseline at this rate.
    reduction: float
    trials: int


def _frontier_axes(spec: ExperimentSpec) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
    """(cm_widths, attack rates) with smoke-shrunk width defaults.

    Explicit ``grid`` tuples win. The default widths bracket the
    interesting regime: small enough that collision mass shows up as
    false suspicion at the low end, comfortably collision-free at the
    high end -- all far below the exact per-edge window cost at scale.
    """
    if spec.grid.cm_widths:
        widths = spec.grid.cm_widths
    elif spec.scale.name == "smoke":
        widths = (256, 1024)
    else:
        widths = (512, 2048, 8192)
    rates = spec.grid.attack_rates_qpm or (spec.workload.attack_rate_qpm,)
    return widths, rates


def _scn_sketch_frontier(
    spec: ExperimentSpec,
    *,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
) -> ScenarioOutput:
    """Count-min evidence memory vs detection quality, against exact.

    Every cell runs the same fig9-style flooding attack (BA m=1, silent
    agents, DD-POLICE) on the batched SoA engine with the per-minute
    traffic windows either exact (two int64 cells per directed edge) or
    sketched (two ``(depth, width)`` int32 count-min arrays shared by
    all edges). Count-min never undercounts, so the sketch convicts
    every attacker the exact windows convict; shrinking the width buys
    memory at the price of collision-driven false suspicion, and the
    table charts exactly that frontier.
    """
    sc = spec.scale
    agents = _derived_agents(spec)
    widths, rates = _frontier_axes(spec)
    depth = spec.police.evidence.cm_depth

    def frontier_case(evidence: EvidenceConfig, rate: float, trial: int) -> Case:
        return Case(
            n=sc.n_peers,
            minutes=sc.sim_minutes,
            seed=trial_seed(spec.seed, trial),
            num_agents=agents,
            attack_start_min=sc.attack_start_min,
            defense="ddpolice",
            police=replace(spec.police, evidence=evidence),
            workload=replace(spec.workload, attack_rate_qpm=rate),
            topology="ba",
            ba_m=1,
        )

    exact = EvidenceConfig(backend="exact")
    cells: List[Tuple[str, int, float]] = []
    cases: List[Case] = []
    for rate in rates:
        cells.append(("exact", 0, rate))
        cases.extend(
            frontier_case(exact, rate, t) for t in range(sc.trials)
        )
        for width in widths:
            cells.append(("sketch", width, rate))
            sketched = replace(
                exact, backend="sketch", cm_width=width, cm_depth=depth
            )
            cases.extend(
                frontier_case(sketched, rate, t) for t in range(sc.trials)
            )

    results = _execute(spec, cases, workers, obs)
    exact_bytes: Dict[float, int] = {}
    rows: List[FrontierRow] = []
    for i, (backend, width, rate) in enumerate(cells):
        trials = results[i * sc.trials:(i + 1) * sc.trials]
        ev_bytes = max(r.evidence_bytes for r in trials)
        if backend == "exact":
            exact_bytes[rate] = ev_bytes
        rows.append(
            FrontierRow(
                backend=backend,
                cm_width=width,
                attack_rate_qpm=rate,
                detection_latency_s=aggregate(
                    [r.detection_latency_s or 0.0 for r in trials]
                )[0],
                caught_attackers=aggregate(
                    [float(r.caught_attackers) for r in trials]
                )[0],
                total_attackers=agents,
                false_suspects=aggregate(
                    [float(r.false_negative) for r in trials]
                )[0],
                evidence_bytes=ev_bytes,
                reduction=exact_bytes[rate] / ev_bytes if ev_bytes else 0.0,
                trials=sc.trials,
            )
        )

    tables = {"sketch_frontier": format_sketch_frontier(spec, rows)}
    return ScenarioOutput(
        data=rows,
        tables=tables,
        cases=len(cases),
        seed_derivation=("trial", "<t>"),
    )


def format_sketch_frontier(spec: ExperimentSpec, rows: Sequence[FrontierRow]) -> str:
    """Fixed-width sketch-frontier table, ready for ``results/``."""
    sc = spec.scale
    depth = spec.police.evidence.cm_depth
    lines = [
        "Sketch frontier: count-min traffic evidence vs exact windows "
        "(DD-POLICE, des-soa)",
        f"scale={sc.name}  n={sc.n_peers}  agents={_derived_agents(spec)}  "
        f"attack from minute {sc.attack_start_min}  "
        f"duration={sc.sim_minutes} min  trials={sc.trials}  "
        f"topology=ba(m=1)  cm_depth={depth}",
        "evidence = per-minute Out/In query windows; exact keeps two int64 "
        "cells per directed edge, sketch keeps two (depth x width) int32 "
        "count-min arrays for the whole overlay",
        "count-min never undercounts per-minute evidence (suspect superset, "
        "tests/property); narrow widths add collision mass -> false suspects "
        "(FS), and cutting that much collateral can itself sever evidence "
        "paths and delay or lose convictions",
        "latency_s = mean censored seconds from attack start to first "
        "disconnection; FS = good peers wrongly cut; means over trials",
        "",
        f"{'evidence':>8} {'width':>6} {'attack_qpm':>10} {'latency_s':>9} "
        f"{'caught':>9} {'FS':>6} {'evidence_KiB':>12} {'vs_exact':>8}",
    ]
    for r in rows:
        width = str(r.cm_width) if r.cm_width else "-"
        caught = f"{r.caught_attackers:.1f}/{r.total_attackers}"
        lines.append(
            f"{r.backend:>8} {width:>6} {r.attack_rate_qpm:>10.1f} "
            f"{r.detection_latency_s:>9.0f} {caught:>9} "
            f"{r.false_suspects:>6.1f} {r.evidence_bytes / 1024.0:>12.1f} "
            f"{r.reduction:>7.1f}x"
        )
    return "\n".join(lines)


register_scenario(Scenario(
    name="testbed-rate",
    driver=_scn_testbed_rate,
    tables=("fig05_processed", "fig06_droprate"),
    description="A->B->C capacity sweep (Figures 5 & 6, closed form)",
))
register_scenario(Scenario(
    name="agent-sweep",
    driver=_scn_agent_sweep,
    tables=("fig09_traffic", "fig10_response", "fig11_success"),
    description="service quality vs #agents (Figures 9-11)",
))
register_scenario(Scenario(
    name="damage-timelines",
    driver=_scn_damage_timelines,
    tables=("fig12_damage",),
    description="damage over time per cut threshold (Figure 12)",
))
register_scenario(Scenario(
    name="cut-threshold-sweep",
    driver=_scn_cut_threshold_sweep,
    tables=("fig13_errors", "fig14_recovery", "fig12_stabilized_damage"),
    description="errors / recovery / stabilized damage vs CT (Figures 13-14)",
))
register_scenario(Scenario(
    name="exchange-frequency",
    driver=_scn_exchange_frequency,
    tables=("exchange_frequency",),
    description="neighbor-list exchange policy comparison (Section 3.7.1)",
))
register_scenario(Scenario(
    name="fault-sweep",
    driver=_scn_fault_sweep,
    tables=("fault_sweep",),
    description="control-plane loss x crash robustness grid (DES)",
))
register_scenario(Scenario(
    name="robustness-matrix",
    driver=_scn_robustness_matrix,
    tables=("robustness_matrix",),
    description="defense x adaptive adversary x topology grid (DES)",
))
register_scenario(Scenario(
    name="sketch-frontier",
    driver=_scn_sketch_frontier,
    tables=("sketch_frontier",),
    description="count-min evidence memory x attack rate frontier (des-soa)",
))


# ---------------------------------------------------------------------------
# running specs
# ---------------------------------------------------------------------------

_SCALES: Dict[str, Callable[[], Scale]] = {
    "bench": bench_scale,
    "paper": paper_scale,
    "smoke": smoke_scale,
}


def spec_at_scale(
    spec: ExperimentSpec, scale: Union[str, Scale]
) -> ExperimentSpec:
    """Re-target a spec at a scale.

    A named scale (``bench``/``paper``/``smoke``) also swaps the fault
    and robustness-matrix grids to that scale's variants; an explicit
    :class:`Scale` instance replaces only the ``scale`` layer.
    """
    if isinstance(scale, Scale):
        return replace(spec, scale=scale)
    name = str(scale).lower()
    if name not in _SCALES:
        raise ConfigError(
            f"unknown scale {name!r} (valid: {', '.join(sorted(_SCALES))})"
        )
    return replace(
        spec,
        scale=_SCALES[name](),
        faults=fault_grid_for(name),
        matrix=matrix_grid_for(name),
        live=live_grid_for(name),
    )


@dataclass
class SpecRun:
    """One executed spec: data, rendered tables, and provenance."""

    spec: ExperimentSpec
    #: Scenario-native rows (type depends on the scenario).
    data: Any
    #: Selected tables (``spec.tables``, or all of them when empty).
    tables: Dict[str, str]
    #: Run manifest embedding the spec and its SHA-256; write it next to
    #: an artifact with :func:`repro.obs.manifest.write_manifest`.
    manifest: Dict[str, Any]
    duration_s: float
    cases: int
    sha256: str


#: Scenario results shared between specs with equal scenario hashes
#: (fig9/10/11; fig13/fig14/fig12-stabilized). Obs is part of the key:
#: a traced run must not satisfy an untraced request, or vice versa.
_RESULT_CACHE: Dict[Tuple[str, Optional[ObsConfig]], ScenarioOutput] = {}


def clear_cache() -> None:
    """Drop all cached scenario results (tests; long-lived processes)."""
    _RESULT_CACHE.clear()


def run_spec(
    spec: Union[str, ExperimentSpec],
    *,
    scale: Optional[Union[str, Scale]] = None,
    backend: Optional[str] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    workers: Optional[int] = None,
    obs: Optional[ObsConfig] = None,
    cache: bool = True,
) -> SpecRun:
    """Resolve, validate, execute, and render one experiment spec.

    ``spec`` is a registered name or an explicit spec; ``scale``,
    ``backend``, and dotted-path ``overrides`` rewrite it before
    anything runs, failing fast with :class:`ConfigError` on unknown
    names, unknown paths, or invariant violations. Results are
    bit-identical for any ``workers`` value.
    """
    if isinstance(spec, str):
        spec = get_spec(spec)
    if scale is not None:
        spec = spec_at_scale(spec, scale)
    if backend is not None:
        spec = replace(spec, backend=backend)
    if overrides:
        spec = apply_overrides(spec, overrides)
    get_backend(spec.backend)  # unknown backend fails before any work
    scenario = get_scenario(spec.scenario)
    unknown = [t for t in spec.tables if t not in scenario.tables]
    if unknown:
        raise ConfigError(
            f"unknown table(s) {', '.join(map(repr, unknown))} for scenario "
            f"{scenario.name!r} (valid: {', '.join(scenario.tables)})"
        )

    key = (scenario_sha256(spec), obs)
    started = time.perf_counter()
    output = _RESULT_CACHE.get(key) if cache else None
    if output is None:
        output = scenario.driver(spec, workers=workers, obs=obs)
        if cache:
            _RESULT_CACHE[key] = output
    duration_s = time.perf_counter() - started

    selected = spec.tables or scenario.tables
    sha = spec_sha256(spec)
    manifest = build_manifest(
        kind="spec-run",
        config=spec,
        seed=spec.seed,
        seed_derivation=list(output.seed_derivation),
        workers=resolve_workers(workers),
        tasks=output.cases,
        duration_s=duration_s,
        extra={
            "spec_name": spec.name,
            "scenario": spec.scenario,
            "backend": spec.backend,
            "spec_sha256": sha,
        },
    )
    return SpecRun(
        spec=spec,
        data=output.data,
        tables={t: output.tables[t] for t in selected},
        manifest=manifest,
        duration_s=duration_s,
        cases=output.cases,
        sha256=sha,
    )


# ---------------------------------------------------------------------------
# the default spec library (seeds/trials match the published tables)
# ---------------------------------------------------------------------------

register_spec(ExperimentSpec(
    name="fig5",
    scenario="testbed-rate",
    title="Figure 5: queries sent vs processed at peer B",
    tables=("fig05_processed",),
))
register_spec(ExperimentSpec(
    name="fig6",
    scenario="testbed-rate",
    title="Figure 6: query drop rate vs query density at peer B",
    tables=("fig06_droprate",),
))
register_spec(ExperimentSpec(
    name="fig9",
    scenario="agent-sweep",
    title="Figure 9: average traffic cost vs number of agents",
    seed=7,
    tables=("fig09_traffic",),
))
register_spec(ExperimentSpec(
    name="fig10",
    scenario="agent-sweep",
    title="Figure 10: average response time vs number of agents",
    seed=7,
    tables=("fig10_response",),
))
register_spec(ExperimentSpec(
    name="fig11",
    scenario="agent-sweep",
    title="Figure 11: average success rate vs number of agents",
    seed=7,
    tables=("fig11_success",),
))
register_spec(ExperimentSpec(
    name="fig12",
    scenario="damage-timelines",
    title="Figure 12: damage rate over time, 0.5% agents",
    seed=11,
    trials=3,
    grid=GridSpec(cut_thresholds=(3.0, 7.0, 10.0)),
    tables=("fig12_damage",),
))
register_spec(ExperimentSpec(
    name="fig12-stabilized",
    scenario="cut-threshold-sweep",
    title="Figure 12 companion: stabilized damage by cut threshold",
    seed=13,
    trials=3,
    grid=GridSpec(cut_thresholds=(2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0)),
    tables=("fig12_stabilized_damage",),
))
register_spec(ExperimentSpec(
    name="fig13",
    scenario="cut-threshold-sweep",
    title="Figure 13: errors vs cut threshold",
    seed=13,
    trials=3,
    grid=GridSpec(cut_thresholds=(2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0)),
    tables=("fig13_errors",),
))
register_spec(ExperimentSpec(
    name="fig14",
    scenario="cut-threshold-sweep",
    title="Figure 14: damage recovery time vs cut threshold",
    seed=13,
    trials=3,
    grid=GridSpec(cut_thresholds=(2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0)),
    tables=("fig14_recovery",),
))
register_spec(ExperimentSpec(
    name="exchange",
    scenario="exchange-frequency",
    title="Section 3.7.1: neighbor-list exchange policy comparison",
    seed=17,
    grid=GridSpec(periods_min=(1, 2, 4, 5, 10)),
    tables=("exchange_frequency",),
))
register_spec(ExperimentSpec(
    name="fault-sweep",
    scenario="fault-sweep",
    title="Fault-robustness sweep: control-plane loss x fail-stop crashes",
    backend="des",
    seed=23,
    police=DDPoliceConfig(exchange_period_s=30.0),
    workload=WorkloadSpec(queries_per_minute=2.0, cheat_strategy="honest"),
    faults=fault_grid_for("bench"),
    grid=GridSpec(profiles=("paper", "hardened")),
    tables=("fault_sweep",),
))
register_spec(ExperimentSpec(
    name="robustness-matrix",
    scenario="robustness-matrix",
    title="Robustness matrix: defense x adaptive adversary x topology",
    backend="des",
    seed=29,
    # Exchange period and q scale down with the workload rates (paper:
    # 120 s and q=100 against 20,000 qpm floods; here 30 s and q=10
    # against 600 qpm), keeping indicator magnitudes comparable.
    police=DDPoliceConfig(exchange_period_s=30.0, q_threshold_qpm=10.0),
    workload=WorkloadSpec(queries_per_minute=2.0, cheat_strategy="silent"),
    # Pulse adversaries phase-lock to the exchange period above; churn
    # evaders stay up ~3 exchange windows and flee for one.
    adversary=AdaptiveConfig(pulse_period_s=30.0),
    matrix=matrix_grid_for("bench"),
    tables=("robustness_matrix",),
))
register_spec(ExperimentSpec(
    name="sketch-frontier",
    scenario="sketch-frontier",
    title="Sketch frontier: count-min evidence memory vs detection quality",
    backend="des-soa",
    seed=31,
    # Same fig9-style workload the agent sweep uses; the rate axis
    # brackets the warning threshold so narrow sketches have something
    # to falsely push over it.
    grid=GridSpec(attack_rates_qpm=(1000.0, 2000.0)),
    tables=("sketch_frontier",),
))
