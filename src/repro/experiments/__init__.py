"""Experiment harness: per-figure reproductions and the DES runner.

Every table/figure in the paper's evaluation has a function here that
regenerates its rows/series (see DESIGN.md section 2 for the index);
the ``benchmarks/`` tree wraps these in pytest-benchmark targets and
prints the same rows the paper reports.
"""

from repro.experiments.runner import DESConfig, DESRun, run_des_experiment
from repro.experiments.scenarios import Scale, bench_scale, paper_scale, active_scale
from repro.experiments.reporting import (
    render_table,
    render_series,
    render_timelines,
    sparkline,
)
from repro.experiments.io import load_records, load_rows, save_records, save_rows
from repro.experiments.sweeps import SweepPoint, run_point, sweep
from repro.experiments import figures

__all__ = [
    "DESConfig",
    "DESRun",
    "run_des_experiment",
    "Scale",
    "bench_scale",
    "paper_scale",
    "active_scale",
    "render_table",
    "render_series",
    "render_timelines",
    "sparkline",
    "load_records",
    "load_rows",
    "save_records",
    "save_rows",
    "SweepPoint",
    "run_point",
    "sweep",
    "figures",
]
