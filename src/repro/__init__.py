"""DD-POLICE: defending unstructured P2P systems from overlay
flooding-based DDoS.

Reproduction of Liu, Liu, Wang & Xiao, *Defending P2Ps from Overlay
Flooding-based DDoS*, ICPP 2007. The package provides:

* :mod:`repro.core` -- the DD-POLICE protocol (indicators, buddy groups,
  Neighbor_Traffic messages, bad-peer recognition);
* :mod:`repro.overlay` -- a message-level Gnutella-style overlay with
  flooding search, topology generation, bandwidth and content models;
* :mod:`repro.fluid` -- a vectorized fluid-flow engine for paper-scale
  experiments (20,000 peers);
* :mod:`repro.attack`, :mod:`repro.churn`, :mod:`repro.workload`,
  :mod:`repro.testbed` -- the attack, dynamics, workload, and physical
  testbed models of Sections 2 and 3.5;
* :mod:`repro.baselines` -- naive rate cutoff and query-flood load
  balancing comparators;
* :mod:`repro.experiments`, :mod:`repro.metrics` -- the harness that
  regenerates every evaluation figure.

Quickstart
----------
>>> from repro import FluidConfig, FluidSimulation
>>> sim = FluidSimulation(FluidConfig(n=500, num_agents=3, defense="ddpolice"))
>>> rows = sim.run(minutes=10)
>>> rows[-1].success_rate > 0
True
"""

from repro.core import (
    DDPoliceConfig,
    DDPoliceEngine,
    deploy_ddpolice,
    general_indicator,
    single_indicator,
    is_bad_peer,
)
from repro.fluid import FluidConfig, FluidSimulation
from repro.experiments import DESConfig, run_des_experiment
from repro.overlay import (
    OverlayNetwork,
    NetworkConfig,
    TopologyConfig,
    generate_topology,
)
from repro.simkit import Simulator

__version__ = "1.0.0"

__all__ = [
    "DDPoliceConfig",
    "DDPoliceEngine",
    "deploy_ddpolice",
    "general_indicator",
    "single_indicator",
    "is_bad_peer",
    "FluidConfig",
    "FluidSimulation",
    "DESConfig",
    "run_des_experiment",
    "OverlayNetwork",
    "NetworkConfig",
    "TopologyConfig",
    "generate_topology",
    "Simulator",
    "__version__",
]
