"""Struct-of-arrays primitives for the batched flood engine.

The SoA backend (:mod:`repro.overlay.soa_network`) advances flooding in
*waves*: every message delivery sharing one exact virtual timestamp is
processed as one vectorized step. That step needs three primitives that
have no per-element Python cost:

* :class:`Int64Map` -- an open-addressing int64 -> int64 hash table with
  fully vectorized batch insert/lookup. It backs the unified seen-set /
  reverse-route table (key ``qid * n + peer``, value = the neighbor the
  query arrived from, or the ``ORIGIN`` sentinel for own issues).
  Because flood state is only live for one query lifetime
  (``2 * TTL * hop_latency`` seconds), the map is *generational*: two
  tables rotate on an epoch clock and lookups consult both, so memory is
  bounded by two epochs of insert volume instead of the whole run.
* :class:`TokenBucketArray` -- per-peer token buckets in two float64
  arrays, refilled lazily and in bulk. Matches
  :class:`repro.overlay.capacity.TokenBucket` float-for-float when
  refill points coincide (capped linear refill composes path
  independently, so it does).
* :class:`GrowArray` -- an amortized-growth typed append buffer used to
  accumulate wave entries before they are frozen into numpy views.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigError

#: Empty-slot key sentinel (keys must be non-negative).
EMPTY = np.int64(-1)

#: Fibonacci multiplier for int64 hashing (2^64 / golden ratio, odd).
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def _hash_slots(keys: np.ndarray, log2_cap: int) -> np.ndarray:
    """Fibonacci-hash int64 keys into ``[0, 2**log2_cap)`` slots."""
    h = keys.astype(np.uint64) * _GOLDEN
    return (h >> np.uint64(64 - log2_cap)).astype(np.int64)


class _Table:
    """One open-addressing generation: parallel key/value arrays."""

    __slots__ = ("keys", "vals", "log2_cap", "mask", "size")

    def __init__(self, log2_cap: int) -> None:
        cap = 1 << log2_cap
        self.keys = np.full(cap, EMPTY, dtype=np.int64)
        self.vals = np.empty(cap, dtype=np.int64)
        self.log2_cap = log2_cap
        self.mask = np.int64(cap - 1)
        self.size = 0

    # -- vectorized probing -------------------------------------------------
    def lookup(self, query_keys: np.ndarray, out: np.ndarray) -> None:
        """Write values for found keys into ``out`` (missing untouched)."""
        n = len(query_keys)
        if n == 0:
            return
        pending = np.arange(n)
        slots = _hash_slots(query_keys, self.log2_cap)
        while len(pending):
            table_keys = self.keys[slots]
            found = table_keys == query_keys[pending]
            if found.any():
                out[pending[found]] = self.vals[slots[found]]
            live = ~(found | (table_keys == EMPTY))
            pending = pending[live]
            slots = (slots[live] + 1) & self.mask

    def contains(self, query_keys: np.ndarray) -> np.ndarray:
        """Boolean membership mask for ``query_keys``."""
        n = len(query_keys)
        hit = np.zeros(n, dtype=bool)
        if n == 0:
            return hit
        pending = np.arange(n)
        slots = _hash_slots(query_keys, self.log2_cap)
        while len(pending):
            table_keys = self.keys[slots]
            found = table_keys == query_keys[pending]
            hit[pending[found]] = True
            live = ~(found | (table_keys == EMPTY))
            pending = pending[live]
            slots = (slots[live] + 1) & self.mask
        return hit

    def insert_unique(self, keys: np.ndarray, vals: np.ndarray) -> np.ndarray:
        """Insert batch-unique keys; return the freshly-inserted mask.

        ``keys`` must contain no within-batch duplicates (dedup the batch
        with ``np.unique`` first). Keys already present keep their stored
        value (first writer wins, matching the DES reverse-route table,
        which is only written on first sight of a GUID). Same-slot
        contention inside the batch is serialized one claimant per probe
        round via ``np.unique`` on the slot array.
        """
        n = len(keys)
        fresh = np.zeros(n, dtype=bool)
        if n == 0:
            return fresh
        pending = np.arange(n)
        slots = _hash_slots(keys, self.log2_cap)
        while len(pending):
            table_keys = self.keys[slots]
            match = table_keys == keys[pending]
            empty = table_keys == EMPTY
            claimed = np.zeros(len(pending), dtype=bool)
            if empty.any():
                empty_pos = np.flatnonzero(empty)
                # One winner per contested slot this round; losers re-probe
                # the same slot, see the winner's (different) key, advance.
                _, first = np.unique(slots[empty_pos], return_index=True)
                winners = empty_pos[first]
                win_slots = slots[winners]
                win_rows = pending[winners]
                self.keys[win_slots] = keys[win_rows]
                self.vals[win_slots] = vals[win_rows]
                fresh[win_rows] = True
                claimed[winners] = True
                self.size += len(winners)
            live = ~(match | claimed)
            # Occupied-mismatch probes advance; claim-race losers retry
            # the same slot (next round it holds the winner's different
            # key, so they advance then). Every round either claims a
            # slot or advances a probe -- the loop terminates.
            advance = live & ~empty
            slots = np.where(advance, slots + 1, slots) & self.mask
            pending = pending[live]
            slots = slots[live]
        return fresh


class Int64Map:
    """Generational vectorized int64 -> int64 map (seen-set + routes).

    Two generations (``current``/``previous``) rotate on an epoch clock:
    inserts go to ``current``; lookups and duplicate checks consult both.
    Entries therefore survive between one and two epochs -- choose
    ``epoch_s`` longer than the flood lifetime (``2 * TTL * hop_latency``)
    and the rotation is semantically invisible, exactly like the DES
    peers' LRU ``_seen`` caches whose capacity is never binding.
    """

    def __init__(self, *, initial_log2_cap: int = 10, epoch_s: float = 2.0) -> None:
        if epoch_s <= 0:
            raise ConfigError("epoch_s must be positive")
        if initial_log2_cap < 4:
            raise ConfigError("initial_log2_cap must be >= 4")
        self._initial_log2_cap = initial_log2_cap
        self.epoch_s = float(epoch_s)
        self._current = _Table(initial_log2_cap)
        self._previous = _Table(initial_log2_cap)
        self._epoch_start = 0.0
        self.rotations = 0

    # ------------------------------------------------------------------
    def maybe_rotate(self, now: float) -> None:
        """Retire the previous generation once an epoch has elapsed."""
        if now - self._epoch_start >= self.epoch_s:
            self._previous = self._current
            self._current = _Table(max(self._initial_log2_cap, self._previous.log2_cap))
            self._epoch_start = now
            self.rotations += 1

    def _grow_current(self, incoming: int) -> None:
        cur = self._current
        needed = cur.size + incoming
        log2 = cur.log2_cap
        while needed * 2 > (1 << log2):  # keep load factor <= 0.5
            log2 += 1
        if log2 == cur.log2_cap:
            return
        bigger = _Table(log2)
        occupied = cur.keys != EMPTY
        if occupied.any():
            bigger.insert_unique(cur.keys[occupied], cur.vals[occupied])
        self._current = bigger

    # ------------------------------------------------------------------
    def insert_new(self, keys: np.ndarray, vals: np.ndarray) -> np.ndarray:
        """Insert batch-unique ``keys``; True where the key was unseen.

        A key already present in either generation is a duplicate: it is
        not reinserted and its stored value is untouched.
        """
        keys = np.asarray(keys, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.int64)
        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        self._grow_current(len(keys))
        in_prev = self._previous.contains(keys)
        fresh = np.zeros(len(keys), dtype=bool)
        todo = ~in_prev
        if todo.any():
            fresh[todo] = self._current.insert_unique(keys[todo], vals[todo])
        return fresh

    def lookup(self, keys: np.ndarray, missing: int = -3) -> np.ndarray:
        """Values for ``keys``; ``missing`` where absent from both tables."""
        keys = np.asarray(keys, dtype=np.int64)
        out = np.full(len(keys), missing, dtype=np.int64)
        # Previous first, then current: an entry can only exist in one
        # generation (inserts check both), so overwrite order is moot.
        self._previous.lookup(keys, out)
        self._current.lookup(keys, out)
        return out

    @property
    def size(self) -> int:
        return self._current.size + self._previous.size


class TokenBucketArray:
    """Per-peer token buckets in flat arrays (capacity clamp, Section 2.3).

    Mirrors :class:`repro.overlay.capacity.TokenBucket`: depth defaults
    to one second of tokens, buckets start full, refill is capped-linear.
    Refill is lazy -- only peers touched by a wave are updated -- which
    is float-exact against the sequential bucket because capped linear
    refill composes path-independently between consumption points.
    """

    def __init__(self, n: int, rate_per_min: float, burst: float = 0.0) -> None:
        if rate_per_min <= 0:
            raise ConfigError(f"rate must be positive, got {rate_per_min}")
        if burst <= 0:
            burst = rate_per_min / 60.0
        self.rate_per_sec = rate_per_min / 60.0
        self.burst = float(burst)
        self.tokens = np.full(n, self.burst, dtype=np.float64)
        self.last = np.zeros(n, dtype=np.float64)

    def grant(self, peers: np.ndarray, counts: np.ndarray, now: float) -> np.ndarray:
        """Refill ``peers`` (unique) at ``now``; grant up to ``counts`` tokens.

        Returns the integer number granted per peer. Matches running
        ``try_consume(now)`` ``counts[i]`` times on the sequential
        bucket: the bucket admits ``floor(tokens + 1e-12)`` unit
        consumes, and failed consumes still advance the refill clock.
        """
        t = self.tokens[peers]
        dt = now - self.last[peers]
        # DES tolerates out-of-order stamps by skipping refill; waves are
        # time-ordered so dt >= 0 always, but clip for safety.
        np.maximum(dt, 0.0, out=dt)
        t = np.minimum(self.burst, t + dt * self.rate_per_sec)
        avail = np.floor(t + 1e-12).astype(np.int64)
        granted = np.minimum(np.asarray(counts, dtype=np.int64), avail)
        self.tokens[peers] = t - granted
        self.last[peers] = now
        return granted


class GrowArray:
    """Typed append buffer with amortized O(1) bulk extend."""

    __slots__ = ("_data", "_len")

    def __init__(self, dtype, initial: int = 1024) -> None:
        self._data = np.empty(initial, dtype=dtype)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def extend(self, values: np.ndarray) -> None:
        need = self._len + len(values)
        if need > len(self._data):
            new_cap = max(need, 2 * len(self._data))
            grown = np.empty(new_cap, dtype=self._data.dtype)
            grown[: self._len] = self._data[: self._len]
            self._data = grown
        self._data[self._len : need] = values
        self._len = need

    def view(self) -> np.ndarray:
        """Zero-copy view of the filled prefix."""
        return self._data[: self._len]


def dedup_first_occurrence(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(unique_keys, first_occurrence_indices) preserving first arrivals.

    ``np.unique(return_index=True)`` documents that the returned indices
    are those of the *first* occurrence of each unique value -- the same
    winner the sequential DES picks when several same-timestamp copies of
    one query reach one peer.
    """
    uniq, first = np.unique(keys, return_index=True)
    return uniq, first
