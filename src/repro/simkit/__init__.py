"""Discrete-event simulation kernel.

A small, dependency-free DES engine used by every other subsystem:

* :class:`~repro.simkit.engine.Simulator` -- heap-based event loop with a
  monotonically non-decreasing virtual clock.
* :class:`~repro.simkit.events.Event` -- scheduled callbacks with stable
  FIFO tie-breaking and O(log n) cancellation.
* :class:`~repro.simkit.timers.PeriodicTask` / jittered periodic processes.
* :class:`~repro.simkit.rng.RngRegistry` -- named, independently seeded
  random streams so that sub-components draw from decoupled sequences and
  experiments stay reproducible when one component's draw count changes.
"""

from repro.simkit.engine import Simulator, SimulationError
from repro.simkit.events import Event, EventState
from repro.simkit.timers import PeriodicTask, Timeout
from repro.simkit.rng import RngRegistry

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "EventState",
    "PeriodicTask",
    "Timeout",
    "RngRegistry",
]
