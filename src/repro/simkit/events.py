"""Event objects for the DES kernel.

Events are comparable on ``(time, priority, sequence)`` so the scheduler's
heap yields a deterministic total order: earlier time first, then lower
priority number, then insertion order (FIFO among ties).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional, Tuple


class EventState(enum.Enum):
    """Lifecycle of a scheduled event."""

    PENDING = "pending"
    FIRED = "fired"
    CANCELLED = "cancelled"


class Event:
    """A scheduled callback.

    Parameters
    ----------
    time:
        Virtual time at which the event fires.
    seq:
        Monotone sequence number assigned by the simulator; breaks ties
        deterministically (FIFO) among events scheduled for the same time.
    callback:
        Callable invoked as ``callback(*args)`` when the event fires.
    priority:
        Secondary ordering key; events at equal time fire in ascending
        priority. Defaults to 0. Use negative priorities for bookkeeping
        that must observe state *before* same-time application events.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "state", "tag", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time!r}")
        self.time = float(time)
        self.priority = int(priority)
        self.seq = int(seq)
        self.callback = callback
        self.args = args
        self.state = EventState.PENDING
        self.tag = tag
        #: Owning scheduler, set by ``Simulator.schedule_at``; lets
        #: ``cancel`` report lazily-cancelled events so the engine can keep
        #: an O(1) pending count and compact the heap.
        self.owner: Optional[Any] = None

    @property
    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def cancel(self) -> bool:
        """Cancel a pending event. Returns True if it was still pending."""
        if self.state is EventState.PENDING:
            self.state = EventState.CANCELLED
            if self.owner is not None:
                self.owner.note_cancelled()
            return True
        return False

    @property
    def cancelled(self) -> bool:
        return self.state is EventState.CANCELLED

    @property
    def pending(self) -> bool:
        return self.state is EventState.PENDING

    def fire(self) -> None:
        """Invoke the callback; transitions PENDING -> FIRED."""
        if self.state is not EventState.PENDING:
            raise RuntimeError(f"cannot fire event in state {self.state}")
        self.state = EventState.FIRED
        self.callback(*self.args)

    # Heap ordering -------------------------------------------------------
    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.callback, "__name__", repr(self.callback))
        return (
            f"Event(t={self.time:.6g}, prio={self.priority}, seq={self.seq}, "
            f"cb={name}, state={self.state.value})"
        )
