"""Periodic tasks and cancellable timeouts on top of the DES engine.

DD-POLICE is built out of periodic protocol rounds (neighbor-list exchange
every 2 minutes, per-minute traffic-window rollover, buddy-group liveness
pings) and one-shot timeouts (the 5-second Neighbor_Traffic collection
window). These helpers encapsulate the rescheduling logic.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Optional

from repro.simkit.engine import Simulator
from repro.simkit.events import Event


class PeriodicTask:
    """Re-fires ``callback()`` every ``period`` time units until stopped.

    Parameters
    ----------
    sim:
        Owning simulator.
    period:
        Interval between firings; must be positive.
    callback:
        Zero-argument callable invoked each round.
    jitter:
        Optional uniform jitter in ``[0, jitter)`` added to each interval,
        drawn from ``rng``; desynchronizes protocol rounds across peers the
        way real deployments drift. Requires an explicit ``rng``: a shared
        fallback seed would hand every task the *same* jitter sequence,
        keeping rounds synchronized -- the opposite of jitter's purpose.
    start_delay:
        Delay before the first firing (default: one full period).
    priority:
        Event priority for every firing. Bookkeeping tasks that must
        observe state *before* same-time application events (e.g. the
        per-minute metrics roll vs. attack batches fired exactly on the
        minute boundary) should use a negative priority.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        *,
        jitter: float = 0.0,
        start_delay: Optional[float] = None,
        rng: Optional[random.Random] = None,
        priority: int = 0,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        if jitter > 0 and rng is None:
            raise ValueError(
                "jitter > 0 requires an explicit rng: independently-created "
                "tasks sharing a default seed would draw identical jitter "
                "sequences and stay synchronized"
            )
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = rng
        self._priority = priority
        self._event: Optional[Event] = None
        self._stopped = False
        self.fire_count = 0
        first = self._period if start_delay is None else float(start_delay)
        self._event = sim.schedule_in(
            first + self._draw_jitter(), self._tick, priority=priority
        )

    def _draw_jitter(self) -> float:
        return self._rng.uniform(0.0, self._jitter) if self._jitter > 0 else 0.0

    def _tick(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._callback()
        if not self._stopped:
            self._event = self._sim.schedule_in(
                self._period + self._draw_jitter(), self._tick,
                priority=self._priority,
            )

    @property
    def period(self) -> float:
        return self._period

    @property
    def active(self) -> bool:
        return not self._stopped

    def stop(self) -> None:
        """Stop the task; pending firing is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None


class Timeout:
    """One-shot cancellable timeout.

    Wraps a single scheduled event with an explicit ``cancel``/``expired``
    interface, used for protocol collection windows.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        callback: Callable[[], Any],
    ) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._fired = False
        self._event = sim.schedule_in(delay, self._fire)
        self._callback = callback

    def _fire(self) -> None:
        self._fired = True
        self._callback()

    @property
    def expired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        return self._event.pending

    def cancel(self) -> bool:
        """Cancel if still pending; returns True on success."""
        return self._event.cancel()
