"""Named, independently seeded random streams.

Every stochastic component (topology, churn, workload, attack, protocol
jitter) draws from its own stream derived from a single experiment seed.
This keeps experiments reproducible *and* decoupled: adding a draw in one
component does not perturb the sequences seen by the others -- a standard
variance-reduction discipline in simulation studies.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Union

import numpy as np

from repro.errors import ConfigError


def derive_seed(master_seed: int, *stream_labels: Union[str, int]) -> int:
    """Derive a 63-bit child seed from ``(master_seed, *stream_labels)``.

    Uses SHA-256 so child streams are statistically independent and stable
    across Python versions/platforms (unlike ``hash()``). Labels may be
    strings or integers (e.g. ``derive_seed(seed0, "trial", 3)``) and are
    joined with ``:`` -- so ``("a", "b")`` and ``("a:b",)`` alias; pick
    label vocabularies that keep the joined key unambiguous.

    Unlike arithmetic schemes (``seed0 + 1000 * trial``), derived seeds do
    not alias across nearby master seeds: ``derive_seed(0, "trial", 1)``
    and ``derive_seed(1000, "trial", 0)`` are unrelated.
    """
    if not stream_labels:
        raise ConfigError("derive_seed needs at least one stream label")
    parts = [str(master_seed), *(str(label) for label in stream_labels)]
    payload = ":".join(parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


class RngRegistry:
    """Factory of named :class:`random.Random` / numpy Generator streams.

    >>> reg = RngRegistry(42)
    >>> a = reg.stream("churn")
    >>> b = reg.stream("churn")
    >>> a is b
    True
    >>> reg.stream("workload") is a
    False
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) stdlib stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """Return the (memoized) numpy Generator for ``name``."""
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(
                derive_seed(self.master_seed, "np:" + name)
            )
        return self._np_streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """Child registry with a seed derived from this one.

        Used for per-trial registries inside parameter sweeps.
        """
        return RngRegistry(derive_seed(self.master_seed, "fork:" + name))
