"""Heap-based discrete-event simulator.

The engine owns a virtual clock and a binary heap of :class:`Event`
objects. Cancellation is lazy: cancelled events stay in the heap and are
skipped on pop, which keeps ``cancel`` O(1) and pop amortized O(log n).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.simkit.events import Event


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling into the past)."""


class Simulator:
    """Discrete-event loop with a non-decreasing virtual clock.

    Time units are abstract; the overlay layer interprets them as seconds.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(5.0, fired.append, 5.0)
    >>> _ = sim.schedule_at(1.0, fired.append, 1.0)
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_fired = 0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_fired

    @property
    def pending_count(self) -> int:
        """Number of pending (non-cancelled) events in the queue."""
        return sum(1 for e in self._heap if e.pending)

    # -- scheduling --------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        ev = Event(time, self._seq, callback, args, priority=priority, tag=tag)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(
            self._now + delay, callback, *args, priority=priority, tag=tag
        )

    # -- execution ---------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Fire the single next pending event; return it, or None if empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.fire()
            self._events_fired += 1
            return ev
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            If given, stop once the clock would pass ``until``; the clock is
            advanced to exactly ``until`` and remaining events stay queued.
        max_events:
            Safety valve: stop after firing this many events.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self._heap[0]
                if nxt.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and nxt.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = nxt.time
                nxt.fire()
                self._events_fired += 1
                fired += 1
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request loop exit after the currently firing event returns."""
        self._stopped = True

    # -- introspection -------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def drain(self) -> Tuple[int, int]:
        """Discard all queued events; returns (pending, cancelled) counts."""
        pending = sum(1 for e in self._heap if e.pending)
        cancelled = len(self._heap) - pending
        self._heap.clear()
        return pending, cancelled
