"""Heap-based discrete-event simulator.

The engine owns a virtual clock and a binary heap of :class:`Event`
objects. Cancellation is lazy: cancelled events stay in the heap and are
skipped on pop, which keeps ``cancel`` O(1) and pop amortized O(log n).
Cancelled events are counted live (events report their cancellation back
to the owning simulator), so ``pending_count`` is O(1), and the heap is
compacted in place once cancelled entries dominate it -- long runs with
heavy timer churn stay bounded by the *live* event population.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.simkit.events import Event, EventState

#: Compaction never triggers below this many cancelled entries; above it,
#: the heap is rebuilt once cancelled entries outnumber pending ones.
COMPACTION_MIN_CANCELLED = 256


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling into the past)."""


class Simulator:
    """Discrete-event loop with a non-decreasing virtual clock.

    Time units are abstract; the overlay layer interprets them as seconds.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(5.0, fired.append, 5.0)
    >>> _ = sim.schedule_at(1.0, fired.append, 1.0)
    >>> sim.run()
    >>> fired
    [1.0, 5.0]
    """

    def __init__(self, start_time: float = 0.0, *, tracer: Any = None) -> None:
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        self._now = float(start_time)
        self._heap: List[Event] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_fired = 0
        self._cancelled_in_heap = 0
        #: Optional ``repro.obs.Tracer``; None keeps every dispatch on the
        #: untraced fast path (a single falsy branch per event).
        self.tracer = tracer

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_fired

    @property
    def pending_count(self) -> int:
        """Number of pending (non-cancelled) events in the queue. O(1)."""
        return len(self._heap) - self._cancelled_in_heap

    # -- scheduling --------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        ev = Event(time, self._seq, callback, args, priority=priority, tag=tag)
        ev.owner = self
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(
            self._now + delay, callback, *args, priority=priority, tag=tag
        )

    def schedule_bulk(
        self,
        items: Iterable[Tuple[Any, ...]],
        *,
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> List[Event]:
        """Schedule many events at once with a single heapify.

        Each item is ``(time, callback, *args)``. Sequence numbers are
        assigned in iteration order, so the resulting pop order is
        identical to calling :meth:`schedule_at` once per item -- the
        heap's total order ``(time, priority, seq)`` does not depend on
        insertion method. For n items this is O(heap + n) instead of
        O(n log heap), which matters for overlay startup (one timer per
        peer at n >= 100k).
        """
        events: List[Event] = []
        for item in items:
            time, callback, *args = item
            if time < self._now:
                raise SimulationError(
                    f"cannot schedule into the past: t={time} < now={self._now}"
                )
            ev = Event(time, self._seq, callback, tuple(args), priority=priority, tag=tag)
            ev.owner = self
            self._seq += 1
            events.append(ev)
        self._heap.extend(events)
        heapq.heapify(self._heap)
        return events

    # -- cancellation accounting -------------------------------------------
    def note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` on events owned by this simulator.

        Keeps the cancelled-entry counter live and compacts the heap when
        cancelled entries dominate, so lazy cancellation cannot grow the
        heap beyond ~2x the live event population.
        """
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= COMPACTION_MIN_CANCELLED
            and self._cancelled_in_heap * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        before = len(self._heap)
        self._heap = [e for e in self._heap if e.pending]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0
        if self.tracer is not None:
            self.tracer.event(
                "sim.compact", t=self._now, before=before, after=len(self._heap)
            )

    def _pop_cancelled(self) -> Event:
        """Pop the heap top known to be cancelled, maintaining the counter."""
        ev = heapq.heappop(self._heap)
        self._cancelled_in_heap -= 1
        return ev

    # -- execution ---------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Fire the single next pending event; return it, or None if empty."""
        while self._heap:
            if self._heap[0].cancelled:
                self._pop_cancelled()
                continue
            ev = heapq.heappop(self._heap)
            self._now = ev.time
            if self.tracer is not None:
                self.tracer.event("sim.dispatch", t=ev.time, tag=ev.tag)
            ev.fire()
            self._events_fired += 1
            return ev
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the event loop.

        Parameters
        ----------
        until:
            If given, stop once the clock would pass ``until``; the clock is
            advanced to exactly ``until`` and remaining events stay queued.
        max_events:
            Safety valve: stop after firing this many events.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        self._stopped = False
        fired = 0
        tracer = self.tracer
        try:
            while self._heap and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self._heap[0]
                if nxt.cancelled:
                    self._pop_cancelled()
                    continue
                if until is not None and nxt.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = nxt.time
                if tracer is not None:
                    tracer.event("sim.dispatch", t=nxt.time, tag=nxt.tag)
                nxt.fire()
                self._events_fired += 1
                fired += 1
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Request loop exit after the currently firing event returns."""
        self._stopped = True

    # -- introspection -------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            self._pop_cancelled()
        return self._heap[0].time if self._heap else None

    def drain(self) -> Tuple[int, int]:
        """Discard all queued events; returns (pending, cancelled) counts.

        Discarded pending events are transitioned to CANCELLED so a later
        ``cancel()`` on a held reference cannot corrupt the live counter.
        """
        pending = len(self._heap) - self._cancelled_in_heap
        cancelled = self._cancelled_in_heap
        for ev in self._heap:
            if ev.pending:
                ev.state = EventState.CANCELLED
        self._heap.clear()
        self._cancelled_in_heap = 0
        return pending, cancelled
