"""Peer access-link bandwidth model.

Per Section 3.5 the paper assigns link bandwidth "based on the
observations in [19]" (Saroiu, Gummadi, Gribble, MMCN'02): 78% of peers
have downstream bottleneck bandwidth of at least 100 Kbps and 22% have
upstream bottleneck bandwidth of 100 Kbps or less. The attack rate is
capped by the access link: ``Q_d = min(20,000, link capacity)`` queries
per minute.

We model the Saroiu measurement as a small set of bandwidth classes
(dialup / DSL / cable / T1+) with the published mass at the 100 Kbps
breakpoints, and convert bits/s into queries/minute using the mean query
message size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigError

#: Mean on-the-wire query size (bytes): 23-byte header + ~60-byte payload.
MEAN_QUERY_SIZE_BYTES = 83


@dataclass(frozen=True)
class BandwidthClass:
    """One access-technology class."""

    name: str
    downstream_bps: float
    upstream_bps: float
    weight: float  # population share

    def __post_init__(self) -> None:
        if self.downstream_bps <= 0 or self.upstream_bps <= 0:
            raise ConfigError(f"bandwidth must be positive in class {self.name}")
        if self.weight < 0:
            raise ConfigError(f"negative weight in class {self.name}")


#: Default classes tuned so that 22% of peers have upstream <= 100 Kbps
#: and 78% have downstream >= 100 Kbps, matching Saroiu et al. as cited.
SAROIU_CLASSES: Tuple[BandwidthClass, ...] = (
    BandwidthClass("modem", downstream_bps=56_000, upstream_bps=33_600, weight=0.22),
    BandwidthClass("dsl", downstream_bps=768_000, upstream_bps=128_000, weight=0.35),
    BandwidthClass("cable", downstream_bps=3_000_000, upstream_bps=400_000, weight=0.30),
    BandwidthClass("t1", downstream_bps=10_000_000, upstream_bps=10_000_000, weight=0.13),
)


def queries_per_minute(bps: float, query_size_bytes: int = MEAN_QUERY_SIZE_BYTES) -> float:
    """Convert a link rate in bits/s to query messages/minute."""
    if bps <= 0:
        raise ConfigError(f"bps must be positive, got {bps}")
    return bps * 60.0 / (8.0 * query_size_bytes)


class BandwidthModel:
    """Assigns each peer a bandwidth class and exposes rate caps.

    >>> model = BandwidthModel(seed=1)
    >>> caps = model.assign(1000)
    >>> len(caps)
    1000
    """

    def __init__(
        self,
        classes: Sequence[BandwidthClass] = SAROIU_CLASSES,
        seed: int = 0,
        query_size_bytes: int = MEAN_QUERY_SIZE_BYTES,
    ) -> None:
        if not classes:
            raise ConfigError("need at least one bandwidth class")
        total = sum(c.weight for c in classes)
        if total <= 0:
            raise ConfigError("class weights must sum to a positive value")
        self.classes: Tuple[BandwidthClass, ...] = tuple(classes)
        self._cum: List[float] = []
        acc = 0.0
        for c in classes:
            acc += c.weight / total
            self._cum.append(acc)
        self._rng = random.Random(seed)
        self.query_size_bytes = query_size_bytes

    def sample_class(self) -> BandwidthClass:
        """Draw one class according to the population weights."""
        u = self._rng.random()
        for c, cum in zip(self.classes, self._cum):
            if u <= cum:
                return c
        return self.classes[-1]

    def assign(self, n: int) -> List[BandwidthClass]:
        """Assign classes to ``n`` peers."""
        if n < 0:
            raise ConfigError(f"n must be non-negative, got {n}")
        return [self.sample_class() for _ in range(n)]

    def upstream_qpm(self, cls: BandwidthClass) -> float:
        """Upstream capacity in queries/minute for one peer."""
        return queries_per_minute(cls.upstream_bps, self.query_size_bytes)

    def downstream_qpm(self, cls: BandwidthClass) -> float:
        """Downstream capacity in queries/minute for one peer."""
        return queries_per_minute(cls.downstream_bps, self.query_size_bytes)

    def attack_rate_qpm(self, cls: BandwidthClass, nominal_qpm: float = 20_000.0) -> float:
        """Paper's attack-rate law: ``Q_d = min(20,000, link capacity)``."""
        return min(nominal_qpm, self.upstream_qpm(cls))

    def population_summary(self, n: int = 10_000) -> dict:
        """Empirical shares at the 100 Kbps breakpoints (for validation)."""
        sample = self.assign(n)
        up_le_100k = sum(1 for c in sample if c.upstream_bps <= 100_000) / n
        down_ge_100k = sum(1 for c in sample if c.downstream_bps >= 100_000) / n
        return {"upstream_le_100k": up_le_100k, "downstream_ge_100k": down_ge_100k}
