"""Overlay network container: peers + DES engine + content + links.

This is the message-level ("detailed") simulation substrate. It delivers
messages with per-hop latency, drives the per-minute traffic windows, and
records the per-query bookkeeping behind the paper's service-quality
metrics (response time = first response; success = at least one location
found; traffic cost = bytes moved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.errors import ConfigError, ProtocolError
from repro.evidence.config import EvidenceConfig
from repro.metrics.accounting import QueryAccounting
from repro.overlay.capacity import TokenBucket
from repro.overlay.content import ContentCatalog, ContentConfig
from repro.overlay.ids import Guid, GuidFactory, PeerId
from repro.overlay.message import Message, MessageKind, Query, QueryHit
from repro.overlay.peer import Peer
from repro.overlay.topology import Topology
from repro.simkit.engine import Simulator
from repro.simkit.rng import RngRegistry
from repro.simkit.timers import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.config import Observability


@dataclass(frozen=True)
class NetworkConfig:
    """Message-level network parameters."""

    default_ttl: int = 7
    hop_latency_s: float = 0.05
    hop_latency_jitter_s: float = 0.02
    minute_window_s: float = 60.0
    processing_qpm_good: float = 10_000.0
    #: Enforce per-peer access-link rates (Section 3.5's Saroiu
    #: assignment): messages beyond the sender's upstream or receiver's
    #: downstream budget are dropped in flight. Off by default so unit
    #: tests see lossless links.
    bandwidth_enabled: bool = False
    #: Drop settled ``QueryRecord``s once their window's grace period has
    #: elapsed, folding them into compact per-class running aggregates.
    #: Bounds metrics memory at paper scale; turn off only for the legacy
    #: full-scan collector (which needs every record retained).
    retire_settled_records: bool = True
    #: Windows to wait after a minute closes before its metrics row is
    #: emitted and its records retired (in-flight responses land during
    #: the grace). ``MetricsCollector`` may override before the first
    #: rollover.
    metrics_grace_minutes: int = 1
    #: Upper bound on remembered GUIDs per peer (seen cache + reverse-
    #: path routes), mirroring the bounded routing tables of real
    #: servents.  Promoted from a module constant so cache sizing is a
    #: first-class, validated knob (``network.seen_cache_limit``).
    seen_cache_limit: int = 50_000
    #: Representation of each peer's GUID seen cache: exact LRU by
    #: default, rotating Bloom at a fixed bit budget under
    #: ``backend="sketch"`` (docs/SKETCH.md).  The reverse-path route
    #: table stays exact either way -- it stores route *values*, which
    #: a membership sketch cannot.
    evidence: EvidenceConfig = EvidenceConfig()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.default_ttl < 1:
            raise ConfigError(f"default_ttl must be >= 1, got {self.default_ttl}")
        if self.hop_latency_s <= 0:
            raise ConfigError(
                f"hop_latency_s must be positive, got {self.hop_latency_s}"
            )
        if self.hop_latency_jitter_s < 0:
            raise ConfigError(
                f"hop_latency_jitter_s must be non-negative, "
                f"got {self.hop_latency_jitter_s}"
            )
        if self.minute_window_s <= 0:
            raise ConfigError(
                f"minute_window_s must be positive, got {self.minute_window_s}"
            )
        if self.processing_qpm_good <= 0:
            raise ConfigError(
                f"processing_qpm_good must be positive, got {self.processing_qpm_good}"
            )
        if self.metrics_grace_minutes < 0:
            raise ConfigError(
                f"metrics_grace_minutes must be non-negative, "
                f"got {self.metrics_grace_minutes}"
            )
        if self.seen_cache_limit < 1:
            raise ConfigError(
                f"seen_cache_limit must be >= 1, got {self.seen_cache_limit}"
            )


@dataclass(slots=True)
class QueryRecord:
    """Per-issued-query bookkeeping.

    Records live only until their minute window is finalized (grace
    elapsed); after that they are retired into the accounting's per-class
    running aggregates. ``is_attack`` is the issue-time origin class,
    ``window`` the minute-window index the issue fell into.
    """

    guid: Guid
    origin: PeerId
    issued_at: float
    object_id: Optional[int] = None
    first_response_at: Optional[float] = None
    responses: int = 0
    is_attack: bool = False
    window: int = 0

    @property
    def succeeded(self) -> bool:
        return self.responses > 0

    @property
    def response_time(self) -> Optional[float]:
        if self.first_response_at is None:
            return None
        return self.first_response_at - self.issued_at


@dataclass
class NetworkStats:
    """Aggregate counters."""

    messages_delivered: int = 0
    bytes_transferred: int = 0
    query_messages: int = 0
    hit_messages: int = 0
    control_messages: int = 0
    queries_dropped_capacity: int = 0
    messages_dropped_bandwidth: int = 0
    messages_dropped_fault: int = 0
    messages_duplicated_fault: int = 0


class OverlayNetwork:
    """All peers plus the event-driven message fabric.

    ``minute_listeners`` fire once per minute window with
    ``(minute_index, now)`` *after* every peer's window has been rolled;
    DD-POLICE engines and metric collectors subscribe there.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        *,
        config: NetworkConfig = NetworkConfig(),
        content: Optional[ContentCatalog] = None,
        rng_registry: Optional[RngRegistry] = None,
        processing_qpm: Optional[Dict[int, float]] = None,
        obs: Optional["Observability"] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        #: Optional observability bundle (``repro.obs.Observability``).
        #: ``tracer``/``metrics`` are unpacked onto the network so hot
        #: paths pay one attribute load + falsy branch when disabled.
        self.obs = obs
        self.tracer = obs.tracer if obs is not None else None
        self.metrics = obs.metrics if obs is not None else None
        self._minute_wall_last: Optional[float] = None
        self._minute_events_last = 0
        self.rngs = rng_registry or RngRegistry(config.seed)
        self._latency_rng = self.rngs.stream("net.latency")
        self.guid_factory = GuidFactory(self.rngs.stream("net.guid"))
        self.content = content or ContentCatalog(
            ContentConfig(seed=config.seed), topology.n
        )
        self.stats = NetworkStats()
        self.query_records: Dict[bytes, QueryRecord] = {}
        #: Peers registered as attack-query origins (DDoS agents). Queries
        #: they originate are classified ATTACK at issue time and excluded
        #: from the default service metrics (see docs/METRICS.md).
        self.attack_origins: Set[PeerId] = set()
        self.accounting = QueryAccounting(
            grace_minutes=config.metrics_grace_minutes,
            retire_records=config.retire_settled_records,
        )
        self.minute_listeners: List[Callable[[int, float], None]] = []
        self.minute_index = 0
        #: Optional fault layer; set by ``FaultInjector.attach``. ``None``
        #: keeps the transmit path untouched (bit-identical to pre-fault
        #: builds).
        self.fault_injector = None

        # Optional per-peer access-link budgets (messages/min), assigned
        # from the Saroiu classes when bandwidth enforcement is on.
        self._up_links: Dict[PeerId, TokenBucket] = {}
        self._down_links: Dict[PeerId, TokenBucket] = {}
        if config.bandwidth_enabled:
            from repro.overlay.bandwidth import BandwidthModel

            bw = BandwidthModel(seed=config.seed)
            for u in range(topology.n):
                cls = bw.sample_class()
                pid = PeerId(u)
                self._up_links[pid] = TokenBucket(rate_per_min=bw.upstream_qpm(cls))
                self._down_links[pid] = TokenBucket(
                    rate_per_min=bw.downstream_qpm(cls)
                )

        # Build peers and wire up the topology.
        self.peers: Dict[PeerId, Peer] = {}
        for u in range(topology.n):
            pid = PeerId(u)
            qpm = (
                processing_qpm.get(u, config.processing_qpm_good)
                if processing_qpm
                else config.processing_qpm_good
            )
            self.peers[pid] = Peer(pid, self, processing_qpm=qpm)
        for u in range(topology.n):
            pu = self.peers[PeerId(u)]
            pu.go_online()
            for v in topology.adjacency[u]:
                pu.add_neighbor(PeerId(v))

        # Negative priority: the roll must observe state *before* any
        # application event scheduled at the exact window boundary, so a
        # query issued at t == 120.0 lands in the [120, 180) window for
        # both the incremental accounting (rolls counter) and the legacy
        # timestamp scan.
        self._minute_task = PeriodicTask(
            sim,
            config.minute_window_s,
            self._roll_minute,
            start_delay=config.minute_window_s,
            priority=-1,
        )

    # ------------------------------------------------------------------
    # clock / content glue
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def shared_objects(self, pid: PeerId) -> Set[int]:
        return self.content.peer_objects.get(pid.value, set())

    def match_content(self, pid: PeerId, query: Query) -> Optional[int]:
        """Return the object id if ``pid`` shares what the query asks for.

        Attack queries carry keyword tuples that resolve to no object and
        therefore never match -- 'bogus queries' in the paper's terms.
        """
        try:
            obj = self.content.object_for_keywords(query.keywords)
        except ConfigError:
            return None
        return obj if self.content.peer_has(pid.value, obj) else None

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def transmit(self, src: PeerId, dst: PeerId, msg: Message) -> None:
        """Schedule delivery of ``msg`` after one hop of latency.

        With bandwidth enforcement on, the sender's upstream and the
        receiver's downstream budgets are charged per message; a depleted
        link drops the message in flight (Section 3.5's link model).
        """
        if dst not in self.peers:
            raise ProtocolError(f"unknown destination {dst}")
        if self._up_links:
            up = self._up_links.get(src)
            down = self._down_links.get(dst)
            if (up is not None and not up.try_consume(self.now)) or (
                down is not None and not down.try_consume(self.now)
            ):
                self.stats.messages_dropped_bandwidth += 1
                if self.tracer is not None:
                    self.tracer.event(
                        "net.drop.bandwidth",
                        t=self.now,
                        src=src.value,
                        dst=dst.value,
                        msg=msg.kind.name,
                    )
                return
        delay = self.config.hop_latency_s
        if self.config.hop_latency_jitter_s > 0:
            delay += self._latency_rng.uniform(0, self.config.hop_latency_jitter_s)
        if self.fault_injector is not None:
            shaped = self.fault_injector.shape_transmit(src, dst, msg, delay)
            if shaped is None:
                self.stats.messages_dropped_fault += 1
                if self.tracer is not None:
                    self.tracer.event(
                        "net.drop.fault",
                        t=self.now,
                        src=src.value,
                        dst=dst.value,
                        msg=msg.kind.name,
                    )
                return
            delay = shaped
        self.sim.schedule_in(delay, self._deliver, src, dst, msg)

    #: kind-keyed stats dispatch: which NetworkStats counter one delivery
    #: of each message kind bumps (everything non-query/non-hit is control
    #: plane). Replaces an isinstance chain on the hottest path.
    _STATS_COUNTER = {
        kind: (
            "query_messages"
            if kind is MessageKind.QUERY
            else "hit_messages"
            if kind is MessageKind.QUERY_HIT
            else "control_messages"
        )
        for kind in MessageKind
    }

    def _deliver(self, src: PeerId, dst: PeerId, msg: Message) -> None:
        peer = self.peers[dst]
        if not peer.online:
            if self.tracer is not None:
                self.tracer.event(
                    "net.drop.offline",
                    t=self.now,
                    src=src.value,
                    dst=dst.value,
                    msg=msg.kind.name,
                )
            return
        stats = self.stats
        stats.messages_delivered += 1
        stats.bytes_transferred += msg.size_bytes
        counter = self._STATS_COUNTER[msg.kind]
        setattr(stats, counter, getattr(stats, counter) + 1)
        if self.tracer is not None:
            self.tracer.event(
                "net.deliver",
                t=self.now,
                src=src.value,
                dst=dst.value,
                msg=msg.kind.name,
                size=msg.size_bytes,
            )
        if self.metrics is not None:
            self.metrics.counter(f"net.messages.{msg.kind.name.lower()}").inc()
        peer.on_message(src, msg)

    # ------------------------------------------------------------------
    # connection management (used by churn and DD-POLICE disconnects)
    # ------------------------------------------------------------------
    def connect(self, a: PeerId, b: PeerId) -> None:
        """Create the undirected logical connection a<->b."""
        if a == b:
            raise ProtocolError("cannot connect a peer to itself")
        self.peers[a].add_neighbor(b)
        self.peers[b].add_neighbor(a)

    def disconnect(self, a: PeerId, b: PeerId, reason_code: int = 0) -> None:
        """Tear down a<->b; both sides observe the reason."""
        self.peers[a].remove_neighbor(b, reason_code)
        self.peers[b].remove_neighbor(a, reason_code)

    def neighbors_of(self, pid: PeerId) -> Set[PeerId]:
        return set(self.peers[pid].neighbors)

    # ------------------------------------------------------------------
    # attack-origin registry
    # ------------------------------------------------------------------
    def register_attack_origin(self, pid: PeerId) -> None:
        """Mark ``pid`` as an attack-query origin (called by DDoS agents).

        Classification is at *issue* time: queries the peer originated
        before compromise keep their GOOD class, everything after is
        ATTACK -- the ground truth behind the paper's good-only S(t).
        """
        if pid not in self.peers:
            raise ProtocolError(f"unknown peer {pid}")
        self.attack_origins.add(pid)

    def unregister_attack_origin(self, pid: PeerId) -> None:
        self.attack_origins.discard(pid)

    # ------------------------------------------------------------------
    # query bookkeeping
    # ------------------------------------------------------------------
    def note_query_issued(self, origin: PeerId, msg: Query) -> None:
        obj: Optional[int]
        try:
            obj = self.content.object_for_keywords(msg.keywords)
        except ConfigError:
            obj = None
        is_attack = origin in self.attack_origins
        window = self.accounting.on_issued(msg.guid.raw, is_attack)
        self.query_records[msg.guid.raw] = QueryRecord(
            guid=msg.guid,
            origin=origin,
            issued_at=self.now,
            object_id=obj,
            is_attack=is_attack,
            window=window,
        )

    def note_query_hit(self, responder: PeerId, query: Query, hit: QueryHit) -> None:
        # Bookkeeping only; delivery happens along the reverse path.
        pass

    def note_response_arrived(self, origin: PeerId, hit: QueryHit) -> None:
        if hit.query_guid is None:
            return
        rec = self.query_records.get(hit.query_guid.raw)
        if rec is None or rec.origin != origin:
            return
        rec.responses += 1
        if rec.first_response_at is None:
            rec.first_response_at = self.now
            self.accounting.on_first_response(
                rec.window, rec.is_attack, self.now - rec.issued_at
            )

    def note_query_dropped(self, pid: PeerId, msg: Query) -> None:
        self.stats.queries_dropped_capacity += 1

    # ------------------------------------------------------------------
    # minute windows
    # ------------------------------------------------------------------
    def _roll_minute(self) -> None:
        self.minute_index += 1
        for peer in self.peers.values():
            if peer.online:
                peer.roll_minute_window()
        retired = self.accounting.on_minute_rolled(
            self.now,
            self.stats.messages_delivered,
            self.stats.bytes_transferred,
        )
        records = self.query_records
        for key in retired:
            records.pop(key, None)
        for listener in self.minute_listeners:
            listener(self.minute_index, self.now)
        if self.metrics is not None:
            self._observe_minute()
        if self.tracer is not None:
            self.tracer.event(
                "net.minute",
                t=self.now,
                minute=self.minute_index,
                delivered=self.stats.messages_delivered,
                queue_depth=self.sim.pending_count,
            )

    def _observe_minute(self) -> None:
        """Per-sim-minute instrument updates (metrics enabled only)."""
        import time as _time

        wall = _time.perf_counter()
        fired = self.sim.events_fired
        metrics = self.metrics
        metrics.gauge("sim.queue_depth").set(self.sim.pending_count)
        metrics.gauge("sim.events_fired").set(fired)
        if self._minute_wall_last is not None:
            wall_delta = wall - self._minute_wall_last
            metrics.timer("sim.minute_wall_s").observe(wall_delta)
            if wall_delta > 0:
                metrics.gauge("sim.events_per_s").set(
                    (fired - self._minute_events_last) / wall_delta
                )
        self._minute_wall_last = wall
        self._minute_events_last = fired

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    def success_rate(self, traffic: str = "good") -> float:
        """Fraction of issued queries with >= 1 response, whole run.

        Defaults to good-origin queries only -- the paper's S(t)
        denominator. Pass ``traffic="all"`` for the pre-fix diagnostic
        that also counts agent-originated bogus queries, or
        ``traffic="attack"`` for the agents alone.
        """
        return self.accounting.success_rate(traffic)

    def mean_response_time(self, traffic: str = "good") -> Optional[float]:
        """Mean first-response time of answered queries, whole run."""
        return self.accounting.mean_response_time(traffic)
