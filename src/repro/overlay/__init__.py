"""Gnutella-style unstructured overlay substrate.

Message-level model of the system the paper attacks and defends:

* :mod:`~repro.overlay.ids` -- peer identifiers and 16-byte GUIDs.
* :mod:`~repro.overlay.message` -- Query / QueryHit / Ping / Pong / Bye /
  NeighborList / NeighborTraffic message dataclasses.
* :mod:`~repro.overlay.topology` -- BRITE-like topology generators
  (Barabasi-Albert preferential attachment, Waxman) with the degree profile
  the paper states (mode 3-4 neighbors, mean 6, heavy tail).
* :mod:`~repro.overlay.bandwidth` -- Saroiu-style bandwidth classes and the
  query-rate capacities they induce.
* :mod:`~repro.overlay.content` -- shared-object catalog with Zipf
  popularity and replica placement.
* :mod:`~repro.overlay.peer` / :mod:`~repro.overlay.network` -- the
  message-level peers and the network container gluing them to the DES
  engine (TTL flooding, GUID duplicate suppression, reverse-path QueryHit
  routing, capacity-limited processing).
* :mod:`~repro.overlay.hostcache` -- bootstrap host cache used on join.
"""

from repro.overlay.ids import PeerId, Guid, GuidFactory
from repro.overlay.message import (
    Message,
    MessageKind,
    Ping,
    Pong,
    Query,
    QueryHit,
    Bye,
    NeighborListMessage,
    NeighborTrafficMessage,
)
from repro.overlay.topology import TopologyConfig, generate_topology, degree_statistics
from repro.overlay.bandwidth import BandwidthModel, BandwidthClass
from repro.overlay.content import ContentCatalog, ContentConfig
from repro.overlay.network import OverlayNetwork, NetworkConfig
from repro.overlay.peer import Peer, PeerState

__all__ = [
    "PeerId",
    "Guid",
    "GuidFactory",
    "Message",
    "MessageKind",
    "Ping",
    "Pong",
    "Query",
    "QueryHit",
    "Bye",
    "NeighborListMessage",
    "NeighborTrafficMessage",
    "TopologyConfig",
    "generate_topology",
    "degree_statistics",
    "BandwidthModel",
    "BandwidthClass",
    "ContentCatalog",
    "ContentConfig",
    "OverlayNetwork",
    "NetworkConfig",
    "Peer",
    "PeerState",
]
