"""Bootstrap host cache.

Joining peers need addresses of online peers to connect to (GWebCache /
pong-cache in deployed Gnutella). The cache hands out a sample of online
peers biased by degree headroom so rejoining peers reproduce the paper's
"turning on/off logical peers" churn without fragmenting the overlay.
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from repro.errors import ConfigError
from repro.overlay.ids import PeerId


class HostCache:
    """Tracks online peers and serves bootstrap candidates."""

    def __init__(self, rng: random.Random, max_degree: int = 32) -> None:
        if max_degree < 1:
            raise ConfigError(f"max_degree must be >= 1, got {max_degree}")
        self._rng = rng
        self._online: Set[PeerId] = set()
        self.max_degree = max_degree

    def mark_online(self, pid: PeerId) -> None:
        self._online.add(pid)

    def mark_offline(self, pid: PeerId) -> None:
        self._online.discard(pid)

    @property
    def online_count(self) -> int:
        return len(self._online)

    def online_peers(self) -> Set[PeerId]:
        return set(self._online)

    def candidates(
        self,
        want: int,
        exclude: Optional[Set[PeerId]] = None,
        degree_of: Optional[dict] = None,
    ) -> List[PeerId]:
        """Return up to ``want`` online peers to connect to.

        ``degree_of`` maps PeerId -> current degree; peers at or above
        ``max_degree`` are filtered out so hubs don't grow unboundedly.
        """
        if want < 0:
            raise ConfigError(f"want must be non-negative, got {want}")
        exclude = exclude or set()
        pool = [p for p in self._online if p not in exclude]
        if degree_of is not None:
            pool = [p for p in pool if degree_of.get(p, 0) < self.max_degree]
        if len(pool) <= want:
            return pool
        return self._rng.sample(pool, want)
