"""Binary codecs for the standard Gnutella 0.6 message bodies.

The DD-POLICE extension types (0x82/0x83) live in
:mod:`repro.core.wire`; this module covers the vocabulary the paper
builds *on*: Ping, Pong, Query, and QueryHit, following the 0.6
specification's layouts:

Pong (payload 0x01, 14 bytes)::

    offset  0: port              (2, little-endian)
    offset  2: IP address        (4, big-endian dotted order)
    offset  6: # shared files    (4, little-endian)
    offset 10: # shared kbytes   (4, little-endian)

Query (payload 0x80)::

    offset 0: minimum speed      (2, little-endian)
    offset 2: search criteria    (NUL-terminated string)

QueryHit (payload 0x81)::

    offset  0: number of hits    (1)
    offset  1: port              (2, little-endian)
    offset  3: IP address        (4)
    offset  7: speed             (4, little-endian)
    offset 11: result set        (per hit: index 4, size 4,
                                  name NUL, extensions NUL)
    tail     : servent GUID      (16)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.wire import HEADER_SIZE, GnutellaHeader
from repro.errors import WireFormatError
from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import MessageKind, Ping, Pong, Query, QueryHit

_PONG_STRUCT = struct.Struct("<H4sII")


def encode_ping(msg: Ping) -> bytes:
    """Serialize a Ping (empty body)."""
    header = GnutellaHeader(msg.guid, MessageKind.PING, msg.ttl, msg.hops, 0)
    return header.encode()


def decode_ping(raw: bytes) -> Ping:
    """Parse a Ping."""
    header = GnutellaHeader.decode(raw)
    if header.kind is not MessageKind.PING:
        raise WireFormatError(f"expected Ping, got {header.kind}")
    if header.payload_length != 0:
        raise WireFormatError("Ping carries no body")
    return Ping(guid=header.guid, ttl=header.ttl, hops=header.hops)


def encode_pong(msg: Pong, *, port: int = 6346, shared_kbytes: int = 0) -> bytes:
    """Serialize a Pong with the responder's address and library size."""
    if msg.responder is None:
        raise WireFormatError("Pong requires a responder")
    if not (0 <= port <= 0xFFFF):
        raise WireFormatError(f"port out of range: {port}")
    body = _PONG_STRUCT.pack(
        port, msg.responder.ipv4_bytes(), msg.shared_files, shared_kbytes
    )
    header = GnutellaHeader(msg.guid, MessageKind.PONG, msg.ttl, msg.hops, len(body))
    return header.encode() + body


def decode_pong(raw: bytes) -> Tuple[Pong, int, int]:
    """Parse a Pong; returns (message, port, shared_kbytes)."""
    header = GnutellaHeader.decode(raw)
    if header.kind is not MessageKind.PONG:
        raise WireFormatError(f"expected Pong, got {header.kind}")
    body = raw[HEADER_SIZE:]
    if len(body) != _PONG_STRUCT.size or header.payload_length != _PONG_STRUCT.size:
        raise WireFormatError(f"Pong body must be {_PONG_STRUCT.size} bytes")
    port, ip_raw, files, kbytes = _PONG_STRUCT.unpack(body)
    pong = Pong(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        responder=PeerId.from_ipv4_bytes(ip_raw),
        shared_files=files,
    )
    return pong, port, kbytes


def encode_query(msg: Query) -> bytes:
    """Serialize a Query: min speed + NUL-terminated search string."""
    search = msg.search_string.encode("utf-8")
    if b"\x00" in search:
        raise WireFormatError("search string must not contain NUL")
    body = struct.pack("<H", msg.min_speed) + search + b"\x00"
    header = GnutellaHeader(msg.guid, MessageKind.QUERY, msg.ttl, msg.hops, len(body))
    return header.encode() + body


def decode_query(raw: bytes) -> Query:
    """Parse a Query back into keywords (split on whitespace)."""
    header = GnutellaHeader.decode(raw)
    if header.kind is not MessageKind.QUERY:
        raise WireFormatError(f"expected Query, got {header.kind}")
    body = raw[HEADER_SIZE:]
    if len(body) != header.payload_length or len(body) < 3:
        raise WireFormatError("malformed Query body")
    (min_speed,) = struct.unpack("<H", body[:2])
    if body[-1:] != b"\x00":
        raise WireFormatError("Query search string must be NUL-terminated")
    search = body[2:-1].decode("utf-8")
    return Query(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        keywords=tuple(search.split()),
        min_speed=min_speed,
    )


@dataclass(frozen=True)
class HitRecord:
    """One result inside a QueryHit's result set."""

    file_index: int
    file_size: int
    name: str

    def __post_init__(self) -> None:
        if self.file_index < 0 or self.file_size < 0:
            raise WireFormatError("hit fields must be non-negative")
        if "\x00" in self.name:
            raise WireFormatError("hit name must not contain NUL")


def encode_query_hit(
    msg: QueryHit,
    hits: List[HitRecord],
    *,
    port: int = 6346,
    speed: int = 0,
) -> bytes:
    """Serialize a QueryHit with an explicit result set.

    The servent GUID trailer carries the *query* GUID so reverse-path
    routers can correlate (our simulator's convention; real servents put
    their own identity there and correlate via the header GUID).
    """
    if msg.responder is None or msg.query_guid is None:
        raise WireFormatError("QueryHit requires responder and query_guid")
    if not hits:
        raise WireFormatError("QueryHit requires at least one hit")
    if len(hits) > 255:
        raise WireFormatError("at most 255 hits per QueryHit")
    body = struct.pack("<B", len(hits))
    body += struct.pack("<H", port)
    body += msg.responder.ipv4_bytes()
    body += struct.pack("<I", speed)
    for hit in hits:
        body += struct.pack("<II", hit.file_index, hit.file_size)
        body += hit.name.encode("utf-8") + b"\x00\x00"  # name NUL + ext NUL
    body += msg.query_guid.raw
    header = GnutellaHeader(
        msg.guid, MessageKind.QUERY_HIT, msg.ttl, msg.hops, len(body)
    )
    return header.encode() + body


def decode_query_hit(raw: bytes) -> Tuple[QueryHit, List[HitRecord]]:
    """Parse a QueryHit; returns (message, result records)."""
    header = GnutellaHeader.decode(raw)
    if header.kind is not MessageKind.QUERY_HIT:
        raise WireFormatError(f"expected QueryHit, got {header.kind}")
    body = raw[HEADER_SIZE:]
    if len(body) != header.payload_length or len(body) < 11 + 16:
        raise WireFormatError("malformed QueryHit body")
    count = body[0]
    (port,) = struct.unpack("<H", body[1:3])
    responder = PeerId.from_ipv4_bytes(body[3:7])
    (speed,) = struct.unpack("<I", body[7:11])
    offset = 11
    hits: List[HitRecord] = []
    for _ in range(count):
        if offset + 8 > len(body) - 16:
            raise WireFormatError("truncated QueryHit result set")
        idx, size = struct.unpack("<II", body[offset : offset + 8])
        offset += 8
        end = body.index(b"\x00", offset)
        name = body[offset:end].decode("utf-8")
        offset = end + 1
        ext_end = body.index(b"\x00", offset)
        offset = ext_end + 1
        hits.append(HitRecord(file_index=idx, file_size=size, name=name))
    trailer = body[len(body) - 16 :]
    if offset != len(body) - 16:
        raise WireFormatError("QueryHit result set length mismatch")
    msg = QueryHit(
        guid=header.guid,
        ttl=header.ttl,
        hops=header.hops,
        responder=responder,
        result_count=count,
        query_guid=Guid(trailer),
    )
    return msg, hits
