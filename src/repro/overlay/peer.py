"""Message-level overlay peer.

Implements the Gnutella servent behaviour the paper's Section 2 relies on:

* flooding with TTL decrement and GUID-based duplicate suppression
  ("a query message will be dropped if the query message has visited the
  peer before" -- [15] as quoted in Section 2.2);
* reverse-path QueryHit routing ("the query response is only delivered to
  the neighbor along the inverse path of the search path");
* capacity-limited processing (Section 2.3: drops begin when incoming load
  exceeds the processing rate);
* per-neighbor per-minute In/Out query counters, the raw observable that
  both the DD-POLICE monitor and the fluid engine expose.

Application behaviour (issuing queries, attacking, policing) is attached
via hook callbacks so the same peer class hosts good peers, DDoS agents,
and DD-POLICE-enabled peers.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.evidence.dedup import SeenCache, make_seen_cache
from repro.overlay.capacity import TokenBucket
from repro.overlay.ids import Guid, PeerId
from repro.overlay.message import (
    Bye,
    Message,
    MessageKind,
    NeighborTrafficMessage,
    Ping,
    Pong,
    Query,
    QueryHit,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.overlay.network import OverlayNetwork


class PeerState(enum.Enum):
    OFFLINE = "offline"
    ONLINE = "online"


#: Historical default bound on remembered GUIDs per peer.  The live
#: knob is :attr:`repro.overlay.network.NetworkConfig.seen_cache_limit`
#: (validated there); this constant remains only as that default's
#: documented origin and for backward-compatible imports.
SEEN_CACHE_LIMIT = 50_000


@dataclass
class PeerCounters:
    """Lifetime counters for one peer (monotone, never reset)."""

    queries_issued: int = 0
    queries_forwarded: int = 0
    queries_received: int = 0
    queries_dropped_capacity: int = 0
    queries_dropped_duplicate: int = 0
    queries_dropped_ttl: int = 0
    hits_generated: int = 0
    hits_routed: int = 0
    hits_dropped_no_route: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class Peer:
    """One overlay node.

    Hooks
    -----
    ``query_tap(neighbor, query)``
        Called for every query received from ``neighbor`` *before*
        processing; DD-POLICE's traffic monitor subscribes here.
    ``control_handler(neighbor, message)``
        Receives NeighborList / NeighborTraffic / Bye control messages.
    ``forward_filter(query, targets) -> targets``
        Lets attached behaviours veto or reshape forwarding (used by the
        load-balancing baseline).
    """

    __slots__ = (
        "id",
        "network",
        "state",
        "neighbors",
        "processing",
        "upstream_qpm",
        "counters",
        "_route_back",
        "_seen",
        "out_query_window",
        "in_query_window",
        "last_minute_out",
        "last_minute_in",
        "query_taps",
        "control_handlers",
        "forward_filters",
        "disconnect_listeners",
        "connect_listeners",
    )

    def __init__(
        self,
        peer_id: PeerId,
        network: "OverlayNetwork",
        *,
        processing_qpm: float = 10_000.0,
        upstream_qpm: float = 10_000.0,
    ) -> None:
        self.id = peer_id
        self.network = network
        self.state = PeerState.OFFLINE
        self.neighbors: Set[PeerId] = set()
        self.processing = TokenBucket(rate_per_min=processing_qpm)
        self.upstream_qpm = upstream_qpm
        self.counters = PeerCounters()

        # GUID -> neighbor the query arrived from (reverse-path table), LRU.
        # Always exact: it stores route *values*, which a membership
        # sketch cannot.
        self._route_back: "OrderedDict[bytes, PeerId]" = OrderedDict()
        # GUIDs already seen (includes own issues): pluggable membership
        # (exact LRU by default, rotating Bloom under the sketch
        # evidence backend -- docs/SKETCH.md), sized by the network's
        # validated seen_cache_limit.
        self._seen: SeenCache = make_seen_cache(
            network.config.evidence, limit=network.config.seen_cache_limit
        )

        # Per-neighbor per-current-minute counters (rolled by the network).
        self.out_query_window: Dict[PeerId, int] = {}
        self.in_query_window: Dict[PeerId, int] = {}
        # Snapshots of the most recently completed minute window.
        self.last_minute_out: Dict[PeerId, int] = {}
        self.last_minute_in: Dict[PeerId, int] = {}

        # Hooks.
        self.query_taps: List[Callable[[PeerId, Query], None]] = []
        self.control_handlers: List[Callable[[PeerId, Message], None]] = []
        self.forward_filters: List[
            Callable[[Query, List[PeerId]], List[PeerId]]
        ] = []
        self.disconnect_listeners: List[Callable[[PeerId, int], None]] = []
        self.connect_listeners: List[Callable[[PeerId], None]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def go_online(self) -> None:
        self.state = PeerState.ONLINE

    def go_offline(self) -> None:
        self.state = PeerState.OFFLINE
        self.neighbors.clear()
        self._route_back.clear()
        self._seen.clear()
        self.out_query_window.clear()
        self.in_query_window.clear()
        # The completed-minute snapshots describe connections that no
        # longer exist; a rejoining peer must not report pre-departure
        # traffic to DD-POLICE.
        self.last_minute_out = {}
        self.last_minute_in = {}

    @property
    def online(self) -> bool:
        return self.state is PeerState.ONLINE

    # ------------------------------------------------------------------
    # neighbor management
    # ------------------------------------------------------------------
    def add_neighbor(self, other: PeerId) -> None:
        if other == self.id:
            raise ProtocolError(f"peer {self.id} cannot neighbor itself")
        self.neighbors.add(other)
        self.out_query_window.setdefault(other, 0)
        self.in_query_window.setdefault(other, 0)
        for listener in self.connect_listeners:
            listener(other)

    def remove_neighbor(self, other: PeerId, reason_code: int = Bye.REASON_NORMAL) -> None:
        self.neighbors.discard(other)
        self.out_query_window.pop(other, None)
        self.in_query_window.pop(other, None)
        for listener in self.disconnect_listeners:
            listener(other, reason_code)

    # ------------------------------------------------------------------
    # per-minute window rollover (driven by the network clock)
    # ------------------------------------------------------------------
    def roll_minute_window(self) -> Tuple[Dict[PeerId, int], Dict[PeerId, int]]:
        """Snapshot and reset the per-minute In/Out counters.

        Returns ``(out_snapshot, in_snapshot)``; DD-POLICE's monitor keeps
        the history it needs from these snapshots.
        """
        out_snap = dict(self.out_query_window)
        in_snap = dict(self.in_query_window)
        for k in self.out_query_window:
            self.out_query_window[k] = 0
        for k in self.in_query_window:
            self.in_query_window[k] = 0
        self.last_minute_out = out_snap
        self.last_minute_in = in_snap
        return out_snap, in_snap

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _send(self, dst: PeerId, msg: Message) -> None:
        self.counters.bytes_sent += msg.size_bytes
        # Count only current neighbors: otherwise a send racing a
        # disconnect would resurrect the departed neighbor's counter key,
        # and the ghost entry would haunt every later minute snapshot
        # (roll_minute_window zeroes keys, it never prunes them).
        if msg.kind is MessageKind.QUERY and dst in self.neighbors:
            self.out_query_window[dst] = self.out_query_window.get(dst, 0) + 1
        self.network.transmit(self.id, dst, msg)

    def issue_query(self, keywords: Tuple[str, ...], ttl: Optional[int] = None) -> Guid:
        """Originate a query and flood it to all neighbors."""
        if not self.online:
            raise ProtocolError(f"offline peer {self.id} cannot issue queries")
        msg = Query(
            guid=self.network.guid_factory.new(),
            ttl=self.network.config.default_ttl if ttl is None else ttl,
            hops=0,
            keywords=keywords,
        )
        self.counters.queries_issued += 1
        self._remember_seen(msg.guid)
        self.network.note_query_issued(self.id, msg)
        for nb in list(self.neighbors):
            self._send(nb, msg)
        return msg.guid

    def originate_query_to(
        self,
        neighbor: PeerId,
        keywords: Tuple[str, ...],
        ttl: Optional[int] = None,
    ) -> Guid:
        """Originate a query toward a *single* neighbor.

        This is the attack pattern of Section 2.1 / Figure 1: "Instead of
        flooding the same queries to all its neighbors, a bad peer issues
        different queries to its neighboring peers in order to make DDoS
        attacks more damaging." Legit clients never do this, but the
        receiving side cannot tell (queries carry no source address).
        """
        if not self.online:
            raise ProtocolError(f"offline peer {self.id} cannot issue queries")
        if neighbor not in self.neighbors:
            raise ProtocolError(f"{neighbor} is not a neighbor of {self.id}")
        msg = Query(
            guid=self.network.guid_factory.new(),
            ttl=self.network.config.default_ttl if ttl is None else ttl,
            hops=0,
            keywords=keywords,
        )
        self.counters.queries_issued += 1
        self._remember_seen(msg.guid)
        self.network.note_query_issued(self.id, msg)
        self._send(neighbor, msg)
        return msg.guid

    def send_control(self, dst: PeerId, msg: Message) -> None:
        """Send a non-query message (control plane)."""
        if dst not in self.neighbors and not isinstance(msg, (Bye, NeighborTrafficMessage)):
            raise ProtocolError(
                f"{self.id} sending {msg.kind} to non-neighbor {dst}"
            )
        self._send(dst, msg)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def on_message(self, src: PeerId, msg: Message) -> None:
        """Entry point for all deliveries (called by the network).

        Dispatch is a ``kind``-keyed table (see ``_DISPATCH`` below) rather
        than an isinstance chain: one dict hit per delivery on the hottest
        receive path.
        """
        if not self.online:
            return
        self.counters.bytes_received += msg.size_bytes
        handler = self._DISPATCH.get(msg.kind)
        if handler is None:  # pragma: no cover - future message kinds
            raise ProtocolError(f"unhandled message kind {msg.kind}")
        handler(self, src, msg)

    def _on_control(self, src: PeerId, msg: Message) -> None:
        for handler in self.control_handlers:
            handler(src, msg)

    def _on_ping(self, src: PeerId, msg: Ping) -> None:
        pong = Pong(
            guid=msg.guid,
            ttl=1,
            hops=0,
            responder=self.id,
            shared_files=len(self.network.shared_objects(self.id)),
        )
        self._send(src, pong)

    def _on_query(self, src: PeerId, msg: Query) -> None:
        self.counters.queries_received += 1
        # In-flight queries delivered after remove_neighbor must not
        # re-create the departed neighbor's counter key (see _send).
        if src in self.neighbors:
            self.in_query_window[src] = self.in_query_window.get(src, 0) + 1
        for tap in self.query_taps:
            tap(src, msg)

        key = msg.guid.raw
        if key in self._seen:
            self.counters.queries_dropped_duplicate += 1
            return
        self._remember_seen(msg.guid)
        self._route_back[key] = src
        self._evict_routes()

        # Capacity check: a saturated peer drops the query entirely
        # (Section 2.3: peer B starts discarding above ~15,000/min).
        if not self.processing.try_consume(self.network.now):
            self.counters.queries_dropped_capacity += 1
            self.network.note_query_dropped(self.id, msg)
            return

        # Local lookup -> QueryHit on the reverse path.
        hit_obj = self.network.match_content(self.id, msg)
        if hit_obj is not None:
            self.counters.hits_generated += 1
            hit = QueryHit(
                guid=self.network.guid_factory.new(),
                ttl=msg.hops + 1,
                hops=0,
                responder=self.id,
                result_count=1,
                query_guid=msg.guid,
            )
            self.network.note_query_hit(self.id, msg, hit)
            self._send(src, hit)

        # Forward to all other neighbors if TTL remains.
        if msg.ttl <= 1:
            self.counters.queries_dropped_ttl += 1
            return
        fwd = msg.aged_copy()
        targets = [nb for nb in self.neighbors if nb != src]
        for filt in self.forward_filters:
            targets = filt(fwd, targets)  # type: ignore[arg-type]
        for nb in targets:
            self.counters.queries_forwarded += 1
            self._send(nb, fwd)

    def _on_query_hit(self, src: PeerId, msg: QueryHit) -> None:
        if msg.query_guid is None:
            raise ProtocolError("QueryHit without query_guid")
        key = msg.query_guid.raw
        back = self._route_back.get(key)
        if back is None:
            # Either we originated the query or the route expired.
            if key in self._seen:
                self.network.note_response_arrived(self.id, msg)
            else:
                self.counters.hits_dropped_no_route += 1
            return
        if back not in self.neighbors:
            self.counters.hits_dropped_no_route += 1
            return
        self.counters.hits_routed += 1
        self._send(back, msg.aged_copy() if msg.ttl > 0 else msg)

    # ------------------------------------------------------------------
    # seen-cache bookkeeping
    # ------------------------------------------------------------------
    def _remember_seen(self, guid: Guid) -> None:
        self._seen.add(guid.raw)

    def _evict_routes(self) -> None:
        while len(self._route_back) > self.network.config.seen_cache_limit:
            self._route_back.popitem(last=False)

    def has_seen(self, guid: Guid) -> bool:
        return guid.raw in self._seen

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Peer({self.id.value}, deg={len(self.neighbors)}, {self.state.value})"

    #: kind-keyed receive dispatch (class-level; instances stay slotted).
    _DISPATCH = {
        MessageKind.QUERY: _on_query,
        MessageKind.QUERY_HIT: _on_query_hit,
        MessageKind.PING: _on_ping,
        MessageKind.PONG: _on_control,
        MessageKind.NEIGHBOR_LIST: _on_control,
        MessageKind.NEIGHBOR_TRAFFIC: _on_control,
        MessageKind.BYE: _on_control,
    }
