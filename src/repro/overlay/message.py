"""Overlay message types.

Models the Gnutella 0.6 message vocabulary the paper builds on, plus the
new ``Neighbor_Traffic`` type DD-POLICE adds (payload descriptor ``0x83``,
Section 3.3 / Table 1) and the neighbor-list exchange message of
Section 3.1.

Sizes are tracked so the traffic-cost metric (Figure 9) can weigh messages
by bytes on the wire, matching the paper's "traffic cost is a function of
consumed network bandwidth".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.overlay.ids import Guid, PeerId

#: Size of the unified Gnutella message header (bytes), per the 0.6 spec.
GNUTELLA_HEADER_SIZE = 23

#: Default TTL for flooded queries (Gnutella convention).
DEFAULT_TTL = 7


class MessageKind(enum.Enum):
    """Payload descriptor values (Gnutella 0.6 + DD-POLICE extension)."""

    PING = 0x00
    PONG = 0x01
    BYE = 0x02
    QUERY = 0x80
    QUERY_HIT = 0x81
    NEIGHBOR_LIST = 0x82  # DD-POLICE neighbor-list exchange (Section 3.1)
    NEIGHBOR_TRAFFIC = 0x83  # DD-POLICE Neighbor_Traffic (Section 3.3, Table 1)


@dataclass(slots=True)
class Message:
    """Base overlay message.

    Attributes
    ----------
    guid:
        16-byte identifier used for duplicate suppression during floods.
    ttl:
        Remaining hops the message may travel.
    hops:
        Hops travelled so far. ``ttl + hops`` is invariant along a path for
        honest peers (attackers may tamper, Section 4 notes TTL/hops are
        easily modified -- modelled in :mod:`repro.attack`).
    """

    guid: Guid
    ttl: int = DEFAULT_TTL
    hops: int = 0

    kind: MessageKind = field(init=False)
    payload_size: int = field(init=False, default=0)

    @property
    def size_bytes(self) -> int:
        """Total on-the-wire size including the 23-byte header."""
        return GNUTELLA_HEADER_SIZE + self.payload_size

    def aged_copy(self) -> "Message":
        """Copy with ttl-1 / hops+1, as done when forwarding."""
        import copy

        if self.ttl <= 0:
            raise ValueError("cannot forward a message with ttl<=0")
        clone = copy.copy(self)
        clone.ttl = self.ttl - 1
        clone.hops = self.hops + 1
        return clone


@dataclass(slots=True)
class Ping(Message):
    """Keep-alive / discovery probe (also used for BG liveness pings)."""

    def __post_init__(self) -> None:
        self.kind = MessageKind.PING
        self.payload_size = 0


@dataclass(slots=True)
class Pong(Message):
    """Response to a Ping; advertises the responder's address + library."""

    responder: Optional[PeerId] = None
    shared_files: int = 0

    def __post_init__(self) -> None:
        self.kind = MessageKind.PONG
        self.payload_size = 14  # port(2) + ip(4) + files(4) + kbytes(4)


@dataclass(slots=True)
class Query(Message):
    """Flooded search request.

    ``keywords`` identifies what is being searched for; crucially the
    message carries **no source address** -- responses travel back along
    the reverse of the flood path (the anonymity property that defeats
    network-layer defenses, Section 2.1).
    """

    keywords: Tuple[str, ...] = ()
    min_speed: int = 0

    def __post_init__(self) -> None:
        self.kind = MessageKind.QUERY
        # min_speed(2) + NUL-terminated search string
        self.payload_size = 2 + sum(len(k) for k in self.keywords) + max(
            0, len(self.keywords) - 1
        ) + 1

    @property
    def search_string(self) -> str:
        return " ".join(self.keywords)


@dataclass(slots=True)
class QueryHit(Message):
    """Response to a Query; routed back hop-by-hop on the reverse path."""

    responder: Optional[PeerId] = None
    result_count: int = 1
    query_guid: Optional[Guid] = None

    def __post_init__(self) -> None:
        self.kind = MessageKind.QUERY_HIT
        # header-ish fields + per-result descriptor (~40B each) + servent id
        self.payload_size = 11 + 40 * max(1, self.result_count) + 16


@dataclass(slots=True)
class Bye(Message):
    """Graceful connection close, optionally with a reason code.

    DD-POLICE uses reason codes to tell a disconnected peer *why* (the
    inconsistent-neighbor-list disconnection of Section 3.1 "send out a
    message to both peers indicating the reason of disconnection").
    """

    reason_code: int = 0
    reason_text: str = ""

    #: reason codes
    REASON_NORMAL = 0
    REASON_DDOS_SUSPECT = 1
    REASON_LIST_INCONSISTENT = 2
    REASON_NAIVE_RATE_LIMIT = 3
    REASON_TRACEBACK = 4

    def __post_init__(self) -> None:
        self.kind = MessageKind.BYE
        self.payload_size = 2 + len(self.reason_text)


@dataclass(slots=True)
class NeighborListMessage(Message):
    """Periodic neighbor-list exchange (Section 3.1).

    Carries the sender's current neighbor set. Receivers use it to build
    buddy groups; they may also cross-check claims with the listed peers
    (the lying-detection mechanism).
    """

    sender: Optional[PeerId] = None
    neighbors: FrozenSet[PeerId] = frozenset()
    #: Sender-side send time. Not on the wire (real servents would carry a
    #: sequence number); used to reject stale lists that arrive reordered
    #: behind a fresher one. ``None`` disables the guard.
    sent_at: Optional[float] = None

    def __post_init__(self) -> None:
        self.kind = MessageKind.NEIGHBOR_LIST
        self.payload_size = 4 + 6 * len(self.neighbors)  # ip(4)+port(2) each


@dataclass(slots=True)
class NeighborTrafficMessage(Message):
    """DD-POLICE ``Neighbor_Traffic`` message (Section 3.3, Table 1).

    Body fields and byte offsets::

        offset  0: Source IP Address      (4 bytes)
        offset  4: Suspect IP Address     (4 bytes)
        offset  8: Source timestamp       (4 bytes)
        offset 12: # of Outgoing queries  (4 bytes)  Out_query(suspect)
        offset 16: # of Incoming queries  (4 bytes)  In_query(suspect)

    Payload descriptor ``0x83``. Binary encode/decode lives in
    :mod:`repro.core.wire`.
    """

    source: Optional[PeerId] = None
    suspect: Optional[PeerId] = None
    timestamp: int = 0
    outgoing_queries: int = 0
    incoming_queries: int = 0
    #: Marks an investigation re-request (hardened evidence collection):
    #: the receiver should answer the sender directly, bypassing the 5 s
    #: dedup window. Identical on the wire to a first send.
    is_retry: bool = False

    def __post_init__(self) -> None:
        self.kind = MessageKind.NEIGHBOR_TRAFFIC
        self.payload_size = 20
