"""BRITE-like overlay topology generation.

The paper generates "100 logical topologies with 20,000 peers. Most peers
have 3 or 4 logical neighbors, and a few peers have tens of direct
neighbors. The average number of neighbors of each node is 6."

That profile is exactly a Barabasi-Albert preferential-attachment graph
with ``m = 3`` (degree mode at m, mean 2m = 6, power-law tail), which is
one of BRITE's standard modes. We implement:

* :func:`barabasi_albert` -- preferential attachment (BRITE "BA" mode),
* :func:`waxman` -- distance-probability random graph (BRITE "Waxman"
  mode), provided for sensitivity studies,
* :func:`random_regularish` -- Erdos-Renyi-style with a target mean degree,
  a baseline without a heavy tail,
* :func:`hard_cutoff_scale_free` -- preferential attachment with a hard
  degree cutoff (Guclu & Yuksel): saturated nodes leave the attachment
  pool, truncating the power-law tail -- no mega-hubs to amplify (or
  choke on) a flood,
* :func:`bittorrent_like` -- tracker-style uniform-random peer selection
  with min/max peer-set bounds, the flat-degree swarm profile.

All generators return a :class:`Topology`: an undirected simple graph over
node ids ``0..n-1`` stored as adjacency sets, guaranteed connected.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.errors import TopologyError


@dataclass
class Topology:
    """Undirected simple graph over integer node ids."""

    n: int
    adjacency: List[Set[int]]
    kind: str = "unknown"

    def __post_init__(self) -> None:
        if len(self.adjacency) != self.n:
            raise TopologyError(
                f"adjacency length {len(self.adjacency)} != n {self.n}"
            )

    # -- basic queries ------------------------------------------------
    def degree(self, u: int) -> int:
        return len(self.adjacency[u])

    def degrees(self) -> List[int]:
        return [len(a) for a in self.adjacency]

    def neighbors(self, u: int) -> FrozenSet[int]:
        return frozenset(self.adjacency[u])

    def edge_count(self) -> int:
        return sum(len(a) for a in self.adjacency) // 2

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Each undirected edge yielded once as (u, v) with u < v."""
        for u in range(self.n):
            for v in self.adjacency[u]:
                if u < v:
                    yield (u, v)

    def has_edge(self, u: int, v: int) -> bool:
        return v in self.adjacency[u]

    # -- mutation (used by churn/rewiring) ------------------------------
    def add_edge(self, u: int, v: int) -> None:
        if u == v:
            raise TopologyError(f"self-loop at node {u}")
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)

    def remove_edge(self, u: int, v: int) -> None:
        self.adjacency[u].discard(v)
        self.adjacency[v].discard(u)

    # -- invariants ------------------------------------------------------
    def check_symmetric(self) -> bool:
        """True iff adjacency is a valid undirected simple graph."""
        for u in range(self.n):
            if u in self.adjacency[u]:
                return False
            for v in self.adjacency[u]:
                if u not in self.adjacency[v]:
                    return False
        return True

    def connected_component(self, start: int) -> Set[int]:
        """BFS component containing ``start``."""
        seen = {start}
        frontier = [start]
        while frontier:
            nxt: List[int] = []
            for u in frontier:
                for v in self.adjacency[u]:
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            frontier = nxt
        return seen

    def is_connected(self) -> bool:
        if self.n == 0:
            return True
        return len(self.connected_component(0)) == self.n


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters for :func:`generate_topology`.

    ``model`` is one of ``"ba"``, ``"waxman"``, ``"random"``. Default
    values reproduce the paper's stated degree profile.
    """

    n: int = 2000
    model: str = "ba"
    ba_m: int = 3
    waxman_alpha: float = 0.15
    waxman_beta: float = 0.4
    target_mean_degree: float = 6.0
    super_fraction: float = 0.15
    #: hard_cutoff: maximum degree; saturated nodes stop accepting links.
    degree_cutoff: int = 12
    #: bittorrent: peer-set bounds handed out by the "tracker".
    bt_min_peers: int = 4
    bt_max_peers: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise TopologyError(f"need at least 2 nodes, got {self.n}")
        if self.model not in (
            "ba", "waxman", "random", "two_tier", "hard_cutoff", "bittorrent"
        ):
            raise TopologyError(f"unknown topology model {self.model!r}")
        if self.ba_m < 1:
            raise TopologyError(f"ba_m must be >= 1, got {self.ba_m}")
        if self.model in ("ba", "hard_cutoff") and self.n <= self.ba_m:
            raise TopologyError(
                f"BA needs n > m ({self.n} <= {self.ba_m})"
            )
        if not (0 < self.super_fraction < 1):
            raise TopologyError(
                f"super_fraction must be in (0,1), got {self.super_fraction}"
            )
        if self.degree_cutoff <= self.ba_m:
            raise TopologyError(
                f"degree_cutoff must exceed ba_m "
                f"({self.degree_cutoff} <= {self.ba_m})"
            )
        if self.bt_min_peers < 1:
            raise TopologyError(
                f"bt_min_peers must be >= 1, got {self.bt_min_peers}"
            )
        if self.bt_max_peers < self.bt_min_peers:
            raise TopologyError(
                f"bt_max_peers < bt_min_peers "
                f"({self.bt_max_peers} < {self.bt_min_peers})"
            )


def barabasi_albert(n: int, m: int, rng: random.Random) -> Topology:
    """Preferential attachment: each new node links to ``m`` existing nodes
    chosen with probability proportional to degree.

    Produces degree mode ``m``, mean ``~2m``, and a power-law tail -- the
    BRITE profile the paper uses (m=3 -> mean degree 6).
    """
    if n <= m:
        raise TopologyError(f"BA requires n > m (n={n}, m={m})")
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    # Seed clique of m+1 nodes so early targets have nonzero degree.
    repeated: List[int] = []  # node repeated once per incident edge
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            adjacency[u].add(v)
            adjacency[v].add(u)
            repeated.append(u)
            repeated.append(v)
    for u in range(m + 1, n):
        targets: Set[int] = set()
        while len(targets) < m:
            targets.add(repeated[rng.randrange(len(repeated))])
        for v in targets:
            adjacency[u].add(v)
            adjacency[v].add(u)
            repeated.append(u)
            repeated.append(v)
    return Topology(n=n, adjacency=adjacency, kind="ba")


def hard_cutoff_scale_free(
    n: int, m: int, cutoff: int, rng: random.Random
) -> Topology:
    """Preferential attachment with a hard degree cutoff.

    Guclu & Yuksel ("Scale-Free Overlay Topologies with Hard Cutoffs"):
    grow a BA graph, but a node whose degree reaches ``cutoff`` leaves
    the attachment pool and accepts no further links. The power-law tail
    is truncated at the cutoff -- the overlay keeps BA's short paths but
    has no mega-hubs, which changes how a flood concentrates.
    """
    if n <= m:
        raise TopologyError(f"BA requires n > m (n={n}, m={m})")
    if cutoff <= m:
        raise TopologyError(f"cutoff must exceed m ({cutoff} <= {m})")
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    repeated: List[int] = []  # node repeated once per incident edge
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            adjacency[u].add(v)
            adjacency[v].add(u)
            repeated.append(u)
            repeated.append(v)
    for u in range(m + 1, n):
        targets: Set[int] = set()
        attempts = 0
        # Preferential attachment over *unsaturated* nodes: saturated
        # candidates are rejected. New arrivals keep the eligible pool
        # non-empty (their degree m is below the cutoff), so the uniform
        # fallback only triggers when the preferential mass concentrates
        # on saturated nodes.
        while len(targets) < m and attempts < 50 * m:
            attempts += 1
            cand = repeated[rng.randrange(len(repeated))]
            if cand not in targets and len(adjacency[cand]) < cutoff:
                targets.add(cand)
        if len(targets) < m:
            eligible = [
                v
                for v in range(u)
                if len(adjacency[v]) < cutoff and v not in targets
            ]
            while len(targets) < m and eligible:
                targets.add(eligible.pop(rng.randrange(len(eligible))))
        for v in targets:
            adjacency[u].add(v)
            adjacency[v].add(u)
            repeated.append(u)
            repeated.append(v)
    return Topology(n=n, adjacency=adjacency, kind="hard_cutoff")


def bittorrent_like(
    n: int, min_peers: int, max_peers: int, rng: random.Random
) -> Topology:
    """Tracker-style swarm wiring: uniform-random bounded peer sets.

    Nodes join sequentially; each asks the "tracker" for ``min_peers``
    uniform-random existing peers that still have capacity (degree below
    ``max_peers``) and connects to all of them. No preferential
    attachment: degrees are flat-random and capped, the BitTorrent swarm
    profile rather than Gnutella's heavy tail.
    """
    if min_peers < 1 or max_peers < min_peers:
        raise TopologyError(
            f"need 1 <= min_peers <= max_peers (got {min_peers}, {max_peers})"
        )
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    open_slots: List[int] = [0]  # ids with degree < max_peers, in join order
    for u in range(1, n):
        want = min(min_peers, len(open_slots))
        chosen = rng.sample(open_slots, want)
        for v in chosen:
            adjacency[u].add(v)
            adjacency[v].add(u)
            if len(adjacency[v]) >= max_peers:
                open_slots.remove(v)
        if len(adjacency[u]) < max_peers:
            open_slots.append(u)
    topo = Topology(n=n, adjacency=adjacency, kind="bittorrent")
    if not topo.is_connected():
        _stitch_components(topo, rng)
    return topo


def waxman(
    n: int,
    alpha: float,
    beta: float,
    rng: random.Random,
    *,
    connect: bool = True,
) -> Topology:
    """Waxman random graph: nodes on a unit square, edge probability
    ``alpha * exp(-d / (beta * L))`` with L the maximal distance.

    BRITE's other standard mode; included for sensitivity benches.
    """
    if not (0 < alpha <= 1) or not (0 < beta <= 1):
        raise TopologyError(f"alpha/beta must be in (0,1], got {alpha}, {beta}")
    pts = [(rng.random(), rng.random()) for _ in range(n)]
    L = math.sqrt(2.0)
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    for u in range(n):
        xu, yu = pts[u]
        for v in range(u + 1, n):
            xv, yv = pts[v]
            d = math.hypot(xu - xv, yu - yv)
            if rng.random() < alpha * math.exp(-d / (beta * L)):
                adjacency[u].add(v)
                adjacency[v].add(u)
    topo = Topology(n=n, adjacency=adjacency, kind="waxman")
    if connect:
        _stitch_components(topo, rng)
    return topo


def random_regularish(n: int, mean_degree: float, rng: random.Random) -> Topology:
    """Erdos-Renyi G(n, p) with p chosen for the target mean degree."""
    if mean_degree <= 0 or mean_degree >= n:
        raise TopologyError(f"mean degree {mean_degree} infeasible for n={n}")
    p = mean_degree / (n - 1)
    adjacency: List[Set[int]] = [set() for _ in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                adjacency[u].add(v)
                adjacency[v].add(u)
    topo = Topology(n=n, adjacency=adjacency, kind="random")
    _stitch_components(topo, rng)
    return topo


def _stitch_components(topo: Topology, rng: random.Random) -> None:
    """Connect a possibly disconnected graph by chaining components."""
    unseen = set(range(topo.n))
    components: List[List[int]] = []
    while unseen:
        start = next(iter(unseen))
        comp = topo.connected_component(start)
        components.append(sorted(comp))
        unseen -= comp
    for prev, cur in zip(components, components[1:]):
        u = prev[rng.randrange(len(prev))]
        v = cur[rng.randrange(len(cur))]
        topo.add_edge(u, v)


def two_tier(
    n: int,
    super_fraction: float,
    rng: random.Random,
    *,
    super_m: int = 3,
    leaves_per_super_cap: int = 30,
) -> Topology:
    """Gnutella 0.6 super-peer topology.

    The first ``round(n * super_fraction)`` node ids are super-peers,
    wired among themselves with preferential attachment (the flooding
    backbone); every remaining node is a leaf attached to one or two
    super-peers. Matches the deployment the paper measured (its
    monitoring node "is configured as a super node connecting to ten
    peers").
    """
    if not (0 < super_fraction < 1):
        raise TopologyError(f"super_fraction must be in (0,1), got {super_fraction}")
    n_super = max(super_m + 1, round(n * super_fraction))
    if n_super >= n:
        raise TopologyError("no leaves left; lower super_fraction")
    backbone = barabasi_albert(n_super, super_m, rng)
    adjacency: List[Set[int]] = [set(vs) for vs in backbone.adjacency]
    adjacency.extend(set() for _ in range(n - n_super))
    leaf_count = [0] * n_super
    for leaf in range(n_super, n):
        want = 1 if rng.random() < 0.7 else 2  # most leaves single-homed
        chosen: Set[int] = set()
        attempts = 0
        while len(chosen) < want and attempts < 50:
            attempts += 1
            s = rng.randrange(n_super)
            if s in chosen or leaf_count[s] >= leaves_per_super_cap:
                continue
            chosen.add(s)
            leaf_count[s] += 1
        if not chosen:  # all supers full: attach anyway to the emptiest
            s = min(range(n_super), key=lambda i: leaf_count[i])
            chosen = {s}
            leaf_count[s] += 1
        for s in chosen:
            adjacency[leaf].add(s)
            adjacency[s].add(leaf)
    topo = Topology(n=n, adjacency=adjacency, kind="two_tier")
    if not topo.is_connected():  # pragma: no cover - backbone is connected
        _stitch_components(topo, rng)
    return topo


def generate_topology(config: TopologyConfig) -> Topology:
    """Generate a topology per ``config`` (seeded, deterministic)."""
    rng = random.Random(config.seed)
    if config.model == "ba":
        topo = barabasi_albert(config.n, config.ba_m, rng)
    elif config.model == "hard_cutoff":
        topo = hard_cutoff_scale_free(
            config.n, config.ba_m, config.degree_cutoff, rng
        )
    elif config.model == "bittorrent":
        topo = bittorrent_like(
            config.n, config.bt_min_peers, config.bt_max_peers, rng
        )
    elif config.model == "waxman":
        topo = waxman(config.n, config.waxman_alpha, config.waxman_beta, rng)
    elif config.model == "two_tier":
        topo = two_tier(config.n, config.super_fraction, rng, super_m=config.ba_m)
    else:
        topo = random_regularish(config.n, config.target_mean_degree, rng)
    if not topo.is_connected():
        _stitch_components(topo, rng)
    return topo


def degree_statistics(topo: Topology) -> Dict[str, float]:
    """Summary used to verify the paper's degree profile."""
    degs = sorted(topo.degrees())
    n = len(degs)
    if n == 0:
        raise TopologyError("empty topology")
    mean = sum(degs) / n
    # Mode over the histogram.
    hist: Dict[int, int] = {}
    for d in degs:
        hist[d] = hist.get(d, 0) + 1
    mode = max(hist.items(), key=lambda kv: (kv[1], -kv[0]))[0]
    return {
        "n": float(n),
        "mean": mean,
        "median": float(degs[n // 2]),
        "mode": float(mode),
        "min": float(degs[0]),
        "max": float(degs[-1]),
        "frac_3_or_4": hist.get(3, 0) / n + hist.get(4, 0) / n,
        "frac_tens": sum(c for d, c in hist.items() if d >= 10) / n,
    }
