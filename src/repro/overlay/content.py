"""Shared-content catalog: object popularity and replica placement.

Substitution for the 2-day KaZaA trace (UW, SOSP'03) and the authors' 24 h
Gnutella query log: the defense never inspects query *content*, only
per-edge message counts, so what matters is (a) per-peer query rate,
(b) query distinctness, and (c) whether a flooded query can find at least
one replica within its TTL radius -- all preserved here.

Objects have Zipf-distributed popularity (the empirical regularity of the
cited traces); replica counts follow popularity, and replicas are placed
uniformly at random over peers, so success probability depends on flood
coverage exactly as in the paper's simulator.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import ConfigError

#: Synthetic keyword vocabulary used to render query strings.
_ADJECTIVES = (
    "red", "blue", "fast", "live", "remix", "acoustic", "classic", "rare",
    "full", "original", "extended", "deluxe", "vintage", "golden", "midnight",
)
_NOUNS = (
    "song", "album", "movie", "trailer", "concert", "episode", "mix",
    "soundtrack", "demo", "session", "bootleg", "single", "cover", "edit",
    "anthem",
)


@dataclass(frozen=True)
class ContentConfig:
    """Catalog parameters.

    ``num_objects`` distinct shared objects with Zipf(``zipf_s``)
    popularity; object *i* (0-based rank) gets ``replicas_base`` replicas
    scaled by relative popularity, floored at ``replicas_min``.
    """

    num_objects: int = 500
    zipf_s: float = 0.9
    replication_ratio: float = 0.01  # replicas per object ~= ratio * n_peers
    replicas_min: int = 1
    #: Cap on any object's replica share of the population. The KaZaA
    #: trace's fetch-at-most-once behaviour flattens the top of the
    #: replica distribution; without a cap the head objects are replicated
    #: everywhere and query success saturates regardless of flood reach.
    replicas_max_fraction: float = 0.02
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_objects < 1:
            raise ConfigError(f"num_objects must be >= 1, got {self.num_objects}")
        if self.zipf_s <= 0:
            raise ConfigError(f"zipf_s must be positive, got {self.zipf_s}")
        if not (0 < self.replication_ratio <= 1):
            raise ConfigError(
                f"replication_ratio must be in (0,1], got {self.replication_ratio}"
            )
        if self.replicas_min < 1:
            raise ConfigError(f"replicas_min must be >= 1, got {self.replicas_min}")
        if not (0 < self.replicas_max_fraction <= 1):
            raise ConfigError(
                f"replicas_max_fraction must be in (0,1], got {self.replicas_max_fraction}"
            )


class ContentCatalog:
    """Objects, popularity, replica placement, and query sampling."""

    def __init__(self, config: ContentConfig, n_peers: int) -> None:
        if n_peers < 1:
            raise ConfigError(f"n_peers must be >= 1, got {n_peers}")
        self.config = config
        self.n_peers = n_peers
        self._rng = random.Random(config.seed)

        # Zipf popularity over ranks 1..K.
        weights = [1.0 / (rank ** config.zipf_s) for rank in range(1, config.num_objects + 1)]
        total = sum(weights)
        self.popularity: List[float] = [w / total for w in weights]
        self._cum: List[float] = []
        acc = 0.0
        for p in self.popularity:
            acc += p
            self._cum.append(acc)
        self._cum[-1] = 1.0  # guard against float drift

        # Replica placement: hot objects get proportionally more replicas.
        mean_replicas = max(config.replicas_min, config.replication_ratio * n_peers)
        self.replica_holders: List[Set[int]] = []
        for rank, p in enumerate(self.popularity):
            count = max(
                config.replicas_min,
                int(round(mean_replicas * p * config.num_objects)),
            )
            cap = max(config.replicas_min, int(config.replicas_max_fraction * n_peers))
            count = min(count, cap, n_peers)
            holders = set(self._rng.sample(range(n_peers), count))
            self.replica_holders.append(holders)

        # Reverse index: peer -> objects it shares.
        self.peer_objects: Dict[int, Set[int]] = {}
        for obj, holders in enumerate(self.replica_holders):
            for peer in holders:
                self.peer_objects.setdefault(peer, set()).add(obj)

    # -- queries ----------------------------------------------------------
    def sample_object(self, rng: random.Random) -> int:
        """Draw an object id by popularity."""
        return bisect.bisect_left(self._cum, rng.random())

    def keywords_for(self, obj: int) -> Tuple[str, str, str]:
        """Deterministic human-ish keyword triple for an object id."""
        if not (0 <= obj < self.config.num_objects):
            raise ConfigError(f"object id {obj} out of range")
        adj = _ADJECTIVES[obj % len(_ADJECTIVES)]
        noun = _NOUNS[(obj // len(_ADJECTIVES)) % len(_NOUNS)]
        return (adj, noun, f"id{obj}")

    def object_for_keywords(self, keywords: Sequence[str]) -> int:
        """Inverse of :meth:`keywords_for` (resolves on the ``idN`` token)."""
        for token in keywords:
            if token.startswith("id") and token[2:].isdigit():
                obj = int(token[2:])
                if 0 <= obj < self.config.num_objects:
                    return obj
        raise ConfigError(f"no object token found in keywords {keywords!r}")

    # -- matching ----------------------------------------------------------
    def peer_has(self, peer: int, obj: int) -> bool:
        return peer in self.replica_holders[obj]

    def holders(self, obj: int) -> Set[int]:
        return set(self.replica_holders[obj])

    def replica_count(self, obj: int) -> int:
        return len(self.replica_holders[obj])

    def relocate_replicas(self, departed_peer: int, alive: Sequence[int], rng: random.Random) -> int:
        """Move a departing peer's replicas to random alive peers.

        Keeps replica counts stable under churn so success-rate changes are
        attributable to the attack, not to content evaporation. Returns the
        number of relocated replicas.
        """
        moved = 0
        objs = self.peer_objects.pop(departed_peer, set())
        for obj in objs:
            self.replica_holders[obj].discard(departed_peer)
            if alive:
                target = alive[rng.randrange(len(alive))]
                if target not in self.replica_holders[obj]:
                    self.replica_holders[obj].add(target)
                    self.peer_objects.setdefault(target, set()).add(obj)
                    moved += 1
        return moved
